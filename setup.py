"""Setuptools shim.

This environment is offline and lacks the ``wheel`` package, so
``pip install -e .`` cannot build an editable wheel. ``python setup.py
develop`` performs the equivalent editable install with what is available.
Metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
