"""Figure 14: query splitting across CPU and GPU (Section 6.5).

Paper shapes: for embedding tables, even splitting beats CPU-side
execution (both memory systems engaged); for compute-intensive
representations (DHE/hybrid), an even split forces CPU execution of the
encoder-decoder stack and is detrimental — it needs careful ratio tuning.
"""

from conftest import fmt_row

from repro.core.representations import paper_configs
from repro.core.splitting import (
    simulate_split_serving,
    split_query_even,
    split_query_tuned,
)
from repro.experiments.setup import run_serving_comparison
from repro.hardware.catalog import CPU_BROADWELL, GPU_V100
from repro.hardware.latency import path_latency
from repro.models.configs import KAGGLE
from repro.quality.estimator import QualityEstimator
from repro.serving.workload import ServingScenario

QUERY_SIZES = (512, 2048, 4096)


def sweep():
    configs = paper_configs(KAGGLE)
    rows = {}
    for rep_name in ("table", "dhe", "hybrid"):
        rep = configs[rep_name]
        for size in QUERY_SIZES:
            even = split_query_even(rep, KAGGLE, CPU_BROADWELL, GPU_V100, size)
            tuned = split_query_tuned(rep, KAGGLE, CPU_BROADWELL, GPU_V100, size)
            rows[(rep_name, size)] = {
                "cpu_only_ms": path_latency(rep, KAGGLE, CPU_BROADWELL, size) * 1e3,
                "gpu_only_ms": path_latency(rep, KAGGLE, GPU_V100, size) * 1e3,
                "even_split_ms": even.latency_s * 1e3,
                "tuned_split_ms": tuned.latency_s * 1e3,
                "tuned_ratio_cpu": tuned.ratio_on_first,
            }
    return rows


def serving_level():
    """The paper's serving framing: table splitting vs. the CPU-GPU
    switching baseline, and split-DHE vs. everything."""
    scenario = ServingScenario.paper_default(n_queries=1200, seed=101)
    estimator = QualityEstimator("kaggle")
    configs = paper_configs(KAGGLE)
    out = {}
    switch = run_serving_comparison(
        KAGGLE, scenario, subset=("table-switch",)
    )["table-switch"]
    out["table-switch"] = switch.correct_prediction_throughput
    for rep_name in ("table", "dhe"):
        rep = configs[rep_name]
        result = simulate_split_serving(
            rep, KAGGLE, CPU_BROADWELL, GPU_V100, scenario,
            accuracy=estimator.accuracy(rep), ratio_on_first=0.5,
        )
        out[f"split-{rep_name}"] = result.correct_prediction_throughput
    return out


def run_all():
    return sweep(), serving_level()


def test_fig14_query_splitting(benchmark, record):
    rows, serving = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = []
    for (rep_name, size), row in rows.items():
        lines.append(fmt_row(f"{rep_name}@{size}", **row))
    lines.append("-- serving level (correct predictions/s) --")
    for name, tput in serving.items():
        lines.append(fmt_row(name, ctput=tput))
    record("Figure 14: query splitting", lines)

    # Paper: even splitting of *tables* competes with the switching
    # baseline, but splitting compute-heavy representations is detrimental.
    assert serving["split-table"] > 0.5 * serving["table-switch"]
    assert serving["split-dhe"] < serving["split-table"]

    for size in QUERY_SIZES:
        table = rows[("table", size)]
        # Tables: even split beats CPU-only execution.
        assert table["even_split_ms"] < table["cpu_only_ms"]
        for rep_name in ("dhe", "hybrid"):
            row = rows[(rep_name, size)]
            # Compute stacks: even split is worse than GPU-only (the CPU
            # half becomes the critical path) ...
            assert row["even_split_ms"] > row["gpu_only_ms"]
            # ... but a tuned ratio recovers (nearly all samples on GPU).
            assert row["tuned_split_ms"] <= row["gpu_only_ms"] * 1.001
            assert row["tuned_ratio_cpu"] < 0.25
