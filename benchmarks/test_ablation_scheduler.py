"""Ablation: MP-Rec's scheduler design choices (DESIGN.md).

1. Preference order (hybrid > DHE > table) vs. a greedy-latency scheduler:
   greedy matches raw throughput but forfeits the accuracy gains.
2. MP-Cache on vs. off: without the cache, compute paths are rarely
   feasible, so served accuracy falls (Insight 4).
3. The control-plane Pareto frontier: on diurnal + flash-crowd load the
   unified autopilot must dominate — no more SLA violations at no more
   fleet cost (energy + node-seconds) — every single-mechanism baseline
   AND the stacked-but-independent PR-3/4/5 controllers.
"""

import numpy as np
from conftest import RAW_DIR, fmt_row

from repro.analysis.sharding import greedy_shard
from repro.core.online import (
    GreedyLatencyScheduler,
    MultiPathScheduler,
    StaticScheduler,
)
from repro.core.paths import ExecutionPath, PathProfile
from repro.core.switching import SwitchController
from repro.data.queries import Query, QuerySet, arrival_times
from repro.experiments.setup import (
    build_plan,
    default_cache_effect,
    run_serving_comparison,
)
from repro.core.representations import RepresentationConfig, paper_configs
from repro.hardware.catalog import GPU_V100
from repro.hardware.topology import ETHERNET_25G
from repro.models.configs import KAGGLE
from repro.serving.autoscale import AutoscaleController
from repro.serving.cluster import ClusterSimulator
from repro.serving.controlplane import ControlPlane, format_decision
from repro.serving.simulator import ServingSimulator
from repro.serving.workload import ServingScenario


def run_ablation():
    scenario = ServingScenario.paper_default(n_queries=1500, seed=91)
    plan = build_plan(KAGGLE)
    effect = default_cache_effect(KAGGLE, paper_configs(KAGGLE)["dhe"])
    cached_paths = plan.build_paths(
        encoder_hit_rate=effect.encoder_hit_rate,
        decoder_speedup=effect.decoder_speedup,
    )
    uncached_paths = plan.build_paths()

    runs = {
        "mp-rec (cache)": MultiPathScheduler(cached_paths),
        "mp-rec (no cache)": MultiPathScheduler(uncached_paths),
        "greedy-latency (cache)": GreedyLatencyScheduler(cached_paths),
    }
    return {
        name: ServingSimulator(sched, track_energy=False).run(scenario)
        for name, sched in runs.items()
    }


def test_ablation_scheduler(benchmark, record):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    lines = []
    for name, res in results.items():
        lines.append(
            fmt_row(
                name,
                ctput=res.correct_prediction_throughput,
                accuracy=res.mean_accuracy,
                viol_pct=res.violation_rate * 100,
            )
        )
    record("Ablation: scheduler preference order and MP-Cache", lines)

    with_cache = results["mp-rec (cache)"]
    no_cache = results["mp-rec (no cache)"]
    greedy = results["greedy-latency (cache)"]

    # Accuracy-preference beats greedy-latency on served accuracy.
    assert with_cache.mean_accuracy > greedy.mean_accuracy
    # MP-Cache lifts accuracy or correct-prediction throughput.
    assert (
        with_cache.mean_accuracy > no_cache.mean_accuracy
        or with_cache.correct_prediction_throughput
        > no_cache.correct_prediction_throughput
    )


# ---- 3. the control-plane Pareto frontier --------------------------------
#
# One scenario, five fleets.  Each baseline is missing a lever the
# workload punishes: the static switch-only fleet pays the ceiling's
# energy all run; autoscale-only and cache-only keep the slow ACCURATE
# representation and drown; the stacked controllers have every lever but
# arbitrate nothing — four thresholds firing independently behind an
# exclusion window.  The autopilot prices all four action classes
# against one cost function and must land on the frontier: no more
# violations than any leg, at no more cost than any leg.

PARETO_SLA_S = 0.015
PARETO_MIN, PARETO_MAX = 2, 6
PARETO_SIZES = np.unique(np.geomspace(1, 4096, 33).astype(int)).astype(float)
PARETO_TABLES = [1_000_000, 800_000, 700_000, 600_000, 500_000, 400_000]


def pareto_paths():
    accurate = ExecutionPath(
        rep=RepresentationConfig("table", 16),
        device=GPU_V100,
        accuracy=79.5,
        profile=PathProfile(
            sizes=PARETO_SIZES, latencies=0.0003 + 0.0012 * PARETO_SIZES
        ),
        label="ACCURATE",
    )
    fast = ExecutionPath(
        rep=RepresentationConfig("dhe", 16, k=4, dnn=64, h=1),
        device=GPU_V100,
        accuracy=78.0,
        profile=PathProfile(
            sizes=PARETO_SIZES, latencies=0.0003 + 0.0004 * PARETO_SIZES
        ),
        label="FAST",
    )
    return accurate, fast


def pareto_scenario():
    """A compressed diurnal cycle with a flash crowd on the rising edge."""
    rng = np.random.default_rng(7)
    base = arrival_times(
        36_000, 3_000.0, rng=rng, process="diurnal",
        period_s=12.0, amplitude=0.75,
    )
    spike = 2.5 + arrival_times(18_000, 6_000.0, rng=rng, process="poisson")
    merged = np.sort(np.concatenate([base, spike]))
    queries = [
        Query(index=i, size=1, arrival_s=float(t))
        for i, t in enumerate(merged)
    ]
    return ServingScenario(queries=QuerySet(queries=queries), sla_s=PARETO_SLA_S)


def pareto_switcher():
    accurate, fast = pareto_paths()
    return SwitchController(
        candidates={GPU_V100.name: [accurate, fast]},
        load_s=0.002, teardown_s=0.0005, cooldown_s=0.25,
    )


def pareto_fleet(switcher=None, autoscale=None, plane=None, cache=False,
                 router="least-loaded"):
    accurate, _ = pareto_paths()
    plan = greedy_shard(PARETO_TABLES, 16, PARETO_MAX)
    kwargs = dict(cache_bytes=4 << 20) if cache else {}
    return ClusterSimulator(
        StaticScheduler([accurate]), plan, router=router, replication=2,
        max_batch_size=16, batch_timeout_s=0.008, link=ETHERNET_25G,
        switch_controller=switcher, autoscale=autoscale, controlplane=plane,
        **kwargs,
    )


def pareto_autoscaler():
    return AutoscaleController(
        min_nodes=PARETO_MIN, max_nodes=PARETO_MAX,
        hi_pressure=0.75, lo_pressure=0.1, util_hi=0.9,
        patience=4, patience_down=48, cooldown_s=0.25,
        initial_nodes=PARETO_MAX,
    )


def run_pareto():
    scenario = pareto_scenario()
    legs = {
        "switch-only @6": pareto_fleet(switcher=pareto_switcher()),
        "autoscale-only 2..6": pareto_fleet(autoscale=pareto_autoscaler()),
        "cache-only @6": pareto_fleet(cache=True, router="cache-affinity"),
        "stacked 2..6": pareto_fleet(
            switcher=pareto_switcher(), autoscale=pareto_autoscaler(),
            cache=True, router="cache-affinity",
        ),
        "autopilot 2..6": pareto_fleet(
            switcher=pareto_switcher(), cache=True,
            plane=ControlPlane(
                min_nodes=PARETO_MIN, max_nodes=PARETO_MAX,
                hi_pressure=0.75, lo_pressure=0.1, initial_nodes=5,
                patience=2, patience_down=48, cooldown_s=0.05,
            ),
        ),
    }
    return {name: cluster.run(scenario) for name, cluster in legs.items()}


def write_pareto_traces(results):
    """Per-leg control-timeline artifacts (CI uploads results/ whole)."""
    RAW_DIR.mkdir(parents=True, exist_ok=True)
    for name, res in results.items():
        slug = name.replace(" ", "_").replace(".", "").replace("@", "at")
        lines = [f"== control timeline: {name} =="]
        timeline = sorted(
            [(e.time_s, f"switch node={e.node_id} {e.from_label}->"
                        f"{e.to_label} ready={e.ready_s:.6f}")
             for e in res.switch_events]
            + [(e.time_s, f"scale:{e.kind} node={e.node_id} "
                          f"n={e.n_members} ready={e.ready_s:.6f}")
               for e in res.scale_events]
        )
        lines += [f"t={t:.6f} {desc}" for t, desc in timeline]
        lines += [format_decision(d) for d in res.control_decisions]
        (RAW_DIR / f"pareto_{slug}.trace.txt").write_text(
            "\n".join(lines) + "\n"
        )


def leg_cost(res):
    """The fleet cost axis: energy (served + idle) plus node-seconds."""
    return res.fleet_energy_j + res.node_seconds


def leg_violations(res):
    return res.result.violation_rate


def test_pareto_unified_control_plane(benchmark, record):
    results = benchmark.pedantic(run_pareto, rounds=1, iterations=1)
    write_pareto_traces(results)

    autopilot = results["autopilot 2..6"]
    lines = [
        fmt_row(
            name,
            viol_pct=leg_violations(res) * 100,
            node_s=res.node_seconds,
            energy_j=res.fleet_energy_j,
            cost=leg_cost(res),
            decisions=len(res.control_decisions),
        )
        for name, res in results.items()
    ]
    lines += ["-- autopilot decision trace (every candidate priced) --"]
    lines += [f"  {format_decision(d)}" for d in autopilot.control_decisions]

    checks = []
    for name, res in results.items():
        if name == "autopilot 2..6":
            continue
        checks.append((
            f"violations: autopilot <= {name}",
            leg_violations(autopilot) <= leg_violations(res),
        ))
        checks.append((
            f"cost: autopilot <= {name}",
            leg_cost(autopilot) <= leg_cost(res),
        ))
    record(
        "Pareto frontier: unified control plane vs every baseline",
        lines, checks=checks,
    )

    # The frontier pin: the unified plane dominates every leg on BOTH
    # axes (ties allowed) — fewer-or-equal violations at lower-or-equal
    # fleet cost.
    for label, ok in checks:
        assert ok, label
    # The trace must show real arbitration: decisions were committed and
    # each carries the full candidate table, rejected actions priced.
    assert autopilot.control_decisions
    for decision in autopilot.control_decisions:
        assert len(decision.candidates) >= 2
        assert any(not c.feasible for c in decision.candidates) or all(
            c.cost_j is not None for c in decision.candidates
        )
