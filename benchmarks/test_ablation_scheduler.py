"""Ablation: MP-Rec's scheduler design choices (DESIGN.md).

1. Preference order (hybrid > DHE > table) vs. a greedy-latency scheduler:
   greedy matches raw throughput but forfeits the accuracy gains.
2. MP-Cache on vs. off: without the cache, compute paths are rarely
   feasible, so served accuracy falls (Insight 4).
"""

from conftest import fmt_row

from repro.core.online import GreedyLatencyScheduler, MultiPathScheduler
from repro.experiments.setup import (
    build_plan,
    default_cache_effect,
    run_serving_comparison,
)
from repro.core.representations import paper_configs
from repro.models.configs import KAGGLE
from repro.serving.simulator import ServingSimulator
from repro.serving.workload import ServingScenario


def run_ablation():
    scenario = ServingScenario.paper_default(n_queries=1500, seed=91)
    plan = build_plan(KAGGLE)
    effect = default_cache_effect(KAGGLE, paper_configs(KAGGLE)["dhe"])
    cached_paths = plan.build_paths(
        encoder_hit_rate=effect.encoder_hit_rate,
        decoder_speedup=effect.decoder_speedup,
    )
    uncached_paths = plan.build_paths()

    runs = {
        "mp-rec (cache)": MultiPathScheduler(cached_paths),
        "mp-rec (no cache)": MultiPathScheduler(uncached_paths),
        "greedy-latency (cache)": GreedyLatencyScheduler(cached_paths),
    }
    return {
        name: ServingSimulator(sched, track_energy=False).run(scenario)
        for name, sched in runs.items()
    }


def test_ablation_scheduler(benchmark, record):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    lines = []
    for name, res in results.items():
        lines.append(
            fmt_row(
                name,
                ctput=res.correct_prediction_throughput,
                accuracy=res.mean_accuracy,
                viol_pct=res.violation_rate * 100,
            )
        )
    record("Ablation: scheduler preference order and MP-Cache", lines)

    with_cache = results["mp-rec (cache)"]
    no_cache = results["mp-rec (no cache)"]
    greedy = results["greedy-latency (cache)"]

    # Accuracy-preference beats greedy-latency on served accuracy.
    assert with_cache.mean_accuracy > greedy.mean_accuracy
    # MP-Cache lifts accuracy or correct-prediction throughput.
    assert (
        with_cache.mean_accuracy > no_cache.mean_accuracy
        or with_cache.correct_prediction_throughput
        > no_cache.correct_prediction_throughput
    )
