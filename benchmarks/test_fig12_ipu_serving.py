"""Figure 12: IPU query serving (HW-3 case study).

Paper: if the model fits on-chip and IPUs handle dynamic query sizes,
DHE-on-IPU and MP-Rec-with-IPU see the largest potential speedups
(MP-Rec + IPU: up to 34.24x on the offered load); table/hybrid
configurations gain less because pod-scale sharding forfeits data
parallelism (Insight 6).
"""

from conftest import fmt_row

from repro.core.online import MultiPathScheduler, StaticScheduler
from repro.core.profiler import make_path
from repro.core.representations import paper_configs
from repro.experiments.setup import build_plan, default_cache_effect, hw1_devices
from repro.hardware.catalog import CPU_BROADWELL, IPU_POD16
from repro.hardware.topology import plan_ipu_placement
from repro.models.configs import KAGGLE
from repro.quality.estimator import QualityEstimator
from repro.serving.simulator import ServingSimulator
from repro.serving.workload import ServingScenario

# Offered load high enough to expose pod-scale capacity (the paper's
# "potential speedup" assumes the IPU absorbs arbitrary query shapes).
QPS = 8000.0
N_QUERIES = 4000


def run_ipu_serving():
    estimator = QualityEstimator("kaggle")
    configs = paper_configs(KAGGLE)
    scenario = ServingScenario.paper_default(
        n_queries=N_QUERIES, qps=QPS, seed=41
    )

    def ipu_path(rep_name):
        rep = configs[rep_name]
        placement = plan_ipu_placement(rep.embedding_bytes(KAGGLE), IPU_POD16)
        path = make_path(
            rep, KAGGLE, placement.device, estimator.accuracy(rep),
            label=f"{rep_name.upper()}(IPU16)",
        )
        return path, placement.strategy

    results, strategies = {}, {}
    base_path = make_path(
        configs["table"], KAGGLE, CPU_BROADWELL,
        estimator.accuracy(configs["table"]), label="TBL(CPU)",
    )
    results["tbl-cpu"] = ServingSimulator(
        StaticScheduler([base_path]), track_energy=False
    ).run(scenario)

    for rep_name in ("table", "dhe", "hybrid"):
        path, strategy = ipu_path(rep_name)
        strategies[rep_name] = strategy
        results[f"{rep_name}-ipu16"] = ServingSimulator(
            StaticScheduler([path]), track_energy=False
        ).run(scenario)

    # MP-Rec with the IPU pod integrated alongside HW-1's CPU + GPU.
    plan = build_plan(KAGGLE, hw1_devices())
    effect = default_cache_effect(KAGGLE, configs["dhe"])
    paths = plan.build_paths(
        encoder_hit_rate=effect.encoder_hit_rate,
        decoder_speedup=effect.decoder_speedup,
    )
    dhe_ipu, _ = ipu_path("dhe")
    results["mp-rec+ipu"] = ServingSimulator(
        MultiPathScheduler(paths + [dhe_ipu]), track_energy=False
    ).run(scenario)
    return results, strategies


def test_fig12_ipu_serving(benchmark, record):
    results, strategies = benchmark.pedantic(run_ipu_serving, rounds=1, iterations=1)
    base = results["tbl-cpu"].correct_prediction_throughput

    lines = [f"placements: {strategies} (paper Fig 6)"]
    for name, res in results.items():
        lines.append(
            fmt_row(
                name,
                speedup=res.correct_prediction_throughput / base,
                accuracy=res.mean_accuracy,
            )
        )
    lines.append("paper anchors: IPU-16 DHE 16.65x; MP-Rec + IPU up to 34.24x")
    record("Figure 12: IPU query serving", lines)

    speedup = lambda name: results[name].correct_prediction_throughput / base
    # DHE replicates 16x (fits on-chip); table pipelines; both beat CPU.
    assert strategies["dhe"] == "data"
    assert strategies["table"] == "pipeline"
    assert speedup("dhe-ipu16") > speedup("table-ipu16")
    assert speedup("dhe-ipu16") > speedup("hybrid-ipu16")
    assert 8 < speedup("dhe-ipu16") < 30  # paper 16.65
    # MP-Rec with the IPU integrated unlocks the largest speedup.
    assert speedup("mp-rec+ipu") > speedup("dhe-ipu16")
    assert speedup("mp-rec+ipu") > 10  # paper potential: 34.24
