"""Shared helpers for the reproduction benchmarks.

Every bench regenerates one of the paper's tables or figures, prints the
rows/series, persists them under ``benchmarks/results/``, and asserts the
paper's qualitative shape. Run with::

    pytest benchmarks/ --benchmark-only

Two kinds of output line, two destinations:

- **Deterministic** lines (model-derived numbers: violation rates,
  byte counts, simulated seconds) go to the tracked
  ``benchmarks/results/<test>.txt`` — they only change when the code's
  behavior changes, so their diffs are reviewable signal.
- **Volatile** lines (wall-clock timings, measured speedups) go to the
  untracked ``benchmarks/results/raw/<test>.txt`` — committing them was
  pure timing-noise churn (every rerun rewrote the same files with new
  jitter).  The tracked file instead records each pinned threshold as a
  deterministic ``PASS``/``FAIL`` line via ``checks``; CI uploads the
  whole ``results/`` tree (raw included) as a workflow artifact.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RAW_DIR = RESULTS_DIR / "raw"


@pytest.fixture
def record(request):
    """Print reproduction rows; persist them under benchmarks/results/.

    ``lines`` must be deterministic (tracked).  Wall-clock measurements
    belong in ``volatile`` (written only to the untracked ``raw/`` tree);
    each pinned threshold belongs in ``checks`` as ``(label, ok)`` so the
    tracked file still documents what was enforced.
    """

    def _record(
        title: str,
        lines: list[str],
        volatile: list[str] = (),
        checks: list[tuple[str, bool]] = (),
    ) -> None:
        check_lines = [
            f"{'PASS' if ok else 'FAIL'}  {label}" for label, ok in checks
        ]
        tracked = "\n".join([f"== {title} ==", *lines, *check_lines, ""])
        full = "\n".join(
            [f"== {title} ==", *lines, *volatile, *check_lines, ""]
        )
        print("\n" + full)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{request.node.name}.txt").write_text(tracked)
        if volatile:
            RAW_DIR.mkdir(exist_ok=True)
            (RAW_DIR / f"{request.node.name}.txt").write_text(full)

    return _record


def fmt_row(label: str, **values) -> str:
    cells = "  ".join(
        f"{key}={value:.4g}" if isinstance(value, float) else f"{key}={value}"
        for key, value in values.items()
    )
    return f"{label:<28s} {cells}"
