"""Shared helpers for the reproduction benchmarks.

Every bench regenerates one of the paper's tables or figures, prints the
rows/series, persists them under ``benchmarks/results/``, and asserts the
paper's qualitative shape. Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record(request):
    """Print reproduction rows and persist them to benchmarks/results/."""

    def _record(title: str, lines: list[str]) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = "\n".join([f"== {title} ==", *lines, ""])
        print("\n" + text)
        out_file = RESULTS_DIR / f"{request.node.name}.txt"
        out_file.write_text(text)

    return _record


def fmt_row(label: str, **values) -> str:
    cells = "  ".join(
        f"{key}={value:.4g}" if isinstance(value, float) else f"{key}={value}"
        for key, value in values.items()
    )
    return f"{label:<28s} {cells}"
