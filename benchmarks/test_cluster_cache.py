"""Cluster MP-Cache tier under Zipf-skewed diurnal traffic (fixed fleet).

The paper's MP-Cache makes multi-path serving affordable on one node;
this bench puts it where production traffic lives: a fixed 4-node fleet,
replication 1, 25 GbE fabric, and a user-skewed request stream (Zipf
users hashed to shard groups — the top group draws ~39% of traffic)
under a compressed diurnal cycle whose peak needs ~3.8 nodes of
capacity.

Four contenders at the same fleet:

- ``locality`` — PR-2's shard-locality router.  It pins every query to
  its group's owner, so the hot group's single owner drowns at peak
  while three nodes idle — and its cache sits provably idle (owners
  serve hot rows shard-locally; there is nothing to cache).
- ``least-loaded`` (no cache) — spreads perfectly but pays the full
  cold hot-row fetch over the fabric on every non-owner batch.
- ``least-loaded`` (cached) — the tier soaks up the repeat traffic.
- ``cache-affinity`` (cached) — the cache-aware cost router: owners at
  zero penalty, cache-warm non-owners at their miss-rate penalty.

Pinned claims (the perf-smoke gate):

- cache-affinity beats locality at the fixed fleet: <= half the
  SLA-violation rate, >= 1.25x the SLA-compliant correct-prediction
  throughput (the Figure-13 serving metric), raw throughput no worse
  than 1%.
- The cache is the mechanism, not a bystander: >= 60% hit rate under
  the affinity router, and fewer fill bytes than cache-oblivious
  least-loaded routing (affinity prefers nodes that will miss less).
- Every byte and every row accounted exactly: ``hits + misses ==
  lookups``, ``fill_bytes == misses x row_bytes``, the locality run's
  cache serves zero lookups, and every query appears exactly once.
"""

import numpy as np
from conftest import fmt_row

from repro.analysis.sharding import greedy_shard
from repro.core.online import StaticScheduler
from repro.core.paths import ExecutionPath, PathProfile
from repro.core.representations import RepresentationConfig
from repro.data.queries import Query, QuerySet, arrival_times
from repro.data.zipf import ZipfSampler
from repro.hardware.catalog import GPU_V100
from repro.hardware.topology import ETHERNET_25G
from repro.serving.cluster import ClusterSimulator, ShardMap
from repro.serving.workload import ServingScenario

SLA_S = 0.015
MEAN_QPS = 10_000.0
AMPLITUDE = 0.7  # trough ~3k QPS, peak ~17k (fleet capacity ~18k)
PERIOD_S = 5.0
N_QUERIES = int(MEAN_QPS * 2 * PERIOD_S)  # two diurnal cycles
QUERY_SIZE = 64
N_NODES = 4
REPLICATION = 1
LINK = ETHERNET_25G
MAX_BATCH = 16
BATCH_TIMEOUT_S = 0.004
CACHE_MB = 16
N_USERS = 20_000
USER_ALPHA = 1.25  # heavy-user skew: the top shard group draws ~39%
DIM = 32
CARDINALITIES = [2_000_000, 1_500_000, 1_200_000, 1_000_000, 800_000, 500_000]


def node_path():
    """One node's serving path: ~4.6k QPS of capacity at full batches."""
    sizes = np.unique(np.geomspace(1, 4096, 33).astype(int)).astype(float)
    return ExecutionPath(
        rep=RepresentationConfig("table", DIM),
        device=GPU_V100,
        accuracy=79.0,
        profile=PathProfile(sizes=sizes, latencies=0.0004 + 3e-6 * sizes),
        label="TABLE",
    )


def scenario():
    """Two diurnal cycles of Zipf-skewed user traffic."""
    rng = np.random.default_rng(11)
    arrivals = arrival_times(
        N_QUERIES, MEAN_QPS, rng=rng, process="diurnal",
        period_s=PERIOD_S, amplitude=AMPLITUDE,
    )
    users = ZipfSampler(N_USERS, alpha=USER_ALPHA, seed=3).sample(N_QUERIES)
    queries = [
        Query(index=i, size=QUERY_SIZE, arrival_s=float(t), user=int(u))
        for i, (t, u) in enumerate(zip(arrivals, users))
    ]
    return ServingScenario(queries=QuerySet(queries=queries), sla_s=SLA_S)


def make_cluster(plan, router, cache_mb):
    return ClusterSimulator(
        StaticScheduler([node_path()]), plan, router=router,
        replication=REPLICATION, link=LINK, max_batch_size=MAX_BATCH,
        batch_timeout_s=BATCH_TIMEOUT_S, track_energy=False,
        cache_bytes=cache_mb * 2**20,
    )


def run_comparison():
    scn = scenario()
    plan = greedy_shard(CARDINALITIES, DIM, N_NODES)
    runs = {
        "locality": make_cluster(plan, "locality", CACHE_MB).run(scn),
        "least-loaded": make_cluster(plan, "least-loaded", 0).run(scn),
        "least-loaded+cache": make_cluster(
            plan, "least-loaded", CACHE_MB
        ).run(scn),
        "cache-affinity": make_cluster(
            plan, "cache-affinity", CACHE_MB
        ).run(scn),
    }
    return scn, plan, runs


def test_cache_affinity_beats_locality_on_skew(benchmark, record):
    scn, plan, runs = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    shard_map = ShardMap.from_plan(plan, REPLICATION)
    group_share = np.bincount(
        [shard_map.group_of(q) for q in scn.queries], minlength=N_NODES
    ) / len(scn.queries)

    def row(label, cluster):
        res, c = cluster.result, cluster.cache
        return fmt_row(
            label,
            violations=res.violation_rate,
            compliant_tput=res.compliant_correct_throughput,
            p99_ms=res.p99_latency_s * 1e3,
            hit_rate=c.hit_rate if c else 0.0,
            fill_mb=c.fill_bytes / 2**20 if c else 0.0,
        )

    record(
        f"Cluster cache tier: {len(scn.queries)} Zipf-skewed queries, "
        f"{N_NODES} nodes, {CACHE_MB} MB/node",
        [
            fmt_row(
                "shard-group traffic share",
                **{f"g{g}": float(s) for g, s in enumerate(group_share)},
            ),
            *(row(label, cluster) for label, cluster in runs.items()),
        ],
    )

    locality = runs["locality"]
    least = runs["least-loaded"]
    least_cached = runs["least-loaded+cache"]
    affinity = runs["cache-affinity"]

    # The scenario is genuinely skewed: the hot group draws well above
    # its uniform share of the traffic.
    assert group_share.max() >= 1.5 / N_NODES

    # Headline: cache-affinity beats locality at the same fixed fleet.
    assert affinity.result.violation_rate <= (
        0.5 * locality.result.violation_rate
    )
    assert affinity.result.compliant_correct_throughput >= (
        1.25 * locality.result.compliant_correct_throughput
    )
    assert affinity.result.raw_throughput >= (
        0.99 * locality.result.raw_throughput
    )

    # The cache is the mechanism: most non-owner hot gathers hit, and
    # affinity routing fills less than cache-oblivious least-loaded
    # (it prefers the nodes that will miss less).
    assert affinity.cache.hit_rate >= 0.6
    assert affinity.cache.fill_bytes <= 0.95 * least_cached.cache.fill_bytes
    # Within one router, the tier shortens the tail: cached least-loaded
    # beats its uncached self at p99.
    assert least_cached.result.p99_latency_s < least.result.p99_latency_s

    # Exact accounting, every fill byte explained.
    row_bytes = DIM * 4
    for label in ("locality", "least-loaded+cache", "cache-affinity"):
        c = runs[label].cache
        assert c.hits + c.misses == c.lookups
        assert c.fill_bytes == c.misses * row_bytes
        assert c.hit_bytes == c.hits * row_bytes
        assert c.warm_bytes == 0  # fixed fleet, LRU: no provisioning fills
    # Owner-pinned locality routing never touches the tier — the reason
    # a cache-aware router exists at all.
    assert runs["locality"].cache.lookups == 0

    # Zero loss anywhere: every query accounted exactly once, per run.
    for cluster in runs.values():
        assert sorted(r.index for r in cluster.result.records) == list(
            range(len(scn.queries))
        )
