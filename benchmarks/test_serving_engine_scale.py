"""Event-engine scale check: batching throughput + reference equivalence.

The event-driven engine must (a) reproduce the seed per-query loop's
records exactly when batching is disabled, and (b) with micro-batching
enabled, simulate a 100k-query production-rate scenario at >= 5x the
reference loop's queries per second of simulator wall-clock (routing once
per coalesced batch instead of once per query is where the time goes).
"""

import time

from conftest import fmt_row

from repro.experiments.setup import build_schedulers
from repro.models.configs import KAGGLE
from repro.serving.simulator import ReferenceSimulator, ServingSimulator
from repro.serving.workload import ServingScenario

N_QUERIES = 100_000
QPS = 20_000.0
SPEEDUP_FLOOR = 5.0


def run_scale():
    scenario = ServingScenario.paper_default(n_queries=N_QUERIES, qps=QPS, seed=7)
    scheduler = build_schedulers(KAGGLE)["mp-rec"]

    t0 = time.perf_counter()
    ReferenceSimulator(scheduler, track_energy=False).run(scenario)
    t_reference = time.perf_counter() - t0

    batched_sim = ServingSimulator(
        scheduler, track_energy=False,
        max_batch_size=128, batch_timeout_s=0.004,
    )
    t0 = time.perf_counter()
    batched = batched_sim.run(scenario)
    t_batched = time.perf_counter() - t0

    t0 = time.perf_counter()
    streamed = batched_sim.run_streaming(scenario)
    t_streaming = time.perf_counter() - t0

    return t_reference, t_batched, t_streaming, batched, streamed


def test_engine_equivalence_paper_default(record):
    """Batching disabled: the event engine is record-for-record identical
    to the seed loop on the paper's default scenario, shedding included."""
    scenario = ServingScenario.paper_default(n_queries=2000, seed=11)
    scheduler = build_schedulers(KAGGLE)["mp-rec"]
    for shed_policy in ("none", "drop-late"):
        reference = ReferenceSimulator(scheduler, shed_policy=shed_policy)
        engine = ServingSimulator(scheduler, shed_policy=shed_policy)
        assert engine.run(scenario).records == reference.run(scenario).records
    record(
        "Engine equivalence (paper default, 2000 queries)",
        ["event engine == reference loop, policies: none, drop-late"],
    )


def test_engine_scale_speedup(benchmark, record):
    t_reference, t_batched, t_streaming, batched, streamed = benchmark.pedantic(
        run_scale, rounds=1, iterations=1
    )
    speedup = t_reference / t_batched
    counters_match = (
        streamed.raw_throughput == batched.raw_throughput
        and streamed.violation_rate == batched.violation_rate
    )
    record(
        f"Engine scale: {N_QUERIES} queries @ {QPS:.0f} QPS",
        [],
        volatile=[
            fmt_row("reference", wall_s=t_reference,
                    qps=N_QUERIES / t_reference),
            fmt_row("batched", wall_s=t_batched, qps=N_QUERIES / t_batched,
                    speedup=speedup),
            fmt_row("streaming", wall_s=t_streaming,
                    qps=N_QUERIES / t_streaming,
                    speedup=t_reference / t_streaming),
        ],
        checks=[
            (f"batched engine >= {SPEEDUP_FLOOR:.0f}x reference wall-clock "
             "(pinned floor)", speedup >= SPEEDUP_FLOOR),
            ("streaming counters == record-backed counters", counters_match),
        ],
    )

    assert speedup >= SPEEDUP_FLOOR
    # Streaming mode agrees with the record-backed run on exact counters.
    assert counters_match
