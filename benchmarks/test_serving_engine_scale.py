"""Engine scale checks: kernel batching, the array fast path, a full day.

Three pinned perf floors over one 100k-query production-rate scenario,
plus the headline day-scale run:

- the event kernel with micro-batching simulates >= 5x the reference
  loop's queries per second of wall-clock (routing once per coalesced
  batch instead of once per query);
- the array fast path (:mod:`repro.serving.fastpath`) in streaming mode
  clears >= 50x the reference loop while reproducing the kernel's
  records bit for bit;
- a 10M-query diurnal *production day* (:func:`serve_arrays` over a
  column stream, no Query objects anywhere) finishes inside the
  perf-smoke budget — pinned as >= 50x the reference loop's extrapolated
  wall-clock at the same query count.

Equivalence legs are exact-equality asserts; speed legs are pinned
ratios (both sides measured on the same machine in the same process, so
the ratio is stable where absolute wall-clock is not).
"""

import gc
import time

import pytest

from conftest import fmt_row

from repro.data.queries import generate_query_arrays
from repro.experiments.setup import build_schedulers
from repro.models.configs import KAGGLE
from repro.serving.fastpath import serve_arrays
from repro.serving.simulator import ReferenceSimulator, ServingSimulator
from repro.serving.workload import ServingScenario

N_QUERIES = 100_000
QPS = 20_000.0
KERNEL_SPEEDUP_FLOOR = 5.0
FASTPATH_SPEEDUP_FLOOR = 50.0

# The production day: 10M queries through a diurnal arrival process whose
# peaks brush the node's capacity (deadline-aware shedding keeps the tail
# honest instead of letting the queue diverge).
DAY_QUERIES = 10_000_000
DAY_QPS = 24_000.0
DAY_PERIOD_S = 333.0
DAY_AMPLITUDE = 0.6
DAY_SPEEDUP_FLOOR = 50.0

BATCH_KWARGS = dict(max_batch_size=128, batch_timeout_s=0.004)


@pytest.fixture(scope="module")
def scale_scenario():
    return ServingScenario.paper_default(n_queries=N_QUERIES, qps=QPS, seed=7)


@pytest.fixture(scope="module")
def scheduler():
    return build_schedulers(KAGGLE)["mp-rec"]


@pytest.fixture(scope="module")
def t_reference(scale_scenario, scheduler):
    """Reference-loop wall-clock on the 100k scenario, measured once and
    shared by every speedup pin in this module."""
    t0 = time.perf_counter()
    ReferenceSimulator(scheduler, track_energy=False).run(scale_scenario)
    return time.perf_counter() - t0


def test_engine_equivalence_paper_default(record):
    """Batching disabled: the event engine is record-for-record identical
    to the seed loop on the paper's default scenario, shedding included."""
    scenario = ServingScenario.paper_default(n_queries=2000, seed=11)
    scheduler = build_schedulers(KAGGLE)["mp-rec"]
    for shed_policy in ("none", "drop-late"):
        reference = ReferenceSimulator(scheduler, shed_policy=shed_policy)
        engine = ServingSimulator(scheduler, shed_policy=shed_policy)
        assert engine.run(scenario).records == reference.run(scenario).records
    record(
        "Engine equivalence (paper default, 2000 queries)",
        ["event engine == reference loop, policies: none, drop-late"],
    )


def test_engine_scale_speedup(
    benchmark, record, scale_scenario, scheduler, t_reference
):
    def run_scale():
        sim = ServingSimulator(scheduler, track_energy=False, **BATCH_KWARGS)
        t0 = time.perf_counter()
        batched = sim.run(scale_scenario)
        t_batched = time.perf_counter() - t0
        t0 = time.perf_counter()
        streamed = sim.run_streaming(scale_scenario)
        t_streaming = time.perf_counter() - t0
        return t_batched, t_streaming, batched, streamed

    t_batched, t_streaming, batched, streamed = benchmark.pedantic(
        run_scale, rounds=1, iterations=1
    )
    speedup = t_reference / t_batched
    counters_match = (
        streamed.raw_throughput == batched.raw_throughput
        and streamed.violation_rate == batched.violation_rate
    )
    record(
        f"Engine scale: {N_QUERIES} queries @ {QPS:.0f} QPS",
        [],
        volatile=[
            fmt_row("reference", wall_s=t_reference,
                    qps=N_QUERIES / t_reference),
            fmt_row("batched", wall_s=t_batched, qps=N_QUERIES / t_batched,
                    speedup=speedup),
            fmt_row("streaming", wall_s=t_streaming,
                    qps=N_QUERIES / t_streaming,
                    speedup=t_reference / t_streaming),
        ],
        checks=[
            (f"batched engine >= {KERNEL_SPEEDUP_FLOOR:.0f}x reference "
             "wall-clock (pinned floor)", speedup >= KERNEL_SPEEDUP_FLOOR),
            ("streaming counters == record-backed counters", counters_match),
        ],
    )

    assert speedup >= KERNEL_SPEEDUP_FLOOR
    # Streaming mode agrees with the record-backed run on exact counters.
    assert counters_match


def test_fastpath_scale_speedup(
    benchmark, record, scale_scenario, scheduler, t_reference
):
    """The array fast path at engine scale: records bit-equal to the
    kernel, streaming wall-clock pinned at >= 50x the reference loop."""
    kernel = ServingSimulator(
        scheduler, track_energy=False, **BATCH_KWARGS
    ).run(scale_scenario)
    fast_sim = ServingSimulator(
        scheduler, track_energy=False, engine="fast", **BATCH_KWARGS
    )

    def run_fast():
        t0 = time.perf_counter()
        records = fast_sim.run(scale_scenario)
        t_records = time.perf_counter() - t0
        t0 = time.perf_counter()
        streamed = fast_sim.run_streaming(scale_scenario)
        t_streaming = time.perf_counter() - t0
        return t_records, t_streaming, records, streamed

    t_records, t_streaming, records, streamed = benchmark.pedantic(
        run_fast, rounds=1, iterations=1
    )
    speedup = t_reference / t_streaming
    parity = records.records == kernel.records
    counters_match = (
        streamed.raw_throughput == records.raw_throughput
        and streamed.violation_rate == records.violation_rate
        and streamed.drop_rate == records.drop_rate
    )
    record(
        f"Fast path scale: {N_QUERIES} queries @ {QPS:.0f} QPS",
        [],
        volatile=[
            fmt_row("reference", wall_s=t_reference,
                    qps=N_QUERIES / t_reference),
            fmt_row("fast records", wall_s=t_records,
                    qps=N_QUERIES / t_records,
                    speedup=t_reference / t_records),
            fmt_row("fast streaming", wall_s=t_streaming,
                    qps=N_QUERIES / t_streaming, speedup=speedup),
        ],
        checks=[
            ("fast path records == event kernel records (bit-exact)",
             parity),
            ("fast streaming counters == fast record-backed counters",
             counters_match),
            (f"fast streaming >= {FASTPATH_SPEEDUP_FLOOR:.0f}x reference "
             "wall-clock (pinned floor)",
             speedup >= FASTPATH_SPEEDUP_FLOOR),
        ],
    )

    assert parity
    assert counters_match
    assert speedup >= FASTPATH_SPEEDUP_FLOOR


def test_fastpath_production_day(benchmark, record, scheduler, t_reference):
    """The headline: a 10M-query diurnal production day, column stream in,
    streaming metrics out, no per-query objects anywhere — pinned at
    >= 50x the reference loop's extrapolated wall-clock."""
    arrays = generate_query_arrays(
        DAY_QUERIES, qps=DAY_QPS, seed=7, process="diurnal",
        period_s=DAY_PERIOD_S, amplitude=DAY_AMPLITUDE,
    )

    def run_day():
        # Freeze the fixture heap (the 100k-object scenario and records
        # kept alive by the other legs): generational GC scans over those
        # unrelated objects otherwise dominate the measured loop 2-3x.
        gc.collect()
        gc.freeze()
        try:
            t0 = time.perf_counter()
            metrics = serve_arrays(
                scheduler, arrays, sla_s=0.010,
                shed_policy="deadline-aware",
                max_batch_size=256, batch_timeout_s=0.004,
                track_energy=False,
            )
            return time.perf_counter() - t0, metrics
        finally:
            gc.unfreeze()

    t_day, metrics = benchmark.pedantic(run_day, rounds=1, iterations=1)
    # The reference loop cannot hold 10M records; extrapolate its 100k
    # wall-clock linearly (charitable to the reference: its per-query
    # cost only grows with backlog).
    t_reference_day = t_reference * (DAY_QUERIES / N_QUERIES)
    speedup = t_reference_day / t_day
    record(
        f"Production day: {DAY_QUERIES:,} queries, diurnal @ "
        f"{DAY_QPS:.0f} QPS mean",
        [
            fmt_row("served", queries=metrics.n - metrics.n_dropped,
                    samples=metrics.total_samples),
            fmt_row("shed", queries=metrics.n_dropped,
                    drop_rate=metrics.drop_rate),
            fmt_row("latency", p50_ms=metrics.p50_latency_s * 1e3,
                    p99_ms=metrics.p99_latency_s * 1e3),
            fmt_row("day", makespan_s=metrics.makespan_s,
                    violation_rate=metrics.violation_rate),
        ],
        volatile=[
            fmt_row("fast path", wall_s=t_day, qps=DAY_QUERIES / t_day),
            fmt_row("reference (extrapolated)", wall_s=t_reference_day),
            fmt_row("speedup", ratio=speedup),
        ],
        checks=[
            (f"day sim >= {DAY_SPEEDUP_FLOOR:.0f}x extrapolated reference "
             "wall-clock (pinned floor)", speedup >= DAY_SPEEDUP_FLOOR),
            ("diurnal peaks shed work but the day stays healthy "
             "(0 < drop rate < 5%)", 0.0 < metrics.drop_rate < 0.05),
        ],
    )

    assert speedup >= DAY_SPEEDUP_FLOOR
    assert 0.0 < metrics.drop_rate < 0.05
    # Every query is accounted: served + shed == generated.
    assert metrics.n == DAY_QUERIES
