"""Figure 4: DHE compression ratio vs. accuracy, colored by k.

Paper shapes: accuracy rises with the number of encoder hash functions k
(red -> black as k goes 2 -> 2048); decoder width/height barely move
accuracy at fixed k; a DHE exists with >= baseline accuracy at ~334x
compression of the Terabyte model.
"""

from conftest import fmt_row

from repro.core.representations import RepresentationConfig
from repro.models.configs import TERABYTE
from repro.quality.estimator import QualityEstimator

KS = (2, 8, 32, 128, 512, 1024, 2048)
DECODERS = ((64, 1), (128, 2), (256, 2), (480, 2), (480, 4))


def sweep_dhe():
    estimator = QualityEstimator("terabyte")
    baseline = RepresentationConfig("table", TERABYTE.embedding_dim)
    baseline_bytes = baseline.total_bytes(TERABYTE)
    points = []
    for k in KS:
        for dnn, h in DECODERS:
            rep = RepresentationConfig("dhe", TERABYTE.embedding_dim, k=k, dnn=dnn, h=h)
            points.append(
                {
                    "k": k,
                    "dnn": dnn,
                    "h": h,
                    "compression": baseline_bytes / rep.total_bytes(TERABYTE),
                    "accuracy": estimator.accuracy(rep),
                }
            )
    return points, estimator.anchors.table_accuracy


def test_fig04_dhe_tuning(benchmark, record):
    points, baseline_acc = benchmark.pedantic(sweep_dhe, rounds=1, iterations=1)

    lines = [f"table baseline accuracy: {baseline_acc:.3f}%"]
    for k in KS:
        group = [p for p in points if p["k"] == k]
        accs = [p["accuracy"] for p in group]
        comps = [p["compression"] for p in group]
        lines.append(
            fmt_row(
                f"k={k}", acc_min=min(accs), acc_max=max(accs),
                compression_min=min(comps), compression_max=max(comps),
            )
        )
    record("Figure 4: DHE tuning (Terabyte)", lines)

    # Accuracy is monotone in k at any fixed decoder.
    for dnn, h in DECODERS:
        series = [p["accuracy"] for p in points if (p["dnn"], p["h"]) == (dnn, h)]
        assert series == sorted(series)
    # At fixed k, decoder shape is second-order (same-color points cluster).
    for k in KS:
        accs = [p["accuracy"] for p in points if p["k"] == k]
        assert max(accs) - min(accs) < 0.05
    # A >=100x-compressed DHE matches the table baseline (paper: 334x).
    good = [
        p for p in points
        if p["accuracy"] >= baseline_acc and p["compression"] >= 100
    ]
    assert good, "no high-compression DHE matching baseline accuracy"
    best = max(good, key=lambda p: p["compression"])
    assert best["compression"] > 90
