"""Figure 5: operator breakdown of table/DHE/select/hybrid on CPU and GPU.

Paper numbers (characterization DHE stack): DHE 10.5x (CPU) / 4.7x (GPU)
slower than table; select 2.1x / 1.5x; hybrid 11.2x / 5.4x, with hybrid the
slowest everywhere and select the compromise.
"""

from conftest import fmt_row

from repro.analysis.breakdown import breakdown_table, slowdown_vs
from repro.core.representations import RepresentationConfig
from repro.hardware.catalog import CPU_BROADWELL, GPU_V100
from repro.models.configs import KAGGLE

BATCH = 2048
STACK = dict(k=1024, dnn=128, h=2)  # mid-size characterization stack

REPS = {
    "table": RepresentationConfig("table", 16),
    "dhe": RepresentationConfig("dhe", 16, **STACK),
    "select": RepresentationConfig("select", 16, n_dhe_features=3, **STACK),
    "hybrid": RepresentationConfig(
        "hybrid", 24, table_dim=16, dhe_dim=8, **STACK
    ),
}

PAPER_SLOWDOWNS = {
    "cpu-broadwell": {"dhe": 10.5, "select": 2.1, "hybrid": 11.2},
    "gpu-v100": {"dhe": 4.7, "select": 1.5, "hybrid": 5.4},
}


def compute_breakdowns():
    return {
        device.name: breakdown_table(REPS, KAGGLE, device, BATCH)
        for device in (CPU_BROADWELL, GPU_V100)
    }


def test_fig05_operator_breakdown(benchmark, record):
    all_breakdowns = benchmark.pedantic(compute_breakdowns, rounds=1, iterations=1)

    lines = []
    for device_name, breakdowns in all_breakdowns.items():
        slowdowns = slowdown_vs(breakdowns, "table")
        lines.append(f"-- {device_name} (batch {BATCH}) --")
        for name, bd in breakdowns.items():
            paper = PAPER_SLOWDOWNS[device_name].get(name, 1.0)
            lines.append(
                fmt_row(
                    name,
                    total_ms=bd.total * 1e3,
                    slowdown=slowdowns[name],
                    paper=paper,
                    embed_ms=bd.embedding * 1e3,
                    encdec_ms=(bd.encoder + bd.decoder) * 1e3,
                    dense_ms=bd.dense_compute * 1e3,
                )
            )
    record("Figure 5: operator breakdown", lines)

    for device_name, breakdowns in all_breakdowns.items():
        slowdowns = slowdown_vs(breakdowns, "table")
        paper = PAPER_SLOWDOWNS[device_name]
        # Shape: hybrid slowest, select the compromise, within 2x of paper.
        assert slowdowns["hybrid"] >= slowdowns["dhe"]
        assert 1.0 < slowdowns["select"] < slowdowns["dhe"]
        for name, target in paper.items():
            assert target / 2 < slowdowns[name] < target * 2, (
                f"{device_name}/{name}: {slowdowns[name]:.2f} vs paper {target}"
            )
    # GPU suffers less DHE slowdown than CPU (parallel hashing, Sec 3.3).
    cpu_dhe = slowdown_vs(all_breakdowns["cpu-broadwell"], "table")["dhe"]
    gpu_dhe = slowdown_vs(all_breakdowns["gpu-v100"], "table")["dhe"]
    assert gpu_dhe < cpu_dhe
