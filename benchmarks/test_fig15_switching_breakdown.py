"""Figure 15: representation-switching breakdown of MP-Rec.

Paper shapes: on Kaggle, TBL(CPU) is always present (small queries execute
too fast to amortize GPU offload); on Terabyte, TBL(GPU) is always
preferable to TBL(CPU); MP-Rec activates compute-based representations a
substantial fraction of the time.
"""

from conftest import fmt_row

from repro.experiments.setup import run_serving_comparison
from repro.models.configs import KAGGLE, TERABYTE
from repro.serving.workload import ServingScenario

SUBSET = ("table-switch", "mp-rec")


def run():
    out = {}
    for name, model, seed in (("kaggle", KAGGLE, 61), ("terabyte", TERABYTE, 62)):
        scenario = ServingScenario.paper_default(n_queries=1500, seed=seed)
        results = run_serving_comparison(model, scenario, subset=SUBSET)
        out[name] = {
            sched: res.switching_breakdown() for sched, res in results.items()
        }
    return out


def test_fig15_switching_breakdown(benchmark, record):
    breakdowns = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = []
    for dataset, by_sched in breakdowns.items():
        for sched, shares in by_sched.items():
            lines.append(f"-- {dataset} / {sched} --")
            for label, share in shares.items():
                lines.append(fmt_row(label, share_pct=share * 100))
    record("Figure 15: switching breakdown", lines)

    kaggle_mp = breakdowns["kaggle"]["mp-rec"]
    terabyte_mp = breakdowns["terabyte"]["mp-rec"]
    # Kaggle keeps a TBL(CPU) share (small queries stay on the host).
    assert kaggle_mp.get("TABLE(CPU)", 0.0) > 0.02
    # Terabyte prefers TBL(GPU) over TBL(CPU) for table traffic.
    assert terabyte_mp.get("TABLE(GPU)", 0.0) >= terabyte_mp.get("TABLE(CPU)", 0.0) * 0.8
    # MP-Rec activates compute-based paths (the whole point).
    for shares in (kaggle_mp, terabyte_mp):
        compute_share = sum(
            share for label, share in shares.items()
            if label.startswith(("DHE", "HYBRID"))
        )
        assert compute_share > 0.2
    # The table-switch baseline on Kaggle splits traffic across devices.
    kaggle_switch = breakdowns["kaggle"]["table-switch"]
    assert kaggle_switch.get("TABLE(CPU)", 0.0) > 0.1
    assert kaggle_switch.get("TABLE(GPU)", 0.0) > 0.1
