"""Table 3: memory footprints for HW-1.

Paper (embedding weights):   Table     DHE      Hybrid    MP-Rec
  Kaggle                     2.16 GB   126 MB   2.29 GB   4.58 GB
  Terabyte                   12.58 GB  123 MB   12.70 GB  25.41 GB
"""

from conftest import fmt_row

from repro.core.offline import OfflinePlanner
from repro.core.representations import paper_configs
from repro.experiments.setup import hw1_devices
from repro.models.configs import KAGGLE, TERABYTE
from repro.quality.estimator import QualityEstimator

PAPER_GB = {
    "kaggle": {"table": 2.16, "dhe": 0.126, "hybrid": 2.29, "mp-rec": 4.58},
    "terabyte": {"table": 12.58, "dhe": 0.123, "hybrid": 12.70, "mp-rec": 25.41},
}


def compute_footprints():
    out = {}
    for name, model in (("kaggle", KAGGLE), ("terabyte", TERABYTE)):
        configs = paper_configs(model)
        row = {
            rep_name: configs[rep_name].embedding_bytes(model) / 1e9
            for rep_name in ("table", "dhe", "hybrid")
        }
        plan = OfflinePlanner(model, QualityEstimator(name)).plan(hw1_devices())
        row["mp-rec"] = sum(
            rep.embedding_bytes(model) for rep in plan.unique_reps()
        ) / 1e9
        out[name] = row
    return out


def test_table3_footprints(benchmark, record):
    footprints = benchmark.pedantic(compute_footprints, rounds=1, iterations=1)

    lines = []
    for dataset, row in footprints.items():
        lines.append(f"-- {dataset} (GB) --")
        for rep_name, gb in row.items():
            lines.append(fmt_row(rep_name, measured=gb, paper=PAPER_GB[dataset][rep_name]))
    record("Table 3: memory footprints", lines)

    for dataset, row in footprints.items():
        for rep_name, gb in row.items():
            paper = PAPER_GB[dataset][rep_name]
            assert abs(gb - paper) / paper < 0.10, (dataset, rep_name, gb)
