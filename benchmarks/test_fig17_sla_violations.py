"""Figure 17: SLA latency-target violations at constant throughput.

Paper: at 400 QPS and a 10 ms target, static table-CPU violates on 30.73%
of queries while MP-Rec violates on 3.14% (a 27.59 pp improvement); static
DHE/hybrid violate on ~100%. Violations fall for every scheduler as the
target loosens.
"""

from conftest import fmt_row

from repro.experiments.setup import run_serving_comparison
from repro.models.configs import KAGGLE
from repro.serving.workload import ServingScenario

QPS = 400.0
SLA_MS = (10, 25, 50, 100, 200)
SUBSET = ("table-cpu", "dhe-gpu", "hybrid-gpu", "mp-rec")
PAPER_AT_10MS = {"table-cpu": 30.73, "mp-rec": 3.14, "dhe-gpu": 100.0}
SHED_POLICIES = ("none", "drop-late", "deadline-aware")


def sweep():
    rows = {}
    for sla_ms in SLA_MS:
        scenario = ServingScenario.paper_default(
            n_queries=1500, qps=QPS, sla_s=sla_ms / 1e3, seed=71
        )
        results = run_serving_comparison(KAGGLE, scenario, subset=SUBSET)
        rows[sla_ms] = {
            name: res.violation_rate * 100 for name, res in results.items()
        }
    return rows


def shed_sweep():
    """Overloaded static deployment at 10 ms under each admission policy:
    compliant correct-prediction throughput is what shedding protects."""
    scenario = ServingScenario.paper_default(
        n_queries=1500, qps=QPS, sla_s=0.010, seed=71
    )
    out = {}
    for policy in SHED_POLICIES:
        res = run_serving_comparison(
            KAGGLE, scenario, subset=("dhe-gpu",), shed_policy=policy
        )["dhe-gpu"]
        out[policy] = res
    return out


def test_fig17_sla_violations(benchmark, record):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    shed = shed_sweep()

    lines = [f"constant load: {QPS:.0f} QPS (paper anchors at 10 ms: "
             f"table-CPU 30.73%, MP-Rec 3.14%, static DHE ~100%)"]
    for sla_ms, by_sched in rows.items():
        lines.append(f"-- SLA {sla_ms} ms --")
        for name, pct in by_sched.items():
            lines.append(fmt_row(name, violations_pct=pct))
    lines.append("-- shed policies on overloaded dhe-gpu @ 10 ms --")
    for policy, res in shed.items():
        lines.append(
            fmt_row(
                policy,
                compliant_tput=res.compliant_correct_throughput,
                drop_pct=res.drop_rate * 100,
                p99_ms=res.p99_latency_s * 1e3,
            )
        )
    record("Figure 17: SLA violations at constant throughput", lines)

    # Shedding an overloaded deployment protects compliant throughput, and
    # deadline-aware beats drop-late: refusing queries that would *finish*
    # late keeps the backlog from ever forming, so it both drops less and
    # serves more on time.
    assert (
        shed["drop-late"].compliant_correct_throughput
        >= shed["none"].compliant_correct_throughput
    )
    assert (
        shed["deadline-aware"].compliant_correct_throughput
        >= shed["drop-late"].compliant_correct_throughput
    )
    # Dropped queries carry no latency: percentiles only cover served ones,
    # so heavy shedding must not deflate the tail below the service floor.
    assert shed["drop-late"].p99_latency_s > 0

    at_10 = rows[10]
    # Static compute representations violate on essentially every query.
    assert at_10["dhe-gpu"] > 90
    assert at_10["hybrid-gpu"] > 90
    # Table-CPU violates on a sizable fraction; MP-Rec cuts it sharply.
    assert at_10["table-cpu"] > 10
    assert at_10["mp-rec"] < at_10["table-cpu"] / 2
    # Improvement in the paper's ballpark (27.59 pp).
    improvement = at_10["table-cpu"] - at_10["mp-rec"]
    assert improvement > 10
    # MP-Rec dominates table-CPU across the target range.
    for sla_ms in SLA_MS:
        assert rows[sla_ms]["mp-rec"] <= rows[sla_ms]["table-cpu"] + 1.0
    # Violations are non-increasing as targets loosen.
    for name in SUBSET:
        series = [rows[sla_ms][name] for sla_ms in SLA_MS]
        assert all(b <= a + 1.0 for a, b in zip(series, series[1:])), name
