"""Figure 18 / Section 6.9: multi-node scaling analysis (ZionEX model).

Paper: on a 128-GPU (16-node) ZionEX system, exposed inter-node
communication is ~40% of training time; replacing tables with DHE (334x
compression -> single-node residency) removes it for a ~36% total-time
reduction at the cost of extra DHE compute.
"""

from conftest import fmt_row

from repro.analysis.scaling import ZionEXModel

WORKLOAD = dict(
    batch_per_iter=65536,
    model_flops_per_sample=25e6,
    embedding_vector_bytes=26 * 64 * 4,
    dense_grad_bytes=30e6,
)
NODES = (1, 2, 4, 8, 16)


def sweep():
    model = ZionEXModel()
    return {n: model.compare(n_nodes=n, **WORKLOAD) for n in NODES}


def test_fig18_scaling(benchmark, record):
    comparisons = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["paper anchors: comm ~40% of training; 36% reduction at 128 GPUs"]
    for n, cmp in comparisons.items():
        lines.append(
            fmt_row(
                f"{n} nodes ({n * 8} GPUs)",
                table_ms=cmp.table_time_per_iter_s * 1e3,
                dhe_ms=cmp.dhe_time_per_iter_s * 1e3,
                comm_frac=cmp.table_comm_fraction,
                reduction=cmp.time_reduction,
            )
        )
    record("Figure 18: multi-node scaling (ZionEX analytical model)", lines)

    at_16 = comparisons[16]
    # Communication fraction near the paper's ~40%.
    assert 0.25 < at_16.table_comm_fraction < 0.55
    # Total-time reduction near the paper's ~36%.
    assert 0.25 < at_16.time_reduction < 0.50
    # Single node: DHE's extra compute is pure cost (no comm to remove).
    assert comparisons[1].time_reduction < 0
    # The benefit grows with scale (comm share rises).
    reductions = [comparisons[n].time_reduction for n in NODES]
    assert reductions == sorted(reductions)
