"""Runtime representation switching under diurnal load (Sections 4.2-4.3).

The serving kernel lets a :class:`~repro.core.switching.SwitchController`
swap a device's resident embedding representation mid-run, paying the
Figure-15 load/teardown window as a blocking event on the device
timeline.  This bench builds the situation the paper motivates: a
representation pair with a *batch-size crossover* (the Figure-3 shape —
the memory-bound table path is fastest on the small batches a quiet
period produces, the compute-based hybrid path amortizes its fixed cost
and wins on the large coalesced batches of the rush hour, and only it
has the capacity to survive the peak at all) under a day/night arrival
cycle.

Neither static residency can win both ends: table drowns at the peak
(its per-sample gather cost caps capacity below the peak rate), hybrid
burns its fixed cost on every near-singleton trough batch.  Dynamic
switching rides hybrid through the rush and swaps to table as the
batcher's window empties — strictly fewer SLA violations than the *best*
static residency, with every switch's overhead charged on the device
timeline (the device drains, then blocks for load + teardown).
"""

import numpy as np
from conftest import fmt_row

from repro.core.online import StaticScheduler
from repro.core.paths import ExecutionPath, PathProfile
from repro.core.representations import RepresentationConfig
from repro.core.switching import SwitchController
from repro.data.queries import Query, QuerySet, arrival_times
from repro.hardware.catalog import GPU_V100
from repro.serving.simulator import ServingSimulator
from repro.serving.workload import ServingScenario

SLA_S = 0.013
MEAN_QPS = 650.0
AMPLITUDE = 0.9  # trough ~65 QPS, peak ~1235 QPS
PERIOD_S = 10.0  # one compressed "day"
N_QUERIES = int(MEAN_QPS * 30)  # three diurnal cycles
MAX_BATCH = 16
BATCH_TIMEOUT_S = 0.008
LOAD_S = 0.080  # Fig-15 load window charged per switch
TEARDOWN_S = 0.020


def _path(kind, accuracy, base_s, per_sample_s, label):
    """Affine latency profile: ``base + per_sample * batch`` (log-log
    interpolation through exact anchor points)."""
    sizes = np.unique(np.geomspace(1, 4096, 33).astype(int)).astype(float)
    if kind == "hybrid":
        rep = RepresentationConfig(
            "hybrid", 16, k=8, dnn=8, h=1, table_dim=8, dhe_dim=8
        )
    else:
        rep = RepresentationConfig("table", 16)
    return ExecutionPath(
        rep=rep, device=GPU_V100, accuracy=accuracy,
        profile=PathProfile(sizes=sizes, latencies=base_s + per_sample_s * sizes),
        label=label,
    )


def table_path():
    # Memory-bound: tiny fixed cost, heavy per-sample gather.
    # Fast solo (1.1 ms), capacity ~1.2k QPS at full batches.
    return _path("table", 79.0, 0.0003, 0.0008, "TABLE")


def hybrid_path():
    # Compute-based: big fixed cost, near-flat scaling.
    # Slow solo (7.05 ms), capacity ~2.1k QPS at full batches.
    return _path("hybrid", 81.0, 0.007, 0.00005, "HYBRID")


def diurnal_scenario():
    arrivals = arrival_times(
        N_QUERIES, MEAN_QPS, rng=np.random.default_rng(42),
        process="diurnal", period_s=PERIOD_S, amplitude=AMPLITUDE,
    )
    queries = [
        Query(index=i, size=1, arrival_s=float(t))
        for i, t in enumerate(arrivals)
    ]
    return ServingScenario(queries=QuerySet(queries=queries), sla_s=SLA_S)


def simulate(resident, controller=None):
    sim = ServingSimulator(
        StaticScheduler([resident]), track_energy=False,
        max_batch_size=MAX_BATCH, batch_timeout_s=BATCH_TIMEOUT_S,
        switch_controller=controller,
    )
    return sim.run(diurnal_scenario())


def run_comparison():
    static_table = simulate(table_path())
    static_hybrid = simulate(hybrid_path())
    controller = SwitchController(
        {GPU_V100.name: [table_path(), hybrid_path()]},
        hi_pressure=0.75, lo_pressure=0.63, util_hi=0.95,
        patience=4, cooldown_s=1.0, headroom=0.9,
        load_s=LOAD_S, teardown_s=TEARDOWN_S,
    )
    dynamic = simulate(hybrid_path(), controller)
    return static_table, static_hybrid, dynamic, controller


def test_runtime_switching_beats_static_residency(benchmark, record):
    static_table, static_hybrid, dynamic, controller = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )

    lines = [
        fmt_row("static-table", violations=static_table.violation_rate,
                p99_ms=static_table.p99_latency_s * 1e3),
        fmt_row("static-hybrid", violations=static_hybrid.violation_rate,
                p99_ms=static_hybrid.p99_latency_s * 1e3),
        fmt_row("dynamic-switching", violations=dynamic.violation_rate,
                p99_ms=dynamic.p99_latency_s * 1e3,
                switches=len(controller.events),
                overhead_ms=controller.total_overhead_s * 1e3),
    ]
    for event in controller.events:
        lines.append(fmt_row(
            f"  {event.from_label}->{event.to_label}",
            at_s=event.time_s, ready_s=event.ready_s,
        ))
    record(
        f"Runtime switching vs static residency "
        f"({N_QUERIES} queries, 3 diurnal cycles)",
        lines,
    )

    best_static = min(
        static_table.violation_rate, static_hybrid.violation_rate
    )
    # The headline claim: dynamic switching strictly beats the BEST
    # static residency on SLA violations, not just the worst.
    assert dynamic.violation_rate < best_static
    assert dynamic.violation_rate < static_table.violation_rate
    assert dynamic.violation_rate < static_hybrid.violation_rate

    # The controller actually cycled with the load — both directions,
    # and without thrashing (at most 2 switches per diurnal cycle).
    to_labels = {e.to_label for e in controller.events}
    assert to_labels == {"TABLE", "HYBRID"}
    assert 2 <= len(controller.events) <= 6

    # Switching overhead is charged on the device timeline: every switch
    # blocks for at least its load+teardown window (plus any drain), and
    # the fleet total is accounted.
    for event in controller.events:
        assert event.overhead_s == LOAD_S + TEARDOWN_S
        assert event.ready_s - event.time_s >= event.overhead_s
    assert controller.total_overhead_s == len(controller.events) * (
        LOAD_S + TEARDOWN_S
    )
