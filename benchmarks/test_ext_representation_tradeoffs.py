"""Extension bench: TT-Rec vs. DHE vs. table trade-offs.

Section 2.2 chooses DHE over TT-Rec "due to the flexibility in tuning
DHE's encoder-decoder stacks"; this bench makes the comparison concrete on
our substrate: compression, per-lookup FLOPs, and *real* mini-scale
training quality for all compute-based representations.
"""

import numpy as np
from conftest import fmt_row

from repro.data.synthetic import SyntheticCTRDataset
from repro.embeddings.ttrec import tt_bytes
from repro.embeddings.costs import dhe_bytes, dhe_flops_per_lookup, table_bytes
from repro.embeddings.ttrec import TTEmbedding
from repro.models.configs import KAGGLE, ModelConfig
from repro.models.dlrm import build_dlrm
from repro.training.trainer import Trainer

MINI = ModelConfig(
    name="tradeoff-mini",
    n_dense=8,
    cardinalities=[60, 250, 900, 40],
    embedding_dim=8,
    bottom_mlp=[24],
    top_mlp=[24],
)


def capacity_flops_comparison():
    from repro.embeddings.mixed_dim import mixed_dim_bytes

    dim = KAGGLE.embedding_dim
    dense = sum(table_bytes(rows, dim) for rows in KAGGLE.cardinalities)
    tt = sum(tt_bytes(rows, dim, rank=8) for rows in KAGGLE.cardinalities)
    dhe = 26 * dhe_bytes(2048, 480, 2, dim)
    md = mixed_dim_bytes(KAGGLE.cardinalities, dim, alpha=0.4)
    rng = np.random.default_rng(0)
    tt_flops = TTEmbedding(10_131_227, dim, rank=8, rng=rng).flops_per_lookup()
    dhe_flops = dhe_flops_per_lookup(2048, 480, 2, dim)
    return {
        "table_gb": dense / 1e9,
        "ttrec_gb": tt / 1e9,
        "dhe_gb": dhe / 1e9,
        "mixed_dim_gb": md / 1e9,
        "ttrec_flops_per_lookup": tt_flops,
        "dhe_flops_per_lookup": dhe_flops,
    }


def training_comparison():
    aucs = {}
    for rep, kwargs in (
        ("table", {}),
        ("dhe", dict(k=32, dnn=32, h=1)),
        ("ttrec", dict(tt_rank=4)),
    ):
        scores = []
        for seed in (0, 1):
            rng = np.random.default_rng(seed)
            model = build_dlrm(MINI, rep, rng, **kwargs)
            dataset = SyntheticCTRDataset(MINI, seed=7, latent_dim=4)
            result = Trainer(model, dataset, lr=0.1).train(
                n_steps=150, batch_size=128, eval_samples=4000
            )
            scores.append(result.eval_auc)
        aucs[rep] = float(np.mean(scores))
    return aucs


def run():
    return capacity_flops_comparison(), training_comparison()


def test_ext_representation_tradeoffs(benchmark, record):
    costs, aucs = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "-- Kaggle-scale capacity / compute --",
        fmt_row("table", gb=costs["table_gb"]),
        fmt_row("ttrec(r=8)", gb=costs["ttrec_gb"],
                flops_per_lookup=costs["ttrec_flops_per_lookup"]),
        fmt_row("dhe(k=2048,w=480,h=2)", gb=costs["dhe_gb"],
                flops_per_lookup=costs["dhe_flops_per_lookup"]),
        fmt_row("mixed-dim(a=0.4)", gb=costs["mixed_dim_gb"]),
        "-- mini-scale real training (mean AUC over 2 seeds) --",
        *(fmt_row(rep, auc=auc) for rep, auc in aucs.items()),
    ]
    record("Extension: TT-Rec vs DHE vs table trade-offs", lines)

    # All compression families shrink the table by >2x (TT/DHE by >10x).
    assert costs["ttrec_gb"] < costs["table_gb"] / 10
    assert costs["dhe_gb"] < costs["table_gb"] / 10
    assert costs["mixed_dim_gb"] < costs["table_gb"] / 2
    # TT-Rec's per-lookup contraction is far cheaper than a large DHE
    # decoder pass (the flip side of DHE's tunability).
    assert costs["ttrec_flops_per_lookup"] < costs["dhe_flops_per_lookup"]
    # All representations learn at mini scale.
    for rep, auc in aucs.items():
        assert auc > 0.53, rep
