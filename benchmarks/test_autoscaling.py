"""Elastic autoscaling under diurnal + flash-crowd load.

The paper's premise is that recommendation load is bursty and diurnal
and the right configuration changes at runtime.  PR 3 applied that
per-device (representation switching); this bench applies it to the
*fleet*: an :class:`~repro.serving.autoscale.AutoscaleController` grows
and drains serving-kernel cores as the same pressure signals move, with
live shard handoff — every join warms its shard slice over the fabric
(charged as a device-timeline block), every drain hands its queued
queries back through the failover re-injection path.

The scenario is the capacity planner's nightmare: a compressed diurnal
cycle (trough needs ~1 node of capacity, peak needs ~4) with a flash
crowd landing on the second peak.  Three fleets serve it:

- ``static-max`` — statically provisioned for the worst moment
  (``MAX_NODES`` nodes powered the whole run): the SLA reference, and
  the node-seconds bill to beat.
- ``static-min`` — provisioned for the trough (``MIN_NODES`` nodes):
  cheap, and drowns at every peak.
- ``autoscaled`` — starts at the floor, rides the cycle between the
  bounds.

Pinned claims (the perf-smoke gate):

- SLA parity: the elastic fleet's violation rate is within 10% (plus a
  1-point absolute ramp allowance) of the statically max-provisioned
  fleet's, with every handoff window charged.
- Elasticity pays: >= 25% fewer node-seconds than static-max, and less
  fleet energy (served + idle).
- The zero-loss drain invariant: scale-down at replication 2 loses
  zero queries — every query is accounted exactly once.
"""

import numpy as np
from conftest import fmt_row

from repro.analysis.sharding import greedy_shard
from repro.core.online import StaticScheduler
from repro.core.paths import ExecutionPath, PathProfile
from repro.core.representations import RepresentationConfig
from repro.data.queries import Query, QuerySet, arrival_times
from repro.hardware.catalog import GPU_V100
from repro.hardware.topology import ETHERNET_100G
from repro.serving.autoscale import AutoscaleController
from repro.serving.cluster import ClusterSimulator
from repro.serving.workload import ServingScenario

SLA_S = 0.015
MEAN_QPS = 2_000.0
AMPLITUDE = 0.75  # trough ~500 QPS, peak ~3500 QPS
PERIOD_S = 12.0  # one compressed "day"
N_DIURNAL = int(MEAN_QPS * 2 * PERIOD_S)  # two diurnal cycles
SPIKE_QPS = 2_000.0  # flash crowd on top of the second peak
SPIKE_START_S = 14.0
SPIKE_DURATION_S = 3.0
MAX_BATCH = 16
BATCH_TIMEOUT_S = 0.008
MIN_NODES = 2
MAX_NODES = 6
REPLICATION = 2
LINK = ETHERNET_100G
# ~4M rows x dim 16: a ~43 MB warm per join at 6 nodes — felt, not fatal.
CARDINALITIES = [1_000_000, 800_000, 700_000, 600_000, 500_000, 400_000]
DIM = 16


def node_path():
    """One node's serving path: ~1.2k QPS of capacity at full batches."""
    sizes = np.unique(np.geomspace(1, 4096, 33).astype(int)).astype(float)
    return ExecutionPath(
        rep=RepresentationConfig("table", DIM),
        device=GPU_V100,
        accuracy=79.0,
        profile=PathProfile(
            sizes=sizes, latencies=0.0003 + 0.0008 * sizes
        ),
        label="TABLE",
    )


def scenario():
    """Two diurnal cycles with a flash crowd landing on the second peak."""
    rng = np.random.default_rng(7)
    base = arrival_times(
        N_DIURNAL, MEAN_QPS, rng=rng, process="diurnal",
        period_s=PERIOD_S, amplitude=AMPLITUDE,
    )
    n_spike = int(SPIKE_QPS * SPIKE_DURATION_S)
    spike = SPIKE_START_S + arrival_times(
        n_spike, SPIKE_QPS, rng=rng, process="poisson"
    )
    merged = np.sort(np.concatenate([base, spike]))
    queries = [
        Query(index=i, size=1, arrival_s=float(t))
        for i, t in enumerate(merged)
    ]
    return ServingScenario(queries=QuerySet(queries=queries), sla_s=SLA_S)


def make_cluster(n_nodes, autoscale=None):
    plan = greedy_shard(CARDINALITIES, DIM, n_nodes)
    return ClusterSimulator(
        StaticScheduler([node_path()]), plan, router="least-loaded",
        replication=REPLICATION, link=LINK, max_batch_size=MAX_BATCH,
        batch_timeout_s=BATCH_TIMEOUT_S, autoscale=autoscale,
    )


def run_comparison():
    scn = scenario()
    static_max = make_cluster(MAX_NODES).run(scn)
    static_min = make_cluster(MIN_NODES).run(scn)
    controller = AutoscaleController(
        min_nodes=MIN_NODES, max_nodes=MAX_NODES,
        hi_pressure=0.75, lo_pressure=0.1, util_hi=0.9,
        patience=4, patience_down=48, cooldown_s=0.25,
    )
    autoscaled = make_cluster(MAX_NODES, autoscale=controller).run(scn)
    return scn, static_max, static_min, autoscaled


def test_autoscaling_matches_max_fleet_at_fewer_node_seconds(
    benchmark, record
):
    scn, static_max, static_min, autoscaled = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )

    def row(label, cluster):
        return fmt_row(
            label,
            violations=cluster.result.violation_rate,
            node_seconds=cluster.node_seconds,
            fleet_energy_j=cluster.fleet_energy_j,
            p99_ms=cluster.result.p99_latency_s * 1e3,
        )

    lines = [
        row("static-max", static_max),
        row("static-min", static_min),
        row("autoscaled", autoscaled),
        fmt_row(
            "  scaling",
            ups=autoscaled.scale_ups, downs=autoscaled.scale_downs,
            handoff_ms=autoscaled.handoff_overhead_s * 1e3,
            rerouted=autoscaled.rerouted,
        ),
    ]
    for event in autoscaled.scale_events:
        lines.append(fmt_row(
            f"  {event.kind} -> {event.n_members} nodes",
            at_s=event.time_s, warm_ms=event.warm_s * 1e3,
            reinjected=event.reinjected,
        ))
    record(
        f"Elastic autoscaling vs static fleets "
        f"({len(scn.queries.queries)} queries, diurnal + flash crowd)",
        lines,
    )

    # The controller actually cycled with the load — joins and drains
    # both happened, and every join's shard warm was charged.
    assert autoscaled.scale_ups >= 2
    assert autoscaled.scale_downs >= 1
    assert autoscaled.handoff_overhead_s > 0
    up_events = [e for e in autoscaled.scale_events if e.kind == "up"]
    assert all(e.warm_bytes > 0 and e.warm_s > 0 for e in up_events)
    # The join is not serviceable before its warm window elapses (1 ns
    # tolerance for float accumulation on the timeline).
    assert all(e.ready_s - e.time_s >= e.warm_s - 1e-9 for e in up_events)

    # SLA parity with the statically max-provisioned fleet: within 10%
    # relative, plus one absolute point for the scale-up ramp windows.
    assert autoscaled.result.violation_rate <= (
        1.10 * static_max.result.violation_rate + 0.01
    )
    # ...while the trough-sized static fleet drowns at the peaks.
    assert static_min.result.violation_rate > (
        3 * autoscaled.result.violation_rate
    )

    # Elasticity pays: >= 25% fewer node-seconds (the pinned floor) and
    # strictly less fleet energy (served + idle) than static-max.
    assert autoscaled.node_seconds <= 0.75 * static_max.node_seconds
    assert autoscaled.fleet_energy_j < static_max.fleet_energy_j

    # The zero-loss drain invariant at replication >= 2: nothing lost,
    # nothing shed at the edge, every query accounted exactly once.
    assert autoscaled.lost == 0
    assert autoscaled.edge_drops == 0
    n = len(scn.queries.queries)
    assert sorted(r.index for r in autoscaled.result.records) == list(range(n))
    # Drains actually handed queries back through the re-injection path —
    # the zero-loss mechanism was exercised, not just vacuously true.
    assert autoscaled.rerouted > 0
