"""Table 4: the memory-constrained HW-2 case study (1 GB CPU / 200 MB GPU).

Paper:                 Accuracy   Norm. correct tput   Memory
  TBL (CPU, dim 4)     78.721%    1.00x                542 MB
  DHE (GPU)            78.936%    0.43x                123 MB
  MP-Rec               78.936%    2.26x                CPU 665 MB + GPU 123 MB
"""

from conftest import fmt_row

from repro.core.offline import OfflinePlanner
from repro.core.online import MultiPathScheduler, StaticScheduler
from repro.core.profiler import make_path
from repro.core.representations import RepresentationConfig, paper_configs
from repro.experiments.setup import default_cache_effect, hw2_devices
from repro.models.configs import KAGGLE
from repro.quality.estimator import QualityEstimator
from repro.serving.simulator import ServingSimulator
from repro.serving.workload import ServingScenario


def run_hw2():
    cpu, gpu = hw2_devices()
    estimator = QualityEstimator("kaggle")
    scenario = ServingScenario.paper_default(n_queries=1500, seed=31)

    table_d4 = RepresentationConfig("table", 4, label="table-d4")
    dhe = paper_configs(KAGGLE)["dhe"]

    table_path = make_path(table_d4, KAGGLE, cpu, estimator.accuracy(table_d4),
                           label="TBL(CPU)")
    dhe_path = make_path(dhe, KAGGLE, gpu, estimator.accuracy(dhe), label="DHE(GPU)")

    results = {
        "tbl-cpu": ServingSimulator(StaticScheduler([table_path]),
                                    track_energy=False).run(scenario),
        "dhe-gpu": ServingSimulator(StaticScheduler([dhe_path]),
                                    track_energy=False).run(scenario),
    }

    plan = OfflinePlanner(KAGGLE, estimator).plan([cpu, gpu])
    effect = default_cache_effect(KAGGLE, dhe)
    paths = plan.build_paths(
        encoder_hit_rate=effect.encoder_hit_rate,
        decoder_speedup=effect.decoder_speedup,
    )
    results["mp-rec"] = ServingSimulator(
        MultiPathScheduler(paths), track_energy=False
    ).run(scenario)
    memory = {
        "tbl-cpu": table_d4.total_bytes(KAGGLE),
        "dhe-gpu": dhe.total_bytes(KAGGLE),
        "mp-rec-cpu": plan.device_bytes(cpu.name),
        "mp-rec-gpu": plan.device_bytes(gpu.name),
    }
    return results, memory


PAPER = {
    "tbl-cpu": {"acc": 78.721, "factor": 1.00, "mb": 542},
    "dhe-gpu": {"acc": 78.936, "factor": 0.43, "mb": 123},
    "mp-rec": {"acc": 78.936, "factor": 2.26, "mb": 665 + 123},
}


def test_table4_hw2(benchmark, record):
    results, memory = benchmark.pedantic(run_hw2, rounds=1, iterations=1)
    base = results["tbl-cpu"].correct_prediction_throughput

    lines = []
    for name, res in results.items():
        mem_mb = (
            (memory["mp-rec-cpu"] + memory["mp-rec-gpu"]) / 1e6
            if name == "mp-rec"
            else memory[name] / 1e6
        )
        lines.append(
            fmt_row(
                name,
                accuracy=res.mean_accuracy,
                factor=res.correct_prediction_throughput / base,
                memory_mb=mem_mb,
                paper_factor=PAPER[name]["factor"],
            )
        )
    record("Table 4: HW-2 memory-constrained case study", lines)

    # Accuracy anchors.
    assert abs(results["tbl-cpu"].mean_accuracy - 78.721) < 0.02
    best_dhe_acc = max(r.accuracy for r in results["dhe-gpu"].records)
    assert abs(best_dhe_acc - 78.936) < 0.03
    # MP-Rec's achievable accuracy matches DHE's while beating CPU throughput.
    best_mp_acc = max(r.accuracy for r in results["mp-rec"].records)
    assert best_mp_acc >= best_dhe_acc - 0.03
    factor = results["mp-rec"].correct_prediction_throughput / base
    assert factor > 1.2  # paper 2.26
    dhe_factor = results["dhe-gpu"].correct_prediction_throughput / base
    assert dhe_factor < 1.0  # paper 0.43
    # Memory: paper's 542/123/665 MB footprints.
    assert abs(memory["tbl-cpu"] / 1e6 - 542) < 30
    assert abs(memory["dhe-gpu"] / 1e6 - 123) < 30
    assert abs(memory["mp-rec-cpu"] / 1e6 - 665) < 60
