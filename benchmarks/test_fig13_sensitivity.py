"""Figure 13: sensitivity to mean query size and SLA latency target
(Terabyte use-case).

Paper shapes: MP-Rec's (and table-switching's) speedup over table-CPU
grows with mean query size (more offload opportunity) and shrinks as the
SLA target loosens toward 200 ms (even the CPU baseline keeps up).
"""

from conftest import fmt_row

from repro.experiments.setup import run_serving_comparison
from repro.models.configs import TERABYTE
from repro.serving.workload import ServingScenario

SUBSET = ("table-cpu", "mp-rec")
N_QUERIES = 1200


def mp_rec_factor(
    mean_size: float, sla_s: float, qps: float, seed: int, compliant: bool = False
) -> float:
    scenario = ServingScenario.paper_default(
        n_queries=N_QUERIES, mean_size=mean_size, qps=qps, sla_s=sla_s, seed=seed
    )
    results = run_serving_comparison(TERABYTE, scenario, subset=SUBSET)
    metric = (
        "compliant_correct_throughput" if compliant else "correct_prediction_throughput"
    )
    return getattr(results["mp-rec"], metric) / max(
        getattr(results["table-cpu"], metric), 1e-9
    )


def sweep():
    # Query-size sweep at the default 10 ms SLA / 1000 QPS.
    size_series = {
        size: mp_rec_factor(size, 0.010, 1000.0, seed=51) for size in (32, 128, 512)
    }
    # SLA sweep at a sustainable constant load; only SLA-compliant responses
    # count (a late recommendation is worthless), so loosening the target
    # lets the baseline catch up and the speedup decays toward 1.
    sla_series = {
        sla_ms: mp_rec_factor(128, sla_ms / 1e3, 250.0, seed=52, compliant=True)
        for sla_ms in (10, 50, 200)
    }
    return size_series, sla_series


def test_fig13_sensitivity(benchmark, record):
    size_series, sla_series = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["-- speedup vs mean query size (SLA 10 ms, 1000 QPS) --"]
    for size, factor in size_series.items():
        lines.append(fmt_row(f"mean_size={size}", speedup=factor))
    lines.append("-- speedup vs SLA target (mean 128, 250 QPS, compliant-only) --")
    for sla_ms, factor in sla_series.items():
        lines.append(fmt_row(f"sla={sla_ms}ms", speedup=factor))
    record("Figure 13: sensitivity studies (Terabyte)", lines)

    # Larger queries -> more accelerator offload -> higher speedup.
    sizes = sorted(size_series)
    assert size_series[sizes[-1]] > size_series[sizes[0]]
    # Looser SLA at sustainable load -> baseline keeps up -> speedup decays.
    slas = sorted(sla_series)
    assert sla_series[slas[0]] > sla_series[slas[-1]]
    assert sla_series[slas[-1]] < 1.3  # at 200 ms even table-CPU keeps up
