"""Figure 11: raw throughput vs. throughput of correct predictions.

Paper shape: MP-Rec's raw throughput (hatched bars) matches the best
table-only deployments while its correct-prediction throughput (colored
bars) exceeds them — the gains come from serving *more accurate*
predictions at comparable sample rates, not from sacrificing accuracy.
"""

from conftest import fmt_row

from repro.experiments.setup import run_serving_comparison
from repro.models.configs import KAGGLE
from repro.serving.workload import ServingScenario

SUBSET = ("table-cpu", "table-gpu", "dhe-gpu", "hybrid-gpu", "table-switch", "mp-rec")


def run():
    scenario = ServingScenario.paper_default(n_queries=2000, seed=21)
    exact = run_serving_comparison(KAGGLE, scenario, subset=SUBSET)
    streamed = run_serving_comparison(
        KAGGLE, scenario, subset=("mp-rec",), streaming=True
    )["mp-rec"]
    return exact, streamed


def test_fig11_throughput_breakdown(benchmark, record):
    results, streamed = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = []
    for name, res in results.items():
        lines.append(
            fmt_row(
                name,
                raw_ksamples=res.raw_throughput / 1e3,
                correct_ksamples=res.correct_prediction_throughput / 1e3,
                accuracy=res.mean_accuracy,
            )
        )
    record("Figure 11: raw vs correct-prediction throughput (Kaggle)", lines)

    mp = results["mp-rec"]
    best_table_raw = max(
        results[n].raw_throughput for n in ("table-cpu", "table-gpu", "table-switch")
    )
    # Raw throughput within 15% of the best table-only deployment...
    assert mp.raw_throughput > 0.85 * best_table_raw
    # ...while correct-prediction throughput strictly exceeds each baseline's.
    for name in ("table-cpu", "dhe-gpu", "hybrid-gpu"):
        assert (
            mp.correct_prediction_throughput
            > results[name].correct_prediction_throughput
        )
    # The ratio correct/raw equals mean accuracy/100 by construction.
    ratio = mp.correct_prediction_throughput / mp.raw_throughput
    assert abs(ratio - mp.mean_accuracy / 100.0) < 1e-6
    # Streaming (record-free) aggregation reproduces the exact counters
    # and approximates the tail within P2/reservoir tolerance.
    assert streamed.correct_prediction_throughput == mp.correct_prediction_throughput
    assert streamed.raw_throughput == mp.raw_throughput
    assert streamed.violation_rate == mp.violation_rate
    assert abs(streamed.p99_latency_s - mp.p99_latency_s) < 0.25 * max(
        mp.p99_latency_s, 1e-9
    )
