"""Figure 10: throughput of correct predictions serving 10K queries.

Paper: MP-Rec 2.49x (Kaggle) / 3.76x (Terabyte) over table-CPU; static
DHE/hybrid on GPU degrade to ~0.37x; table CPU-GPU switching sits between.
"""

from conftest import fmt_row

from repro.experiments.setup import run_serving_comparison
from repro.models.configs import KAGGLE, TERABYTE
from repro.serving.workload import ServingScenario

SUBSET = ("table-cpu", "table-gpu", "dhe-gpu", "hybrid-gpu", "table-switch", "mp-rec")
N_QUERIES = 2000
PAPER = {"kaggle": 2.49, "terabyte": 3.76}


def run_dataset(model, seed):
    scenario = ServingScenario.paper_default(n_queries=N_QUERIES, seed=seed)
    results = run_serving_comparison(model, scenario, subset=SUBSET)
    # Micro-batched variant of the winner: coalescing must not change the
    # headline story (amortized base latency may even improve it).
    results["mp-rec+batch8"] = run_serving_comparison(
        model, scenario, subset=("mp-rec",),
        max_batch_size=8, batch_timeout_s=0.002,
    )["mp-rec"]
    return results


def _check(results, dataset, record):
    base = results["table-cpu"].correct_prediction_throughput
    lines = [f"(paper MP-Rec factor: {PAPER[dataset]}x)"]
    for name, res in results.items():
        lines.append(
            fmt_row(
                name,
                ctput_factor=res.correct_prediction_throughput / base,
                raw_tput=res.raw_throughput,
                accuracy=res.mean_accuracy,
                viol_pct=res.violation_rate * 100,
            )
        )
    record(f"Figure 10: correct-prediction throughput ({dataset})", lines)

    factor = results["mp-rec"].correct_prediction_throughput / base
    # Shape: MP-Rec on top; static compute representations degrade.
    for name, res in results.items():
        if name == "mp-rec+batch8":
            continue  # batching may legitimately edge out per-query dispatch
        assert (
            results["mp-rec"].correct_prediction_throughput
            >= res.correct_prediction_throughput * 0.99
        ), name
    # Micro-batching keeps MP-Rec's headline throughput (within 20%) and
    # never hurts SLA compliance relative to per-query dispatch.
    batched = results["mp-rec+batch8"]
    assert (
        batched.correct_prediction_throughput
        > 0.8 * results["mp-rec"].correct_prediction_throughput
    )
    assert batched.violation_rate <= results["mp-rec"].violation_rate + 0.05
    assert results["dhe-gpu"].correct_prediction_throughput < 0.8 * base
    assert results["hybrid-gpu"].correct_prediction_throughput < 0.8 * base
    assert factor > 1.5
    # Within 2x of the paper's headline factor.
    assert PAPER[dataset] / 2 < factor < PAPER[dataset] * 2
    # MP-Rec serves with higher accuracy than any table-only deployment.
    assert results["mp-rec"].mean_accuracy > results["table-cpu"].mean_accuracy


def test_fig10_kaggle(benchmark, record):
    results = benchmark.pedantic(run_dataset, args=(KAGGLE, 11), rounds=1, iterations=1)
    _check(results, "kaggle", record)


def test_fig10_terabyte(benchmark, record):
    results = benchmark.pedantic(run_dataset, args=(TERABYTE, 12), rounds=1, iterations=1)
    _check(results, "terabyte", record)
