"""Figure 7: representations across custom accelerators (TPU, IPU).

Paper observations reproduced as throughput speedups over table-CPU at the
serving workload's query scale:

O1  TPUs achieve the top speedups for embedding tables (3.12x chip,
    11.13x board) thanks to TPUEmbedding;
O2  IPUs excel on DHE when model + activations fit the 900 MB scratchpad
    (IPU-16: 16.65x);
O3  GPUs are the most energy-efficient for large table models;
O4  no single platform wins everywhere.
"""

from conftest import fmt_row

from repro.core.representations import paper_configs
from repro.hardware.catalog import (
    CPU_BROADWELL,
    GPU_V100,
    IPU_GC200,
    IPU_M2000,
    IPU_POD16,
    TPU_V3_BOARD,
    TPU_V3_CHIP,
    TPU_V3_CORE,
)
from repro.hardware.energy import energy_per_query
from repro.hardware.latency import estimate_breakdown
from repro.hardware.topology import plan_ipu_placement
from repro.models.configs import KAGGLE

QUERY_SIZE = 128  # the serving workload's mean (Section 5.3)
DEVICES = [
    CPU_BROADWELL, GPU_V100, TPU_V3_CORE, TPU_V3_CHIP, TPU_V3_BOARD,
    IPU_GC200, IPU_M2000, IPU_POD16,
]


def effective_device(rep, model, device):
    """IPU platforms re-plan placement per model size (Figure 6)."""
    if device.kind == "ipu" and device.n_chips > 1:
        return plan_ipu_placement(rep.embedding_bytes(model), device).device
    return device


def sweep():
    configs = paper_configs(KAGGLE)
    rows = {}
    for rep_name in ("table", "dhe", "hybrid"):
        rep = configs[rep_name]
        for device in DEVICES:
            spec = effective_device(rep, KAGGLE, device)
            bd = estimate_breakdown(rep, KAGGLE, spec, QUERY_SIZE)
            throughput = spec.concurrency * QUERY_SIZE / bd.total
            rows[(rep_name, device.name)] = {
                "throughput": throughput,
                "latency_ms": bd.total * 1e3,
                "energy_j": energy_per_query(spec, bd) * spec.concurrency,
            }
    return rows


def test_fig07_accelerators(benchmark, record):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base = rows[("table", "cpu-broadwell")]["throughput"]

    lines = []
    for rep_name in ("table", "dhe", "hybrid"):
        lines.append(f"-- {rep_name} (speedup vs table-CPU, query size {QUERY_SIZE}) --")
        for device in DEVICES:
            row = rows[(rep_name, device.name)]
            lines.append(
                fmt_row(
                    device.name,
                    speedup=row["throughput"] / base,
                    latency_ms=row["latency_ms"],
                    energy_per_sample_mj=row["energy_j"] / QUERY_SIZE * 1e3,
                )
            )
    lines.append("paper anchors: TPU chip 3.12x / board 11.13x (table); "
                 "IPU-16 16.65x (DHE)")
    record("Figure 7: accelerator compatibility", lines)

    speed = lambda rep, dev: rows[(rep, dev)]["throughput"] / base

    # O1: TPU leads for tables; board ~3-4x the chip.
    tpu_chip, tpu_board = speed("table", "tpu-v3-chip"), speed("table", "tpu-v3-board")
    assert 1.5 < tpu_chip < 6.5  # paper 3.12
    assert 6 < tpu_board < 20  # paper 11.13
    assert 2.5 < tpu_board / tpu_chip < 4.5
    assert tpu_board > speed("table", "ipu-pod16")
    assert tpu_chip > speed("table", "ipu-gc200")

    # O2: IPU-16 dominates DHE; single chip only helps when SRAM-resident.
    ipu16_dhe = speed("dhe", "ipu-pod16")
    assert 8 < ipu16_dhe < 28  # paper 16.65
    assert ipu16_dhe > speed("dhe", "tpu-v3-board")
    assert speed("dhe", "ipu-gc200") > speed("hybrid", "ipu-gc200")

    # O3: GPU is the most energy-efficient accelerator for tables.
    energy = lambda dev: rows[("table", dev)]["energy_j"]
    assert energy("gpu-v100") < energy("tpu-v3-chip")
    assert energy("gpu-v100") < energy("ipu-gc200")

    # O4: no platform is optimal for every representation.
    best_table = max(DEVICES, key=lambda d: speed("table", d.name))
    best_dhe = max(DEVICES, key=lambda d: speed("dhe", d.name))
    assert best_table.name != best_dhe.name
