"""Figure 3: the embedding-representation design space on Criteo Kaggle.

(a) model accuracy vs. capacity — DHE points sit 10-1000x left of tables;
(b) model accuracy vs. FLOPs — tables are cheapest, hybrid most accurate.
"""

from conftest import fmt_row

from repro.core.representations import paper_configs, representation_space
from repro.models.configs import KAGGLE
from repro.quality.estimator import QualityEstimator


def sweep_design_space():
    estimator = QualityEstimator("kaggle")
    points = []
    for rep in representation_space(KAGGLE):
        points.append(
            {
                "label": rep.display,
                "kind": rep.kind,
                "capacity_gb": rep.total_bytes(KAGGLE) / 1e9,
                "mflops": rep.flops_per_sample(KAGGLE) / 1e6,
                "accuracy": estimator.accuracy(rep),
            }
        )
    return points


def test_fig03_design_space(benchmark, record):
    points = benchmark.pedantic(sweep_design_space, rounds=1, iterations=1)

    by_kind = {}
    for point in points:
        by_kind.setdefault(point["kind"], []).append(point)

    best = {kind: max(pts, key=lambda p: p["accuracy"]) for kind, pts in by_kind.items()}
    smallest = {kind: min(pts, key=lambda p: p["capacity_gb"]) for kind, pts in by_kind.items()}

    lines = ["-- accuracy-optimal per kind (paper: hybrid on top) --"]
    for kind, point in sorted(best.items()):
        lines.append(fmt_row(point["label"], kind=kind, acc=point["accuracy"],
                             gb=point["capacity_gb"], mflops=point["mflops"]))
    lines.append("-- capacity-minimal per kind (paper: DHE 10-1000x smaller) --")
    for kind, point in sorted(smallest.items()):
        lines.append(fmt_row(point["label"], kind=kind, acc=point["accuracy"],
                             gb=point["capacity_gb"], mflops=point["mflops"]))
    record("Figure 3: design space (Kaggle)", lines)

    # Paper shape (a): hybrid achieves the best accuracy overall.
    overall_best = max(points, key=lambda p: p["accuracy"])
    assert overall_best["kind"] == "hybrid"
    # Paper shape (a): DHE capacities are orders of magnitude below tables.
    table_cfg = paper_configs(KAGGLE)["table"]
    table_gb = table_cfg.total_bytes(KAGGLE) / 1e9
    assert smallest["dhe"]["capacity_gb"] < table_gb / 10
    # Paper shape (b): tables have the fewest FLOPs; DHE/hybrid 10-100x more.
    table_flops = min(p["mflops"] for p in by_kind["table"])
    dhe_best_flops = best["dhe"]["mflops"]
    assert dhe_best_flops > 10 * max(table_flops, 1e-6)
