"""Geo-distributed serving: follow-the-sun spilling and region failover.

The planetary rung of the node -> cluster -> planet ladder: three
regions with diurnal peaks staggered a third of a day apart serve one
global stream.  Pinned routing takes each region's peak undiluted;
spill routing borrows the trough region's idle capacity over a metered
metro WAN.  The bench pins the geo-tier acceptance criteria: spilling
*strictly* lowers global SLA violations while staying within a pinned
WAN-byte budget, and a mid-day region failure at region replication 2
completes with zero lost queries (every displaced query re-homes over
the WAN), while replication 1 visibly bleeds.
"""

from conftest import fmt_row

from repro.experiments.setup import build_regions, follow_the_sun_scenario
from repro.models.configs import KAGGLE

N_REGIONS = 3
SCENARIO = dict(n_regions=N_REGIONS, n_queries=600, qps=1500.0, seed=42)
# Spilling must shave violations without unbounded WAN spend: the pinned
# budget is ~1.6x the measured spill traffic (~30 MB), so a regression
# that doubles bytes-per-shaved-violation fails the gate.
WAN_BYTE_BUDGET = 48e6


def _run(router: str, **kwargs):
    scenario, region_of = follow_the_sun_scenario(**SCENARIO)
    sim = build_regions(KAGGLE, N_REGIONS, geo_router=router, **kwargs)
    return sim.run(scenario, region_of)


def test_spill_beats_pinned_within_wan_budget(record):
    pinned = _run("pinned")
    spill = _run("spill")

    lines = [
        fmt_row(
            router,
            violations=res.result.violation_rate,
            p99_ms=res.result.p99_latency_s * 1e3,
            spills=res.spills,
            wan_mb=res.wan_bytes / 1e6,
            wan_cost_j=res.wan_cost_j,
        )
        for router, res in (("pinned", pinned), ("spill", spill))
    ]
    checks = [
        (
            "spill strictly lowers global violations",
            spill.result.violation_rate < pinned.result.violation_rate,
        ),
        (
            f"spill WAN bytes <= {WAN_BYTE_BUDGET / 1e6:.0f} MB budget",
            spill.wan_bytes <= WAN_BYTE_BUDGET,
        ),
        ("pinned pays zero WAN bytes", pinned.wan_bytes == 0),
    ]
    record("Follow-the-sun: pinned vs spill geo-routing", lines, checks=checks)
    assert all(ok for _, ok in checks)


def test_region_failover_zero_loss_at_replication_2(record):
    scenario, region_of = follow_the_sun_scenario(**SCENARIO)
    fail_at = scenario.queries[len(scenario.queries) // 4].arrival_s
    results = {
        repl: build_regions(
            KAGGLE, N_REGIONS, region_replication=repl,
            fail_region=1, fail_at=fail_at,
        ).run(scenario, region_of)
        for repl in (2, 1)
    }

    lines = [
        fmt_row(
            f"replication {repl}",
            rehomed=res.rehomed,
            rerouted=res.rerouted,
            lost=res.lost,
            edge_drops=res.edge_drops,
            wan_mb=res.wan_bytes / 1e6,
        )
        for repl, res in results.items()
    ]
    n_queries = len(scenario.queries)
    accounted = {
        repl: len(res.result.records) for repl, res in results.items()
    }
    checks = [
        ("replication 2 loses zero queries", results[2].lost == 0),
        (
            "replication 2 re-homes the dead region's traffic",
            results[2].rehomed > 0,
        ),
        (
            "every query accounted exactly once (repl 2)",
            accounted[2] == n_queries,
        ),
        (
            "every query accounted exactly once (repl 1)",
            accounted[1] == n_queries,
        ),
        (
            "replication 1 bleeds displaced queries",
            results[1].lost > 0,
        ),
    ]
    record("Region failover drill at t=25% of the day", lines, checks=checks)
    assert all(ok for _, ok in checks)
