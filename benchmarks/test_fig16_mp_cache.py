"""Figure 16: MP-Cache analysis — real numpy execution on the host CPU.

Paper: (a) ID access frequencies follow a power law (hot rows of Kaggle's
largest table see 10K+ accesses); (b) a 2 KB encoder cache already yields
1.57x, a 2 MB cache 1.92x, and the decoder's centroid/kNN tier closes the
~5x encoder-decoder vs. table gap.

This bench *measures wall-clock* on the numpy DHE stack (the one place the
host CPU is the actual device under test) and also reports the analytical
model's cache effect. Ablation rows cover encoder-only / decoder-only /
both, and the centroid-count sweep.
"""

import time

import numpy as np
from conftest import fmt_row

from repro.core.cached_inference import CachedDHE
from repro.core.mp_cache import DecoderCentroidCache, EncoderCache
from repro.data.zipf import ZipfSampler
from repro.embeddings.dhe import DHEEmbedding

DIM = 16
N_IDS = 1_000_000  # stand-in for Kaggle's 10M-row hottest table
ALPHA = 1.15
BATCHES = 30
BATCH_SIZE = 512


def wall_clock(fn, ids_stream) -> float:
    start = time.perf_counter()
    for ids in ids_stream:
        fn(ids)
    return time.perf_counter() - start


def build(rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    dhe = DHEEmbedding(dim=DIM, k=256, dnn=256, h=2, rng=rng)
    sampler = ZipfSampler(N_IDS, alpha=ALPHA, seed=1)
    stream = [sampler.sample(BATCH_SIZE) for _ in range(BATCHES)]
    return dhe, sampler, stream


def run_fig16():
    dhe, sampler, stream = build()

    # (a) power-law access counts.
    counts = np.bincount(np.concatenate(stream), minlength=N_IDS)
    top = np.sort(counts)[::-1]

    t_exact = wall_clock(dhe, stream)

    variants = {}
    for label, enc_bytes, n_centroids in (
        ("encoder-2KB", 2 * 1024, None),
        ("encoder-2MB", 2 * 1024 * 1024, None),
        ("decoder-only-N256", None, 256),
        ("both-2MB-N256", 2 * 1024 * 1024, 256),
        ("both-2MB-N64", 2 * 1024 * 1024, 64),
    ):
        cached = CachedDHE(
            dhe,
            encoder_cache=EncoderCache(enc_bytes, DIM) if enc_bytes else None,
            decoder_cache=(
                DecoderCentroidCache(n_centroids, seed=0) if n_centroids else None
            ),
        )
        cached.warm(sampler, profile_samples=2048)
        elapsed = wall_clock(cached.generate, stream)
        error = cached.approximation_error(sampler.sample(512))
        hit = (
            cached.encoder_cache.observed_hit_rate if cached.encoder_cache else 0.0
        )
        variants[label] = {
            "speedup": t_exact / elapsed,
            "hit_rate": hit,
            "rel_error": error,
        }
    return top, t_exact, variants


def test_fig16_mp_cache(benchmark, record):
    top, t_exact, variants = benchmark.pedantic(run_fig16, rounds=1, iterations=1)

    # Hit rates and approximation errors are deterministic (seeded model
    # + traffic); the measured wall-clock speedups are not and live in
    # the untracked raw record, with their pinned bands as checks.
    lines = [
        "-- (a) access frequency (power law) --",
        fmt_row("hottest id", count=int(top[0])),
        fmt_row("rank-100 id", count=int(top[99])),
        fmt_row("median id", count=int(np.median(top))),
        "-- (b) cache tiers: residency and approximation (deterministic) --",
    ]
    for label, row in variants.items():
        lines.append(fmt_row(
            label, hit_rate=row["hit_rate"], rel_error=row["rel_error"],
        ))
    lines.append("paper anchors: 2KB -> 1.57x, 2MB -> 1.92x; decoder kNN "
                 "closes the remaining gap")
    volatile = [
        "-- measured wall-clock vs exact encoder-decoder stack --",
        fmt_row("exact stack", seconds=t_exact),
    ]
    for label, row in variants.items():
        volatile.append(fmt_row(label, speedup=row["speedup"]))

    small, large = variants["encoder-2KB"], variants["encoder-2MB"]
    dec = variants["decoder-only-N256"]
    both = variants["both-2MB-N256"]
    coarse = variants["both-2MB-N64"]
    checks = [
        ("encoder-2KB speedup > 1.1x", small["speedup"] > 1.1),
        ("encoder cache speedup grows with capacity",
         small["speedup"] < large["speedup"]),
        ("encoder-2MB speedup > 1.4x", large["speedup"] > 1.4),
        ("decoder kNN tier alone > 1.2x", dec["speedup"] > 1.2),
        ("both tiers >= each tier alone",
         both["speedup"] >= large["speedup"]
         and both["speedup"] >= dec["speedup"]),
    ]
    record(
        "Figure 16: MP-Cache analysis", lines, volatile=volatile,
        checks=checks,
    )

    # (a) Power law: the hot head dwarfs the median (paper: 10K+ vs ~1).
    assert top[0] > 50 * max(1, np.median(top))
    # (b) The pinned wall-clock bands, enforced.
    assert all(ok for _, ok in checks), checks
    # Encoder-tier outputs are exact.
    assert small["rel_error"] < 1e-9
    assert large["hit_rate"] > small["hit_rate"]
    # Decoder approximation error is bounded; fewer centroids -> coarser.
    assert dec["rel_error"] < 0.9
    assert coarse["rel_error"] >= both["rel_error"] * 0.8
