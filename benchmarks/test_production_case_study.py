"""Section 6.1 production case study on the internal-like workload.

Paper: replacing the internal table-based model's embeddings with DHE
yields a noticeable compression ratio; hybrid improves accuracy by 0.014%;
DHE's extra FLOPs cost 23.59% throughput.
"""

from conftest import fmt_row

from repro.core.online import StaticScheduler
from repro.core.profiler import make_path
from repro.core.representations import RepresentationConfig
from repro.data.internal_like import INTERNAL_LIKE
from repro.hardware.catalog import GPU_V100
from repro.quality.estimator import QualityEstimator
from repro.serving.simulator import ServingSimulator
from repro.serving.workload import ServingScenario


def run_case_study():
    estimator = QualityEstimator("internal")
    dim = INTERNAL_LIKE.embedding_dim
    # Production stacks are tuned per use-case; with 64 sparse features the
    # deployed DHE is lighter than the Criteo characterization stack (the
    # paper reports only a 23.59% throughput cost, which bounds the stack).
    configs = {
        "table": RepresentationConfig("table", dim, label="table-prod"),
        "dhe": RepresentationConfig(
            "dhe", dim, k=2048, dnn=32, h=2, label="dhe-prod"
        ),
        "hybrid": RepresentationConfig(
            "hybrid", dim + dim // 2, k=2048, dnn=32, h=2,
            table_dim=dim, dhe_dim=dim // 2, label="hybrid-prod",
        ),
    }
    # Saturating load: the 23.59% figure is a capacity loss, only
    # visible when the device is the bottleneck.
    scenario = ServingScenario.paper_default(n_queries=1200, qps=2000.0, seed=81)

    rows = {}
    for rep_name in ("table", "dhe", "hybrid"):
        rep = configs[rep_name]
        path = make_path(
            rep, INTERNAL_LIKE, GPU_V100, estimator.accuracy(rep),
            label=rep_name.upper(),
        )
        result = ServingSimulator(
            StaticScheduler([path]), track_energy=False
        ).run(scenario)
        rows[rep_name] = {
            "accuracy": estimator.accuracy(rep),
            "footprint_gb": rep.embedding_bytes(INTERNAL_LIKE) / 1e9,
            "raw_tput": result.raw_throughput,
        }
    return rows


def test_production_case_study(benchmark, record):
    rows = benchmark.pedantic(run_case_study, rounds=1, iterations=1)

    compression = rows["table"]["footprint_gb"] / rows["dhe"]["footprint_gb"]
    hybrid_gain = rows["hybrid"]["accuracy"] - rows["table"]["accuracy"]
    tput_loss = 1.0 - rows["dhe"]["raw_tput"] / rows["table"]["raw_tput"]

    lines = [
        fmt_row("table", **rows["table"]),
        fmt_row("dhe", **rows["dhe"]),
        fmt_row("hybrid", **rows["hybrid"]),
        fmt_row("derived", compression=compression,
                hybrid_gain_pct=hybrid_gain, dhe_tput_loss=tput_loss),
        "paper anchors: noticeable compression; +0.014% hybrid accuracy; "
        "-23.59% DHE throughput",
    ]
    record("Production case study (internal-like workload)", lines)

    # Noticeable model compression from DHE.
    assert compression > 20
    # Hybrid's accuracy gain is the same order as the paper's +0.014%.
    assert 0.004 < hybrid_gain < 0.03
    # DHE costs throughput, in the ballpark of the paper's 23.59%.
    assert 0.10 < tput_loss < 0.45
