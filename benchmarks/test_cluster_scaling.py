"""Cluster serving: throughput scaling 1 -> 8 nodes and failover drills.

The scale-out argument of Section 6.9, run through the live cluster
simulator instead of the analytical ZionEX model: a saturating query
stream is served by 1/2/4/8-node clusters under the shard-locality
router, pinning near-linear raw-throughput scaling (>= 3x at 8 nodes,
the all-to-all exchange and the tail batches eat the rest).  A second
drill kills a node mid-run and pins that replication >= 2 completes with
zero lost in-flight queries, while an unreplicated cluster visibly
bleeds.
"""

from conftest import fmt_row

from repro.experiments.setup import run_cluster_serving
from repro.hardware.topology import ETHERNET_25G
from repro.models.configs import KAGGLE
from repro.serving.workload import ServingScenario

# Saturating load: arrivals land ~20x faster than one node drains them,
# so makespan — and therefore raw throughput — is service-bound and the
# cluster's extra nodes translate directly into finished work.
SATURATED = dict(n_queries=6000, qps=500_000.0)
NODES = (1, 2, 4, 8)
BATCHING = dict(max_batch_size=32, batch_timeout_s=0.0005)


def _throughputs(router: str) -> dict[int, float]:
    scenario = ServingScenario.paper_default(**SATURATED)
    results = {}
    for n in NODES:
        cluster = run_cluster_serving(
            KAGGLE, scenario, n_nodes=n, router=router,
            replication=min(2, n), **BATCHING,
        )
        results[n] = cluster.result.raw_throughput
    return results


def test_cluster_throughput_scaling(benchmark, record):
    tputs = benchmark.pedantic(
        lambda: _throughputs("locality"), rounds=1, iterations=1
    )

    lines = []
    for n in NODES:
        lines.append(
            fmt_row(
                f"{n} nodes (locality)",
                samples_per_s=tputs[n],
                speedup=tputs[n] / tputs[1],
            )
        )
    record("Cluster raw-throughput scaling, locality router", lines)

    # Monotone scaling, and >= 3x at 8 nodes (acceptance floor; measured
    # ~6x — the remainder is exchange latency plus the tail batches).
    assert tputs[2] > tputs[1]
    assert tputs[4] > tputs[2]
    assert tputs[8] > tputs[4]
    assert tputs[8] >= 3.0 * tputs[1]


def test_locality_beats_oblivious_routing_on_slow_links(record):
    # On a thin fabric the all-to-all dominates; routing each query to a
    # replica that owns its hot shard keeps most bytes local.
    scenario = ServingScenario.paper_default(**SATURATED)
    results = {
        router: run_cluster_serving(
            KAGGLE, scenario, n_nodes=8, router=router, replication=2,
            link=ETHERNET_25G, **BATCHING,
        ).result
        for router in ("round-robin", "locality")
    }
    record(
        "8-node cluster on 25 GbE: locality vs round-robin",
        [
            fmt_row(
                router,
                samples_per_s=res.raw_throughput,
                p99_ms=res.p99_latency_s * 1e3,
            )
            for router, res in results.items()
        ],
    )
    assert (
        results["locality"].raw_throughput
        > results["round-robin"].raw_throughput
    )


def test_failover_with_replication_loses_nothing(record):
    scenario = ServingScenario.paper_default(n_queries=3000, qps=100_000.0)
    fail_at = scenario.queries.queries[1500].arrival_s
    replicated = run_cluster_serving(
        KAGGLE, scenario, n_nodes=4, router="locality", replication=2,
        fail_at=fail_at, fail_node=1, **BATCHING,
    )
    unreplicated = run_cluster_serving(
        KAGGLE, scenario, n_nodes=4, router="locality", replication=1,
        fail_at=fail_at, fail_node=1, **BATCHING,
    )
    record(
        "Node-failure drill at mid-run (4 nodes, fail node 1)",
        [
            fmt_row(
                "replication=2",
                rerouted=replicated.rerouted,
                lost=replicated.lost,
                drop_rate=replicated.result.drop_rate,
            ),
            fmt_row(
                "replication=1",
                rerouted=unreplicated.rerouted,
                lost=unreplicated.lost,
                edge_drops=unreplicated.edge_drops,
                drop_rate=unreplicated.result.drop_rate,
            ),
        ],
    )

    # Replication >= 2: zero lost in-flight queries, every query served.
    assert replicated.lost == 0
    assert replicated.rerouted > 0
    assert replicated.result.drop_rate == 0.0
    indices = sorted(r.index for r in replicated.result.records)
    assert indices == list(range(len(scenario.queries)))

    # Replication 1: the dead node's shards are gone and it shows.
    assert unreplicated.lost + unreplicated.edge_drops > 0
    assert unreplicated.result.drop_rate > 0.0
