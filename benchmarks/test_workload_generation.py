"""Workload-generation scale check: batched numpy draws vs per-query RNG.

Scenario construction at 100k+ queries used to be dominated by one RNG
call per candidate arrival (thinning loops for ``diurnal`` /
``flash-crowd``, one exponential per arrival for ``mmpp``).  The
generators in :mod:`repro.data.queries` now draw in bulk chunks; this
bench retains the seed per-query loops as the baseline and pins the
speedup floor, plus distributional sanity (the vectorized processes must
keep the same long-run rate).
"""

import time

import numpy as np
from conftest import fmt_row

from repro.data.queries import arrival_times

N_QUERIES = 200_000
QPS = 1000.0
SPEEDUP_FLOOR = 3.0


# ---- the seed per-query loops, retained as wall-clock baselines ----------


def scalar_diurnal(n_queries, mean_qps, rng, period_s=10.0, amplitude=0.6):
    peak = mean_qps * (1.0 + amplitude)
    times = []
    t = 0.0
    while len(times) < n_queries:
        t += rng.exponential(1.0 / peak)
        rate = mean_qps * (1.0 + amplitude * np.sin(2 * np.pi * t / period_s))
        if rng.random() < rate / peak:
            times.append(t)
    return np.array(times)


def scalar_mmpp(n_queries, mean_qps, rng, burst_factor=4.0, duty=0.2,
                mean_dwell_s=1.0):
    rate_high = burst_factor * mean_qps
    rate_low = mean_qps * (1.0 - duty * burst_factor) / (1.0 - duty)
    dwell_high = mean_dwell_s * duty
    dwell_low = mean_dwell_s * (1.0 - duty)
    times = np.empty(n_queries)
    count = 0
    t = 0.0
    bursting = False
    state_end = rng.exponential(dwell_low)
    while count < n_queries:
        rate = rate_high if bursting else rate_low
        t_next = t + rng.exponential(1.0 / rate)
        if t_next >= state_end:
            t = state_end
            bursting = not bursting
            state_end = t + rng.exponential(
                dwell_high if bursting else dwell_low
            )
            continue
        t = t_next
        times[count] = t
        count += 1
    return times


def scalar_flash_crowd(n_queries, base_qps, rng, spike_factor=5.0,
                       spike_start_frac=0.5, spike_duration_frac=0.1):
    horizon = n_queries / base_qps
    spike_start = spike_start_frac * horizon
    spike_end = spike_start + spike_duration_frac * horizon
    peak = base_qps * spike_factor
    times = np.empty(n_queries)
    count = 0
    t = 0.0
    while count < n_queries:
        t += rng.exponential(1.0 / peak)
        in_spike = spike_start <= t < spike_end
        rate = peak if in_spike else base_qps
        if in_spike or rng.random() < rate / peak:
            times[count] = t
            count += 1
    return times


SCALAR = {
    "diurnal": scalar_diurnal,
    "mmpp": scalar_mmpp,
    "flash-crowd": scalar_flash_crowd,
}


def run_generation():
    out = {}
    for process, scalar_fn in SCALAR.items():
        t0 = time.perf_counter()
        scalar_times = scalar_fn(N_QUERIES, QPS, np.random.default_rng(7))
        t_scalar = time.perf_counter() - t0

        t0 = time.perf_counter()
        vector_times = arrival_times(
            N_QUERIES, QPS, rng=np.random.default_rng(7), process=process
        )
        t_vector = time.perf_counter() - t0
        out[process] = (t_scalar, t_vector, scalar_times, vector_times)
    return out


def test_workload_generation_speedup(benchmark, record):
    results = benchmark.pedantic(run_generation, rounds=1, iterations=1)

    timings = []
    checks = []
    for process, (t_scalar, t_vector, scalar_times, vector_times) in (
        results.items()
    ):
        speedup = t_scalar / t_vector
        timings.append(fmt_row(
            process, scalar_ms=t_scalar * 1e3, vector_ms=t_vector * 1e3,
            speedup=speedup,
        ))
        # Same process, same long-run behavior: monotone timestamps and a
        # matching achieved rate (different draw sequences are expected).
        rate_ok = bool(np.all(np.diff(vector_times) >= 0))
        scalar_rate = N_QUERIES / scalar_times[-1]
        vector_rate = N_QUERIES / vector_times[-1]
        rate_ok = rate_ok and abs(vector_rate - scalar_rate) / scalar_rate < 0.10
        checks.append((
            f"{process}: vectorized >= {SPEEDUP_FLOOR:.0f}x the scalar loop "
            "(pinned floor)", speedup >= SPEEDUP_FLOOR,
        ))
        checks.append((
            f"{process}: monotone arrivals, long-run rate within 10%", rate_ok,
        ))

    record(
        f"Workload generation: {N_QUERIES} arrivals @ {QPS:.0f} QPS",
        [],
        volatile=timings,
        checks=checks,
    )
    assert all(ok for _, ok in checks), checks
