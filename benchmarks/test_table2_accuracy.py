"""Table 2: achievable model accuracies of optimal representation-hardware
mappings.

Paper:               Table    DHE     Hybrid   MP-Rec
  Kaggle             78.79    78.94   78.98    78.98
  Terabyte           80.81    80.99   81.03    81.03
"""

from conftest import fmt_row

from repro.core.offline import OfflinePlanner
from repro.core.representations import paper_configs
from repro.experiments.setup import hw1_devices
from repro.models.configs import KAGGLE, TERABYTE
from repro.quality.estimator import QualityEstimator

PAPER = {
    "kaggle": {"table": 78.79, "dhe": 78.94, "hybrid": 78.98, "mp-rec": 78.98},
    "terabyte": {"table": 80.81, "dhe": 80.99, "hybrid": 81.03, "mp-rec": 81.03},
}


def compute_accuracies():
    out = {}
    for name, model in (("kaggle", KAGGLE), ("terabyte", TERABYTE)):
        estimator = QualityEstimator(name)
        configs = paper_configs(model)
        row = {
            rep_name: estimator.accuracy(configs[rep_name])
            for rep_name in ("table", "dhe", "hybrid")
        }
        plan = OfflinePlanner(model, estimator).plan(hw1_devices())
        row["mp-rec"] = plan.best_accuracy()
        out[name] = row
    return out


def test_table2_accuracy(benchmark, record):
    accuracies = benchmark.pedantic(compute_accuracies, rounds=1, iterations=1)

    lines = []
    for dataset, row in accuracies.items():
        lines.append(f"-- {dataset} --")
        for rep_name, acc in row.items():
            lines.append(
                fmt_row(rep_name, measured=acc, paper=PAPER[dataset][rep_name])
            )
    record("Table 2: achievable accuracies", lines)

    for dataset, row in accuracies.items():
        paper_row = PAPER[dataset]
        for rep_name, acc in row.items():
            assert abs(acc - paper_row[rep_name]) < 0.03, (dataset, rep_name)
        # MP-Rec conditionally matches the hybrid optimum (Insight 1).
        assert abs(row["mp-rec"] - row["hybrid"]) < 1e-6
        assert row["table"] < row["dhe"] < row["hybrid"]
