"""Classification metrics: accuracy, ROC-AUC, log loss."""

from __future__ import annotations

import numpy as np


def accuracy(probs: np.ndarray, labels: np.ndarray, threshold: float = 0.5) -> float:
    """Fraction of correct thresholded predictions — the paper's CTR metric."""
    probs = np.asarray(probs)
    labels = np.asarray(labels)
    _check_shapes(probs, labels)
    preds = (probs >= threshold).astype(labels.dtype)
    return float(np.mean(preds == labels))


def roc_auc(probs: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve via the rank-statistic (Mann-Whitney) form."""
    probs = np.asarray(probs, dtype=np.float64)
    labels = np.asarray(labels)
    _check_shapes(probs, labels)
    pos = labels == 1
    n_pos = int(pos.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_auc needs both classes present")
    ranks = _average_ranks(probs)
    pos_rank_sum = ranks[pos].sum()
    return float((pos_rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def log_loss(probs: np.ndarray, labels: np.ndarray, eps: float = 1e-12) -> float:
    """Mean binary cross-entropy over probabilities."""
    probs = np.clip(np.asarray(probs, dtype=np.float64), eps, 1.0 - eps)
    labels = np.asarray(labels, dtype=np.float64)
    _check_shapes(probs, labels)
    return float(
        -np.mean(labels * np.log(probs) + (1.0 - labels) * np.log(1.0 - probs))
    )


def _average_ranks(values: np.ndarray) -> np.ndarray:
    """1-based ranks with ties averaged (needed for an unbiased AUC)."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.size, dtype=np.float64)
    sorted_vals = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        avg = (i + j) / 2.0 + 1.0
        ranks[order[i : j + 1]] = avg
        i = j + 1
    return ranks


def _check_shapes(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
