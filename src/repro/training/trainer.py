"""Mini-batch trainer for the numpy DLRM on synthetic CTR data."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.synthetic import Batch, SyntheticCTRDataset
from repro.models.dlrm import DLRM
from repro.nn.losses import bce_with_logits
from repro.nn.optim import Optimizer, SGD
from repro.training.metrics import accuracy, log_loss, roc_auc


@dataclass
class TrainResult:
    losses: list[float] = field(default_factory=list)
    eval_accuracy: float = 0.0
    eval_auc: float = 0.0
    eval_logloss: float = 0.0

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


class Trainer:
    """Trains a DLRM against a synthetic dataset with BCE loss."""

    def __init__(
        self,
        model: DLRM,
        dataset: SyntheticCTRDataset,
        optimizer: Optimizer | None = None,
        lr: float = 0.1,
    ) -> None:
        self.model = model
        self.dataset = dataset
        self.optimizer = optimizer or SGD(model.parameters(), lr=lr)

    def train_step(self, batch: Batch) -> float:
        logits = self.model(batch.dense, batch.sparse)
        loss, grad = bce_with_logits(logits, batch.labels)
        self.model.zero_grad()
        self.model.backward(grad)
        self.optimizer.step()
        return loss

    def train(
        self,
        n_steps: int,
        batch_size: int = 128,
        eval_samples: int = 4096,
    ) -> TrainResult:
        result = TrainResult()
        for _ in range(n_steps):
            batch = self.dataset.sample_batch(batch_size)
            result.losses.append(self.train_step(batch))
        evaluation = self.evaluate(eval_samples)
        result.eval_accuracy = evaluation["accuracy"]
        result.eval_auc = evaluation["auc"]
        result.eval_logloss = evaluation["logloss"]
        return result

    def evaluate(self, n_samples: int = 4096, batch_size: int = 512) -> dict[str, float]:
        probs_all: list[np.ndarray] = []
        labels_all: list[np.ndarray] = []
        remaining = n_samples
        while remaining > 0:
            batch = self.dataset.sample_batch(min(batch_size, remaining))
            probs_all.append(self.model.predict_proba(batch.dense, batch.sparse))
            labels_all.append(batch.labels)
            remaining -= len(batch)
        probs = np.concatenate(probs_all)
        labels = np.concatenate(labels_all)
        return {
            "accuracy": accuracy(probs, labels),
            "auc": roc_auc(probs, labels),
            "logloss": log_loss(probs, labels),
        }
