"""Training loops and evaluation metrics for the numpy DLRM."""

from repro.training.trainer import Trainer, TrainResult
from repro.training.metrics import accuracy, roc_auc, log_loss

__all__ = ["Trainer", "TrainResult", "accuracy", "roc_auc", "log_loss"]
