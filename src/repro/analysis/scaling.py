"""Multi-node scaling analysis (Section 6.9, Figure 18).

Production models with terabyte-scale tables must shard across nodes; each
training iteration then pays All-to-All (embedding exchange) and AllReduce
(data-parallel MLP gradients). On ZionEX, exposed communication is ~40% of
training time. DHE compresses the model by orders of magnitude (334x on
Terabyte), letting it fit one node: the communication disappears and is
replaced by extra DHE compute — a net ~36% reduction at 128 GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ScalingComparison:
    """Paper-metric view of table-sharded vs. DHE-single-node execution."""

    nodes: int
    table_time_per_iter_s: float
    dhe_time_per_iter_s: float
    table_comm_fraction: float

    @property
    def time_reduction(self) -> float:
        """Fractional reduction in iteration time from switching to DHE."""
        return 1.0 - self.dhe_time_per_iter_s / self.table_time_per_iter_s


@dataclass(frozen=True)
class ZionEXModel:
    """Analytical per-iteration time model of a ZionEX-like training system.

    Compute follows the model FLOPs at per-GPU efficiency; communication
    covers All-to-All on embedding vectors and ring-AllReduce on dense
    gradients over the scale-out NICs. ``comm_exposed_fraction`` is the part
    not overlapped with compute (ZionEX exposes ~40%).
    """

    gpus_per_node: int = 8
    gpu_flops: float = 14.0e12
    gpu_efficiency: float = 0.45
    nic_bandwidth: float = 25e9  # bytes/s per node, scale-out fabric
    comm_exposed_fraction: float = 1.0
    # DHE replaces table lookups with decoder compute; at training batch
    # sizes the dense MLPs dominate, so the total-FLOPs multiplier is small.
    dhe_compute_multiplier: float = 1.1

    def iteration_time(
        self,
        n_nodes: int,
        batch_per_iter: int,
        model_flops_per_sample: float,
        embedding_vector_bytes: int,
        dense_grad_bytes: int,
        sharded: bool,
    ) -> tuple[float, float]:
        """Returns ``(compute_s, exposed_comm_s)`` for one iteration."""
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        total_flops = 3.0 * batch_per_iter * model_flops_per_sample  # fwd+bwd
        aggregate_rate = (
            n_nodes * self.gpus_per_node * self.gpu_flops * self.gpu_efficiency
        )
        compute = total_flops / aggregate_rate
        comm = 0.0
        if sharded and n_nodes > 1:
            # All-to-All: each sample's embedding rows cross nodes twice
            # (forward gather + backward scatter).
            alltoall_bytes = 2.0 * batch_per_iter * embedding_vector_bytes
            alltoall = alltoall_bytes * (n_nodes - 1) / n_nodes / (
                n_nodes * self.nic_bandwidth
            )
            # Ring AllReduce on dense grads: 2(N-1)/N of the payload per node.
            allreduce = (
                2.0 * (n_nodes - 1) / n_nodes * dense_grad_bytes / self.nic_bandwidth
            )
            comm = (alltoall + allreduce) * self.comm_exposed_fraction
        return compute, comm

    def compare(
        self,
        n_nodes: int,
        batch_per_iter: int,
        model_flops_per_sample: float,
        embedding_vector_bytes: int,
        dense_grad_bytes: int,
    ) -> ScalingComparison:
        """Table (sharded, N nodes) vs. DHE (compressed, same N for compute)."""
        t_compute, t_comm = self.iteration_time(
            n_nodes, batch_per_iter, model_flops_per_sample,
            embedding_vector_bytes, dense_grad_bytes, sharded=True,
        )
        table_total = t_compute + t_comm
        # DHE: no embedding exchange (model replicated — it fits per node);
        # AllReduce still syncs the (small) dense + decoder grads, but that
        # payload shrinks by orders of magnitude and is overlapped. Extra DHE
        # compute scales the FLOPs.
        d_compute, _ = self.iteration_time(
            n_nodes, batch_per_iter,
            model_flops_per_sample * self.dhe_compute_multiplier,
            embedding_vector_bytes, dense_grad_bytes, sharded=False,
        )
        comm_fraction = t_comm / table_total if table_total > 0 else 0.0
        return ScalingComparison(
            nodes=n_nodes,
            table_time_per_iter_s=table_total,
            dhe_time_per_iter_s=d_compute,
            table_comm_fraction=comm_fraction,
        )
