"""Plain-text figure rendering: ASCII bar charts and aligned tables.

Benchmarks and examples regenerate the paper's figures as text; these
helpers keep that output legible without any plotting dependency.
"""

from __future__ import annotations


def bar_chart(
    values: dict[str, float],
    width: int = 40,
    unit: str = "",
    reference: str | None = None,
) -> list[str]:
    """Horizontal ASCII bars, optionally normalized to a reference key."""
    if not values:
        return []
    if any(v < 0 for v in values.values()):
        raise ValueError("bar_chart values must be non-negative")
    scale = max(values.values()) or 1.0
    label_width = max(len(k) for k in values)
    ref = values.get(reference) if reference else None
    lines = []
    for key, value in values.items():
        bar = "#" * max(1 if value > 0 else 0, round(value / scale * width))
        suffix = f" {value:.4g}{unit}"
        if ref:
            suffix += f" ({value / ref:.2f}x)"
        lines.append(f"{key:<{label_width}} |{bar:<{width}}|{suffix}")
    return lines


def table(rows: list[dict[str, object]], float_fmt: str = ".4g") -> list[str]:
    """Aligned text table from a list of same-keyed dicts."""
    if not rows:
        return []
    headers = list(rows[0])
    rendered = [
        {
            h: (format(v, float_fmt) if isinstance(v, float) else str(v))
            for h, v in row.items()
        }
        for row in rows
    ]
    widths = {
        h: max(len(h), *(len(r[h]) for r in rendered)) for h in headers
    }
    lines = [
        "  ".join(h.ljust(widths[h]) for h in headers),
        "  ".join("-" * widths[h] for h in headers),
    ]
    for row in rendered:
        lines.append("  ".join(row[h].ljust(widths[h]) for h in headers))
    return lines
