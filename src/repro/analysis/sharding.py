"""Embedding-table sharding across nodes (Section 6.9 substrate).

Production table-based models must shard across nodes; the placement
determines per-node memory, the all-to-all exchange volume, and lookup
fan-out. This module provides the standard greedy (longest-processing-time)
table-wise sharder plus row-wise splitting for tables too large for any
single node — the baseline MP-Rec's DHE path removes the need for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def replica_nodes(anchor: int, replication: int, n_nodes: int) -> tuple[int, ...]:
    """The replication chain anchored at ``anchor``: the anchor plus its
    ``replication - 1`` successors, mod ``n_nodes``.  This is the single
    placement rule that shard-group ownership, table-slice replication,
    and a joining node's warm-payload pricing all share — change it here
    and every consumer moves together."""
    return tuple((anchor + k) % n_nodes for k in range(replication))


@dataclass
class ShardingPlan:
    """Placement of each table (or table slice) onto nodes."""

    n_nodes: int
    dim: int
    # assignment[f] = list of (node, rows) slices for feature f.
    assignment: list[list[tuple[int, int]]] = field(default_factory=list)

    def cardinalities(self) -> list[int]:
        """Recover each feature's row count (its slices summed) — what an
        elastic cluster needs to re-shard the same tables onto a different
        node count when membership changes."""
        return [sum(rows for _, rows in slices) for slices in self.assignment]

    def node_bytes(self) -> np.ndarray:
        totals = np.zeros(self.n_nodes)
        for slices in self.assignment:
            for node, rows in slices:
                totals[node] += rows * self.dim * 4
        return totals

    @property
    def imbalance(self) -> float:
        """Max/mean node load; 1.0 is perfectly balanced."""
        loads = self.node_bytes()
        mean = loads.mean()
        return float(loads.max() / mean) if mean > 0 else 1.0

    def lookup_fanout(self) -> float:
        """Nodes touched per sample (one lookup per feature; row-wise
        shards hit one node per lookup, chosen by row ID)."""
        nodes_per_feature = self.feature_nodes()
        # One sample's 26 lookups land on the union of the hosting nodes;
        # for row-wise sharded features any single node may be hit, so count
        # them as one node per lookup (expected fan-out contribution 1).
        all_nodes = set()
        for nodes in nodes_per_feature:
            if len(nodes) == 1:
                all_nodes |= nodes
        row_wise = sum(1 for nodes in nodes_per_feature if len(nodes) > 1)
        return min(self.n_nodes, len(all_nodes) + row_wise)

    def feature_nodes(self) -> list[set[int]]:
        """Nodes hosting (any slice of) each feature — table-wise features
        live on one node, row-split features on every node they span."""
        return [{node for node, _ in slices} for slices in self.assignment]

    def alltoall_bytes_per_sample(self) -> int:
        """Embedding bytes a sample pulls from remote nodes (worst case:
        every feature remote)."""
        n_features = len(self.assignment)
        remote_fraction = (self.n_nodes - 1) / self.n_nodes
        return int(n_features * self.dim * 4 * remote_fraction)


def greedy_shard(
    cardinalities: list[int],
    dim: int,
    n_nodes: int,
    node_capacity_bytes: int | None = None,
) -> ShardingPlan:
    """Table-wise LPT sharding; tables exceeding a node's capacity are
    split row-wise across all nodes (RecShard-style fallback)."""
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    plan = ShardingPlan(
        n_nodes=n_nodes, dim=dim, assignment=[[] for _ in cardinalities]
    )
    loads = np.zeros(n_nodes)
    order = sorted(
        range(len(cardinalities)), key=lambda f: cardinalities[f], reverse=True
    )
    for f in order:
        rows = cardinalities[f]
        table_bytes = rows * dim * 4
        if node_capacity_bytes is not None and table_bytes > node_capacity_bytes:
            # Row-wise split: every node takes an equal slice.
            slice_rows = -(-rows // n_nodes)
            for node in range(n_nodes):
                take = min(slice_rows, rows - node * slice_rows)
                if take > 0:
                    plan.assignment[f].append((node, take))
                    loads[node] += take * dim * 4
            continue
        node = int(np.argmin(loads))
        plan.assignment[f].append((node, rows))
        loads[node] += table_bytes
    return plan


def round_robin_shard(cardinalities: list[int], dim: int, n_nodes: int) -> ShardingPlan:
    """Naive baseline: feature f goes to node f % n_nodes."""
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    plan = ShardingPlan(
        n_nodes=n_nodes, dim=dim, assignment=[[] for _ in cardinalities]
    )
    for f, rows in enumerate(cardinalities):
        plan.assignment[f].append((f % n_nodes, rows))
    return plan
