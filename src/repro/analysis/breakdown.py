"""Operator-breakdown tables (Figure 5)."""

from __future__ import annotations

from repro.core.representations import RepresentationConfig
from repro.hardware.device import DeviceSpec
from repro.hardware.latency import OperatorBreakdown, estimate_breakdown
from repro.models.configs import ModelConfig


def breakdown_table(
    reps: dict[str, RepresentationConfig],
    model: ModelConfig,
    device: DeviceSpec,
    batch_size: int,
) -> dict[str, OperatorBreakdown]:
    """Per-representation operator breakdowns on one device."""
    return {
        name: estimate_breakdown(rep, model, device, batch_size)
        for name, rep in reps.items()
    }


def slowdown_vs(
    breakdowns: dict[str, OperatorBreakdown], baseline: str = "table"
) -> dict[str, float]:
    """Total-latency slowdown of each representation vs. the baseline."""
    if baseline not in breakdowns:
        raise KeyError(f"baseline {baseline!r} missing from breakdowns")
    base = breakdowns[baseline].total
    return {name: bd.total / base for name, bd in breakdowns.items()}
