"""Analysis helpers: operator breakdowns and multi-node scaling models."""

from repro.analysis.breakdown import breakdown_table, slowdown_vs
from repro.analysis.scaling import ZionEXModel, ScalingComparison
from repro.analysis.sharding import ShardingPlan, greedy_shard, round_robin_shard

__all__ = [
    "breakdown_table",
    "slowdown_vs",
    "ZionEXModel",
    "ScalingComparison",
    "ShardingPlan",
    "greedy_shard",
    "round_robin_shard",
]
