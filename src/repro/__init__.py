"""repro — a full reproduction of MP-Rec (ASPLOS 2023).

Multi-Path Recommendation: hardware-software co-design that pairs embedding
representations (table / DHE / select / hybrid) with heterogeneous hardware
(CPU / GPU / TPU / IPU) and schedules inference queries across the resulting
execution paths to maximize throughput of correct predictions under SLA
latency targets.

Top-level convenience imports cover the quickstart path; subpackages hold
the full API (see docs/architecture.md for the package-by-package tour).
"""

__version__ = "1.0.0"

from repro.models import DLRM, build_dlrm, KAGGLE, TERABYTE, KAGGLE_MINI, TERABYTE_MINI
from repro.data import make_dataset, generate_query_set
from repro.training import Trainer

__all__ = [
    "DLRM",
    "build_dlrm",
    "KAGGLE",
    "TERABYTE",
    "KAGGLE_MINI",
    "TERABYTE_MINI",
    "make_dataset",
    "generate_query_set",
    "Trainer",
    "__version__",
]
