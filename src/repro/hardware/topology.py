"""Multi-chip placement strategies and cluster interconnect costs
(Figure 6, Sections 3.4 and 6.9).

``plan_ipu_placement`` reproduces the paper's Figure 6 decision tree for a
given model footprint: a model that fits one chip's 900 MB scratchpad is
replicated across all chips (full data parallelism — DHE's sweet spot); one
that fits a 4-chip board's aggregate SRAM is pipelined per board and the
board plan replicated across the pod; one that only fits the pod's combined
SRAM is sharded (each chip a unique shard — no data parallelism, the
Terabyte table/hybrid limitation of Insight 6); anything larger spills to
Streaming Memory.

:class:`LinkSpec` extends the same cost vocabulary across *nodes*: a
sharded serving cluster pays an all-to-all embedding exchange on every
query batch, and the link's (alpha = per-message latency, beta = inverse
bandwidth) pair prices that exchange. ``alltoall_exchange_time`` is the
standard (p-1)·alpha + bytes·beta personalized-exchange model used by
:mod:`repro.serving.cluster`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.hardware.device import DeviceSpec


@dataclass(frozen=True)
class LinkSpec:
    """One inter-node link class: per-message latency + per-node bandwidth."""

    name: str
    bandwidth: float  # bytes/s in or out of one node
    latency_s: float  # one-way per-message latency (alpha term)

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")

    def transfer_time(self, nbytes: float) -> float:
        """Point-to-point time for one message of ``nbytes``."""
        if nbytes <= 0:
            return 0.0
        return self.latency_s + nbytes / self.bandwidth


# Scale-out fabrics a recommendation fleet actually deploys on.  Bandwidths
# are per-node payload rates (25/100 GbE at ~line rate); RDMA shaves the
# per-message software latency by an order of magnitude.
ETHERNET_25G = LinkSpec(name="eth-25g", bandwidth=3.125e9, latency_s=20e-6)
ETHERNET_100G = LinkSpec(name="eth-100g", bandwidth=12.5e9, latency_s=15e-6)
RDMA_100G = LinkSpec(name="rdma-100g", bandwidth=12.5e9, latency_s=2e-6)

CLUSTER_LINKS = {
    link.name: link for link in (ETHERNET_25G, ETHERNET_100G, RDMA_100G)
}

# WAN-class links joining *regions* (repro.serving.region): tens of
# milliseconds of one-way propagation latency and metered per-path
# bandwidth, orders of magnitude past any intra-cluster fabric.  Metro =
# same metro area (dark fiber), transcon = transcontinental backbone,
# intercont = intercontinental submarine cable.  The per-byte dollar/
# energy pricing of these links lives with the geo layer
# (:mod:`repro.serving.wan`); this module only knows time.
WAN_METRO = LinkSpec(name="wan-metro", bandwidth=2.5e9, latency_s=0.012)
WAN_TRANSCON = LinkSpec(name="wan-transcon", bandwidth=1.25e9, latency_s=0.035)
WAN_INTERCONT = LinkSpec(name="wan-intercont", bandwidth=6.25e8, latency_s=0.080)

WAN_LINKS = {
    link.name: link for link in (WAN_METRO, WAN_TRANSCON, WAN_INTERCONT)
}


def alltoall_exchange_time(
    remote_bytes: float, n_participants: int, link: LinkSpec
) -> float:
    """Time for one node to complete a personalized all-to-all round.

    ``remote_bytes`` is the payload this node pulls from its peers; the
    alpha term pays one message setup per remote peer ((p-1)·latency), the
    beta term streams the payload at the node's link bandwidth.  Zero when
    the node is alone or needs nothing remote — a single-node "cluster"
    degenerates to the plain engine.
    """
    if n_participants < 1:
        raise ValueError("n_participants must be >= 1")
    if n_participants == 1 or remote_bytes <= 0:
        return 0.0
    return (n_participants - 1) * link.latency_s + remote_bytes / link.bandwidth


@dataclass(frozen=True)
class ShardedPlacement:
    """How a model maps onto a multi-chip platform."""

    device: DeviceSpec  # spec with parallelism/replicas set for the strategy
    strategy: str  # "data" | "pipeline" | "sharded" | "spill"
    fits_on_chip: bool
    spilled_bytes: int = 0
    replicas: int = 1  # concurrent whole-query servers


def scale_out(device: DeviceSpec, n_chips: int, parallelism: str = "replicated") -> DeviceSpec:
    """Compose ``n_chips`` copies of a single-chip spec into one platform."""
    if n_chips < 1:
        raise ValueError("n_chips must be >= 1")
    if parallelism not in ("data", "replicated", "pipeline", "sharded"):
        raise ValueError(f"unknown parallelism {parallelism!r}")
    replicas = n_chips if parallelism == "replicated" else 1
    return replace(
        device,
        name=f"{device.name}-x{n_chips}-{parallelism}",
        peak_flops=device.peak_flops * n_chips,
        dram_bandwidth=device.dram_bandwidth * n_chips,
        dram_capacity=device.dram_capacity * n_chips,
        sram_capacity=device.sram_capacity * n_chips,
        sram_bandwidth=device.sram_bandwidth * n_chips,
        tdp_w=device.tdp_w * n_chips,
        idle_w=device.idle_w * n_chips,
        n_chips=device.n_chips * n_chips,
        parallelism=parallelism,
        replicas=replicas,
    )


def plan_ipu_placement(model_bytes: int, pod: DeviceSpec) -> ShardedPlacement:
    """Decide how a model of ``model_bytes`` runs on an IPU platform."""
    if model_bytes < 0:
        raise ValueError("model_bytes must be non-negative")
    chips = max(1, pod.n_chips)
    sram_per_chip = pod.sram_per_chip
    if model_bytes <= sram_per_chip:
        return ShardedPlacement(
            device=replace(pod, parallelism="replicated", replicas=chips),
            strategy="data",
            fits_on_chip=True,
            replicas=chips,
        )
    chips_per_board = min(4, chips)
    boards = max(1, chips // chips_per_board)
    if model_bytes <= sram_per_chip * chips_per_board:
        return ShardedPlacement(
            device=replace(pod, parallelism="pipeline", replicas=boards),
            strategy="pipeline",
            fits_on_chip=False,
            replicas=boards,
        )
    if model_bytes <= pod.sram_capacity:
        return ShardedPlacement(
            device=replace(pod, parallelism="sharded", replicas=1),
            strategy="sharded",
            fits_on_chip=False,
            replicas=1,
        )
    return ShardedPlacement(
        device=replace(pod, parallelism="sharded", replicas=1),
        strategy="spill",
        fits_on_chip=False,
        spilled_bytes=model_bytes - pod.sram_capacity,
        replicas=1,
    )
