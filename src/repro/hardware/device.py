"""Device specification for the analytical roofline model."""

from __future__ import annotations

from dataclasses import dataclass, replace

GB = 1024**3
MB = 1024**2

PARALLELISM_MODES = ("single", "data", "replicated", "pipeline", "sharded")


@dataclass(frozen=True)
class DeviceSpec:
    """One hardware platform (possibly multi-chip).

    Calibration constants (``gather_efficiency``, ``mlp_efficiency``,
    ``small_gemm_factor``, ``elementwise_efficiency``) are fractions of peak
    achieved on the relevant operator class; they are fixed once in
    :mod:`repro.hardware.catalog` so the paper's relative results emerge
    rather than being hard-coded.

    Multi-chip semantics (``parallelism``):

    - ``single``    — the spec is one device.
    - ``data``      — one query's batch splits across chips (latency win).
    - ``replicated``— chips serve whole queries independently (throughput
                      win; ``replicas`` concurrent servers).
    - ``pipeline``  — the model is staged across chips' SRAM; per-query
                      latency runs at one chip's compute rate, microbatch
                      overlap yields ``replicas`` effective servers.
    - ``sharded``   — each chip owns a unique model shard; chips cooperate
                      on every query (all-to-all), concurrency is 1.
    """

    name: str
    kind: str  # "cpu" | "gpu" | "tpu" | "ipu"
    peak_flops: float  # aggregate FP32-equivalent FLOP/s
    dram_bandwidth: float  # bytes/s to off-chip memory (aggregate)
    dram_capacity: int  # bytes of off-chip memory usable for the model
    sram_capacity: int  # bytes of on-chip SRAM usable for the model
    sram_bandwidth: float  # bytes/s to on-chip SRAM (aggregate)
    tdp_w: float
    idle_w: float
    launch_overhead_s: float  # kernel dispatch / device sync per query
    query_overhead_s: float  # host-side serving cost per query (framework)
    host_transfer_bw: float  # bytes/s host<->device (0 = host-resident)
    gather_efficiency: float  # fraction of DRAM bandwidth on random gathers
    mlp_efficiency: float  # fraction of peak FLOPs on dense GEMMs
    small_gemm_factor: float  # additional derating for decoder-sized GEMMs
    elementwise_efficiency: float  # fraction of peak on hashing/elementwise
    n_chips: int = 1
    parallelism: str = "single"
    replicas: int = 1  # concurrent whole-query servers
    interconnect_bw: float = 0.0  # bytes/s chip-to-chip (sharded)
    embedding_pipelining: bool = False  # TPUEmbedding-style lookup overlap
    lookup_latency_s: float = 0.0  # per-lookup random-access latency floor
    spill_gather_efficiency: float = 1.0  # derating for gathers over a
    # streaming-memory link (IPU Streaming Memory random access)

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.dram_bandwidth <= 0:
            raise ValueError("peak_flops and dram_bandwidth must be positive")
        for frac_name in (
            "gather_efficiency",
            "mlp_efficiency",
            "small_gemm_factor",
            "elementwise_efficiency",
            "spill_gather_efficiency",
        ):
            frac = getattr(self, frac_name)
            if not 0 < frac <= 1:
                raise ValueError(f"{frac_name} must be in (0, 1], got {frac}")
        if self.n_chips < 1 or self.replicas < 1:
            raise ValueError("n_chips and replicas must be >= 1")
        if self.replicas > self.n_chips:
            raise ValueError("replicas cannot exceed n_chips")
        if self.parallelism not in PARALLELISM_MODES:
            raise ValueError(
                f"parallelism must be one of {PARALLELISM_MODES}, "
                f"got {self.parallelism!r}"
            )

    @property
    def total_memory(self) -> int:
        """Capacity available for model weights (DRAM + SRAM)."""
        return self.dram_capacity + self.sram_capacity

    @property
    def is_accelerator(self) -> bool:
        return self.kind != "cpu"

    @property
    def concurrency(self) -> int:
        """How many queries the platform serves at once."""
        return self.replicas

    @property
    def sram_per_chip(self) -> int:
        return self.sram_capacity // max(1, self.n_chips)

    def fits_in_sram(self, model_bytes: int) -> bool:
        return model_bytes <= self.sram_capacity

    def fits(self, model_bytes: int) -> bool:
        return model_bytes <= self.total_memory

    def with_memory_budget(self, dram_capacity: int) -> "DeviceSpec":
        """Same silicon, different provisioned memory (HW-1 vs HW-2 studies)."""
        return replace(self, dram_capacity=dram_capacity)

    def __str__(self) -> str:
        return self.name
