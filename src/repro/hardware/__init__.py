"""Analytical hardware models for CPU / GPU / TPU / IPU platforms.

The paper characterizes real hardware (Table 1); this package reproduces
those platforms as calibrated roofline models: per-operator latency from
compute peak, memory bandwidth, gather efficiency, launch/transfer
overheads, and SRAM-vs-DRAM placement, plus energy from TDP and utilization.
Multi-chip configurations (TPU chip/board, IPU board/pod) compose single-chip
specs through data-parallel, pipelined, or sharded topologies.
"""

from repro.hardware.device import DeviceSpec
from repro.hardware.catalog import (
    CPU_BROADWELL,
    GPU_V100,
    TPU_V3_CORE,
    TPU_V3_CHIP,
    TPU_V3_BOARD,
    IPU_GC200,
    IPU_M2000,
    IPU_POD16,
    DEVICE_CATALOG,
    device_by_name,
)
from repro.hardware.latency import OperatorBreakdown, estimate_breakdown, path_latency
from repro.hardware.energy import energy_per_query, average_power
from repro.hardware.topology import scale_out, ShardedPlacement, plan_ipu_placement
from repro.hardware.roofline import (
    RooflinePoint,
    classify,
    operational_intensity,
    ridge_point,
)

__all__ = [
    "DeviceSpec",
    "CPU_BROADWELL",
    "GPU_V100",
    "TPU_V3_CORE",
    "TPU_V3_CHIP",
    "TPU_V3_BOARD",
    "IPU_GC200",
    "IPU_M2000",
    "IPU_POD16",
    "DEVICE_CATALOG",
    "device_by_name",
    "OperatorBreakdown",
    "estimate_breakdown",
    "path_latency",
    "energy_per_query",
    "average_power",
    "scale_out",
    "ShardedPlacement",
    "plan_ipu_placement",
    "RooflinePoint",
    "classify",
    "operational_intensity",
    "ridge_point",
]
