"""Roofline operator-latency model (Figures 5, 7, 10-17 substrate).

``estimate_breakdown`` decomposes one query's execution into the paper's
operator classes — host serving overhead, input transfer, bottom MLP,
embedding gather, DHE encoder hashing, DHE decoder MLP, feature interaction,
top MLP, kernel launch, and (for sharded placements) interconnect
communication — each timed by ``max(compute-bound, memory-bound)`` with
device-calibrated efficiencies.

Multi-chip platforms follow the semantics documented on ``DeviceSpec``:
``data`` splits the query's batch, ``replicated``/``pipeline`` serve the
whole query on one replica (concurrency handled by the serving simulator),
``sharded`` spreads the embedding work and pays all-to-all communication.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.core.representations import RepresentationConfig
from repro.hardware.device import DeviceSpec
from repro.models.configs import ModelConfig
from repro.models.interactions import DotInteraction

FP32 = 4
ID_BYTES = 8

# TPUEmbedding pipelines lookups behind TensorCore compute (paper O1): only
# this fraction of gather time is exposed.
_TPU_EMBEDDING_EXPOSED = 0.30


@dataclass
class OperatorBreakdown:
    """Per-operator seconds for one query on one device."""

    host: float = 0.0
    transfer: float = 0.0
    bottom_mlp: float = 0.0
    embedding: float = 0.0
    encoder: float = 0.0
    decoder: float = 0.0
    interaction: float = 0.0
    top_mlp: float = 0.0
    launch: float = 0.0
    comm: float = 0.0

    @property
    def total(self) -> float:
        return sum(getattr(self, f.name) for f in fields(self))

    @property
    def embedding_access(self) -> float:
        """Everything attributable to producing embedding vectors."""
        return self.embedding + self.encoder + self.decoder

    @property
    def dense_compute(self) -> float:
        return self.bottom_mlp + self.interaction + self.top_mlp

    @property
    def overheads(self) -> float:
        return self.host + self.launch + self.transfer

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def scaled(self, factor: float) -> "OperatorBreakdown":
        return OperatorBreakdown(
            **{f.name: getattr(self, f.name) * factor for f in fields(self)}
        )


def estimate_breakdown(
    rep: RepresentationConfig,
    model: ModelConfig,
    device: DeviceSpec,
    batch_size: int,
    encoder_hit_rate: float = 0.0,
    decoder_speedup: float = 1.0,
) -> OperatorBreakdown:
    """Latency breakdown for one query of ``batch_size`` samples.

    ``encoder_hit_rate`` is the MP-Cache(encoder) hit fraction: hits skip the
    entire encoder-decoder stack (served as a table-like lookup instead).
    ``decoder_speedup`` is the MP-Cache(decoder) factor applied to the
    decoder stack (kNN against centroids instead of the full MLP).
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if not 0.0 <= encoder_hit_rate <= 1.0:
        raise ValueError("encoder_hit_rate must be in [0, 1]")
    if decoder_speedup < 1.0:
        raise ValueError("decoder_speedup must be >= 1 (it divides decoder time)")

    mode = device.parallelism
    if mode == "data":
        per_chip = _single_chip(device)
        slice_size = max(1, -(-batch_size // device.n_chips))  # ceil division
        bd = _chip_breakdown(
            rep, model, per_chip, slice_size, encoder_hit_rate, decoder_speedup
        )
    elif mode in ("replicated", "pipeline"):
        replica = _replica_spec(device)
        bd = _chip_breakdown(
            rep, model, replica, batch_size, encoder_hit_rate, decoder_speedup
        )
    elif mode == "sharded":
        bd = _sharded_breakdown(
            rep, model, device, batch_size, encoder_hit_rate, decoder_speedup
        )
    else:
        bd = _chip_breakdown(
            rep, model, device, batch_size, encoder_hit_rate, decoder_speedup
        )
    bd.host = device.query_overhead_s
    bd.launch = device.launch_overhead_s
    return bd


def path_latency(
    rep: RepresentationConfig,
    model: ModelConfig,
    device: DeviceSpec,
    batch_size: int,
    encoder_hit_rate: float = 0.0,
    decoder_speedup: float = 1.0,
) -> float:
    """Convenience wrapper returning just the total seconds."""
    return estimate_breakdown(
        rep, model, device, batch_size, encoder_hit_rate, decoder_speedup
    ).total


# ---------------------------------------------------------------------------
# multi-chip spec slicing


def _single_chip(device: DeviceSpec) -> DeviceSpec:
    """One chip's slice of a multi-chip spec (aggregates divided)."""
    chips = max(1, device.n_chips)
    if chips == 1:
        return device
    return replace(
        device,
        peak_flops=device.peak_flops / chips,
        dram_bandwidth=device.dram_bandwidth / chips,
        dram_capacity=device.dram_capacity // chips,
        sram_capacity=device.sram_capacity // chips,
        sram_bandwidth=device.sram_bandwidth / chips,
        n_chips=1,
        replicas=1,
        parallelism="single",
    )


def _replica_spec(device: DeviceSpec) -> DeviceSpec:
    """One replica's resources.

    ``replicated``: a replica is one chip. ``pipeline``: a replica is
    ``n_chips / replicas`` chips whose SRAM aggregates but whose stages run
    sequentially per microbatch (compute at one chip's rate).
    """
    chips = max(1, device.n_chips)
    if device.parallelism == "replicated":
        return _single_chip(device)
    # Pipeline: each replica is a pipeline of n_chips/replicas chips whose
    # SRAM aggregates (the model stages across them); compute runs at one
    # chip's rate per microbatch stage.
    replicas = max(1, device.replicas)
    chips_per_replica = max(1, chips // replicas)
    return replace(
        device,
        peak_flops=device.peak_flops / chips,  # stage-sequential traversal
        dram_bandwidth=device.dram_bandwidth / replicas,
        dram_capacity=device.dram_capacity // replicas,
        sram_capacity=device.sram_per_chip * chips_per_replica,
        sram_bandwidth=device.sram_bandwidth / chips,
        n_chips=1,
        replicas=1,
        parallelism="single",
    )


def _sharded_breakdown(
    rep: RepresentationConfig,
    model: ModelConfig,
    device: DeviceSpec,
    batch_size: int,
    encoder_hit_rate: float,
    decoder_speedup: float,
) -> OperatorBreakdown:
    """All chips cooperate on each query: embedding work splits across the
    shards, dense compute is data-parallel, and embedding vectors cross the
    interconnect (all-to-all) to reach their consumers."""
    chips = max(1, device.n_chips)
    per_chip = _single_chip(device)
    slice_size = max(1, -(-batch_size // chips))
    bd = _chip_breakdown(
        rep, model, per_chip, slice_size, encoder_hit_rate, decoder_speedup
    )
    # The gather/decode work splits by shard rather than by batch slice; the
    # batch-sliced estimate already captures that division. Add the exchange.
    vector_bytes = batch_size * model.n_sparse * rep.embedding_dim * FP32
    if device.interconnect_bw > 0 and chips > 1:
        bd.comm += vector_bytes * (chips - 1) / chips / device.interconnect_bw
    return bd


# ---------------------------------------------------------------------------
# single-chip operator model


def _chip_breakdown(
    rep: RepresentationConfig,
    model: ModelConfig,
    device: DeviceSpec,
    batch_size: int,
    encoder_hit_rate: float,
    decoder_speedup: float,
) -> OperatorBreakdown:
    bd = OperatorBreakdown()

    # Host -> device input transfer (dense floats + sparse IDs).
    if device.host_transfer_bw > 0:
        input_bytes = batch_size * (model.n_dense * FP32 + model.n_sparse * ID_BYTES)
        bd.transfer = input_bytes / device.host_transfer_bw

    # Bottom MLP.
    bottom_sizes = [model.n_dense, *model.bottom_mlp, rep.embedding_dim]
    bd.bottom_mlp = _mlp_time(device, bottom_sizes, batch_size)

    # Embedding table access.
    n_lookups = batch_size * model.n_sparse
    if rep.uses_tables:
        if rep.kind == "hybrid":
            row_dim = rep.table_dim
            lookups = n_lookups
        elif rep.kind == "select":
            row_dim = rep.embedding_dim
            lookups = batch_size * (model.n_sparse - rep.n_dhe_features)
        else:
            row_dim = rep.embedding_dim
            lookups = n_lookups
        table_bytes = rep.table_only_bytes(model)
        bd.embedding = _gather_time(device, lookups, row_dim * FP32, table_bytes)

    # DHE stack (encoder + decoder) over the features that generate.
    if rep.uses_dhe:
        dhe_lookups = (
            batch_size * rep.n_dhe_features
            if rep.kind == "select"
            else n_lookups
        )
        miss = 1.0 - encoder_hit_rate
        hits = dhe_lookups * encoder_hit_rate
        if hits > 0:
            # Cache hits are served as one extra row gather each.
            bd.embedding += _gather_time(
                device, int(hits), rep.embedding_dim * FP32, 0
            )
        if dhe_lookups * miss > 0:
            bd.encoder = _encoder_time(device, rep.k, dhe_lookups * miss)
            decode_flops = rep.decoder_flops_per_lookup() * dhe_lookups * miss
            decoder_weight_bytes = rep.decoder_bytes() * model.n_sparse
            bd.decoder = (
                _gemm_time(device, decode_flops, decoder_weight_bytes, small=True)
                / decoder_speedup
            )

    # Interaction + top MLP.
    inter_flops = DotInteraction.flops(batch_size, rep.embedding_dim, model.n_sparse)
    bd.interaction = inter_flops / (
        device.peak_flops * device.mlp_efficiency * device.small_gemm_factor
    )
    top_sizes = [
        DotInteraction.output_dim(rep.embedding_dim, model.n_sparse),
        *model.top_mlp,
        1,
    ]
    bd.top_mlp = _mlp_time(device, top_sizes, batch_size)
    return bd


def _gemm_time(
    device: DeviceSpec,
    flops: float,
    weight_bytes: float,
    small: bool = False,
) -> float:
    """Dense-matmul time: compute roofline vs. weight-streaming roofline."""
    eff = device.mlp_efficiency * (device.small_gemm_factor if small else 1.0)
    compute = flops / (device.peak_flops * eff)
    bandwidth = (
        device.sram_bandwidth
        if weight_bytes <= device.sram_capacity
        else device.dram_bandwidth
    )
    memory = weight_bytes / bandwidth
    return max(compute, memory)


def _mlp_time(device: DeviceSpec, sizes: list[int], batch_size: int) -> float:
    flops = sum(2 * batch_size * sizes[i] * sizes[i + 1] for i in range(len(sizes) - 1))
    weight_bytes = sum(
        (sizes[i] * sizes[i + 1] + sizes[i + 1]) * FP32 for i in range(len(sizes) - 1)
    )
    return _gemm_time(device, flops, weight_bytes, small=batch_size < 64)


def _gather_time(
    device: DeviceSpec,
    n_lookups: int,
    row_bytes: int,
    table_bytes: int,
) -> float:
    """Random-row gather: bandwidth roofline vs. access-latency floor."""
    if n_lookups <= 0:
        return 0.0
    total_bytes = n_lookups * row_bytes
    if device.kind == "ipu":
        if device.fits_in_sram(table_bytes):
            # Whole table in scratchpad SRAM (paper O2 fast path).
            return total_bytes / (device.sram_bandwidth * device.gather_efficiency)
        # Spilled to Streaming Memory: random access over a thin link.
        return total_bytes / (
            device.dram_bandwidth * device.spill_gather_efficiency
        )
    bandwidth_time = total_bytes / (device.dram_bandwidth * device.gather_efficiency)
    latency_time = n_lookups * device.lookup_latency_s
    time = max(bandwidth_time, latency_time)
    if device.embedding_pipelining:
        time *= _TPU_EMBEDDING_EXPOSED
    return time


def _encoder_time(device: DeviceSpec, k: int, n_lookups: float) -> float:
    """Hashing + normalization of ``n_lookups`` IDs through k hash functions.

    Compute is elementwise (poor MXU/AVX mapping — ``elementwise_efficiency``)
    and the [lookups, k] intermediate activations stream through whichever
    memory level holds them.
    """
    if n_lookups <= 0:
        return 0.0
    flops = 4.0 * k * n_lookups
    act_bytes = n_lookups * k * FP32
    compute = flops / (device.peak_flops * device.elementwise_efficiency)
    act_bw = (
        device.sram_bandwidth if act_bytes <= device.sram_capacity
        else device.dram_bandwidth
    )
    memory = act_bytes / act_bw
    return max(compute, memory)
