"""Device catalog parameterized by the paper's Table 1.

Peak FLOPs are derived from public specs (Broadwell AVX2, V100 FP32, TPUv3
bf16, GC200 FP32-equivalent); efficiencies and per-query overheads are a
single calibration pass against the paper's reported operator breakdowns
(see docs/architecture.md). These constants are fixed here and nowhere
else — benchmarks consume the resulting model untouched.

Calibration notes (how the paper's observations emerge):

- Per-query host overheads (``query_overhead_s``) reflect the serving-stack
  cost the paper's Insight 3 attributes to "data loading" and dispatch.
  They make the CPU the right choice for small queries (Kaggle) and bound
  baseline throughput at ~400-560 QPS, which is what lets MP-Rec's
  two-device plans show 2.5-3.8x correct-prediction throughput (Fig 10).
- TPU boards/pods serve queries on independent replicas ("data-parallelism
  for increased throughput", Sec 3.4), so board-level speedup approaches
  4x chip-level (Fig 7a: 3.12x -> 11.13x).
- A single IPU's Streaming Memory link (Table 1: 20 GB/s per M2000) has a
  severe random-gather derating, producing O2's cliff when a model spills
  out of the 900 MB scratchpad.
"""

from __future__ import annotations

from repro.hardware.device import GB, MB, DeviceSpec

# --- Host CPU: Intel Broadwell Xeon, 12 cores @ 2.2 GHz (Table 1) ----------
# 12 cores x 2.2 GHz x 2 FMA ports x 8 fp32 lanes x 2 flops ~= 0.42 TF.
CPU_BROADWELL = DeviceSpec(
    name="cpu-broadwell",
    kind="cpu",
    peak_flops=0.42e12,
    dram_bandwidth=76.8e9,
    dram_capacity=264 * GB,
    sram_capacity=30 * MB,  # L3
    sram_bandwidth=400e9,
    tdp_w=105.0,
    idle_w=40.0,
    launch_overhead_s=5e-6,
    query_overhead_s=0.5e-3,  # serving-framework cost per query on host
    host_transfer_bw=0.0,
    gather_efficiency=0.30,
    mlp_efficiency=0.25,  # eager-mode framework per-op overheads
    small_gemm_factor=0.75,
    elementwise_efficiency=0.10,  # scalar-ish hashing
    lookup_latency_s=100e-9,  # effective per-lookup DRAM latency
)

# --- NVIDIA V100 (Table 1) --------------------------------------------------
GPU_V100 = DeviceSpec(
    name="gpu-v100",
    kind="gpu",
    peak_flops=14.0e12,
    dram_bandwidth=900e9,
    dram_capacity=32 * GB,
    sram_capacity=6 * MB,  # L2
    sram_bandwidth=3e12,
    tdp_w=250.0,
    idle_w=50.0,
    launch_overhead_s=450e-6,  # kernel launches + device sync per query
    query_overhead_s=0.8e-3,  # host prep + data loading per query
    host_transfer_bw=12e9,  # PCIe 3.0 x16 effective
    gather_efficiency=0.20,  # uncoalesced row gathers
    mlp_efficiency=0.45,
    small_gemm_factor=0.35,  # per-feature decoder GEMMs underfill SMs
    elementwise_efficiency=0.50,
    lookup_latency_s=1.2e-9,
)

# --- Google TPUv3 at core / chip / board granularity ------------------------
# TPUv3 chip: 2 cores, 123 TF bf16, 32 GiB HBM @ 900 GB/s. TPUEmbedding
# shards/replicates tables across HBM and pipelines lookups with TensorCore
# compute (paper O1), modeled by `embedding_pipelining`.
_TPU_COMMON = dict(
    kind="tpu",
    launch_overhead_s=150e-6,  # XLA dispatch; compilation excluded (Sec 5.1)
    query_overhead_s=0.5e-3,  # host feed + infeed queue per query
    host_transfer_bw=12e9,
    gather_efficiency=0.55,
    mlp_efficiency=0.55,
    small_gemm_factor=0.55,  # decoder shapes pad poorly onto the 128x128 MXU
    elementwise_efficiency=0.25,
    embedding_pipelining=True,
    lookup_latency_s=0.6e-9,
)

TPU_V3_CORE = DeviceSpec(
    name="tpu-v3-core",
    peak_flops=61.5e12 / 2,
    dram_bandwidth=450e9,
    dram_capacity=16 * GB,
    sram_capacity=16 * MB,
    sram_bandwidth=8e12,
    tdp_w=225.0,
    idle_w=75.0,
    **_TPU_COMMON,
)

TPU_V3_CHIP = DeviceSpec(
    name="tpu-v3-chip",
    peak_flops=61.5e12,
    dram_bandwidth=900e9,
    dram_capacity=32 * GB,
    sram_capacity=32 * MB,
    sram_bandwidth=16e12,
    tdp_w=450.0,  # 1.8x V100 (paper O3)
    idle_w=150.0,
    **_TPU_COMMON,
)

TPU_V3_BOARD = DeviceSpec(
    name="tpu-v3-board",
    peak_flops=4 * 61.5e12,
    dram_bandwidth=4 * 900e9,
    dram_capacity=4 * 32 * GB,
    sram_capacity=4 * 32 * MB,
    sram_bandwidth=4 * 16e12,
    tdp_w=4 * 450.0,
    idle_w=4 * 150.0,
    n_chips=4,
    parallelism="replicated",
    replicas=4,
    interconnect_bw=70e9,
    **_TPU_COMMON,
)

# --- Graphcore GC200 IPU at chip / board / pod granularity -------------------
# 900 MB SRAM per chip at ~47.5 TB/s; Streaming Memory is Table 1's 20 GB/s
# per M2000 board (80 GB/s per POD16) with a harsh random-access derating —
# the cliff behind the paper's O2.
_IPU_COMMON = dict(
    kind="ipu",
    launch_overhead_s=250e-6,
    query_overhead_s=1.45e-3,  # heavy host I/O streaming per query
    host_transfer_bw=11e9,
    gather_efficiency=0.60,
    mlp_efficiency=0.30,  # fp32 AMP units; decoder shapes underfill tiles
    small_gemm_factor=0.90,
    elementwise_efficiency=0.60,  # 1472 tiles love parallel hashing
    lookup_latency_s=0.3e-9,
    spill_gather_efficiency=0.05,  # random access over Streaming Memory
)

IPU_GC200 = DeviceSpec(
    name="ipu-gc200",
    peak_flops=62.5e12,
    dram_bandwidth=20e9 / 4,  # one chip's share of board streaming memory
    dram_capacity=64 * GB,
    sram_capacity=int(0.9 * 1000 * MB),
    sram_bandwidth=47.5e12,
    tdp_w=150.0,
    idle_w=45.0,
    **_IPU_COMMON,
)

IPU_M2000 = DeviceSpec(
    name="ipu-m2000",
    peak_flops=4 * 62.5e12,
    dram_bandwidth=20e9,
    dram_capacity=256 * GB,
    sram_capacity=4 * int(0.9 * 1000 * MB),
    sram_bandwidth=4 * 47.5e12,
    tdp_w=600.0,
    idle_w=180.0,
    n_chips=4,
    parallelism="pipeline",
    replicas=1,  # one model instance staged across the 4 chips
    interconnect_bw=64e9,
    **_IPU_COMMON,
)

IPU_POD16 = DeviceSpec(
    name="ipu-pod16",
    peak_flops=16 * 62.5e12,
    dram_bandwidth=80e9,
    dram_capacity=1024 * GB,
    sram_capacity=16 * int(0.9 * 1000 * MB),
    sram_bandwidth=16 * 47.5e12,
    tdp_w=2400.0,
    idle_w=720.0,
    n_chips=16,
    parallelism="replicated",
    replicas=16,
    interconnect_bw=64e9,
    **_IPU_COMMON,
)

DEVICE_CATALOG: dict[str, DeviceSpec] = {
    spec.name: spec
    for spec in (
        CPU_BROADWELL,
        GPU_V100,
        TPU_V3_CORE,
        TPU_V3_CHIP,
        TPU_V3_BOARD,
        IPU_GC200,
        IPU_M2000,
        IPU_POD16,
    )
}


def device_by_name(name: str) -> DeviceSpec:
    try:
        return DEVICE_CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; known: {sorted(DEVICE_CATALOG)}"
        ) from None
