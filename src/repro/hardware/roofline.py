"""Roofline positioning of embedding representations (Figure 1 context).

The paper's premise is that representations stress *different* system
resources: tables are memory-bound (near-zero FLOPs per byte of random
gather traffic) while DHE stacks are compute-bound. This module quantifies
that: operational intensity per representation, each device's ridge point,
and which side of the roof a (representation, device) pair lands on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.representations import RepresentationConfig
from repro.hardware.device import DeviceSpec
from repro.models.configs import ModelConfig

FP32 = 4


@dataclass(frozen=True)
class RooflinePoint:
    representation: str
    device: str
    operational_intensity: float  # FLOPs per byte moved
    ridge_point: float  # device FLOPs-per-byte at the roof's corner
    bound: str  # "memory" | "compute"
    attainable_flops: float  # FLOP/s the pair can sustain


def embedding_traffic_bytes(rep: RepresentationConfig, model: ModelConfig) -> int:
    """Bytes moved per sample by the embedding access stage."""
    bytes_moved = 0
    if rep.uses_tables:
        if rep.kind == "hybrid":
            row = rep.table_dim
            features = model.n_sparse
        elif rep.kind == "select":
            row = rep.embedding_dim
            features = model.n_sparse - rep.n_dhe_features
        else:
            row = rep.embedding_dim
            features = model.n_sparse
        bytes_moved += features * row * FP32
    if rep.uses_dhe:
        features = rep.n_dhe_features if rep.kind == "select" else model.n_sparse
        # Encoder intermediates stream out once per lookup.
        bytes_moved += features * rep.k * FP32
    return bytes_moved


def operational_intensity(rep: RepresentationConfig, model: ModelConfig) -> float:
    """Embedding-stage FLOPs per byte of memory traffic."""
    traffic = embedding_traffic_bytes(rep, model)
    if traffic == 0:
        return 0.0
    return rep.embedding_flops_per_sample(model) / traffic


def ridge_point(device: DeviceSpec) -> float:
    """Intensity at which the device transitions memory- to compute-bound."""
    return device.peak_flops * device.mlp_efficiency / device.dram_bandwidth


def classify(
    rep: RepresentationConfig, model: ModelConfig, device: DeviceSpec
) -> RooflinePoint:
    intensity = operational_intensity(rep, model)
    ridge = ridge_point(device)
    bound = "compute" if intensity >= ridge else "memory"
    attainable = min(
        device.peak_flops * device.mlp_efficiency,
        intensity * device.dram_bandwidth,
    )
    return RooflinePoint(
        representation=rep.display,
        device=device.name,
        operational_intensity=intensity,
        ridge_point=ridge,
        bound=bound,
        attainable_flops=attainable,
    )
