"""Energy model: per-query Joules from TDP, idle power, and utilization.

Reproduces the paper's O3 observation (Figure 7, bottom): a TPU chip's TDP
is 1.8x a V100's, so despite higher table throughput the GPU wins on energy
for large table-based models; an IPU spilling to Streaming Memory burns
power while waiting on a 20 GB/s link.
"""

from __future__ import annotations

from repro.hardware.device import DeviceSpec
from repro.hardware.latency import OperatorBreakdown


def average_power(device: DeviceSpec, breakdown: OperatorBreakdown) -> float:
    """Average Watts while serving: idle floor plus utilization-scaled burst.

    Utilization is approximated by the fraction of time spent in compute
    operators (memory-stalled time draws closer to idle power).
    """
    total = breakdown.total
    if total <= 0:
        return device.idle_w
    busy = breakdown.dense_compute + breakdown.decoder + breakdown.encoder
    utilization = min(1.0, busy / total)
    return device.idle_w + (device.tdp_w - device.idle_w) * (0.3 + 0.7 * utilization)


def energy_per_query(device: DeviceSpec, breakdown: OperatorBreakdown) -> float:
    """Joules consumed by one query's execution."""
    return average_power(device, breakdown) * breakdown.total


def energy_per_sample(
    device: DeviceSpec, breakdown: OperatorBreakdown, batch_size: int
) -> float:
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    return energy_per_query(device, breakdown) / batch_size
