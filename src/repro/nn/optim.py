"""Optimizers operating on ``Parameter`` lists."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer; subclasses implement ``_update``."""

    def __init__(self, params: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not params:
            raise ValueError("optimizer received no parameters")
        self.params = list(params)
        self.lr = lr

    def step(self) -> None:
        for param in self.params:
            self._update(param)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def _update(self, param: Parameter) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self, params: list[Parameter], lr: float = 0.1, momentum: float = 0.0
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = {id(p): np.zeros_like(p.data) for p in self.params}

    def _update(self, param: Parameter) -> None:
        if self.momentum:
            vel = self._velocity[id(param)]
            vel *= self.momentum
            vel += param.grad
            param.data -= self.lr * vel
        else:
            param.data -= self.lr * param.grad


class Adagrad(Optimizer):
    """Adagrad — the optimizer DLRM uses for sparse embedding parameters."""

    def __init__(
        self, params: list[Parameter], lr: float = 0.01, eps: float = 1e-10
    ) -> None:
        super().__init__(params, lr)
        self.eps = eps
        self._accum = {id(p): np.zeros_like(p.data) for p in self.params}

    def _update(self, param: Parameter) -> None:
        accum = self._accum[id(param)]
        accum += param.grad**2
        param.data -= self.lr * param.grad / (np.sqrt(accum) + self.eps)
