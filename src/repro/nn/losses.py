"""Loss functions returning ``(loss, grad_wrt_input)`` pairs."""

from __future__ import annotations

import numpy as np


def bce_with_logits(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean binary cross-entropy on raw logits (numerically stable).

    Returns the scalar loss and the gradient w.r.t. ``logits`` (already divided
    by the batch size, so it can be fed straight into ``Module.backward``).
    """
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if logits.shape != labels.shape:
        raise ValueError(f"shape mismatch: {logits.shape} vs {labels.shape}")
    # softplus(z) - y*z, with softplus computed stably.
    softplus = np.maximum(logits, 0.0) + np.log1p(np.exp(-np.abs(logits)))
    loss = float(np.mean(softplus - labels * logits))
    probs = _sigmoid(logits)
    grad = (probs - labels) / logits.size
    return loss, grad


def mse(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error and its gradient w.r.t. ``pred``."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    diff = pred - target
    loss = float(np.mean(diff**2))
    grad = 2.0 * diff / pred.size
    return loss, grad


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    exp_x = np.exp(x[~pos])
    out[~pos] = exp_x / (1.0 + exp_x)
    return out
