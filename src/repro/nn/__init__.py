"""Minimal neural-network substrate built on numpy.

The paper trains DLRM variants in PyTorch; this environment has no torch, so
``repro.nn`` provides the pieces DLRM needs — dense layers, activations, an
embedding table with sparse gradient accumulation, losses, and optimizers —
each with an explicit, numerically-verified ``backward``.
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers import Linear, MLP, EmbeddingTable, EmbeddingBag
from repro.nn.activations import Identity, ReLU, Sigmoid, Tanh
from repro.nn.losses import bce_with_logits, mse
from repro.nn.optim import SGD, Adagrad, Optimizer
from repro.nn.gradcheck import numerical_gradient, check_module_gradients
from repro.nn.serialization import save_model, load_model, state_dict, load_state_dict

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "MLP",
    "EmbeddingTable",
    "EmbeddingBag",
    "Identity",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "bce_with_logits",
    "mse",
    "SGD",
    "Adagrad",
    "Optimizer",
    "numerical_gradient",
    "check_module_gradients",
    "save_model",
    "load_model",
    "state_dict",
    "load_state_dict",
]
