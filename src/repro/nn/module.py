"""Base classes for the numpy NN substrate: ``Parameter`` and ``Module``."""

from __future__ import annotations

from typing import Iterator

import numpy as np


class Parameter:
    """A trainable array with an accumulated gradient.

    Gradients are accumulated (``+=``) by each module's ``backward`` so a
    single parameter can be shared by several modules; call
    ``Module.zero_grad`` between optimizer steps.
    """

    __slots__ = ("data", "grad", "name")

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:
        label = self.name or "param"
        return f"Parameter({label}, shape={self.data.shape})"


class Module:
    """Base class for layers and models.

    Subclasses implement ``forward`` (caching whatever ``backward`` needs)
    and ``backward`` (returning the gradient w.r.t. the forward input and
    accumulating gradients into their parameters). Parameters and submodules
    are discovered by attribute introspection, like a tiny ``torch.nn``.
    """

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def backward(self, grad_output):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for attr, value in vars(self).items():
            name = f"{prefix}{attr}" if not prefix else f"{prefix}.{attr}"
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(name)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{name}[{i}]")
                    elif isinstance(item, Parameter):
                        yield f"{name}[{i}]", item

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def footprint_bytes(self, dtype_bytes: int = 4) -> int:
        """Deployment footprint assuming fp32 storage (the paper's metric)."""
        return self.num_parameters() * dtype_bytes

    def __repr__(self) -> str:
        return f"{type(self).__name__}(params={self.num_parameters()})"
