"""Elementwise activation modules with explicit backward passes."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class ReLU(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._mask


class Sigmoid(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        # Numerically stable piecewise formulation.
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        exp_x = np.exp(x[~pos])
        out[~pos] = exp_x / (1.0 + exp_x)
        self._out = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._out * (1.0 - self._out)


class Tanh(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * (1.0 - self._out**2)


class Identity(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output


_ACTIVATIONS = {
    "relu": ReLU,
    "sigmoid": Sigmoid,
    "tanh": Tanh,
    "identity": Identity,
    "none": Identity,
}


def make_activation(name: str) -> Module:
    """Instantiate an activation by name (``relu``/``sigmoid``/``tanh``/``identity``)."""
    try:
        return _ACTIVATIONS[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; choose from {sorted(_ACTIVATIONS)}"
        ) from None
