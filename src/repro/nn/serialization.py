"""Model checkpointing: save/load parameters by qualified name.

State is stored as a compressed ``.npz`` keyed by ``named_parameters``
paths, so any module tree built the same way round-trips — the offline
stage's "train all representations" output can be persisted and reloaded
into serving processes.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.module import Module


def state_dict(module: Module) -> dict[str, np.ndarray]:
    """Parameter arrays keyed by their qualified names."""
    state = {}
    for name, param in module.named_parameters():
        if name in state:
            raise ValueError(f"duplicate parameter name {name!r}")
        state[name] = param.data
    return state


def load_state_dict(module: Module, state: dict[str, np.ndarray]) -> None:
    """Copy arrays into the module's parameters (strict name/shape match)."""
    params = dict(module.named_parameters())
    missing = set(params) - set(state)
    unexpected = set(state) - set(params)
    if missing or unexpected:
        raise KeyError(
            f"state mismatch: missing={sorted(missing)}, "
            f"unexpected={sorted(unexpected)}"
        )
    for name, param in params.items():
        value = np.asarray(state[name])
        if value.shape != param.data.shape:
            raise ValueError(
                f"shape mismatch for {name}: checkpoint {value.shape} vs "
                f"model {param.data.shape}"
            )
        param.data[...] = value


def save_model(module: Module, path: str | Path) -> Path:
    """Write a compressed checkpoint; returns the path written."""
    path = Path(path)
    np.savez_compressed(path, **state_dict(module))
    # np.savez appends .npz when absent.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_model(module: Module, path: str | Path) -> Module:
    """Load a checkpoint into an already-constructed module (in place)."""
    with np.load(Path(path)) as archive:
        load_state_dict(module, {name: archive[name] for name in archive.files})
    return module
