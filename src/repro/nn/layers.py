"""Dense and embedding layers for the numpy NN substrate."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.activations import make_activation
from repro.nn.module import Module, Parameter


class Linear(Module):
    """Affine layer ``y = x @ W + b`` with Xavier-uniform initialization."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        name: str = "linear",
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("layer dimensions must be positive")
        limit = np.sqrt(6.0 / (in_features + out_features))
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            rng.uniform(-limit, limit, size=(in_features, out_features)),
            name=f"{name}.weight",
        )
        self.bias = (
            Parameter(np.zeros(out_features), name=f"{name}.bias") if bias else None
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected input dim {self.in_features}, got {x.shape[-1]}"
            )
        self._x = x
        out = x @ self.weight.data
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x2d = self._x.reshape(-1, self.in_features)
        g2d = grad_output.reshape(-1, self.out_features)
        self.weight.grad += x2d.T @ g2d
        if self.bias is not None:
            self.bias.grad += g2d.sum(axis=0)
        return grad_output @ self.weight.data.T

    def flops(self, batch_size: int) -> int:
        """Multiply-accumulate FLOPs for one forward pass (2 per MAC)."""
        return 2 * batch_size * self.in_features * self.out_features


class MLP(Module):
    """A stack of ``Linear`` layers with a shared hidden activation.

    ``layer_sizes`` includes input and output dims, e.g. ``[13, 512, 256, 64]``.
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        rng: np.random.Generator,
        hidden_activation: str = "relu",
        output_activation: str = "identity",
        name: str = "mlp",
    ) -> None:
        if len(layer_sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        self.layer_sizes = list(layer_sizes)
        self.layers: list[Module] = []
        n_affine = len(layer_sizes) - 1
        for i in range(n_affine):
            self.layers.append(
                Linear(layer_sizes[i], layer_sizes[i + 1], rng, name=f"{name}.fc{i}")
            )
            act = hidden_activation if i < n_affine - 1 else output_activation
            self.layers.append(make_activation(act))

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output

    def flops(self, batch_size: int) -> int:
        return sum(
            layer.flops(batch_size) for layer in self.layers if isinstance(layer, Linear)
        )


class EmbeddingBag(Module):
    """Multi-hot embedding lookup with sum/mean pooling.

    Production recommenders feed variable-length ID lists per feature
    (e.g. "pages liked"); ``forward(ids, offsets)`` follows the
    torch.nn.EmbeddingBag convention — ``offsets[i]`` is where bag ``i``
    starts inside the flat ``ids`` array — and pools each bag into one
    vector.
    """

    def __init__(
        self,
        num_rows: int,
        dim: int,
        rng: np.random.Generator,
        mode: str = "sum",
        name: str = "bag",
    ) -> None:
        if mode not in ("sum", "mean"):
            raise ValueError("mode must be 'sum' or 'mean'")
        if num_rows <= 0 or dim <= 0:
            raise ValueError("num_rows and dim must be positive")
        self.num_rows = num_rows
        self.dim = dim
        self.mode = mode
        scale = 1.0 / np.sqrt(num_rows)
        self.weight = Parameter(
            rng.uniform(-scale, scale, size=(num_rows, dim)), name=f"{name}.weight"
        )

    def forward(self, ids: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.ndim != 1 or ids.ndim != 1:
            raise ValueError("ids and offsets must be 1D")
        if offsets.size and (offsets[0] != 0 or np.any(np.diff(offsets) < 0)):
            raise ValueError("offsets must start at 0 and be non-decreasing")
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_rows):
            raise IndexError(f"ids out of range for {self.num_rows} rows")
        n_bags = offsets.size
        bounds = np.append(offsets, ids.size)
        lengths = np.diff(bounds)
        gathered = self.weight.data[ids]
        out = np.zeros((n_bags, self.dim))
        bag_of = np.repeat(np.arange(n_bags), lengths)
        np.add.at(out, bag_of, gathered)
        if self.mode == "mean":
            out /= np.maximum(lengths, 1)[:, None]
        self._ids = ids
        self._bag_of = bag_of
        self._lengths = lengths
        return out

    def backward(self, grad_output: np.ndarray) -> None:
        grad = grad_output
        if self.mode == "mean":
            grad = grad / np.maximum(self._lengths, 1)[:, None]
        per_id_grad = grad[self._bag_of]
        np.add.at(self.weight.grad, self._ids, per_id_grad)
        return None

    def bytes(self, dtype_bytes: int = 4) -> int:
        return self.num_rows * self.dim * dtype_bytes


class EmbeddingTable(Module):
    """Learned embedding table with single-lookup access and sparse grads.

    ``forward`` takes integer IDs of any shape and returns vectors of shape
    ``ids.shape + (dim,)``. The backward pass scatter-adds into the weight
    gradient (duplicate IDs within a batch accumulate, as in EmbeddingBag).
    """

    def __init__(
        self,
        num_rows: int,
        dim: int,
        rng: np.random.Generator,
        name: str = "table",
    ) -> None:
        if num_rows <= 0 or dim <= 0:
            raise ValueError("num_rows and dim must be positive")
        self.num_rows = num_rows
        self.dim = dim
        scale = 1.0 / np.sqrt(num_rows)
        self.weight = Parameter(
            rng.uniform(-scale, scale, size=(num_rows, dim)), name=f"{name}.weight"
        )

    def forward(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_rows):
            raise IndexError(
                f"ids out of range for table with {self.num_rows} rows"
            )
        self._ids = ids
        return self.weight.data[ids]

    def backward(self, grad_output: np.ndarray) -> None:
        flat_ids = self._ids.reshape(-1)
        flat_grad = grad_output.reshape(-1, self.dim)
        np.add.at(self.weight.grad, flat_ids, flat_grad)
        return None

    def bytes(self, dtype_bytes: int = 4) -> int:
        return self.num_rows * self.dim * dtype_bytes
