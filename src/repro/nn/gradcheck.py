"""Numerical gradient checking used by the test suite.

Every layer's analytic backward is validated against central differences;
this module provides the shared machinery.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.module import Module


def numerical_gradient(
    func: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of scalar ``func`` w.r.t. array ``x``."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = func(x)
        flat[i] = orig - eps
        f_minus = func(x)
        flat[i] = orig
        grad_flat[i] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def check_module_gradients(
    module: Module,
    x: np.ndarray,
    rng: np.random.Generator,
    eps: float = 1e-6,
    atol: float = 1e-6,
    rtol: float = 1e-4,
) -> float:
    """Compare analytic input/parameter grads against numerical ones.

    Uses a random linear functional ``loss = sum(out * probe)`` so every output
    element contributes. Returns the max absolute error observed; raises
    ``AssertionError`` when any gradient disagrees beyond tolerance.
    """
    out = module(x)
    probe = rng.standard_normal(out.shape)
    module.zero_grad()
    grad_in = module.backward(probe)

    def loss_of_input(x_val: np.ndarray) -> float:
        return float(np.sum(module(x_val) * probe))

    max_err = 0.0
    if grad_in is not None:
        num = numerical_gradient(loss_of_input, x.copy(), eps=eps)
        err = np.max(np.abs(num - grad_in))
        max_err = max(max_err, float(err))
        np.testing.assert_allclose(grad_in, num, atol=atol, rtol=rtol)

    for name, param in module.named_parameters():
        def loss_of_param(p_val: np.ndarray, _param=param) -> float:
            saved = _param.data.copy()
            _param.data = p_val
            val = float(np.sum(module(x) * probe))
            _param.data = saved
            return val

        num = numerical_gradient(loss_of_param, param.data.copy(), eps=eps)
        err = np.max(np.abs(num - param.grad))
        max_err = max(max_err, float(err))
        np.testing.assert_allclose(
            param.grad, num, atol=atol, rtol=rtol, err_msg=f"param {name}"
        )
    return max_err
