"""Criteo click-log file format: writer, streaming reader, statistics.

The real Kaggle/Terabyte datasets are TSV lines of::

    <label> \t <I1..I13 integer features> \t <C1..C26 hashed categoricals>

with categorical values as 8-hex-digit strings and missing fields empty.
The artifact appendix provides instructions for generating data "in the
shape of" Criteo for characterization; this module is that generator plus
a parser, so every pipeline stage that would touch the licensed click logs
has a drop-in synthetic equivalent.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.data.synthetic import Batch, SyntheticCTRDataset
from repro.models.configs import ModelConfig


def format_line(label: int, dense: np.ndarray, sparse: np.ndarray) -> str:
    """One Criteo TSV line; dense counts as ints, categoricals as hex."""
    dense_cells = [str(int(round(v))) for v in dense]
    sparse_cells = [format(int(v) & 0xFFFFFFFF, "08x") for v in sparse]
    return "\t".join([str(int(label)), *dense_cells, *sparse_cells])


def parse_line(
    line: str, n_dense: int, n_sparse: int
) -> tuple[int, np.ndarray, np.ndarray]:
    """Parse one TSV line; missing fields become 0 (Criteo convention)."""
    cells = line.rstrip("\n").split("\t")
    expected = 1 + n_dense + n_sparse
    if len(cells) != expected:
        raise ValueError(
            f"expected {expected} tab-separated fields, got {len(cells)}"
        )
    label = int(cells[0])
    dense = np.array(
        [float(c) if c else 0.0 for c in cells[1 : 1 + n_dense]]
    )
    sparse = np.array(
        [int(c, 16) if c else 0 for c in cells[1 + n_dense :]], dtype=np.int64
    )
    return label, dense, sparse


def write_criteo_file(
    path: str | Path,
    config: ModelConfig,
    n_rows: int,
    seed: int = 0,
) -> Path:
    """Generate a Criteo-format file from the synthetic CTR model.

    Sparse IDs are written modulo 2^32 as hex (as in the raw logs); the
    reader re-buckets them with ``ids % cardinality`` exactly like the
    DLRM preprocessing scripts do.
    """
    path = Path(path)
    dataset = SyntheticCTRDataset(config, seed=seed)
    with path.open("w") as handle:
        remaining = n_rows
        while remaining > 0:
            batch = dataset.sample_batch(min(4096, remaining))
            # Undo the log1p preprocessing so files hold raw-looking counts.
            raw_dense = np.expm1(batch.dense)
            for i in range(len(batch)):
                handle.write(
                    format_line(
                        int(batch.labels[i]), raw_dense[i], batch.sparse[i]
                    )
                    + "\n"
                )
            remaining -= len(batch)
    return path


def read_criteo_file(
    path: str | Path,
    config: ModelConfig,
    batch_size: int = 1024,
) -> Iterator[Batch]:
    """Stream batches from a Criteo-format file (constant memory).

    Applies the standard DLRM preprocessing: ``log1p`` on dense counts and
    ``id % cardinality`` bucketing on categoricals.
    """
    cards = np.array(config.cardinalities, dtype=np.int64)
    labels: list[int] = []
    dense_rows: list[np.ndarray] = []
    sparse_rows: list[np.ndarray] = []
    with Path(path).open() as handle:
        for line in handle:
            label, dense, sparse = parse_line(
                line, config.n_dense, config.n_sparse
            )
            labels.append(label)
            dense_rows.append(dense)
            sparse_rows.append(sparse)
            if len(labels) == batch_size:
                yield _finalize(labels, dense_rows, sparse_rows, cards)
                labels, dense_rows, sparse_rows = [], [], []
    if labels:
        yield _finalize(labels, dense_rows, sparse_rows, cards)


def _finalize(labels, dense_rows, sparse_rows, cards) -> Batch:
    dense = np.log1p(np.maximum(np.stack(dense_rows), 0.0))
    sparse = np.stack(sparse_rows) % cards
    return Batch(
        dense=dense,
        sparse=sparse,
        labels=np.array(labels, dtype=np.float64),
    )


@dataclass
class CriteoStatistics:
    """Aggregate statistics of a Criteo-format file (for sharding studies
    and MP-Cache sizing — access counts drive the encoder tier)."""

    n_rows: int = 0
    positive_rows: int = 0
    access_counts: list[dict[int, int]] = field(default_factory=list)

    @property
    def ctr(self) -> float:
        return self.positive_rows / self.n_rows if self.n_rows else 0.0

    def hottest_ids(self, feature: int, count: int) -> list[int]:
        counts = self.access_counts[feature]
        return sorted(counts, key=counts.get, reverse=True)[:count]

    def hot_traffic_fraction(self, feature: int, count: int) -> float:
        """Share of accesses landing on the ``count`` hottest IDs."""
        counts = self.access_counts[feature]
        total = sum(counts.values())
        if not total:
            return 0.0
        hot = sum(counts[i] for i in self.hottest_ids(feature, count))
        return hot / total


def scan_statistics(path: str | Path, config: ModelConfig) -> CriteoStatistics:
    """One streaming pass collecting CTR and per-feature access counts."""
    stats = CriteoStatistics(
        access_counts=[dict() for _ in range(config.n_sparse)]
    )
    for batch in read_criteo_file(path, config, batch_size=4096):
        stats.n_rows += len(batch)
        stats.positive_rows += int(batch.labels.sum())
        for f in range(config.n_sparse):
            ids, counts = np.unique(batch.sparse[:, f], return_counts=True)
            feature_counts = stats.access_counts[f]
            for idx, cnt in zip(ids.tolist(), counts.tolist()):
                feature_counts[idx] = feature_counts.get(idx, 0) + cnt
    return stats
