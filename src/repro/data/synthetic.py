"""Latent-factor synthetic CTR data in the shape of Criteo.

Labels come from a hidden ground-truth model: each sparse ID carries a
latent vector, each dense feature a weight, and the click logit is a linear
term plus pairwise latent interactions — the structure DLRM is built to
capture. This gives trainable signal (losses drop, AUC > 0.5 quickly) while
the ID marginals stay Zipf-distributed like real Criteo traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.zipf import ZipfSampler
from repro.models.configs import ModelConfig


@dataclass
class Batch:
    dense: np.ndarray  # [B, n_dense] float
    sparse: np.ndarray  # [B, n_sparse] int
    labels: np.ndarray  # [B] {0, 1}

    def __len__(self) -> int:
        return self.dense.shape[0]


class SyntheticCTRDataset:
    """Generates batches for a given ``ModelConfig``.

    The ground truth uses a small latent dim (independent of the model's
    embedding dim) so that learnability does not trivially favor any one
    representation.
    """

    def __init__(
        self,
        config: ModelConfig,
        seed: int = 0,
        latent_dim: int = 8,
        zipf_alpha: float = 1.05,
        label_noise: float = 0.1,
        max_latent_rows: int = 100_000,
    ) -> None:
        self.config = config
        self.latent_dim = latent_dim
        self.label_noise = label_noise
        self._rng = np.random.default_rng(seed)
        self.samplers = [
            ZipfSampler(rows, alpha=zipf_alpha, seed=seed * 1009 + f)
            for f, rows in enumerate(config.cardinalities)
        ]
        # Latent vectors only for the head of each table (IDs are Zipf, so the
        # head carries nearly all probability mass); tail IDs share a bucket.
        self._latent_rows = [
            min(rows, max_latent_rows) for rows in config.cardinalities
        ]
        self._latents = [
            self._rng.standard_normal((rows, latent_dim)) / np.sqrt(latent_dim)
            for rows in self._latent_rows
        ]
        self._dense_weights = self._rng.standard_normal(config.n_dense) * 0.3
        self._bias = -1.1  # CTR around 25%, like Criteo

    def sample_batch(self, batch_size: int) -> Batch:
        cfg = self.config
        dense = self._rng.lognormal(mean=0.0, sigma=1.0, size=(batch_size, cfg.n_dense))
        dense = np.log1p(dense)  # Criteo preprocessing convention
        sparse = np.stack(
            [sampler.sample(batch_size) for sampler in self.samplers], axis=1
        )
        logits = self._true_logits(dense, sparse)
        probs = 1.0 / (1.0 + np.exp(-logits))
        labels = (self._rng.random(batch_size) < probs).astype(np.float64)
        return Batch(dense=dense, sparse=sparse, labels=labels)

    def _true_logits(self, dense: np.ndarray, sparse: np.ndarray) -> np.ndarray:
        batch = dense.shape[0]
        latent_sum = np.zeros((batch, self.latent_dim))
        latent_sq_sum = np.zeros((batch, self.latent_dim))
        for f in range(self.config.n_sparse):
            ids = np.minimum(sparse[:, f], self._latent_rows[f] - 1)
            vecs = self._latents[f][ids]
            latent_sum += vecs
            latent_sq_sum += vecs**2
        # Factorization-machine pairwise term: 0.5 * (sum^2 - sum of squares).
        pairwise = 0.5 * (latent_sum**2 - latent_sq_sum).sum(axis=1)
        linear = dense @ self._dense_weights
        noise = self._rng.standard_normal(batch) * self.label_noise
        return self._bias + linear + pairwise + noise

    def bayes_accuracy(self, n_samples: int = 20_000) -> float:
        """Accuracy of the (unreachable) oracle that knows the true logits."""
        batch = self.sample_batch(n_samples)
        logits = self._true_logits(batch.dense, batch.sparse)
        preds = (logits > 0).astype(np.float64)
        return float(np.mean(preds == batch.labels))


def make_dataset(config: ModelConfig, seed: int = 0, **kwargs) -> SyntheticCTRDataset:
    """Convenience constructor matching the examples' import style."""
    return SyntheticCTRDataset(config, seed=seed, **kwargs)
