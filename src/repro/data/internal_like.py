"""An "internal-like" production workload spec (Section 6.1).

The paper's production case study uses a Meta-internal table-based model we
cannot access. This stand-in keeps the published characteristics of
production recommenders: many more tables than Criteo, heavier popularity
skew, and multi-hot-scale aggregate lookup traffic — enough to exercise the
same code paths (representation swap, throughput accounting) the paper's
case study exercises.
"""

from __future__ import annotations

import numpy as np

from repro.models.configs import ModelConfig

_rng = np.random.default_rng(7)
# 64 tables, lognormal cardinalities from 1e3 to 4e7 — production-like spread.
_CARDINALITIES = sorted(
    int(c)
    for c in np.clip(_rng.lognormal(mean=12.5, sigma=2.2, size=64), 1e3, 4e7)
)

INTERNAL_LIKE = ModelConfig(
    name="internal-like",
    n_dense=32,
    cardinalities=list(_CARDINALITIES),
    embedding_dim=64,
    bottom_mlp=[1024, 512],
    top_mlp=[1024, 512, 256],
)
