"""Inference query workloads (Section 5.3).

Queries are batches of candidate items for one user request. Sizes follow a
lognormal distribution with a configurable mean (default 128, range 1-4K as
in DeepRecSys); arrivals follow one of several processes at the target QPS:

``poisson``
    Homogeneous Poisson — the paper's default stationary load.
``uniform``
    Deterministic equal spacing (useful for analytic checks).
``diurnal``
    Inhomogeneous Poisson with a sinusoidal rate — the day/night cycle
    Hercules-style provisioning targets, compressed into a short window.
``mmpp`` (alias ``bursty``)
    Two-state Markov-modulated Poisson: exponential dwell times alternate
    a quiet baseline with short high-rate bursts, the on-off burstiness of
    real frontend traffic that a stationary Poisson underestimates.
``flash-crowd``
    Stationary baseline with one multiplicative spike window — the
    breaking-news / product-drop surge that stresses admission control.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

MAX_QUERY_SIZE = 4096


@dataclass(frozen=True)
class Query:
    """One inference request: ``size`` candidate items arriving at a time.

    ``tenant`` tags the originating workload in multi-tenant scenarios
    (empty for single-tenant runs); per-tenant SLAs live on the scenario.

    ``user`` identifies the requesting user for shard-group keying
    (:meth:`~repro.serving.cluster.ShardMap.group_of`): real request
    streams are user-skewed — a few heavy users dominate — which is what
    makes some shard groups hot.  The default ``-1`` keys the group off
    ``index`` instead (uniform across groups), preserving every pre-cache
    scenario bit-for-bit.
    """

    index: int
    size: int
    arrival_s: float
    tenant: str = ""
    user: int = -1


@dataclass(frozen=True)
class QueryArrays:
    """Column (structure-of-arrays) view of one query stream.

    The array fast path (:mod:`repro.serving.fastpath`) consumes queries
    in this form so no per-query Python object exists on its hot path.
    ``tenant_codes`` indexes into ``tenants`` (code 0 is always the
    untagged tenant ``""`` for streams generated without tags); ``user``
    carries the shard-group key (``-1`` = key off ``index``), mirroring
    :class:`Query` field for field.
    """

    index: np.ndarray  # int64, the global query indices
    size: np.ndarray  # int64 candidate-item counts
    arrival_s: np.ndarray  # float64 arrival timestamps
    tenant_codes: np.ndarray  # int32 codes into ``tenants``
    tenants: tuple[str, ...]  # code -> tenant name ("" when untagged)
    user: np.ndarray  # int64 user keys (-1 = unkeyed)

    def __post_init__(self) -> None:
        n = self.index.shape[0]
        for name in ("size", "arrival_s", "tenant_codes", "user"):
            if getattr(self, name).shape != (n,):
                raise ValueError(f"{name} must match index length {n}")

    def __len__(self) -> int:
        return int(self.index.shape[0])

    @property
    def total_samples(self) -> int:
        """Candidate items across the whole stream."""
        return int(self.size.sum())

    @classmethod
    def from_queries(cls, queries) -> "QueryArrays":
        """Columnize a sequence of :class:`Query` objects (one pass)."""
        n = len(queries)
        tenants: list[str] = [""]
        codes_of: dict[str, int] = {"": 0}
        index = np.empty(n, dtype=np.int64)
        size = np.empty(n, dtype=np.int64)
        arrival = np.empty(n, dtype=np.float64)
        tenant_codes = np.zeros(n, dtype=np.int32)
        user = np.empty(n, dtype=np.int64)
        for i, q in enumerate(queries):
            index[i] = q.index
            size[i] = q.size
            arrival[i] = q.arrival_s
            user[i] = q.user
            if q.tenant:
                code = codes_of.get(q.tenant)
                if code is None:
                    code = len(tenants)
                    codes_of[q.tenant] = code
                    tenants.append(q.tenant)
                tenant_codes[i] = code
        return cls(
            index=index, size=size, arrival_s=arrival,
            tenant_codes=tenant_codes, tenants=tuple(tenants), user=user,
        )

    def to_queries(self) -> list[Query]:
        """Materialize the stream as :class:`Query` objects."""
        tenants = self.tenants
        return [
            Query(index=i, size=s, arrival_s=a, tenant=tenants[c], user=u)
            for i, s, a, c, u in zip(
                self.index.tolist(), self.size.tolist(),
                self.arrival_s.tolist(), self.tenant_codes.tolist(),
                self.user.tolist(),
            )
        ]


@dataclass
class QuerySet:
    queries: list[Query] = field(default_factory=list)
    # Cached column view; generators that build queries *from* arrays
    # attach it up front so as_arrays() skips the object round-trip.
    _arrays: QueryArrays | None = field(
        default=None, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    @property
    def total_samples(self) -> int:
        return sum(q.size for q in self.queries)

    @property
    def sizes(self) -> np.ndarray:
        return np.array([q.size for q in self.queries])

    def mean_size(self) -> float:
        return float(self.sizes.mean()) if self.queries else 0.0

    def as_arrays(self) -> QueryArrays:
        """The stream as a :class:`QueryArrays` column view (cached).

        Query sets built by :func:`generate_query_set` carry the arrays
        they were generated from, so this is free for them; sets built
        from explicit :class:`Query` lists columnize once on demand.
        """
        if self._arrays is None:
            self._arrays = QueryArrays.from_queries(self.queries)
        return self._arrays


def lognormal_sizes(
    n_queries: int,
    mean_size: float,
    sigma: float = 1.0,
    rng: np.random.Generator | None = None,
    max_size: int = MAX_QUERY_SIZE,
) -> np.ndarray:
    """Lognormal query sizes with the requested arithmetic mean."""
    if mean_size < 1:
        raise ValueError("mean query size must be >= 1")
    rng = rng or np.random.default_rng(0)
    # E[lognormal(mu, sigma)] = exp(mu + sigma^2/2)  =>  solve for mu.
    mu = np.log(mean_size) - sigma**2 / 2.0
    sizes = rng.lognormal(mean=mu, sigma=sigma, size=n_queries)
    return np.clip(np.round(sizes), 1, max_size).astype(np.int64)


def arrival_times(
    n_queries: int,
    qps: float,
    rng: np.random.Generator | None = None,
    process: str = "poisson",
    **process_kwargs,
) -> np.ndarray:
    """Arrival timestamps for ``n_queries`` at the target rate.

    ``process_kwargs`` forward to the named process generator (e.g.
    ``amplitude`` / ``period_s`` for ``diurnal``, ``burst_factor`` /
    ``duty`` for ``mmpp``, ``spike_factor`` for ``flash-crowd``).

    Every process draws in batched numpy chunks rather than one RNG call
    per query — per-query draws dominate scenario construction at 100k+
    queries; the speedup is pinned in
    ``benchmarks/test_workload_generation.py``.
    """
    if qps <= 0:
        raise ValueError("qps must be positive")
    rng = rng or np.random.default_rng(0)
    if process == "diurnal":
        return _diurnal_arrivals(n_queries, qps, rng, **process_kwargs)
    if process in ("mmpp", "bursty"):
        return _mmpp_arrivals(n_queries, qps, rng, **process_kwargs)
    if process == "flash-crowd":
        return _flash_crowd_arrivals(n_queries, qps, rng, **process_kwargs)
    if process_kwargs:
        raise ValueError(
            f"process {process!r} takes no extra parameters, "
            f"got {sorted(process_kwargs)}"
        )
    if process == "poisson":
        gaps = rng.exponential(scale=1.0 / qps, size=n_queries)
        return np.cumsum(gaps)
    if process == "uniform":
        return np.arange(1, n_queries + 1) / qps
    raise ValueError(f"unknown arrival process {process!r}")


def _thinned_arrivals(n_queries, peak_rate, rng, accept) -> np.ndarray:
    """Thinning against ``peak_rate``, drawn in bulk chunks.

    ``accept(candidates) -> bool mask`` implements the inhomogeneous
    acceptance test. Each round oversamples candidate points at the peak
    rate, accepts in one vectorized pass, and keeps going from the last
    *candidate* (accepted or not — the thinning process must not restart
    mid-stream).
    """
    times = np.empty(n_queries)
    count = 0
    t = 0.0
    while count < n_queries:
        chunk = max(4096, int(1.5 * (n_queries - count)))
        candidates = t + np.cumsum(
            rng.exponential(1.0 / peak_rate, size=chunk)
        )
        accepted = candidates[accept(candidates, rng)]
        take = min(n_queries - count, accepted.size)
        times[count:count + take] = accepted[:take]
        count += take
        t = candidates[-1]
    return times


def _diurnal_arrivals(
    n_queries: int,
    mean_qps: float,
    rng: np.random.Generator,
    period_s: float = 10.0,
    amplitude: float = 0.6,
    phase_s: float = 0.0,
) -> np.ndarray:
    """Inhomogeneous Poisson arrivals with a sinusoidal rate.

    Production recommendation traffic follows diurnal cycles (the load
    pattern Hercules provisions for — Section 7); ``period_s`` compresses a
    day into a simulable window. Rate(t) = mean * (1 + amplitude*sin(...)),
    sampled by vectorized thinning against the peak rate.

    ``phase_s`` shifts the whole cycle earlier in time: a stream with
    ``phase_s = period_s / 2`` peaks half a day away from an unshifted
    one.  Follow-the-sun geo scenarios stagger one stream per region this
    way (:func:`merge_query_arrays` then interleaves them), so each
    region's peak lands in another's trough.
    """
    if not 0 <= amplitude < 1:
        raise ValueError("amplitude must be in [0, 1)")
    peak = mean_qps * (1.0 + amplitude)

    def accept(candidates, rng):
        rate = mean_qps * (
            1.0
            + amplitude * np.sin(2 * np.pi * (candidates + phase_s) / period_s)
        )
        return rng.random(candidates.size) < rate / peak

    return _thinned_arrivals(n_queries, peak, rng, accept)


def _mmpp_arrivals(
    n_queries: int,
    mean_qps: float,
    rng: np.random.Generator,
    burst_factor: float = 4.0,
    duty: float = 0.2,
    mean_dwell_s: float = 1.0,
) -> np.ndarray:
    """Two-state MMPP (on-off) arrivals with the requested long-run rate.

    The process spends a ``duty`` fraction of time in a burst state at
    ``burst_factor`` times the mean rate and the rest at a calm rate chosen
    so the time-weighted average stays ``mean_qps``. Dwell times in each
    state are exponential with mean ``mean_dwell_s`` scaled by the state's
    long-run share.

    Sampling is vectorized per dwell interval: within a window of length
    ``L`` at rate ``r`` the arrival count is Poisson(``rL``) and the
    points are sorted uniforms — one bulk draw per state visit instead of
    one exponential per arrival.
    """
    if burst_factor <= 1.0:
        raise ValueError("burst_factor must exceed 1")
    if not 0.0 < duty < 1.0:
        raise ValueError("duty must be in (0, 1)")
    if duty * burst_factor >= 1.0:
        raise ValueError("duty * burst_factor must stay below 1 so the calm "
                         "rate remains positive")
    if n_queries <= 0:
        return np.empty(0)
    rate_high = burst_factor * mean_qps
    rate_low = mean_qps * (1.0 - duty * burst_factor) / (1.0 - duty)
    dwell_high = mean_dwell_s * duty
    dwell_low = mean_dwell_s * (1.0 - duty)
    chunks: list[np.ndarray] = []
    total = 0
    t = 0.0
    bursting = False
    while total < n_queries:
        dwell = rng.exponential(dwell_high if bursting else dwell_low)
        rate = rate_high if bursting else rate_low
        k = rng.poisson(rate * dwell)
        if k:
            chunks.append(t + dwell * np.sort(rng.random(k)))
            total += k
        t += dwell
        bursting = not bursting
    return np.concatenate(chunks)[:n_queries]


def _flash_crowd_arrivals(
    n_queries: int,
    base_qps: float,
    rng: np.random.Generator,
    spike_factor: float = 5.0,
    spike_start_frac: float = 0.5,
    spike_duration_frac: float = 0.1,
) -> np.ndarray:
    """Baseline Poisson traffic with one multiplicative spike window.

    The spike is placed relative to the nominal (pre-spike) horizon
    ``n_queries / base_qps`` and sampled by vectorized thinning against
    the peak rate.
    """
    if spike_factor < 1.0:
        raise ValueError("spike_factor must be >= 1")
    horizon = n_queries / base_qps
    spike_start = spike_start_frac * horizon
    spike_end = spike_start + spike_duration_frac * horizon

    def accept(candidates, rng):
        in_spike = (candidates >= spike_start) & (candidates < spike_end)
        return in_spike | (rng.random(candidates.size) < 1.0 / spike_factor)

    return _thinned_arrivals(n_queries, base_qps * spike_factor, rng, accept)


def generate_query_arrays(
    n_queries: int = 10_000,
    mean_size: float = 128.0,
    qps: float = 1000.0,
    sigma: float = 1.0,
    seed: int = 0,
    process: str = "poisson",
    tenant: str = "",
    **process_kwargs,
) -> QueryArrays:
    """Generate a query stream directly in column form.

    Draws the exact same sizes and arrivals as :func:`generate_query_set`
    (same RNG, same order) but never materializes per-query objects —
    the form the array fast path consumes, and the only practical way to
    stage 10M+-query day-scale streams.
    """
    rng = np.random.default_rng(seed)
    sizes = lognormal_sizes(n_queries, mean_size, sigma=sigma, rng=rng)
    arrivals = arrival_times(
        n_queries, qps, rng=rng, process=process, **process_kwargs
    )
    tenants = ("", tenant) if tenant else ("",)
    code = np.int32(len(tenants) - 1)
    return QueryArrays(
        index=np.arange(n_queries, dtype=np.int64),
        size=sizes.astype(np.int64, copy=False),
        arrival_s=arrivals.astype(np.float64, copy=False),
        tenant_codes=np.full(n_queries, code, dtype=np.int32),
        tenants=tenants,
        user=np.full(n_queries, -1, dtype=np.int64),
    )


def merge_query_arrays(
    streams: list[QueryArrays],
) -> tuple[QueryArrays, np.ndarray]:
    """Interleave per-source column streams into one arrival-ordered stream.

    The multi-region analogue of :meth:`~repro.serving.workload.
    ServingScenario.multi_tenant`'s merge, kept in column form: queries
    from every stream are merged by arrival time (ties broken by source
    order, so the merge is deterministic), re-indexed globally ``0..n-1``,
    and returned together with a parallel ``source_ids`` array saying
    which input stream each merged query came from — the per-query home
    region a :class:`~repro.serving.region.RegionSimulator` routes by.

    Tenant tags are preserved (codes are re-mapped into the merged tenant
    table); ``user`` keys pass through unchanged.
    """
    if not streams:
        raise ValueError("need at least one stream to merge")
    sizes = np.concatenate([s.size for s in streams])
    arrivals = np.concatenate([s.arrival_s for s in streams])
    users = np.concatenate([s.user for s in streams])
    source_ids = np.concatenate(
        [np.full(len(s), i, dtype=np.int64) for i, s in enumerate(streams)]
    )
    tenants: list[str] = [""]
    codes_of: dict[str, int] = {"": 0}
    code_chunks = []
    for stream in streams:
        remap = np.empty(len(stream.tenants), dtype=np.int32)
        for local_code, name in enumerate(stream.tenants):
            merged_code = codes_of.get(name)
            if merged_code is None:
                merged_code = codes_of[name] = len(tenants)
                tenants.append(name)
            remap[local_code] = merged_code
        code_chunks.append(remap[stream.tenant_codes])
    tenant_codes = np.concatenate(code_chunks)
    # Stable sort: simultaneous arrivals keep source order, then each
    # source's own submission order — deterministic and testable.
    order = np.argsort(arrivals, kind="stable")
    n = sizes.shape[0]
    return (
        QueryArrays(
            index=np.arange(n, dtype=np.int64),
            size=sizes[order],
            arrival_s=arrivals[order],
            tenant_codes=tenant_codes[order],
            tenants=tuple(tenants),
            user=users[order],
        ),
        source_ids[order],
    )


def generate_query_set(
    n_queries: int = 10_000,
    mean_size: float = 128.0,
    qps: float = 1000.0,
    sigma: float = 1.0,
    seed: int = 0,
    process: str = "poisson",
    tenant: str = "",
    **process_kwargs,
) -> QuerySet:
    """The paper's default workload: 10K lognormal queries, mean 128, 1000 QPS."""
    arrays = generate_query_arrays(
        n_queries, mean_size, qps, sigma=sigma, seed=seed, process=process,
        tenant=tenant, **process_kwargs,
    )
    # tolist() once: plain python scalars construct far faster than
    # per-element numpy indexing at 100k+ queries.
    queries = [
        Query(index=i, size=size, arrival_s=arrival, tenant=tenant)
        for i, (size, arrival) in enumerate(
            zip(arrays.size.tolist(), arrays.arrival_s.tolist())
        )
    ]
    return QuerySet(queries=queries, _arrays=arrays)
