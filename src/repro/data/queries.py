"""Inference query workloads (Section 5.3).

Queries are batches of candidate items for one user request. Sizes follow a
lognormal distribution with a configurable mean (default 128, range 1-4K as
in DeepRecSys); arrivals follow a Poisson process at the target QPS.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

MAX_QUERY_SIZE = 4096


@dataclass(frozen=True)
class Query:
    """One inference request: ``size`` candidate items arriving at a time."""

    index: int
    size: int
    arrival_s: float


@dataclass
class QuerySet:
    queries: list[Query] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    @property
    def total_samples(self) -> int:
        return sum(q.size for q in self.queries)

    @property
    def sizes(self) -> np.ndarray:
        return np.array([q.size for q in self.queries])

    def mean_size(self) -> float:
        return float(self.sizes.mean()) if self.queries else 0.0


def lognormal_sizes(
    n_queries: int,
    mean_size: float,
    sigma: float = 1.0,
    rng: np.random.Generator | None = None,
    max_size: int = MAX_QUERY_SIZE,
) -> np.ndarray:
    """Lognormal query sizes with the requested arithmetic mean."""
    if mean_size < 1:
        raise ValueError("mean query size must be >= 1")
    rng = rng or np.random.default_rng(0)
    # E[lognormal(mu, sigma)] = exp(mu + sigma^2/2)  =>  solve for mu.
    mu = np.log(mean_size) - sigma**2 / 2.0
    sizes = rng.lognormal(mean=mu, sigma=sigma, size=n_queries)
    return np.clip(np.round(sizes), 1, max_size).astype(np.int64)


def arrival_times(
    n_queries: int,
    qps: float,
    rng: np.random.Generator | None = None,
    process: str = "poisson",
) -> np.ndarray:
    """Arrival timestamps for ``n_queries`` at the target rate."""
    if qps <= 0:
        raise ValueError("qps must be positive")
    rng = rng or np.random.default_rng(0)
    if process == "poisson":
        gaps = rng.exponential(scale=1.0 / qps, size=n_queries)
        return np.cumsum(gaps)
    if process == "uniform":
        return np.arange(1, n_queries + 1) / qps
    if process == "diurnal":
        return _diurnal_arrivals(n_queries, qps, rng)
    raise ValueError(f"unknown arrival process {process!r}")


def _diurnal_arrivals(
    n_queries: int,
    mean_qps: float,
    rng: np.random.Generator,
    period_s: float = 10.0,
    amplitude: float = 0.6,
) -> np.ndarray:
    """Inhomogeneous Poisson arrivals with a sinusoidal rate.

    Production recommendation traffic follows diurnal cycles (the load
    pattern Hercules provisions for — Section 7); ``period_s`` compresses a
    day into a simulable window. Rate(t) = mean * (1 + amplitude*sin(...)),
    sampled by thinning against the peak rate.
    """
    if not 0 <= amplitude < 1:
        raise ValueError("amplitude must be in [0, 1)")
    peak = mean_qps * (1.0 + amplitude)
    times = []
    t = 0.0
    while len(times) < n_queries:
        t += rng.exponential(1.0 / peak)
        rate = mean_qps * (1.0 + amplitude * np.sin(2 * np.pi * t / period_s))
        if rng.random() < rate / peak:
            times.append(t)
    return np.array(times)


def generate_query_set(
    n_queries: int = 10_000,
    mean_size: float = 128.0,
    qps: float = 1000.0,
    sigma: float = 1.0,
    seed: int = 0,
    process: str = "poisson",
) -> QuerySet:
    """The paper's default workload: 10K lognormal queries, mean 128, 1000 QPS."""
    rng = np.random.default_rng(seed)
    sizes = lognormal_sizes(n_queries, mean_size, sigma=sigma, rng=rng)
    arrivals = arrival_times(n_queries, qps, rng=rng, process=process)
    queries = [
        Query(index=i, size=int(sizes[i]), arrival_s=float(arrivals[i]))
        for i in range(n_queries)
    ]
    return QuerySet(queries=queries)
