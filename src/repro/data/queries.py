"""Inference query workloads (Section 5.3).

Queries are batches of candidate items for one user request. Sizes follow a
lognormal distribution with a configurable mean (default 128, range 1-4K as
in DeepRecSys); arrivals follow one of several processes at the target QPS:

``poisson``
    Homogeneous Poisson — the paper's default stationary load.
``uniform``
    Deterministic equal spacing (useful for analytic checks).
``diurnal``
    Inhomogeneous Poisson with a sinusoidal rate — the day/night cycle
    Hercules-style provisioning targets, compressed into a short window.
``mmpp`` (alias ``bursty``)
    Two-state Markov-modulated Poisson: exponential dwell times alternate
    a quiet baseline with short high-rate bursts, the on-off burstiness of
    real frontend traffic that a stationary Poisson underestimates.
``flash-crowd``
    Stationary baseline with one multiplicative spike window — the
    breaking-news / product-drop surge that stresses admission control.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

MAX_QUERY_SIZE = 4096


@dataclass(frozen=True)
class Query:
    """One inference request: ``size`` candidate items arriving at a time.

    ``tenant`` tags the originating workload in multi-tenant scenarios
    (empty for single-tenant runs); per-tenant SLAs live on the scenario.
    """

    index: int
    size: int
    arrival_s: float
    tenant: str = ""


@dataclass
class QuerySet:
    queries: list[Query] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    @property
    def total_samples(self) -> int:
        return sum(q.size for q in self.queries)

    @property
    def sizes(self) -> np.ndarray:
        return np.array([q.size for q in self.queries])

    def mean_size(self) -> float:
        return float(self.sizes.mean()) if self.queries else 0.0


def lognormal_sizes(
    n_queries: int,
    mean_size: float,
    sigma: float = 1.0,
    rng: np.random.Generator | None = None,
    max_size: int = MAX_QUERY_SIZE,
) -> np.ndarray:
    """Lognormal query sizes with the requested arithmetic mean."""
    if mean_size < 1:
        raise ValueError("mean query size must be >= 1")
    rng = rng or np.random.default_rng(0)
    # E[lognormal(mu, sigma)] = exp(mu + sigma^2/2)  =>  solve for mu.
    mu = np.log(mean_size) - sigma**2 / 2.0
    sizes = rng.lognormal(mean=mu, sigma=sigma, size=n_queries)
    return np.clip(np.round(sizes), 1, max_size).astype(np.int64)


def arrival_times(
    n_queries: int,
    qps: float,
    rng: np.random.Generator | None = None,
    process: str = "poisson",
) -> np.ndarray:
    """Arrival timestamps for ``n_queries`` at the target rate."""
    if qps <= 0:
        raise ValueError("qps must be positive")
    rng = rng or np.random.default_rng(0)
    if process == "poisson":
        gaps = rng.exponential(scale=1.0 / qps, size=n_queries)
        return np.cumsum(gaps)
    if process == "uniform":
        return np.arange(1, n_queries + 1) / qps
    if process == "diurnal":
        return _diurnal_arrivals(n_queries, qps, rng)
    if process in ("mmpp", "bursty"):
        return _mmpp_arrivals(n_queries, qps, rng)
    if process == "flash-crowd":
        return _flash_crowd_arrivals(n_queries, qps, rng)
    raise ValueError(f"unknown arrival process {process!r}")


def _diurnal_arrivals(
    n_queries: int,
    mean_qps: float,
    rng: np.random.Generator,
    period_s: float = 10.0,
    amplitude: float = 0.6,
) -> np.ndarray:
    """Inhomogeneous Poisson arrivals with a sinusoidal rate.

    Production recommendation traffic follows diurnal cycles (the load
    pattern Hercules provisions for — Section 7); ``period_s`` compresses a
    day into a simulable window. Rate(t) = mean * (1 + amplitude*sin(...)),
    sampled by thinning against the peak rate.
    """
    if not 0 <= amplitude < 1:
        raise ValueError("amplitude must be in [0, 1)")
    peak = mean_qps * (1.0 + amplitude)
    times = []
    t = 0.0
    while len(times) < n_queries:
        t += rng.exponential(1.0 / peak)
        rate = mean_qps * (1.0 + amplitude * np.sin(2 * np.pi * t / period_s))
        if rng.random() < rate / peak:
            times.append(t)
    return np.array(times)


def _mmpp_arrivals(
    n_queries: int,
    mean_qps: float,
    rng: np.random.Generator,
    burst_factor: float = 4.0,
    duty: float = 0.2,
    mean_dwell_s: float = 1.0,
) -> np.ndarray:
    """Two-state MMPP (on-off) arrivals with the requested long-run rate.

    The process spends a ``duty`` fraction of time in a burst state at
    ``burst_factor`` times the mean rate and the rest at a calm rate chosen
    so the time-weighted average stays ``mean_qps``. Dwell times in each
    state are exponential with mean ``mean_dwell_s`` scaled by the state's
    long-run share.
    """
    if burst_factor <= 1.0:
        raise ValueError("burst_factor must exceed 1")
    if not 0.0 < duty < 1.0:
        raise ValueError("duty must be in (0, 1)")
    if duty * burst_factor >= 1.0:
        raise ValueError("duty * burst_factor must stay below 1 so the calm "
                         "rate remains positive")
    rate_high = burst_factor * mean_qps
    rate_low = mean_qps * (1.0 - duty * burst_factor) / (1.0 - duty)
    dwell_high = mean_dwell_s * duty
    dwell_low = mean_dwell_s * (1.0 - duty)
    times = np.empty(n_queries)
    count = 0
    t = 0.0
    bursting = False
    state_end = rng.exponential(dwell_low)
    while count < n_queries:
        rate = rate_high if bursting else rate_low
        t_next = t + rng.exponential(1.0 / rate)
        if t_next >= state_end:
            # State flips before the next arrival would land; resample the
            # gap under the new state's rate from the flip instant.
            t = state_end
            bursting = not bursting
            state_end = t + rng.exponential(dwell_high if bursting else dwell_low)
            continue
        t = t_next
        times[count] = t
        count += 1
    return times


def _flash_crowd_arrivals(
    n_queries: int,
    base_qps: float,
    rng: np.random.Generator,
    spike_factor: float = 5.0,
    spike_start_frac: float = 0.5,
    spike_duration_frac: float = 0.1,
) -> np.ndarray:
    """Baseline Poisson traffic with one multiplicative spike window.

    The spike is placed relative to the nominal (pre-spike) horizon
    ``n_queries / base_qps`` and sampled by thinning against the peak rate.
    """
    if spike_factor < 1.0:
        raise ValueError("spike_factor must be >= 1")
    horizon = n_queries / base_qps
    spike_start = spike_start_frac * horizon
    spike_end = spike_start + spike_duration_frac * horizon
    peak = base_qps * spike_factor
    times = np.empty(n_queries)
    count = 0
    t = 0.0
    while count < n_queries:
        t += rng.exponential(1.0 / peak)
        in_spike = spike_start <= t < spike_end
        rate = peak if in_spike else base_qps
        if in_spike or rng.random() < rate / peak:
            times[count] = t
            count += 1
    return times


def generate_query_set(
    n_queries: int = 10_000,
    mean_size: float = 128.0,
    qps: float = 1000.0,
    sigma: float = 1.0,
    seed: int = 0,
    process: str = "poisson",
    tenant: str = "",
) -> QuerySet:
    """The paper's default workload: 10K lognormal queries, mean 128, 1000 QPS."""
    rng = np.random.default_rng(seed)
    sizes = lognormal_sizes(n_queries, mean_size, sigma=sigma, rng=rng)
    arrivals = arrival_times(n_queries, qps, rng=rng, process=process)
    queries = [
        Query(
            index=i, size=int(sizes[i]), arrival_s=float(arrivals[i]),
            tenant=tenant,
        )
        for i in range(n_queries)
    ]
    return QuerySet(queries=queries)
