"""Synthetic Criteo-shaped datasets and serving workloads.

The raw Criteo click logs are not redistributable (and this environment is
offline), so the data layer generates structurally faithful substitutes:
real per-table cardinalities, Zipf (power-law) sparse-ID popularity matching
Figure 16a, and a latent-factor ground-truth CTR model so the numpy DLRM has
real signal to learn.
"""

from repro.data.zipf import ZipfSampler
from repro.data.synthetic import SyntheticCTRDataset, Batch, make_dataset
from repro.data.queries import QuerySet, Query, generate_query_set, arrival_times
from repro.data.internal_like import INTERNAL_LIKE

__all__ = [
    "ZipfSampler",
    "SyntheticCTRDataset",
    "Batch",
    "make_dataset",
    "QuerySet",
    "Query",
    "generate_query_set",
    "arrival_times",
    "INTERNAL_LIKE",
]
