"""Power-law (Zipf) sparse-ID sampling.

Recommendation ID popularity follows a power law (paper Section 6.7,
Figure 16a: the hottest rows of Kaggle's largest table see 10K+ accesses
while most rows are touched at most once). The sampler draws IDs with
probability proportional to ``rank^-alpha`` over a fixed permutation so
that "hot" IDs are stable across batches — the property MP-Cache's encoder
cache exploits.
"""

from __future__ import annotations

import numpy as np


class ZipfSampler:
    """Draw IDs from ``[0, n)`` with Zipf(alpha) popularity."""

    def __init__(
        self,
        n: int,
        alpha: float = 1.05,
        seed: int = 0,
        shuffle: bool = False,
    ) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.n = n
        self.alpha = alpha
        self._rng = np.random.default_rng(seed)
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks**-alpha
        self._probs = weights / weights.sum()
        self._cdf = np.cumsum(self._probs)
        self._cdf[-1] = 1.0
        if shuffle:
            self._perm = self._rng.permutation(n)
        else:
            self._perm = None  # identity: ID 0 is hottest
        self._inverse: np.ndarray | None = None  # built lazily, reused

    def sample(self, size: int | tuple[int, ...]) -> np.ndarray:
        """Sample IDs (inverse-CDF over the rank distribution)."""
        uniforms = self._rng.random(size)
        ranks = np.searchsorted(self._cdf, uniforms, side="right")
        ranks = np.minimum(ranks, self.n - 1)
        if self._perm is not None:
            return self._perm[ranks]
        return ranks

    def probability(self, ids: np.ndarray) -> np.ndarray:
        """Popularity of each ID (used to pick encoder-cache residents)."""
        ids = np.asarray(ids)
        if self._perm is not None:
            if self._inverse is None:
                self._inverse = np.empty_like(self._perm)
                self._inverse[self._perm] = np.arange(self.n)
            return self._probs[self._inverse[ids]]
        return self._probs[ids]

    def hottest(self, count: int) -> np.ndarray:
        """The ``count`` most popular IDs, descending."""
        count = min(count, self.n)
        if self._perm is not None:
            return self._perm[:count]
        return np.arange(count)

    def expected_hit_rate(self, cached_ids: np.ndarray) -> float:
        """Probability that a fresh sample hits the given cached-ID set."""
        cached = np.unique(np.asarray(cached_ids))
        return float(self.probability(cached).sum())
