"""TT-Rec: tensor-train-compressed embedding tables (Yin et al., MLSys'21).

The paper evaluates DHE as its compute-based representation but names
TT-Rec as the other contender (Section 2.2) — preferring DHE for its
tunable encoder-decoder stacks. This module implements TT-Rec so the
comparison is reproducible: the row dimension factors as n1*n2*n3 and the
embedding dimension as d1*d2*d3; three TT-cores replace the dense table,
and each lookup contracts the cores belonging to the row's mixed-radix
digits. Like DHE it trades memory for FLOPs; unlike DHE it remains an
exact parameterization of a (low-rank) table.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter


def factorize_evenly(n: int, parts: int = 3) -> list[int]:
    """Factors whose product covers ``n``, as balanced as possible.

    TT decomposition needs the row count expressed as a product; real
    cardinalities are rarely factorable, so we take the ceiling of the
    balanced root per position (the table is logically padded).
    """
    if n <= 0 or parts <= 0:
        raise ValueError("n and parts must be positive")
    factors = []
    remaining = n
    for i in range(parts, 0, -1):
        factor = int(np.ceil(remaining ** (1.0 / i)))
        factor = max(1, factor)
        factors.append(factor)
        remaining = int(np.ceil(remaining / factor))
    assert int(np.prod(factors)) >= n
    return factors


def mixed_radix_digits(ids: np.ndarray, radices: list[int]) -> list[np.ndarray]:
    """Decompose IDs into digits for the given radices (least significant
    first)."""
    ids = np.asarray(ids, dtype=np.int64)
    digits = []
    remaining = ids
    for radix in radices:
        digits.append(remaining % radix)
        remaining = remaining // radix
    return digits


class TTEmbedding(Module):
    """3-core tensor-train embedding: ``num_rows x dim`` at rank ``r``.

    Cores: G1 ``[n1, d1, r]``, G2 ``[n2, r, d2, r]``, G3 ``[n3, r, d3]``
    with ``n1*n2*n3 >= num_rows`` and ``d1*d2*d3 == dim``.
    """

    kind = "ttrec"

    def __init__(
        self,
        num_rows: int,
        dim: int,
        rank: int,
        rng: np.random.Generator,
        dim_factors: tuple[int, int, int] | None = None,
    ) -> None:
        if num_rows <= 0 or dim <= 0 or rank <= 0:
            raise ValueError("num_rows, dim, and rank must be positive")
        self.num_rows = num_rows
        self.dim = dim
        self.rank = rank
        self.row_factors = factorize_evenly(num_rows, 3)
        if dim_factors is None:
            dim_factors = tuple(_factor_dim(dim))
        if int(np.prod(dim_factors)) != dim or len(dim_factors) != 3:
            raise ValueError(
                f"dim_factors must be 3 ints multiplying to {dim}, got {dim_factors}"
            )
        self.dim_factors = dim_factors
        n1, n2, n3 = self.row_factors
        d1, d2, d3 = dim_factors
        # Initialization scaled so reconstructed rows have variance similar
        # to a uniform(-1/sqrt(rows)) table.
        scale = (1.0 / np.sqrt(num_rows)) ** (1.0 / 3.0) / np.sqrt(rank)
        self.core1 = Parameter(
            rng.standard_normal((n1, d1, rank)) * scale, name="tt.core1"
        )
        self.core2 = Parameter(
            rng.standard_normal((n2, rank, d2, rank)) * scale, name="tt.core2"
        )
        self.core3 = Parameter(
            rng.standard_normal((n3, rank, d3)) * scale, name="tt.core3"
        )

    @property
    def output_dim(self) -> int:
        return self.dim

    def forward(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_rows):
            raise IndexError(f"ids out of range for {self.num_rows} rows")
        i1, i2, i3 = mixed_radix_digits(ids.reshape(-1), self.row_factors)
        e1 = self.core1.data[i1]  # [B, d1, r]
        e2 = self.core2.data[i2]  # [B, r, d2, r]
        e3 = self.core3.data[i3]  # [B, r, d3]
        partial = np.einsum("bxr,brys->bxys", e1, e2)  # [B, d1, d2, r]
        out = np.einsum("bxys,bsz->bxyz", partial, e3)
        self._cache = (i1, i2, i3, e1, e2, e3, partial, ids.shape)
        return out.reshape(*ids.shape, self.dim)

    def backward(self, grad_output: np.ndarray) -> None:
        i1, i2, i3, e1, e2, e3, partial, id_shape = self._cache
        d1, d2, d3 = self.dim_factors
        grad = grad_output.reshape(-1, d1, d2, d3)
        grad_partial = np.einsum("bxyz,bsz->bxys", grad, e3)
        grad_e3 = np.einsum("bxyz,bxys->bsz", grad, partial)
        grad_e1 = np.einsum("bxys,brys->bxr", grad_partial, e2)
        grad_e2 = np.einsum("bxys,bxr->brys", grad_partial, e1)
        np.add.at(self.core1.grad, i1, grad_e1)
        np.add.at(self.core2.grad, i2, grad_e2)
        np.add.at(self.core3.grad, i3, grad_e3)
        return None

    # ---- cost accounting ----------------------------------------------

    def bytes(self) -> int:
        return 4 * (self.core1.size + self.core2.size + self.core3.size)

    def compression_ratio(self) -> float:
        dense = self.num_rows * self.dim * 4
        return dense / self.bytes()

    def flops_per_lookup(self) -> int:
        d1, d2, d3 = self.dim_factors
        r = self.rank
        contract1 = 2 * d1 * d2 * r * r  # e1 x e2
        contract2 = 2 * d1 * d2 * r * d3  # partial x e3
        return contract1 + contract2

    def bytes_per_lookup(self) -> int:
        d1, d2, d3 = self.dim_factors
        r = self.rank
        return 4 * (d1 * r + r * d2 * r + r * d3)

    def materialize_row(self, row: int) -> np.ndarray:
        """The dense embedding vector TT encodes for ``row`` (testing aid)."""
        return self.forward(np.array([row]))[0]


def tt_bytes(num_rows: int, dim: int, rank: int) -> int:
    """Footprint of a TT-compressed table without instantiating it."""
    n1, n2, n3 = factorize_evenly(num_rows, 3)
    d1, d2, d3 = _factor_dim(dim)
    params = n1 * d1 * rank + n2 * rank * d2 * rank + n3 * rank * d3
    return 4 * params


def _factor_dim(dim: int) -> list[int]:
    """Exact 3-way factorization of the embedding dim (must be factorable)."""
    best = None
    for d1 in range(1, dim + 1):
        if dim % d1:
            continue
        rest = dim // d1
        for d2 in range(1, rest + 1):
            if rest % d2:
                continue
            d3 = rest // d2
            spread = max(d1, d2, d3) - min(d1, d2, d3)
            if best is None or spread < best[0]:
                best = (spread, [d1, d2, d3])
    return best[1]
