"""Deep Hash Embedding representation (Figure 2b).

The encoder stack applies ``k`` parallel hash functions and a normalization
to produce an intermediate dense feature; the decoder MLP maps that feature
to the final embedding vector. No per-ID state is stored, so the footprint
is the decoder parameters only — at the cost of orders of magnitude more
FLOPs than a table lookup.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.embeddings.hashing import HashFamily, encode_ids
from repro.nn.layers import MLP
from repro.nn.module import Module


class DHEEncoder(Module):
    """Parameter-free encoder: IDs -> k hashed, normalized dense features."""

    def __init__(self, k: int, m: int = 1_000_003, seed: int = 0,
                 transform: str = "uniform") -> None:
        self.k = k
        self.m = m
        self.transform = transform
        self.hashes = HashFamily(k, m, seed)

    def forward(self, ids: np.ndarray) -> np.ndarray:
        return encode_ids(self.hashes(ids), self.m, self.transform)

    def backward(self, grad_output: np.ndarray) -> None:
        return None  # no parameters, no differentiable input

    def flops_per_id(self) -> int:
        return self.hashes.flops_per_id()


def decoder_layer_sizes(k: int, dnn: int, h: int, dim: int) -> list[int]:
    """Decoder MLP shape: ``k`` inputs, ``h`` hidden layers of width ``dnn``."""
    if h < 0:
        raise ValueError("decoder height must be non-negative")
    return [k] + [dnn] * h + [dim]


class DHEEmbedding(Module):
    """Full DHE stack: encoder hashing + decoder MLP (Section 2.2)."""

    kind = "dhe"

    def __init__(
        self,
        dim: int,
        k: int,
        dnn: int,
        h: int,
        rng: np.random.Generator,
        m: int = 1_000_003,
        seed: int = 0,
        transform: str = "uniform",
        decoder_sizes: Sequence[int] | None = None,
    ) -> None:
        self.dim = dim
        self.k = k
        self.dnn = dnn
        self.h = h
        self.encoder = DHEEncoder(k, m=m, seed=seed, transform=transform)
        sizes = list(decoder_sizes) if decoder_sizes else decoder_layer_sizes(k, dnn, h, dim)
        if sizes[0] != k or sizes[-1] != dim:
            raise ValueError("decoder sizes must start at k and end at dim")
        self.decoder = MLP(sizes, rng, hidden_activation="relu")

    @property
    def output_dim(self) -> int:
        return self.dim

    def forward(self, ids: np.ndarray) -> np.ndarray:
        intermediate = self.encoder(ids)
        return self.decoder(intermediate)

    def encode(self, ids: np.ndarray) -> np.ndarray:
        """Encoder-only output (used by MP-Cache's decoder-side centroids)."""
        return self.encoder(ids)

    def decode(self, intermediate: np.ndarray) -> np.ndarray:
        """Decoder-only pass over already-encoded intermediates."""
        return self.decoder(intermediate)

    def backward(self, grad_output: np.ndarray) -> None:
        self.decoder.backward(grad_output)
        return None

    def flops_per_lookup(self) -> int:
        return self.encoder.flops_per_id() + self.decoder.flops(1)

    def bytes_per_lookup(self) -> int:
        """Weight traffic per lookup if decoder streams from DRAM (upper bound)."""
        return self.decoder.num_parameters() * 4
