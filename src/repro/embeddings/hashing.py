"""Universal hash family used by the DHE encoder stack.

DHE (Kang et al., KDD'21) applies ``k`` independent hash functions
``h_i(x) = ((a_i * x + b_i) mod p) mod m`` to each sparse ID, then normalizes
the hashed values into dense intermediate features. The hashing here is
vectorized over both the batch and the ``k`` functions.
"""

from __future__ import annotations

import numpy as np
from scipy.special import erfinv

# Mersenne prime; IDs (< 2^40) times coefficients (< 2^31) stay inside int64
# only if IDs < 2^33, which covers every Criteo cardinality (< 2^24).
_PRIME = np.int64(2**31 - 1)


class HashFamily:
    """``k`` universal hash functions onto ``[0, m)``."""

    def __init__(self, k: int, m: int, seed: int) -> None:
        if k <= 0:
            raise ValueError("need at least one hash function")
        if not 1 < m <= int(_PRIME):
            raise ValueError(f"m must be in (1, {int(_PRIME)}]")
        self.k = k
        self.m = m
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._a = rng.integers(1, int(_PRIME), size=k, dtype=np.int64)
        self._b = rng.integers(0, int(_PRIME), size=k, dtype=np.int64)

    def __call__(self, ids: np.ndarray) -> np.ndarray:
        """Hash ``ids`` of shape ``[...]`` to ints of shape ``[..., k]``."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and ids.min() < 0:
            raise ValueError("ids must be non-negative")
        hashed = (ids[..., None] * self._a + self._b) % _PRIME
        return hashed % self.m

    def flops_per_id(self) -> int:
        """Arithmetic ops per hashed ID (mul + add + two mods) times k."""
        return 4 * self.k


def encode_ids(
    hashed: np.ndarray, m: int, transform: str = "uniform"
) -> np.ndarray:
    """Normalize hash values in ``[0, m)`` into dense encoder features.

    ``uniform`` maps to [-1, 1]; ``gaussian`` applies the inverse normal CDF
    so downstream MLPs see approximately N(0, 1) inputs (the DHE paper found
    both workable; Gaussian trains slightly better).
    """
    if transform == "uniform":
        return 2.0 * hashed.astype(np.float64) / (m - 1) - 1.0
    if transform == "gaussian":
        uniform01 = (hashed.astype(np.float64) + 0.5) / m
        return np.sqrt(2.0) * erfinv(2.0 * uniform01 - 1.0)
    raise ValueError(f"unknown transform {transform!r}; use 'uniform' or 'gaussian'")
