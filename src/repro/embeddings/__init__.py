"""Embedding representations: table, DHE, select, and hybrid (Section 2).

Each representation maps sparse feature IDs to dense vectors. ``table``
stores learned vectors; ``DHE`` generates them through an encoder hash stack
and a decoder MLP; ``select`` picks table-or-DHE per feature; ``hybrid``
concatenates both mechanisms' outputs for higher-quality embeddings.
"""

from repro.embeddings.hashing import HashFamily, encode_ids
from repro.embeddings.table import TableEmbedding
from repro.embeddings.dhe import DHEEmbedding, DHEEncoder
from repro.embeddings.select import SelectEmbedding
from repro.embeddings.hybrid import HybridEmbedding
from repro.embeddings.ttrec import TTEmbedding, tt_bytes
from repro.embeddings.mixed_dim import (
    MixedDimEmbedding,
    mixed_dim_bytes,
    mixed_dimensions,
)
from repro.embeddings.collection import EmbeddingCollection
from repro.embeddings.costs import embedding_flops, embedding_bytes

__all__ = [
    "HashFamily",
    "encode_ids",
    "TableEmbedding",
    "DHEEmbedding",
    "DHEEncoder",
    "SelectEmbedding",
    "HybridEmbedding",
    "TTEmbedding",
    "tt_bytes",
    "MixedDimEmbedding",
    "mixed_dim_bytes",
    "mixed_dimensions",
    "EmbeddingCollection",
    "embedding_flops",
    "embedding_bytes",
]
