"""Symbolic cost accounting for embedding representations.

These helpers compute footprints and per-sample FLOPs from *configurations*
(cardinalities and hyperparameters) without instantiating the weights —
required for Terabyte-scale capacity math where the real tables (12.58 GB)
must never be allocated inside a test process.
"""

from __future__ import annotations

from typing import Sequence

FP32_BYTES = 4


def table_bytes(num_rows: int, dim: int) -> int:
    """Footprint of one embedding table in bytes (fp32)."""
    return num_rows * dim * FP32_BYTES


def decoder_params(k: int, dnn: int, h: int, dim: int) -> int:
    """Parameter count of a DHE decoder MLP ``[k, dnn*h, dim]`` incl. biases."""
    sizes = [k] + [dnn] * h + [dim]
    return sum(
        sizes[i] * sizes[i + 1] + sizes[i + 1] for i in range(len(sizes) - 1)
    )


def dhe_bytes(k: int, dnn: int, h: int, dim: int) -> int:
    """Footprint of one DHE stack (decoder params; the encoder is stateless)."""
    return decoder_params(k, dnn, h, dim) * FP32_BYTES


def dhe_flops_per_lookup(k: int, dnn: int, h: int, dim: int) -> int:
    """FLOPs to generate one embedding vector: hashing + decoder matmuls."""
    sizes = [k] + [dnn] * h + [dim]
    decoder = sum(2 * sizes[i] * sizes[i + 1] for i in range(len(sizes) - 1))
    encoder = 4 * k
    return encoder + decoder


def embedding_bytes(
    kind: str,
    cardinalities: Sequence[int],
    dim: int,
    k: int = 0,
    dnn: int = 0,
    h: int = 0,
    table_dim: int | None = None,
    dhe_dim: int | None = None,
    dhe_features: Sequence[int] = (),
    shared_decoder: bool = False,
) -> int:
    """Total embedding footprint for a model with the given representation.

    ``dhe_features`` (select only) lists feature indices replaced with DHE.
    ``shared_decoder`` shares one decoder across features (an extension the
    DHE paper mentions); default is per-feature decoders like the artifact.
    """
    n = len(cardinalities)
    if kind == "table":
        return sum(table_bytes(rows, dim) for rows in cardinalities)
    if kind == "dhe":
        stacks = 1 if shared_decoder else n
        return stacks * dhe_bytes(k, dnn, h, dim)
    if kind == "select":
        dhe_set = set(dhe_features)
        total = sum(
            table_bytes(rows, dim)
            for f, rows in enumerate(cardinalities)
            if f not in dhe_set
        )
        stacks = 1 if shared_decoder else len(dhe_set)
        return total + stacks * dhe_bytes(k, dnn, h, dim)
    if kind == "hybrid":
        t_dim = table_dim if table_dim is not None else dim
        g_dim = dhe_dim if dhe_dim is not None else dim
        tables = sum(table_bytes(rows, t_dim) for rows in cardinalities)
        stacks = 1 if shared_decoder else n
        return tables + stacks * dhe_bytes(k, dnn, h, g_dim)
    raise ValueError(f"unknown representation kind {kind!r}")


def embedding_flops(
    kind: str,
    n_features: int,
    dim: int,
    k: int = 0,
    dnn: int = 0,
    h: int = 0,
    table_dim: int | None = None,
    dhe_dim: int | None = None,
    n_dhe_features: int = 0,
) -> int:
    """Per-sample embedding-access FLOPs for the given representation."""
    if kind == "table":
        return 0
    if kind == "dhe":
        return n_features * dhe_flops_per_lookup(k, dnn, h, dim)
    if kind == "select":
        return n_dhe_features * dhe_flops_per_lookup(k, dnn, h, dim)
    if kind == "hybrid":
        g_dim = dhe_dim if dhe_dim is not None else dim
        return n_features * dhe_flops_per_lookup(k, dnn, h, g_dim)
    raise ValueError(f"unknown representation kind {kind!r}")
