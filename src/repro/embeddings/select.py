"""Select embedding representation (Figure 2c).

``select`` chooses table-or-DHE at feature (table) granularity. The paper's
characterized configuration replaces only the largest tables with DHE stacks
so the bulk of the features keep fast table lookups. The per-feature choice
lives in ``EmbeddingCollection``; this module wraps a single feature and is
mostly a tagged delegate, kept separate so ``kind`` introspection and cost
accounting are uniform across representations.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.dhe import DHEEmbedding
from repro.embeddings.table import TableEmbedding
from repro.nn.module import Module


class SelectEmbedding(Module):
    """One feature's embedding under the select representation."""

    kind = "select"

    def __init__(
        self,
        num_rows: int,
        dim: int,
        use_dhe: bool,
        k: int,
        dnn: int,
        h: int,
        rng: np.random.Generator,
        seed: int = 0,
    ) -> None:
        self.num_rows = num_rows
        self.dim = dim
        self.use_dhe = use_dhe
        if use_dhe:
            self.inner: Module = DHEEmbedding(dim, k, dnn, h, rng, seed=seed)
        else:
            self.inner = TableEmbedding(num_rows, dim, rng)

    @property
    def output_dim(self) -> int:
        return self.dim

    def forward(self, ids: np.ndarray) -> np.ndarray:
        return self.inner(ids)

    def backward(self, grad_output: np.ndarray) -> None:
        return self.inner.backward(grad_output)

    def flops_per_lookup(self) -> int:
        return self.inner.flops_per_lookup()

    def bytes_per_lookup(self) -> int:
        return self.inner.bytes_per_lookup()
