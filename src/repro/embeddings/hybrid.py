"""Hybrid embedding representation (Figure 2d) — the paper's proposal.

Sparse IDs both index an embedding table and drive a DHE stack; the two
resulting vectors are concatenated. Table and decoder MLP are trained
jointly, which is exactly what happens here: backward splits the output
gradient and routes each slice to its producer.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.dhe import DHEEmbedding
from repro.embeddings.table import TableEmbedding
from repro.nn.module import Module


class HybridEmbedding(Module):
    """Concatenation of a table slice and a DHE-generated slice."""

    kind = "hybrid"

    def __init__(
        self,
        num_rows: int,
        table_dim: int,
        dhe_dim: int,
        k: int,
        dnn: int,
        h: int,
        rng: np.random.Generator,
        seed: int = 0,
        m: int = 1_000_003,
        transform: str = "uniform",
    ) -> None:
        if table_dim <= 0 or dhe_dim <= 0:
            raise ValueError("hybrid needs positive table and DHE dims")
        self.num_rows = num_rows
        self.table_dim = table_dim
        self.dhe_dim = dhe_dim
        self.table = TableEmbedding(num_rows, table_dim, rng)
        self.dhe = DHEEmbedding(
            dhe_dim, k, dnn, h, rng, m=m, seed=seed, transform=transform
        )

    @property
    def output_dim(self) -> int:
        return self.table_dim + self.dhe_dim

    def forward(self, ids: np.ndarray) -> np.ndarray:
        table_out = self.table(ids)
        dhe_out = self.dhe(ids)
        return np.concatenate([table_out, dhe_out], axis=-1)

    def backward(self, grad_output: np.ndarray) -> None:
        self.table.backward(grad_output[..., : self.table_dim])
        self.dhe.backward(grad_output[..., self.table_dim :])
        return None

    def flops_per_lookup(self) -> int:
        return self.table.flops_per_lookup() + self.dhe.flops_per_lookup()

    def bytes_per_lookup(self) -> int:
        return self.table.bytes_per_lookup() + self.dhe.bytes_per_lookup()
