"""Mixed-dimension embeddings (Ginart et al., ISIT'21 — paper ref [12]).

A third compression family alongside DHE and TT-Rec: popular tables keep
wide embeddings while rare ones shrink, with a learned projection lifting
every table back to the common interaction dim. Included so the related
work's design space is reproducible on the same substrate.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import EmbeddingTable, Linear
from repro.nn.module import Module


def mixed_dimensions(
    cardinalities: list[int],
    base_dim: int,
    alpha: float = 0.3,
    min_dim: int = 2,
) -> list[int]:
    """Per-table dims ``d_f ∝ (popularity_f)^alpha``.

    Under uniform per-feature traffic, popularity of a row scales inversely
    with cardinality, so bigger tables get *smaller* dims; the most common
    MD heuristic. Dims are rounded to powers of two, clamped to
    ``[min_dim, base_dim]``.
    """
    if not 0 <= alpha <= 1:
        raise ValueError("alpha must be in [0, 1]")
    cards = np.array(cardinalities, dtype=np.float64)
    smallest = cards.min()
    dims = base_dim * (smallest / cards) ** alpha
    rounded = 2 ** np.round(np.log2(np.maximum(dims, 1.0)))
    return [int(min(base_dim, max(min_dim, d))) for d in rounded]


class MixedDimEmbedding(Module):
    """One feature: a narrow table plus a projection to the common dim."""

    kind = "mixed-dim"

    def __init__(
        self,
        num_rows: int,
        native_dim: int,
        output_dim: int,
        rng: np.random.Generator,
    ) -> None:
        if native_dim > output_dim:
            raise ValueError("native_dim cannot exceed output_dim")
        self.num_rows = num_rows
        self.native_dim = native_dim
        self._output_dim = output_dim
        self.table = EmbeddingTable(num_rows, native_dim, rng)
        self.projection = (
            None if native_dim == output_dim
            else Linear(native_dim, output_dim, rng, bias=False)
        )

    @property
    def output_dim(self) -> int:
        return self._output_dim

    def forward(self, ids: np.ndarray) -> np.ndarray:
        narrow = self.table(ids)
        if self.projection is None:
            return narrow
        return self.projection(narrow)

    def backward(self, grad_output: np.ndarray) -> None:
        grad = grad_output
        if self.projection is not None:
            grad = self.projection.backward(grad)
        self.table.backward(grad)
        return None

    def flops_per_lookup(self) -> int:
        if self.projection is None:
            return 0
        return 2 * self.native_dim * self._output_dim

    def bytes_per_lookup(self) -> int:
        return self.native_dim * 4

    def bytes(self) -> int:
        total = self.table.bytes()
        if self.projection is not None:
            total += self.projection.weight.size * 4
        return total


def mixed_dim_bytes(
    cardinalities: list[int],
    base_dim: int,
    alpha: float = 0.3,
    min_dim: int = 2,
) -> int:
    """Footprint of an MD configuration without instantiating it."""
    total = 0
    for rows, dim in zip(cardinalities, mixed_dimensions(cardinalities, base_dim, alpha, min_dim)):
        total += rows * dim * 4
        if dim != base_dim:
            total += dim * base_dim * 4  # projection
    return total
