"""A collection of per-feature embedding representations.

DLRM models consume ``[batch, n_features]`` sparse ID matrices; the
collection dispatches column ``f`` to the representation registered for
feature ``f`` and stacks outputs into ``[batch, n_features, dim]``. Mixed
collections (some table, some DHE — i.e. the *select* representation) are
allowed as long as every feature's output dim matches.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.module import Module


class EmbeddingCollection(Module):
    def __init__(self, features: Sequence[Module]) -> None:
        if not features:
            raise ValueError("collection needs at least one feature")
        dims = {feat.output_dim for feat in features}
        if len(dims) != 1:
            raise ValueError(
                f"all features must share an output dim, got {sorted(dims)}"
            )
        self.features = list(features)
        self.output_dim = dims.pop()

    @property
    def n_features(self) -> int:
        return len(self.features)

    def forward(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids)
        if ids.ndim != 2 or ids.shape[1] != self.n_features:
            raise ValueError(
                f"expected ids of shape [batch, {self.n_features}], got {ids.shape}"
            )
        outputs = [feat(ids[:, f]) for f, feat in enumerate(self.features)]
        return np.stack(outputs, axis=1)

    def backward(self, grad_output: np.ndarray) -> None:
        for f, feat in enumerate(self.features):
            feat.backward(grad_output[:, f, :])
        return None

    def flops_per_sample(self) -> int:
        return sum(feat.flops_per_lookup() for feat in self.features)

    def bytes_per_sample(self) -> int:
        return sum(feat.bytes_per_lookup() for feat in self.features)

    def kinds(self) -> list[str]:
        return [feat.kind for feat in self.features]
