"""Table embedding representation (Figure 2a) — the DLRM baseline."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import EmbeddingTable
from repro.nn.module import Module


class TableEmbedding(Module):
    """Stores one learned vector per sparse ID; lookup at inference.

    This is the memory-bound representation: FLOPs per lookup are ~0 but the
    table occupies ``num_rows * dim * 4`` bytes and every access is a random
    DRAM read.
    """

    kind = "table"

    def __init__(self, num_rows: int, dim: int, rng: np.random.Generator) -> None:
        self.num_rows = num_rows
        self.dim = dim
        self.table = EmbeddingTable(num_rows, dim, rng)

    @property
    def output_dim(self) -> int:
        return self.dim

    def forward(self, ids: np.ndarray) -> np.ndarray:
        return self.table(ids)

    def backward(self, grad_output: np.ndarray) -> None:
        return self.table.backward(grad_output)

    def flops_per_lookup(self) -> int:
        return 0

    def bytes_per_lookup(self) -> int:
        """DRAM traffic per access (one row read)."""
        return self.dim * 4
