"""Query splitting across heterogeneous hardware (Section 6.5).

Splitting one query's samples across CPU and GPU can help table execution
(smaller per-device batches, both memory systems engaged) but hurts
compute-heavy representations — the CPU slice of a DHE/hybrid query becomes
the critical path. ``split_query_even`` reproduces the paper's even split;
``split_query_tuned`` searches the ratio, showing the "careful tuning"
caveat.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.representations import RepresentationConfig
from repro.hardware.device import DeviceSpec
from repro.hardware.latency import path_latency
from repro.models.configs import ModelConfig


@dataclass(frozen=True)
class SplitOutcome:
    """One split evaluation: the ratio and the resulting latencies."""

    ratio_on_first: float
    latency_s: float
    first_latency_s: float
    second_latency_s: float


def split_latency(
    rep: RepresentationConfig,
    model: ModelConfig,
    first: DeviceSpec,
    second: DeviceSpec,
    query_size: int,
    ratio_on_first: float,
) -> SplitOutcome:
    """Latency when ``ratio_on_first`` of the samples run on ``first``.

    The halves execute concurrently; the query completes when both do.
    """
    if not 0.0 <= ratio_on_first <= 1.0:
        raise ValueError("ratio must be in [0, 1]")
    n_first = int(round(query_size * ratio_on_first))
    n_second = query_size - n_first
    t_first = path_latency(rep, model, first, n_first) if n_first else 0.0
    t_second = path_latency(rep, model, second, n_second) if n_second else 0.0
    return SplitOutcome(
        ratio_on_first=ratio_on_first,
        latency_s=max(t_first, t_second),
        first_latency_s=t_first,
        second_latency_s=t_second,
    )


def split_query_even(
    rep: RepresentationConfig,
    model: ModelConfig,
    first: DeviceSpec,
    second: DeviceSpec,
    query_size: int,
) -> SplitOutcome:
    """The paper's experiment: a 50/50 split."""
    return split_latency(rep, model, first, second, query_size, 0.5)


def split_query_tuned(
    rep: RepresentationConfig,
    model: ModelConfig,
    first: DeviceSpec,
    second: DeviceSpec,
    query_size: int,
    grid: int = 21,
) -> SplitOutcome:
    """Grid-search the split ratio (0 and 1 = no split are included)."""
    if grid < 2:
        raise ValueError("grid must be >= 2")
    outcomes = [
        split_latency(rep, model, first, second, query_size, float(r))
        for r in np.linspace(0.0, 1.0, grid)
    ]
    return min(outcomes, key=lambda o: o.latency_s)


def simulate_split_serving(
    rep: RepresentationConfig,
    model: ModelConfig,
    first: DeviceSpec,
    second: DeviceSpec,
    scenario,
    accuracy: float,
    ratio_on_first: float = 0.5,
):
    """Serve a scenario with every query split across both devices.

    Each query occupies *both* devices simultaneously (its halves execute
    concurrently and the query completes when the slower half does), so
    splitting halves per-device load but couples the two queues — the
    serving-level version of Figure 14.

    This deliberately keeps its own tiny per-query loop instead of going
    through the event engine: a split query holds two devices at once,
    which the engine's one-path-per-batch dispatch does not model.
    """
    from repro.serving.metrics import QueryRecord, ServingResult

    result = ServingResult(
        scheduler_name=f"split-{rep.kind}-{ratio_on_first:.2f}",
        sla_s=scenario.sla_s,
    )
    free_first = 0.0
    free_second = 0.0
    for query in sorted(scenario.queries, key=lambda q: q.arrival_s):
        outcome = split_latency(
            rep, model, first, second, query.size, ratio_on_first
        )
        start = max(query.arrival_s, free_first, free_second)
        finish = start + outcome.latency_s
        free_first = start + outcome.first_latency_s
        free_second = start + outcome.second_latency_s
        result.records.append(
            QueryRecord(
                index=query.index,
                size=query.size,
                arrival_s=query.arrival_s,
                start_s=start,
                finish_s=finish,
                path_label=result.scheduler_name,
                accuracy=accuracy,
            )
        )
    return result
