"""Offline path profiling: latency tables across query sizes (Section 4.1)."""

from __future__ import annotations

import numpy as np

from repro.core.paths import ExecutionPath, PathProfile
from repro.core.representations import RepresentationConfig
from repro.hardware.device import DeviceSpec
from repro.hardware.latency import estimate_breakdown
from repro.models.configs import ModelConfig

DEFAULT_PROFILE_SIZES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


def profile_path(
    rep: RepresentationConfig,
    model: ModelConfig,
    device: DeviceSpec,
    sizes: tuple[int, ...] = DEFAULT_PROFILE_SIZES,
    encoder_hit_rate: float = 0.0,
    decoder_speedup: float = 1.0,
) -> PathProfile:
    """Profile one (representation, device) pair across query sizes."""
    latencies = [
        estimate_breakdown(
            rep, model, device, size,
            encoder_hit_rate=encoder_hit_rate,
            decoder_speedup=decoder_speedup,
        ).total
        for size in sizes
    ]
    return PathProfile(sizes=np.array(sizes), latencies=np.array(latencies))


def make_path(
    rep: RepresentationConfig,
    model: ModelConfig,
    device: DeviceSpec,
    accuracy: float,
    sizes: tuple[int, ...] = DEFAULT_PROFILE_SIZES,
    encoder_hit_rate: float = 0.0,
    decoder_speedup: float = 1.0,
    label: str = "",
) -> ExecutionPath:
    """Profile and wrap a mapping into an ``ExecutionPath``."""
    profile = profile_path(
        rep, model, device, sizes,
        encoder_hit_rate=encoder_hit_rate,
        decoder_speedup=decoder_speedup,
    )
    return ExecutionPath(
        rep=rep,
        device=device,
        accuracy=accuracy,
        profile=profile,
        encoder_hit_rate=encoder_hit_rate,
        decoder_speedup=decoder_speedup,
        label=label or f"{rep.kind.upper()}({device.name})",
        memory_bytes=rep.total_bytes(model),
    )
