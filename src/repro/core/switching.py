"""Runtime representation switching (Sections 4.2-4.3, Figure 15).

MP-Rec's online stage is allowed to *re-shape* work as load shifts, not
just re-route it: a device whose queues are draining can swap its
resident representation for a higher-accuracy one (table -> hybrid), and
a device drowning in backlog can swap toward whatever serves its current
batch mix fastest (hybrid -> table on small-batch traffic, or the
reverse on an accelerator whose compute-based representation amortizes
better over large coalesced batches — the Figure 3 crossover).

The paper's Figure 15 prices exactly this transition: tearing down the
old representation and loading the new one costs real device time.  The
:class:`SwitchController` charges that window as a **blocking event** on
the device's :class:`~repro.serving.devices.DeviceTimeline` — the device
drains its committed batches, then sits unavailable for the load +
teardown latency, and every batch routed meanwhile queues behind the
switch.  Nothing is free and nothing is retroactive: overhead lands on
the same ``free_at`` state the schedulers and shed policies already see.

Thrash control is built in, because a controller that reacts to its own
switch-induced queue spike will oscillate forever:

- **hysteresis band**: pressure (queue wait / SLA) must cross
  ``hi_pressure`` to be overloaded and fall below ``lo_pressure`` to be
  calm; the band between them never triggers.
- **patience**: the same *target representation* must win on ``patience``
  consecutive dispatches before a switch starts; mixed verdicts (batch-size
  noise straddling a crossover) reset the count.
- **cooldown**: after a switch completes, the device is frozen for
  ``cooldown_s`` regardless of pressure.
- while a switch is in flight the device is never re-evaluated.

The controller drives the kernel through two scheduler hooks
(:meth:`~repro.core.online.Scheduler.on_switch_started` /
:meth:`~repro.core.online.Scheduler.on_switch_completed`): the default
implementation swaps the resident path in place, so Algorithm 2 keeps
routing with zero switching-specific logic in the schedulers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.paths import ExecutionPath
from repro.serving.signals import Hysteresis, queue_pressure, window_utilization

# Freeing the old representation's memory is cheaper than streaming the
# new one in; Fig 15 teardown is a fraction of the load cost.
TEARDOWN_FRACTION = 0.25


def _path_bytes(path: ExecutionPath) -> int:
    """Bytes that must move on/off the device to (un)install a path."""
    if path.memory_bytes:
        return path.memory_bytes
    model = path.extra.get("model")
    if model is not None:
        return path.rep.total_bytes(model)
    return 0


def estimate_load_s(path: ExecutionPath) -> float:
    """Time to install a representation: stream its bytes over the
    host link (or DRAM for host-resident devices) plus one launch."""
    device = path.device
    bandwidth = device.host_transfer_bw or device.dram_bandwidth
    return _path_bytes(path) / bandwidth + device.launch_overhead_s


def estimate_teardown_s(path: ExecutionPath) -> float:
    """Time to retire the outgoing representation (free + unmap)."""
    device = path.device
    bandwidth = device.host_transfer_bw or device.dram_bandwidth
    return TEARDOWN_FRACTION * _path_bytes(path) / bandwidth


@dataclass(frozen=True)
class SwitchEvent:
    """One runtime representation switch, fully priced."""

    time_s: float  # when the decision fired (drain begins)
    ready_s: float  # when the device serves again on the new representation
    node_id: int
    device: str
    from_label: str
    to_label: str
    overhead_s: float  # load + teardown charged on the device timeline


@dataclass
class SwitchController:
    """Decide when a device swaps its resident representation, and pay for it.

    ``candidates`` maps a device name to the representations that can be
    resident on it (the offline plan's per-device mappings).  Exactly one
    of them is resident at a time — the one the attached scheduler holds —
    and every swap charges :func:`estimate_load_s` + :func:`
    estimate_teardown_s` (or the explicit ``load_s`` / ``teardown_s``
    overrides, for synthetic paths without a byte model) as a blocking
    event on the device timeline.

    Decision rule, evaluated once per dispatched batch on the batch's
    device: pressure = the batch's worst queueing delay (batching fill +
    device queue, what its oldest member endured) / run SLA.

    - pressure >= ``hi_pressure`` — or the resident's service time for the
      current batch mix saturating the batching window (``>= util_hi *
      batch_timeout``, a *leading* indicator that fires before a backlog
      commits to the timeline) — on ``patience`` consecutive dispatches
      -> **surge**: switch to the candidate with the lowest latency at the
      batcher's *full* batch size — under sustained overload batches grow
      to the cap, and capacity (how fast the backlog drains) is what ends
      a surge.
    - pressure <= ``lo_pressure`` on ``patience`` consecutive dispatches
      -> **calm**: switch to the highest-accuracy candidate whose
      end-to-end latency at the current operating point (observed delay +
      service at the current batch size) still fits ``headroom * sla``
      (fall back to the fastest candidate when none fits).

    One controller instance serves one engine core; the cluster clones a
    template per node (:meth:`clone`).
    """

    candidates: dict[str, list[ExecutionPath]]
    hi_pressure: float = 0.75
    lo_pressure: float = 0.25
    patience: int = 4
    cooldown_s: float = 0.25
    headroom: float = 0.8
    util_hi: float = 0.95  # batching-window saturation that counts as surge
    load_s: float | None = None
    teardown_s: float | None = None

    events: list[SwitchEvent] = field(default_factory=list, init=False)
    total_overhead_s: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if not self.candidates:
            raise ValueError("need at least one switchable device")
        if not 0.0 <= self.lo_pressure < self.hi_pressure:
            raise ValueError("need 0 <= lo_pressure < hi_pressure")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        if self.headroom <= 0:
            raise ValueError("headroom must be positive")
        if self.util_hi <= 0:
            raise ValueError("util_hi must be positive")
        self.candidates = {
            device: list(paths) for device, paths in self.candidates.items()
        }
        for device, paths in self.candidates.items():
            if not paths:
                raise ValueError(f"device {device!r} has no candidate paths")
            for path in paths:
                if path.device.name != device:
                    raise ValueError(
                        f"candidate {path.label!r} lives on "
                        f"{path.device.name!r}, not {device!r}"
                    )
        self._initial: dict[str, ExecutionPath] | None = None
        self._resident: dict[str, ExecutionPath] = {}
        # Shared thrash control, keyed by device name: patience streaks
        # (targets voted by id() — ExecutionPath equality would compare
        # profile arrays), busy-while-switching, per-device cooldowns.
        self._hysteresis = Hysteresis()

    # ---- lifecycle -------------------------------------------------------

    def clone(self) -> "SwitchController":
        """A fresh controller with the same configuration and no state."""
        return SwitchController(
            candidates=self.candidates,
            hi_pressure=self.hi_pressure,
            lo_pressure=self.lo_pressure,
            patience=self.patience,
            cooldown_s=self.cooldown_s,
            headroom=self.headroom,
            util_hi=self.util_hi,
            load_s=self.load_s,
            teardown_s=self.teardown_s,
        )

    def attach(self, core) -> None:
        """Bind to an engine core at run start: resolve (and, on reuse,
        restore) each switchable device's resident representation and
        clear all per-run state."""
        scheduler = core.scheduler
        unknown = set(self.candidates) - set(core.timeline.free_at)
        if unknown:
            raise ValueError(
                f"switchable devices {sorted(unknown)} are not in the "
                "scheduler's path set"
            )
        resident: dict[str, ExecutionPath] = {}
        for device in self.candidates:
            on_device = [
                p for p in scheduler.paths if p.device.name == device
            ]
            if len(on_device) != 1:
                raise ValueError(
                    "runtime switching needs exactly one resident "
                    f"representation per switchable device; {device!r} "
                    f"holds {len(on_device)}"
                )
            resident[device] = on_device[0]
        if self._initial is None:
            self._initial = dict(resident)
        else:
            # A reused simulator must start every run from the same
            # residency, or back-to-back runs would not be deterministic.
            for device, initial_path in self._initial.items():
                if resident[device] is not initial_path:
                    scheduler.on_switch_started(
                        device, resident[device], initial_path, 0.0
                    )
                    resident[device] = initial_path
        for device, path in resident.items():
            # Identity check: ExecutionPath equality would compare profile
            # arrays elementwise.
            if all(path is not candidate
                   for candidate in self.candidates[device]):
                self.candidates[device] = [path, *self.candidates[device]]
        self._resident = resident
        self._hysteresis.reset()
        self.events = []
        self.total_overhead_s = 0.0

    # ---- kernel hooks ----------------------------------------------------

    def on_tick(self, core, tick) -> None:
        """Adapter for the kernel's single control observer: unpack one
        :class:`~repro.serving.engine.ControlTick` into the PR-3 decision
        rule.  The single-node façade (and a cluster without a fleet
        controller) wires this as the core's ``on_control_tick``."""
        self.observe(
            core, tick.path, tick.wait_s, tick.batch_size, tick.scenario,
            tick.now, tick.loop, batch_queries=tick.batch_queries,
        )

    def observe(self, core, path: ExecutionPath, wait_s: float,
                batch_size: int, scenario, now: float, loop,
                batch_queries: int | None = None) -> None:
        """One dispatched batch on ``path``: update pressure streaks and
        start a switch when hysteresis says so.

        ``batch_size`` counts *samples*; ``batch_queries`` counts the
        queries that carried them (None means they coincide).
        """
        device = path.device.name
        candidates = self.candidates.get(device)
        if candidates is None or len(candidates) < 2:
            return
        if self._hysteresis.blocked(device, now):
            return
        pressure = queue_pressure(wait_s, scenario.sla_s)
        # Leading saturation signal: service time of the current batch mix
        # against the batching window. Queue wait only rises *after* a
        # backlog forms — and a backlog is committed to the timeline and
        # must drain on the old representation before a switch can start —
        # so saturation of the window itself must count as surge evidence.
        # No floor guard: a residency whose singleton latency already
        # overflows the window is exactly what surge must switch away from.
        saturated = (
            window_utilization(path, batch_size, core.batcher.timeout_s)
            >= self.util_hi
        )
        if pressure >= self.hi_pressure or saturated:
            mode = "surge"
        elif pressure <= self.lo_pressure:
            mode = "calm"
        else:
            self._hysteresis.clear(device)
            return
        if mode == "surge":
            batch_size = self.full_batch_size(core, batch_size, batch_queries)
        target = self._desired(device, mode, batch_size, scenario.sla_s, wait_s)
        if target is self._resident[device]:
            # The current residency is already the right one; noise that
            # briefly favored another candidate must start over.
            self._hysteresis.clear(device)
            return
        # Hysteresis counts consecutive dispatches agreeing on the *same*
        # target — a streak of mixed verdicts (batch-size noise straddling
        # the representations' crossover) never triggers.  Targets vote by
        # id(): path identity, exactly what residency bookkeeping uses.
        if self._hysteresis.vote(device, id(target)) < self.patience:
            return
        self.start_switch(core, device, target, now, loop)

    @staticmethod
    def full_batch_size(core, batch_size: int,
                        batch_queries: int | None) -> int:
        """Scale an observed batch's *samples* to a full query batch.

        Under sustained overload the batcher fills to its cap, so surge
        judges candidates at full-batch size — capacity (how fast a
        backlog drains), not the current batch's latency, is what ends a
        surge.  ``batch_size`` counts samples, the batcher cap counts
        queries — different units — hence the scaling.
        """
        queries = batch_queries or batch_size
        if 0 < queries < core.batcher.max_batch_size:
            return round(batch_size * core.batcher.max_batch_size / queries)
        return batch_size

    def complete(self, core, device: str, now: float) -> None:
        """The switch's blocking window elapsed; arm the cooldown."""
        self._hysteresis.complete(device, now, self.cooldown_s)
        core.scheduler.on_switch_completed(
            device, self._resident[device], now
        )

    # ---- decision internals ----------------------------------------------

    def resident(self, device: str) -> ExecutionPath:
        """The representation currently resident on ``device``."""
        return self._resident[device]

    def switching(self, device: str, now: float) -> bool:
        """True while ``device`` has a switch in flight or is cooling
        down — external arbiters (the control plane) must not commit a
        second switch into the window."""
        return self._hysteresis.blocked(device, now)

    def desired(self, device: str, mode: str, batch_size: int,
                sla_s: float, wait_s: float) -> ExecutionPath:
        """The PR-3 target rule, exposed for external arbiters: the
        candidate ``mode`` (``"surge"`` / ``"calm"``) would switch
        ``device`` to at this operating point (may be the resident)."""
        return self._desired(device, mode, batch_size, sla_s, wait_s)

    def _desired(self, device: str, mode: str, batch_size: int,
                 sla_s: float, wait_s: float) -> ExecutionPath:
        candidates = self.candidates[device]
        size = max(1, batch_size)
        if mode == "surge":
            return min(candidates, key=lambda p: p.latency(size))
        # Calm: highest accuracy whose *end-to-end* latency at the current
        # operating point (observed queueing delay + service at the current
        # batch size) still fits the headroom. No feasible candidate means
        # the operating point is marginal — inconclusive evidence keeps the
        # current residency rather than guessing.
        feasible = [
            p for p in candidates
            if wait_s + p.latency(size) <= self.headroom * sla_s
        ]
        if feasible:
            return max(feasible, key=lambda p: (p.accuracy, -p.latency(size)))
        return self._resident[device]

    def switch_overhead_s(self, old_path: ExecutionPath,
                          new_path: ExecutionPath) -> float:
        """The Fig-15 window one swap costs: load the new representation
        plus tear down the old (or the explicit overrides)."""
        load = self.load_s if self.load_s is not None else estimate_load_s(
            new_path
        )
        teardown = (
            self.teardown_s if self.teardown_s is not None
            else estimate_teardown_s(old_path)
        )
        return load + teardown

    def start_switch(self, core, device: str, target: ExecutionPath,
                     now: float, loop) -> SwitchEvent:
        """Commit a switch *now*: charge the Fig-15 window as a blocking
        event on the device timeline, swap residency, and schedule the
        completion.  Called by :meth:`observe` once hysteresis fires, and
        by the :class:`~repro.serving.controlplane.ControlPlane` when its
        fleet-level arbitration picks the switch action (the plane owns
        the patience/cooldown there; this method only executes and
        prices)."""
        from repro.serving.engine import SWITCH  # local: avoid import cycle

        old = self._resident[device]
        overhead = self.switch_overhead_s(old, target)
        ready = core.timeline.block(device, now, overhead)
        core.scheduler.on_switch_started(device, old, target, now)
        self._resident[device] = target
        self._hysteresis.begin(device)
        loop.push(ready, SWITCH, (core.node_id, device))
        event = SwitchEvent(
            time_s=now, ready_s=ready, node_id=core.node_id,
            device=device, from_label=old.label, to_label=target.label,
            overhead_s=overhead,
        )
        self.events.append(event)
        self.total_overhead_s += overhead
        return event
