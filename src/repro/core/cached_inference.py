"""Functional MP-Cache-fronted DHE inference (real numpy execution).

``CachedDHE`` wraps a trained :class:`DHEEmbedding` with both MP-Cache
tiers and actually serves lookups: encoder-cache hits return precomputed
vectors; misses run the encoder and then either the exact decoder MLP or
the centroid/kNN fast path. This is what the Figure 16 benchmark times for
real on the host CPU (the analytical model handles the accelerators).
"""

from __future__ import annotations

import numpy as np

from repro.core.mp_cache import DecoderCentroidCache, EncoderCache
from repro.data.zipf import ZipfSampler
from repro.embeddings.dhe import DHEEmbedding


class CachedDHE:
    """Inference-only DHE with an encoder cache and a decoder centroid cache."""

    def __init__(
        self,
        dhe: DHEEmbedding,
        encoder_cache: EncoderCache | None = None,
        decoder_cache: DecoderCentroidCache | None = None,
        feature: int = 0,
    ) -> None:
        self.dhe = dhe
        self.encoder_cache = encoder_cache
        self.decoder_cache = decoder_cache
        self.feature = feature
        self._hot_vectors: dict[int, np.ndarray] = {}

    def warm(
        self,
        sampler: ZipfSampler,
        profile_samples: int = 4096,
    ) -> None:
        """Populate both tiers from profiled traffic.

        Encoder tier: precompute exact embeddings for the sampler's hottest
        IDs. Decoder tier: cluster the encoder outputs of a profiled sample.
        """
        if self.encoder_cache is not None:
            self.encoder_cache.fit_static([sampler])
            hot_ids = sampler.hottest(self.encoder_cache.capacity_entries)
            if hot_ids.size:
                vectors = self.dhe(hot_ids)
                self._hot_vectors = {
                    int(i): vectors[j] for j, i in enumerate(hot_ids)
                }
        if self.decoder_cache is not None:
            profile_ids = sampler.sample(profile_samples)
            intermediates = self.dhe.encode(profile_ids)
            self.decoder_cache.fit(intermediates, self.dhe)

    def generate(self, ids: np.ndarray) -> np.ndarray:
        """Embedding vectors for ``ids`` through the cached fast paths."""
        ids = np.asarray(ids)
        out = np.empty((ids.size, self.dhe.dim))
        if self.encoder_cache is not None and self._hot_vectors:
            hit_mask = self.encoder_cache.lookup(0, ids)
        else:
            hit_mask = np.zeros(ids.size, dtype=bool)
        for idx in np.flatnonzero(hit_mask):
            out[idx] = self._hot_vectors[int(ids[idx])]
        miss_idx = np.flatnonzero(~hit_mask)
        if miss_idx.size:
            miss_ids = ids[miss_idx]
            if self.decoder_cache is not None and self.decoder_cache.is_fitted:
                intermediates = self.dhe.encode(miss_ids)
                out[miss_idx] = self.decoder_cache.generate(intermediates)
            else:
                out[miss_idx] = self.dhe(miss_ids)
        return out

    def exact(self, ids: np.ndarray) -> np.ndarray:
        """Uncached reference path."""
        return self.dhe(np.asarray(ids))

    def approximation_error(self, ids: np.ndarray) -> float:
        """Mean relative L2 error of the cached path vs. the exact stack."""
        exact = self.exact(ids)
        approx = self.generate(ids)
        num = np.linalg.norm(exact - approx, axis=1)
        den = np.maximum(np.linalg.norm(exact, axis=1), 1e-12)
        return float(np.mean(num / den))
