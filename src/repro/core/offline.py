"""MP-Rec offline stage: representation-hardware mapping search (Algorithm 1).

For each hardware platform, pick (1) the accuracy-optimal hybrid that fits —
large k, decoder as small as reasonable; (2) a table representation that
still fits, for latency-critical traffic; (3) a DHE sitting between them;
and (4) on memory-constrained devices with at most one mapping so far, a
compact DHE. Selected representations are then "trained" — here, assigned
accuracies by the quality estimator — and profiled across query sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.core.paths import ExecutionPath
from repro.core.profiler import make_path
from repro.core.representations import RepresentationConfig, paper_configs
from repro.hardware.device import DeviceSpec
from repro.models.configs import ModelConfig

if TYPE_CHECKING:  # imported lazily to avoid a core <-> quality cycle
    from repro.quality.estimator import QualityEstimator


@dataclass
class MappingPlan:
    """Output of the offline stage: mappings plus capacity accounting."""

    model: ModelConfig
    mappings: dict[str, list[RepresentationConfig]] = field(default_factory=dict)
    devices: dict[str, DeviceSpec] = field(default_factory=dict)
    accuracies: dict[str, float] = field(default_factory=dict)  # by rep label

    def reps_on(self, device_name: str) -> list[RepresentationConfig]:
        """The representations the plan maps onto one device."""
        return self.mappings.get(device_name, [])

    def unique_reps(self) -> list[RepresentationConfig]:
        """Distinct representations across devices (each trained once)."""
        seen: dict[str, RepresentationConfig] = {}
        for reps in self.mappings.values():
            for rep in reps:
                seen.setdefault(rep.display, rep)
        return list(seen.values())

    def unique_rep_bytes(self) -> int:
        """Footprint of the distinct trained representations (Table 3 metric)."""
        return sum(rep.total_bytes(self.model) for rep in self.unique_reps())

    def device_bytes(self, device_name: str) -> int:
        """Memory one device spends hosting its mapped representations."""
        return sum(rep.total_bytes(self.model) for rep in self.reps_on(device_name))

    def best_accuracy(self) -> float:
        """The highest estimated accuracy any mapped representation offers."""
        return max(self.accuracies.values()) if self.accuracies else 0.0

    def build_paths(
        self,
        encoder_hit_rate: float = 0.0,
        decoder_speedup: float = 1.0,
    ) -> list[ExecutionPath]:
        """Profile every mapping into an activatable execution path.

        Cache effects apply only to DHE-bearing paths (MP-Cache fronts the
        encoder-decoder stacks, not table lookups).
        """
        paths = []
        for device_name, reps in self.mappings.items():
            device = self.devices[device_name]
            for rep in reps:
                uses_cache = rep.uses_dhe
                paths.append(
                    make_path(
                        rep,
                        self.model,
                        device,
                        accuracy=self.accuracies[rep.display],
                        encoder_hit_rate=encoder_hit_rate if uses_cache else 0.0,
                        decoder_speedup=decoder_speedup if uses_cache else 1.0,
                    )
                )
        return paths


class OfflinePlanner:
    """Algorithm 1: HW-specific representation generation."""

    def __init__(
        self,
        model: ModelConfig,
        estimator: "QualityEstimator",
        space: list[RepresentationConfig] | None = None,
    ) -> None:
        self.model = model
        self.estimator = estimator
        self.space = space if space is not None else default_planner_space(model)

    def plan(self, hardware: list[DeviceSpec]) -> MappingPlan:
        """Run Algorithm 1: per device, map the accuracy-optimal hybrid
        that fits, a table fallback for latency-critical traffic, and a
        DHE between them, within the device's memory budget."""
        if not hardware:
            raise ValueError("need at least one hardware platform")
        plan = MappingPlan(model=self.model)
        for device in hardware:
            budget = device.total_memory
            chosen: list[RepresentationConfig] = []

            hybrid = self._best_fitting("hybrid", budget)
            if hybrid is not None:
                chosen.append(hybrid)
                budget -= hybrid.total_bytes(self.model)

            table, dhe = self._table_dhe_combo(budget)
            if table is not None:
                chosen.append(table)
                budget -= table.total_bytes(self.model)
            if dhe is not None:
                chosen.append(dhe)
                budget -= dhe.total_bytes(self.model)

            if len(chosen) <= 1:
                compact = self._compact_dhe(budget, exclude=chosen)
                if compact is not None:
                    chosen.append(compact)

            plan.mappings[device.name] = chosen
            plan.devices[device.name] = device
        # "Train all representations found within S*": attach accuracies.
        for reps in plan.mappings.values():
            for rep in reps:
                plan.accuracies.setdefault(rep.display, self.estimator.accuracy(rep))
        return plan

    # ------------------------------------------------------------------

    def _candidates(self, kind: str, budget: int) -> list[RepresentationConfig]:
        return [
            rep
            for rep in self.space
            if rep.kind == kind and rep.total_bytes(self.model) <= budget
        ]

    def _best_fitting(self, kind: str, budget: int) -> RepresentationConfig | None:
        """Accuracy-first choice; ties broken toward smaller footprints, which
        implements the paper's "large k, decoder as small as reasonably
        possible" preference (decoder size barely moves accuracy)."""
        candidates = self._candidates(kind, budget)
        if not candidates:
            return None
        return max(
            candidates,
            key=lambda rep: (
                round(self.estimator.accuracy(rep), 4),
                -rep.total_bytes(self.model),
            ),
        )

    def _table_dhe_combo(
        self, budget: int
    ) -> tuple[RepresentationConfig | None, RepresentationConfig | None]:
        """Jointly choose the table + DHE mappings for the remaining budget.

        The paper prefers the pair whose best member is most accurate: on
        HW-2's 1 GB CPU that means downsizing the table to dim 4 (542 MB) to
        make room for the accuracy-optimal DHE (123 MB) rather than keeping
        a dim-8 table that only leaves room for a compact stack (Table 4).
        """
        candidates: list[tuple[RepresentationConfig | None, RepresentationConfig | None]] = []
        table_first = self._best_fitting("table", budget)
        if table_first is not None:
            remaining = budget - table_first.total_bytes(self.model)
            candidates.append((table_first, self._best_fitting("dhe", remaining)))
        dhe_first = self._best_fitting("dhe", budget)
        if dhe_first is not None:
            remaining = budget - dhe_first.total_bytes(self.model)
            candidates.append((self._best_fitting("table", remaining), dhe_first))
        if not candidates:
            return None, None

        def pair_quality(pair) -> tuple[float, float]:
            accs = [
                self.estimator.accuracy(rep) for rep in pair if rep is not None
            ]
            return (round(max(accs), 4), round(sum(accs), 4))

        return max(candidates, key=pair_quality)

    def _compact_dhe(
        self, budget: int, exclude: list[RepresentationConfig]
    ) -> RepresentationConfig | None:
        taken = {rep.display for rep in exclude}
        candidates = [
            rep for rep in self._candidates("dhe", budget) if rep.display not in taken
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda rep: rep.total_bytes(self.model))


def default_planner_space(model: ModelConfig) -> list[RepresentationConfig]:
    """Planner search space: paper configs plus shrunken table dims so
    memory-constrained devices (HW-2) still find a table mapping."""
    configs = paper_configs(model)
    space = [configs["table"], configs["dhe"], configs["hybrid"], configs["dhe_compact"]]
    dim = model.embedding_dim
    smaller = dim // 2
    while smaller >= 2:
        space.append(
            RepresentationConfig("table", smaller, label=f"table-d{smaller}")
        )
        smaller //= 2
    return space
