"""Execution paths: a (representation, hardware) pair ready to serve queries."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.representations import RepresentationConfig
from repro.hardware.device import DeviceSpec


@dataclass
class PathProfile:
    """Latency profile of one path across query sizes (offline profiling).

    ``latency(n)`` interpolates log-linearly between profiled sizes, matching
    how the paper profiles "selected representations against the expected
    workload at different query sizes" (Section 4.1).
    """

    sizes: np.ndarray
    latencies: np.ndarray

    def __post_init__(self) -> None:
        self.sizes = np.asarray(self.sizes, dtype=np.float64)
        self.latencies = np.asarray(self.latencies, dtype=np.float64)
        if self.sizes.ndim != 1 or self.sizes.shape != self.latencies.shape:
            raise ValueError("sizes and latencies must be equal-length 1D arrays")
        if self.sizes.size < 1:
            raise ValueError("profile needs at least one point")
        if np.any(np.diff(self.sizes) <= 0):
            raise ValueError("sizes must be strictly increasing")
        # latency() sits on the scheduler's per-decision hot path; cache the
        # log-domain profile so each call is one scalar interpolation.
        self._log_sizes = np.log(self.sizes)
        self._log_latencies = np.log(self.latencies)

    def latency(self, query_size: float) -> float:
        """Service latency at ``query_size`` samples, log-log interpolated
        through the profiled anchor points."""
        if query_size <= 0:
            raise ValueError("query_size must be positive")
        return math.exp(
            np.interp(math.log(query_size), self._log_sizes, self._log_latencies)
        )

    def latency_many(self, query_sizes) -> np.ndarray:
        """Vectorized :meth:`latency`, bit-equal to the per-size scalar calls.

        The interpolation runs as one array pass; the final exponential
        stays ``math.exp`` per element because ``np.exp`` rounds the last
        ulp differently on some libms, and the fast path's record-for-record
        parity with the event kernel rides on exact float equality.
        """
        sizes = np.asarray(query_sizes, dtype=np.float64)
        if sizes.size and sizes.min() <= 0:
            raise ValueError("query_size must be positive")
        interp = np.interp(
            np.log(sizes), self._log_sizes, self._log_latencies
        )
        return np.fromiter(
            map(math.exp, interp.tolist()), np.float64, count=sizes.size
        )

    def throughput(self, query_size: float) -> float:
        """Samples/second when saturating the device with this query size."""
        return query_size / self.latency(query_size)


@dataclass
class ExecutionPath:
    """One activatable representation-hardware mapping (Figure 8)."""

    rep: RepresentationConfig
    device: DeviceSpec
    accuracy: float
    profile: PathProfile
    encoder_hit_rate: float = 0.0
    decoder_speedup: float = 1.0
    label: str = ""
    memory_bytes: int = 0
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.label:
            self.label = f"{self.rep.kind.upper()}({self.device.name})"

    @property
    def kind(self) -> str:
        """The representation kind this path serves (table/dhe/...)."""
        return self.rep.kind

    def latency(self, query_size: int) -> float:
        """Profiled service latency at ``query_size`` samples."""
        return self.profile.latency(query_size)

    def latency_many(self, query_sizes) -> np.ndarray:
        """Vectorized :meth:`latency` (bit-equal to the scalar calls)."""
        return self.profile.latency_many(query_sizes)

    def __repr__(self) -> str:
        return f"ExecutionPath({self.label}, acc={self.accuracy:.3f})"
