"""MP-Rec core: representation configs, offline mapping, online scheduling,
MP-Cache, and query splitting (Sections 4.1-4.3)."""

from repro.core.representations import (
    RepresentationConfig,
    paper_configs,
    representation_space,
)
from repro.core.paths import ExecutionPath
from repro.core.profiler import profile_path, PathProfile
from repro.core.offline import OfflinePlanner, MappingPlan
from repro.core.online import MultiPathScheduler, StaticScheduler, TableSwitchScheduler
from repro.core.mp_cache import EncoderCache, DecoderCentroidCache, MPCache, CacheEffect
from repro.core.cached_inference import CachedDHE
from repro.core.splitting import split_query_even, split_query_tuned

__all__ = [
    "RepresentationConfig",
    "paper_configs",
    "representation_space",
    "ExecutionPath",
    "profile_path",
    "PathProfile",
    "OfflinePlanner",
    "MappingPlan",
    "MultiPathScheduler",
    "StaticScheduler",
    "TableSwitchScheduler",
    "EncoderCache",
    "DecoderCentroidCache",
    "MPCache",
    "CacheEffect",
    "CachedDHE",
    "split_query_even",
    "split_query_tuned",
]
