"""MP-Rec online stage: dynamic multi-path activation (Algorithm 2).

Given the offline plan's execution paths, each unit of work is routed to
the highest-quality path that can finish within the SLA latency target
*without throughput degradation* — i.e. accounting for the queue already on
the candidate's device. Preference order: hybrid, then DHE, then table; if
nothing meets the SLA the scheduler defaults to the fastest table path so
throughput is preserved (Section 4.2).

The serving kernel (:mod:`repro.serving.engine`, behind
:class:`~repro.serving.simulator.ServingSimulator` and the cluster) calls
:meth:`Scheduler.select_batch` once per coalesced micro-batch — the
default forwards to the per-query :meth:`Scheduler.select`, which is exactly
the per-query decision when batching is disabled — and notifies
:meth:`Scheduler.on_batch_dispatched` after placement so stateful
subclasses can track in-flight load. Runtime representation switching
(:mod:`repro.core.switching`) drives :meth:`Scheduler.on_switch_started` /
:meth:`Scheduler.on_switch_completed`; the default swaps the resident path
in place so every scheduler keeps routing unchanged. Admission control
(shedding) is *not* the scheduler's job: it lives in
:mod:`repro.serving.policies` and runs after routing, when the projected
wait and service time are known.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.paths import ExecutionPath

PREFERENCE_ORDER = ("hybrid", "dhe", "select", "table")


@dataclass(frozen=True)
class Decision:
    """One routing verdict: the chosen path plus its projected costs."""

    path: ExecutionPath
    service_s: float
    wait_s: float

    @property
    def finish_after_arrival_s(self) -> float:
        """Projected end-to-end latency (queue wait + service)."""
        return self.wait_s + self.service_s


class Scheduler:
    """Interface: map (query size, SLA, device queue state) -> a path."""

    name = "scheduler"

    def __init__(self, paths: list[ExecutionPath]) -> None:
        if not paths:
            raise ValueError("scheduler needs at least one execution path")
        self.paths = list(paths)

    def select(
        self, query_size: int, sla_s: float, now: float, free_at: dict[str, list[float]]
    ) -> Decision:
        """Route one query (or one coalesced batch of ``query_size``
        samples) given the devices' current queue state."""
        raise NotImplementedError

    # ---- event-engine hooks ---------------------------------------------

    def select_batch(
        self, total_size: int, sla_s: float, now: float,
        free_at: dict[str, list[float]],
    ) -> Decision:
        """Route one coalesced micro-batch (called once per batch by the
        event engine). The default treats the batch as a single query of
        the combined sample count, which is exactly the per-query decision
        when batching is disabled; schedulers may override to apply
        batch-aware placement."""
        return self.select(total_size, sla_s, now, free_at)

    def on_batch_dispatched(
        self, path: ExecutionPath, total_size: int, start_s: float,
        finish_s: float,
    ) -> None:
        """Notification after a batch is committed to a server; the base
        scheduler is stateless, subclasses may track in-flight load."""

    # ---- runtime representation switching hooks --------------------------

    def on_switch_started(
        self, device_name: str, old_path: ExecutionPath,
        new_path: ExecutionPath, now: float,
    ) -> None:
        """A :class:`~repro.core.switching.SwitchController` is replacing
        ``old_path`` with ``new_path`` as the resident representation on
        ``device_name``. The default swaps the path in place, so batches
        routed during and after the switch window use the new
        representation (they block on the device timeline until the
        load/teardown completes). Stateful subclasses may override to
        migrate per-path state."""
        for i, path in enumerate(self.paths):
            if path is old_path:
                self.paths[i] = new_path
                return
        raise ValueError(
            f"switch source {old_path.label!r} is not resident on this "
            "scheduler"
        )

    def on_switch_completed(
        self, device_name: str, path: ExecutionPath, now: float,
    ) -> None:
        """The switch's load/teardown window elapsed; ``path`` is now the
        serving representation on ``device_name``. Default: no-op."""

    def _decision(
        self, path: ExecutionPath, query_size: int, now: float,
        free_at: dict[str, list[float]],
    ) -> Decision:
        servers = free_at.get(path.device.name)
        earliest = min(servers) if servers else 0.0
        wait = max(0.0, earliest - now)
        return Decision(path=path, service_s=path.latency(query_size), wait_s=wait)


class MultiPathScheduler(Scheduler):
    """Algorithm 2 with queue-aware feasibility."""

    name = "mp-rec"

    def __init__(
        self,
        paths: list[ExecutionPath],
        preference: tuple[str, ...] = PREFERENCE_ORDER,
    ) -> None:
        super().__init__(paths)
        self.preference = preference

    def select(
        self, query_size: int, sla_s: float, now: float, free_at: dict[str, list[float]]
    ) -> Decision:
        """The most-preferred representation kind whose projected finish
        (queue wait + service) fits the SLA; ultimate fallback is the
        earliest-finishing path."""
        for kind in self.preference:
            candidates = [p for p in self.paths if p.kind == kind]
            feasible = [
                d
                for d in (
                    self._decision(p, query_size, now, free_at) for p in candidates
                )
                if d.finish_after_arrival_s <= sla_s
            ]
            if feasible:
                # Highest accuracy first, earliest finish as tie-break.
                return max(
                    feasible,
                    key=lambda d: (d.path.accuracy, -d.finish_after_arrival_s),
                )
        # Nothing meets the SLA: preserve throughput with the fastest table
        # path (or fastest overall if no table path exists).
        tables = [p for p in self.paths if p.kind == "table"] or self.paths
        decisions = [self._decision(p, query_size, now, free_at) for p in tables]
        return min(decisions, key=lambda d: d.finish_after_arrival_s)


class StaticScheduler(Scheduler):
    """Baseline: one fixed representation-hardware deployment."""

    name = "static"

    def __init__(self, paths: list[ExecutionPath]) -> None:
        super().__init__(paths)
        if len(paths) != 1:
            raise ValueError("static deployment has exactly one path")
        self.name = f"static-{paths[0].label}"

    def select(
        self, query_size: int, sla_s: float, now: float, free_at: dict[str, list[float]]
    ) -> Decision:
        """The deployment's only path, whatever the queue says."""
        return self._decision(self.paths[0], query_size, now, free_at)


class TableSwitchScheduler(Scheduler):
    """Baseline: table-only with CPU<->GPU switching (Fig 10 gray bars).

    Switching is at hardware-platform granularity using only the query's
    size (profiled service latency) — it is *queue-blind*, unlike MP-Rec's
    queue-aware activation. This is why pure switching yields a modest
    improvement (paper: +18% on Kaggle) while MP-Rec load-balances.
    """

    name = "table-switch"

    def __init__(self, paths: list[ExecutionPath]) -> None:
        table_paths = [p for p in paths if p.kind == "table"]
        super().__init__(table_paths)

    def select(
        self, query_size: int, sla_s: float, now: float, free_at: dict[str, list[float]]
    ) -> Decision:
        """The platform with the lowest profiled service latency for this
        query size — queue-blind by design."""
        decisions = [self._decision(p, query_size, now, free_at) for p in self.paths]
        return min(decisions, key=lambda d: d.service_s)


class GreedyLatencyScheduler(Scheduler):
    """Ablation: ignore accuracy, always take the earliest-finishing path."""

    name = "greedy-latency"

    def select(
        self, query_size: int, sla_s: float, now: float, free_at: dict[str, list[float]]
    ) -> Decision:
        """The earliest-finishing path, accuracy ignored."""
        decisions = [self._decision(p, query_size, now, free_at) for p in self.paths]
        return min(decisions, key=lambda d: d.finish_after_arrival_s)
