"""MP-Cache: two-tier caching for compute-based embedding paths (Sec 4.3).

Tier 1, ``EncoderCache``: hot sparse IDs (power-law traffic) map straight to
precomputed final embedding vectors, skipping the entire encoder-decoder
stack. Static residency (top-N by profiled frequency) is the paper's
design; an LRU variant is included for the ablation bench.

Tier 2, ``DecoderCentroidCache``: intermediate encoder outputs that miss
tier 1 are matched to their nearest of N profiled centroids via normalized
dot products, replacing the decoder MLP with a kNN search whose outputs are
precomputed.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.clustering.kmeans import KMeans
from repro.clustering.knn import knn_flops, nearest_centroid, normalize_rows
from repro.core.representations import RepresentationConfig
from repro.data.zipf import ZipfSampler
from repro.embeddings.dhe import DHEEmbedding

ENTRY_KEY_BYTES = 8
FP32 = 4


def row_entry_bytes(embedding_dim: int) -> int:
    """Bytes one cached embedding row occupies: the vector plus its key.

    Every cache in the repo — the single-node :class:`EncoderCache` and the
    cluster tier's :class:`~repro.serving.cache.NodeCache` — sizes its
    entry budget with this one formula, so a "cache of N megabytes" means
    the same row count everywhere.
    """
    if embedding_dim < 1:
        raise ValueError("embedding_dim must be positive")
    return embedding_dim * FP32 + ENTRY_KEY_BYTES


def zipf_popularity_cdf(n_rows: int, alpha: float = 1.05) -> np.ndarray:
    """``cdf[k]`` = probability a Zipf(alpha) lookup lands in the ``k``
    hottest rows of an ``n_rows`` universe (``cdf[0] == 0``).

    This is the analytic hit curve both cache tiers price residency with:
    a cache holding the top ``k`` rows of a power-law-traffic table serves
    ``cdf[k]`` of its lookups locally.
    """
    if n_rows <= 0:
        raise ValueError("n_rows must be positive")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    ranks = np.arange(1, n_rows + 1, dtype=np.float64)
    weights = ranks**-alpha
    cdf = np.empty(n_rows + 1, dtype=np.float64)
    cdf[0] = 0.0
    np.cumsum(weights / weights.sum(), out=cdf[1:])
    cdf[-1] = 1.0
    return cdf


@dataclass(frozen=True)
class CacheEffect:
    """What MP-Cache does to a DHE/hybrid path's latency model."""

    encoder_hit_rate: float
    decoder_speedup: float
    accuracy_penalty: float  # percentage points lost to centroid approximation

    def __post_init__(self) -> None:
        if not 0.0 <= self.encoder_hit_rate <= 1.0:
            raise ValueError("encoder_hit_rate must be in [0, 1]")
        if self.decoder_speedup < 1.0:
            raise ValueError("decoder_speedup must be >= 1")


class EncoderCache:
    """Hot-ID -> final-embedding cache in front of the encoder stack."""

    def __init__(
        self,
        capacity_bytes: int,
        embedding_dim: int,
        policy: str = "static",
        n_features: int | None = None,
    ) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")
        if policy not in ("static", "lru"):
            raise ValueError("policy must be 'static' or 'lru'")
        if n_features is not None and n_features < 1:
            raise ValueError("n_features must be positive when declared")
        self.capacity_bytes = capacity_bytes
        self.embedding_dim = embedding_dim
        self.policy = policy
        self.n_features = n_features
        self.entry_bytes = row_entry_bytes(embedding_dim)
        self.capacity_entries = capacity_bytes // self.entry_bytes
        self._resident: dict[int, set[int]] = {}
        self._lru: dict[int, OrderedDict[int, None]] = {}
        self.hits = 0
        self.misses = 0

    # ---- static residency -------------------------------------------------

    def fit_static(self, samplers: list[ZipfSampler]) -> None:
        """Populate per-feature resident sets from profiled popularity.

        Capacity is split across features proportionally to nothing fancier
        than an even share — hot heads dominate regardless of split because
        the traffic is power law.
        """
        if not samplers:
            raise ValueError("need at least one feature sampler")
        per_feature = self.capacity_entries // len(samplers)
        self._resident = {
            f: set(int(i) for i in sampler.hottest(per_feature))
            for f, sampler in enumerate(samplers)
        }

    def expected_hit_rate(self, samplers: list[ZipfSampler]) -> float:
        """Analytic hit rate under the fitted residency (uniform feature mix)."""
        if not self._resident:
            return 0.0
        rates = []
        for f, sampler in enumerate(samplers):
            resident = np.array(sorted(self._resident.get(f, ())), dtype=np.int64)
            rates.append(
                sampler.expected_hit_rate(resident) if resident.size else 0.0
            )
        return float(np.mean(rates))

    # ---- lookup -------------------------------------------------------------

    def lookup(self, feature: int, ids: np.ndarray) -> np.ndarray:
        """Boolean hit mask; updates recency/statistics."""
        ids = np.asarray(ids)
        if self.policy == "static":
            resident = self._resident.get(feature, set())
            mask = np.fromiter(
                (int(i) in resident for i in ids), dtype=bool, count=ids.size
            )
        else:
            mask = self._lru_lookup(feature, ids)
        self.hits += int(mask.sum())
        self.misses += int((~mask).sum())
        return mask

    def _lru_lookup(self, feature: int, ids: np.ndarray) -> np.ndarray:
        grew = feature not in self._lru
        if (
            grew
            and self.n_features is not None
            and len(self._lru) >= self.n_features
        ):
            # A declared count pins the per-feature quota; admitting extra
            # features would silently overcommit the byte budget.
            raise ValueError(
                f"feature {feature} exceeds the declared n_features="
                f"{self.n_features}"
            )
        cache = self._lru.setdefault(feature, OrderedDict())
        # Size per-feature shares from the *post-insert* feature count (a
        # declared count pins the split up front); sizing from the
        # pre-insert count let the first feature claim the whole capacity
        # and gave each of F features capacity // (F-1).
        per_feature = self._per_feature_entries()
        if grew and self.n_features is None:
            # A new feature shrank everyone's share: evict the coldest
            # entries of already-populated features down to the new quota,
            # not just lazily on their next miss.
            self._rebalance(per_feature)
        mask = np.zeros(ids.size, dtype=bool)
        for i, raw in enumerate(ids):
            key = int(raw)
            if key in cache:
                cache.move_to_end(key)
                mask[i] = True
            else:
                cache[key] = None
                while len(cache) > per_feature:
                    cache.popitem(last=False)
        return mask

    def _per_feature_entries(self) -> int:
        features = self.n_features if self.n_features is not None else len(self._lru)
        return max(1, self.capacity_entries // max(1, features))

    def _rebalance(self, per_feature: int) -> None:
        for cache in self._lru.values():
            while len(cache) > per_feature:
                cache.popitem(last=False)

    @property
    def observed_hit_rate(self) -> float:
        """Empirical hit rate since the last :meth:`reset_stats`."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (capacity and contents stay)."""
        self.hits = 0
        self.misses = 0


class DecoderCentroidCache:
    """Centroid/kNN replacement for the decoder MLP."""

    def __init__(self, n_centroids: int, seed: int = 0) -> None:
        if n_centroids <= 0:
            raise ValueError("n_centroids must be positive")
        self.n_centroids = n_centroids
        self.seed = seed
        self._kmeans: KMeans | None = None
        self._centroids_normed: np.ndarray | None = None
        self._decoded: np.ndarray | None = None

    def fit(self, intermediates: np.ndarray, dhe: DHEEmbedding) -> None:
        """Cluster profiled encoder outputs; precompute decoded centroids."""
        self._kmeans = KMeans(self.n_centroids, seed=self.seed).fit(intermediates)
        centroids = self._kmeans.centroids
        self._centroids_normed = normalize_rows(centroids)
        self._decoded = dhe.decode(centroids)

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has built the centroid table."""
        return self._decoded is not None

    def generate(self, intermediates: np.ndarray) -> np.ndarray:
        """Approximate decoder output: nearest centroid's precomputed vector."""
        if not self.is_fitted:
            raise RuntimeError("fit() the decoder cache before generating")
        idx = nearest_centroid(
            normalize_rows(intermediates), self._centroids_normed,
            assume_normalized=True,
        )
        return self._decoded[idx]

    def approximation_error(
        self, intermediates: np.ndarray, dhe: DHEEmbedding
    ) -> float:
        """Mean relative L2 error of cached vs. exact decoder outputs."""
        exact = dhe.decode(intermediates)
        approx = self.generate(intermediates)
        num = np.linalg.norm(exact - approx, axis=1)
        den = np.maximum(np.linalg.norm(exact, axis=1), 1e-12)
        return float(np.mean(num / den))

    def speedup(self, rep: RepresentationConfig) -> float:
        """Decoder-MLP FLOPs divided by kNN FLOPs (>= 1)."""
        decoder = rep.decoder_flops_per_lookup()
        knn = knn_flops(1, rep.k, self.n_centroids)
        return max(1.0, decoder / max(knn, 1))


class MPCache:
    """The combined two-tier cache and its effect on a path's latency model."""

    def __init__(
        self,
        encoder: EncoderCache,
        decoder: DecoderCentroidCache | None = None,
    ) -> None:
        self.encoder = encoder
        self.decoder = decoder

    def effect(
        self,
        rep: RepresentationConfig,
        samplers: list[ZipfSampler],
        approximation_error: float = 0.0,
    ) -> CacheEffect:
        """The analytic serving effect of both tiers on one
        representation: encoder hit rate under the traffic model, decoder
        speedup, and the centroid approximation's accuracy penalty."""
        hit_rate = self.encoder.expected_hit_rate(samplers)
        speedup = self.decoder.speedup(rep) if self.decoder else 1.0
        # Centroid approximation costs a sliver of accuracy, shrinking with
        # more centroids; calibrated to stay < 0.01% at N >= 256.
        penalty = 0.02 * approximation_error
        return CacheEffect(
            encoder_hit_rate=hit_rate,
            decoder_speedup=speedup,
            accuracy_penalty=penalty,
        )
