"""Representation configurations and their capacity / FLOPs accounting.

A :class:`RepresentationConfig` is the *symbolic* description of one
embedding representation choice for a given model — enough to compute
footprints (Table 3) and per-sample FLOPs (Figure 3b) without allocating
terabyte-scale weights, and to instantiate a real numpy model at reduced
scale when training is wanted.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.embeddings.costs import (
    dhe_bytes,
    dhe_flops_per_lookup,
    embedding_bytes,
    embedding_flops,
    table_bytes,
)
from repro.models.configs import ModelConfig
from repro.models.interactions import DotInteraction

KINDS = ("table", "dhe", "select", "hybrid")


@dataclass(frozen=True)
class RepresentationConfig:
    """Hyperparameters of one embedding representation (Figure 2)."""

    kind: str
    embedding_dim: int  # per-feature output dim fed to the interaction
    k: int = 0  # encoder hash functions (dhe/select/hybrid)
    dnn: int = 0  # decoder MLP width
    h: int = 0  # decoder MLP height (hidden layers)
    table_dim: int = 0  # hybrid: table slice width
    dhe_dim: int = 0  # hybrid: generated slice width
    n_dhe_features: int = 0  # select: how many features use DHE
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")
        if self.embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        if self.kind != "table" and (self.k <= 0 or self.dnn <= 0 or self.h < 0):
            raise ValueError(f"{self.kind} requires positive k and dnn, h >= 0")
        if self.kind == "hybrid":
            if self.table_dim <= 0 or self.dhe_dim <= 0:
                raise ValueError("hybrid requires table_dim and dhe_dim")
            if self.table_dim + self.dhe_dim != self.embedding_dim:
                raise ValueError("hybrid: table_dim + dhe_dim must equal embedding_dim")
        if self.kind == "select" and self.n_dhe_features <= 0:
            raise ValueError("select requires n_dhe_features >= 1")

    @property
    def uses_tables(self) -> bool:
        """True when any feature is served from a memory-based table."""
        return self.kind in ("table", "select", "hybrid")

    @property
    def uses_dhe(self) -> bool:
        """True when any feature runs the compute-based DHE stack."""
        return self.kind in ("dhe", "select", "hybrid")

    @property
    def display(self) -> str:
        """Human-readable identity (label, or kind + embedding dim)."""
        return self.label or f"{self.kind}(d={self.embedding_dim})"

    # ---- capacity ----------------------------------------------------------

    def embedding_bytes(self, model: ModelConfig) -> int:
        """Embedding-side parameter bytes on this model (tables + DHE)."""
        if self.kind == "select":
            order = sorted(range(model.n_sparse),
                           key=lambda f: model.cardinalities[f], reverse=True)
            dhe_features = order[: self.n_dhe_features]
            return embedding_bytes(
                "select", model.cardinalities, self.embedding_dim,
                k=self.k, dnn=self.dnn, h=self.h, dhe_features=dhe_features,
            )
        return embedding_bytes(
            self.kind, model.cardinalities, self.embedding_dim,
            k=self.k, dnn=self.dnn, h=self.h,
            table_dim=self.table_dim or None, dhe_dim=self.dhe_dim or None,
        )

    def dense_bytes(self, model: ModelConfig) -> int:
        """Bottom + top MLP parameter bytes for this representation's dims."""
        return sum(
            (sizes[i] * sizes[i + 1] + sizes[i + 1]) * 4
            for sizes in (self._bottom_sizes(model), self._top_sizes(model))
            for i in range(len(sizes) - 1)
        )

    def total_bytes(self, model: ModelConfig) -> int:
        """Full model footprint: embedding plus dense parameter bytes."""
        return self.embedding_bytes(model) + self.dense_bytes(model)

    # ---- compute -----------------------------------------------------------

    def embedding_flops_per_sample(self, model: ModelConfig) -> int:
        """FLOPs one sample spends producing its embeddings."""
        g_dim = self.dhe_dim or None
        return embedding_flops(
            self.kind, model.n_sparse, self.embedding_dim,
            k=self.k, dnn=self.dnn, h=self.h, dhe_dim=g_dim,
            n_dhe_features=self.n_dhe_features,
        )

    def dense_flops_per_sample(self, model: ModelConfig) -> int:
        """FLOPs one sample spends in the MLPs and the interaction."""
        mlp = sum(
            2 * sizes[i] * sizes[i + 1]
            for sizes in (self._bottom_sizes(model), self._top_sizes(model))
            for i in range(len(sizes) - 1)
        )
        interaction = DotInteraction.flops(1, self.embedding_dim, model.n_sparse)
        return mlp + interaction

    def flops_per_sample(self, model: ModelConfig) -> int:
        """End-to-end FLOPs per sample (embedding + dense)."""
        return self.embedding_flops_per_sample(model) + self.dense_flops_per_sample(model)

    def decoder_flops_per_lookup(self) -> int:
        """FLOPs one DHE decoder pass spends per sparse lookup."""
        if not self.uses_dhe:
            return 0
        out_dim = self.dhe_dim if self.kind == "hybrid" else self.embedding_dim
        return dhe_flops_per_lookup(self.k, self.dnn, self.h, out_dim)

    def decoder_bytes(self) -> int:
        """One decoder stack's parameter bytes (MP-Cache sizing input)."""
        if not self.uses_dhe:
            return 0
        out_dim = self.dhe_dim if self.kind == "hybrid" else self.embedding_dim
        return dhe_bytes(self.k, self.dnn, self.h, out_dim)

    def table_only_bytes(self, model: ModelConfig) -> int:
        """Bytes of the table component (hot data for gather placement)."""
        if self.kind == "table":
            return sum(table_bytes(rows, self.embedding_dim) for rows in model.cardinalities)
        if self.kind == "hybrid":
            return sum(table_bytes(rows, self.table_dim) for rows in model.cardinalities)
        if self.kind == "select":
            order = sorted(range(model.n_sparse),
                           key=lambda f: model.cardinalities[f], reverse=True)
            kept = set(range(model.n_sparse)) - set(order[: self.n_dhe_features])
            return sum(
                table_bytes(model.cardinalities[f], self.embedding_dim) for f in kept
            )
        return 0

    # ---- helpers -----------------------------------------------------------

    def _bottom_sizes(self, model: ModelConfig) -> list[int]:
        return [model.n_dense, *model.bottom_mlp, self.embedding_dim]

    def _top_sizes(self, model: ModelConfig) -> list[int]:
        interaction = DotInteraction.output_dim(self.embedding_dim, model.n_sparse)
        return [interaction, *model.top_mlp, 1]

    def with_dim(self, dim: int) -> "RepresentationConfig":
        """The same representation resized to embedding dim ``dim``
        (hybrid splits the new dim proportionally)."""
        if self.kind == "hybrid":
            t_dim = max(1, dim * self.table_dim // self.embedding_dim)
            return replace(
                self, embedding_dim=dim, table_dim=t_dim, dhe_dim=dim - t_dim
            )
        return replace(self, embedding_dim=dim)


def paper_configs(model: ModelConfig) -> dict[str, RepresentationConfig]:
    """The paper-calibrated configuration of each representation.

    Chosen so the Table 3 footprints reproduce: the accuracy-optimal DHE
    stack is ``k=2048, dnn=480, h=2`` (~127 MB over 26 features), and hybrid
    keeps the full-width table plus a half-width generated slice.
    """
    dim = model.embedding_dim
    return {
        "table": RepresentationConfig("table", dim, label=f"table-d{dim}"),
        "dhe": RepresentationConfig(
            "dhe", dim, k=2048, dnn=480, h=2, label=f"dhe-k2048-d{dim}"
        ),
        "select": RepresentationConfig(
            "select", dim, k=1024, dnn=256, h=2, n_dhe_features=3,
            label=f"select-3-d{dim}",
        ),
        "hybrid": RepresentationConfig(
            "hybrid", dim + max(1, dim // 2), k=2048, dnn=480, h=2,
            table_dim=dim, dhe_dim=max(1, dim // 2),
            label=f"hybrid-d{dim}+{max(1, dim // 2)}",
        ),
        "dhe_compact": RepresentationConfig(
            "dhe", dim, k=256, dnn=128, h=1, label=f"dhe-compact-d{dim}"
        ),
    }


def representation_space(
    model: ModelConfig,
    ks: tuple[int, ...] = (2, 8, 32, 128, 512, 1024, 2048),
    dnns: tuple[int, ...] = (64, 128, 256, 480),
    hs: tuple[int, ...] = (1, 2, 4),
    table_dims: tuple[int, ...] = (4, 8, 16, 32, 64),
) -> list[RepresentationConfig]:
    """The exploration space of Figure 3/4: table dims and DHE stack shapes."""
    space: list[RepresentationConfig] = []
    dim = model.embedding_dim
    for t_dim in table_dims:
        space.append(RepresentationConfig("table", t_dim, label=f"table-d{t_dim}"))
    for k in ks:
        for dnn in dnns:
            for h in hs:
                space.append(
                    RepresentationConfig(
                        "dhe", dim, k=k, dnn=dnn, h=h,
                        label=f"dhe-k{k}-w{dnn}-h{h}",
                    )
                )
                space.append(
                    RepresentationConfig(
                        "hybrid", dim + max(1, dim // 2), k=k, dnn=dnn, h=h,
                        table_dim=dim, dhe_dim=max(1, dim // 2),
                        label=f"hybrid-k{k}-w{dnn}-h{h}",
                    )
                )
    return space
