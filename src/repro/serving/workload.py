"""Serving scenarios: a query set plus SLA and throughput targets.

Besides the paper's stationary default (Section 5.3), scenarios cover the
traffic shapes a production frontend actually sees: diurnal sinusoidal
load, bursty on-off (MMPP) traffic, a flash-crowd spike, and multi-tenant
mixes where each tenant ships its own arrival process, query-size mix, and
SLA target. Per-tenant SLAs ride on ``sla_by_tenant``; the engine resolves
each query's target through :meth:`ServingScenario.sla_for`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.data.queries import Query, QuerySet, generate_query_set


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's workload contribution to a multi-tenant scenario."""

    name: str
    n_queries: int
    qps: float
    sla_s: float
    mean_size: float = 128.0
    process: str = "poisson"
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.n_queries <= 0:
            raise ValueError("n_queries must be positive")

    @property
    def effective_seed(self) -> int:
        """Seed mixed with the tenant name so tenants left on the default
        seed still draw independent streams — identical seeds would make
        every arrival a simultaneous cross-tenant collision."""
        return (self.seed + zlib.crc32(self.name.encode())) % 2**31


@dataclass
class ServingScenario:
    """One evaluation condition (defaults are the paper's Section 5.3)."""

    queries: QuerySet
    sla_s: float = 0.010  # 10 ms strict SLA target
    target_qps: float = 1000.0
    sla_by_tenant: dict[str, float] = field(default_factory=dict)

    def sla_for(self, query: Query) -> float:
        """The SLA target governing one query (tenant-specific if tagged)."""
        if query.tenant and self.sla_by_tenant:
            return self.sla_by_tenant.get(query.tenant, self.sla_s)
        return self.sla_s

    @classmethod
    def paper_default(
        cls,
        n_queries: int = 10_000,
        mean_size: float = 128.0,
        qps: float = 1000.0,
        sla_s: float = 0.010,
        seed: int = 0,
    ) -> "ServingScenario":
        """The paper's stationary Section 5.3 condition (Poisson at 1k
        QPS, 128-sample queries, 10 ms SLA) with overridable knobs."""
        return cls(
            queries=generate_query_set(
                n_queries=n_queries, mean_size=mean_size, qps=qps, seed=seed
            ),
            sla_s=sla_s,
            target_qps=qps,
        )

    @classmethod
    def with_process(
        cls,
        process: str,
        n_queries: int = 10_000,
        mean_size: float = 128.0,
        qps: float = 1000.0,
        sla_s: float = 0.010,
        seed: int = 0,
        **process_kwargs,
    ) -> "ServingScenario":
        """Paper-default sizes under an alternative arrival process
        (``diurnal``, ``mmpp``/``bursty``, ``flash-crowd``, ...).
        ``process_kwargs`` forward to the process generator (``amplitude``,
        ``burst_factor``, ``spike_factor``, ...)."""
        return cls(
            queries=generate_query_set(
                n_queries=n_queries, mean_size=mean_size, qps=qps, seed=seed,
                process=process, **process_kwargs,
            ),
            sla_s=sla_s,
            target_qps=qps,
        )

    @classmethod
    def diurnal(cls, **kwargs) -> "ServingScenario":
        """Sinusoidal day/night load (compressed period)."""
        return cls.with_process("diurnal", **kwargs)

    @classmethod
    def bursty(cls, **kwargs) -> "ServingScenario":
        """On-off Markov-modulated Poisson bursts."""
        return cls.with_process("mmpp", **kwargs)

    @classmethod
    def flash_crowd(cls, **kwargs) -> "ServingScenario":
        """Stationary load with one multiplicative spike window."""
        return cls.with_process("flash-crowd", **kwargs)

    @classmethod
    def multi_tenant(
        cls,
        tenants: list[TenantSpec],
        target_qps: float | None = None,
    ) -> "ServingScenario":
        """Merge per-tenant query streams into one arrival-ordered scenario.

        Queries keep their tenant tag and are re-indexed globally in
        arrival order; ``sla_s`` falls back to the strictest tenant target
        so single-SLA consumers of the scenario stay conservative.
        """
        if not tenants:
            raise ValueError("need at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError("tenant names must be unique")
        merged: list[Query] = []
        for tenant in tenants:
            tenant_set = generate_query_set(
                n_queries=tenant.n_queries,
                mean_size=tenant.mean_size,
                qps=tenant.qps,
                seed=tenant.effective_seed,
                process=tenant.process,
                tenant=tenant.name,
            )
            merged.extend(tenant_set.queries)
        merged.sort(key=lambda q: q.arrival_s)
        merged = [
            Query(index=i, size=q.size, arrival_s=q.arrival_s, tenant=q.tenant)
            for i, q in enumerate(merged)
        ]
        return cls(
            queries=QuerySet(queries=merged),
            sla_s=min(t.sla_s for t in tenants),
            target_qps=(
                target_qps if target_qps is not None
                else sum(t.qps for t in tenants)
            ),
            sla_by_tenant={t.name: t.sla_s for t in tenants},
        )
