"""Serving scenarios: a query set plus SLA and throughput targets."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.queries import QuerySet, generate_query_set


@dataclass
class ServingScenario:
    """One evaluation condition (defaults are the paper's Section 5.3)."""

    queries: QuerySet
    sla_s: float = 0.010  # 10 ms strict SLA target
    target_qps: float = 1000.0

    @classmethod
    def paper_default(
        cls,
        n_queries: int = 10_000,
        mean_size: float = 128.0,
        qps: float = 1000.0,
        sla_s: float = 0.010,
        seed: int = 0,
    ) -> "ServingScenario":
        return cls(
            queries=generate_query_set(
                n_queries=n_queries, mean_size=mean_size, qps=qps, seed=seed
            ),
            sla_s=sla_s,
            target_qps=qps,
        )
