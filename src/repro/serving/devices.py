"""Device timelines: per-device server-slot state for the serving kernel.

A :class:`DeviceTimeline` owns the ``free_at`` map the schedulers consult
(``{device_name: [next_free_time] * concurrency}``), answers earliest-free
queries, commits dispatched batches, and prices *blocking events* —
device-wide stalls such as a runtime representation switch
(:mod:`repro.core.switching`), which must drain the device's committed
work before the load/teardown window starts.

The map is deliberately the same plain ``dict[str, list[float]]`` the
schedulers have always received, so every existing
:class:`~repro.core.online.Scheduler` works against a timeline unchanged.
"""

from __future__ import annotations


class DeviceTimeline:
    """Server-slot bookkeeping for every device a scheduler can route to."""

    __slots__ = ("free_at",)

    def __init__(self, paths) -> None:
        self.free_at: dict[str, list[float]] = {
            path.device.name: [0.0] * path.device.concurrency
            for path in paths
        }

    def earliest(self, device: str) -> tuple[int, float]:
        """(server index, free time) of the device's earliest-free slot."""
        pool = self.free_at[device]
        server = min(range(len(pool)), key=pool.__getitem__)
        return server, pool[server]

    def commit(self, device: str, server: int, finish_s: float) -> None:
        """Occupy one server slot until ``finish_s``."""
        self.free_at[device][server] = finish_s

    def queue_delay(self, device: str, now: float) -> float:
        """How long a batch routed to ``device`` now would wait to start."""
        return max(0.0, min(self.free_at[device]) - now)

    def earliest_free_delay(self, now: float) -> float:
        """Wait until *any* device frees a slot (cluster load signal)."""
        earliest = min(min(pool) for pool in self.free_at.values())
        return max(0.0, earliest - now)

    def block(self, device: str, now: float, duration_s: float) -> float:
        """Charge a device-wide blocking event (e.g. a representation
        switch): the device first drains its committed work, then every
        server is unavailable for ``duration_s``. Returns the instant the
        device is serviceable again."""
        if duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        pool = self.free_at[device]
        ready = max(now, max(pool)) + duration_s
        for server in range(len(pool)):
            pool[server] = ready
        return ready
