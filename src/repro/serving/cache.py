"""The cluster MP-Cache tier: per-node hot-row caches under real routing.

The paper's MP-Cache (Section 4.3, :mod:`repro.core.mp_cache`) prices a
*single node's* encoder/decoder caches analytically.  A sharded fleet has
a second, bigger cache problem: the hot (user-partitioned) embedding rows
a node does **not** own must cross the cluster fabric on every batch —
PR 2 priced every one of those gathers as a cold fetch.  This module puts
a cache in front of that fabric: each :class:`~repro.serving.engine.
EngineCore` owns a :class:`NodeCache` holding the hottest rows of the
shard groups it keeps serving, so a node routed traffic for a group it
does not own gets cheaper at it with every batch.

The model, kept deliberately analytic (no per-row bookkeeping):

- The hot-row universe of each shard group is ``hot_rows`` ids under
  Zipf(``alpha``) popularity; a cache resident on the ``k`` hottest rows
  of a group serves ``zipf_popularity_cdf(hot_rows, alpha)[k]`` of that
  group's lookups (:func:`~repro.core.mp_cache.zipf_popularity_cdf` —
  the same curve the single-node :class:`~repro.core.mp_cache.
  EncoderCache` residency analysis uses).
- Entries are keyed per **representation path label** per **shard
  group**: different representations materialize different embedding
  vectors, so a runtime representation switch makes the outgoing path's
  entries garbage (see :meth:`NodeCache.rewarm`).
- Hit/miss splits are **carry-exact**: each lookup of ``n`` rows splits
  into ``hits + misses == n`` integers deterministically, with the
  fractional expectation carried to the next lookup — over a run the
  split converges to the analytic rate and the counters sum exactly,
  which is what lets the cluster benchmark pin every fill byte.
- ``policy="lru"`` demand-fills: missed rows are fetched over the fabric
  (the fill is priced by the caller) and admitted, growing residency
  toward the group's hot head — the standard approximation that LRU
  under power-law traffic converges to top-k residency.  When the cache
  is full, the least-recently-used (label, group) set is evicted first.
  ``policy="static"`` is the paper's profiled-residency variant: the
  resident set is provisioned up front (:meth:`NodeCache.warm`) and
  misses never mutate it.

Capacity is sized in bytes off :func:`~repro.core.mp_cache.
row_entry_bytes`, so ``--cache-mb`` means the same row count as the
single-node tier.  All accounting lands in one
:class:`~repro.serving.metrics.CacheStats` per node; the cluster merges
them into :attr:`~repro.serving.cluster.ClusterResult.cache`.

See docs/caching.md for the guided tour and
``benchmarks/test_cluster_cache.py`` for the headline result (cache-
affinity routing beats shard-locality routing on Zipf-skewed traffic).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mp_cache import row_entry_bytes, zipf_popularity_cdf
from repro.serving.metrics import CacheStats

CACHE_POLICIES = ("lru", "static")


@dataclass(frozen=True)
class CacheConfig:
    """Sizing and policy of the per-node cache tier (one per cluster).

    ``capacity_bytes`` bounds each node's cache; ``embedding_dim`` fixes
    the row payload (``dim x 4`` bytes on the wire) and the per-entry
    budget (payload + key); ``alpha`` shapes the per-group popularity
    curve; ``policy`` picks demand-fill (``"lru"``) or provisioned
    residency (``"static"``).
    """

    capacity_bytes: int
    embedding_dim: int
    alpha: float = 1.05
    policy: str = "lru"

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if self.embedding_dim < 1:
            raise ValueError("embedding_dim must be positive")
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        if self.policy not in CACHE_POLICIES:
            raise ValueError(
                f"policy must be one of {CACHE_POLICIES}, got {self.policy!r}"
            )

    @property
    def row_bytes(self) -> int:
        """Wire payload of one embedding row (what fills/warms transfer)."""
        return self.embedding_dim * 4

    @property
    def entry_bytes(self) -> int:
        """Resident footprint of one row (payload + key)."""
        return row_entry_bytes(self.embedding_dim)

    @property
    def capacity_entries(self) -> int:
        """How many rows the byte budget holds."""
        return self.capacity_bytes // self.entry_bytes

    def build(self, n_groups: int, hot_rows: int) -> "NodeCache":
        """One node's cache over ``n_groups`` shard groups whose hot-row
        universes hold ``hot_rows`` ids each."""
        return NodeCache(self, n_groups, hot_rows)


class _LabelState:
    """Residency of one representation path's rows, per shard group."""

    __slots__ = ("resident", "carry", "last_used")

    def __init__(self, n_groups: int) -> None:
        self.resident = [0] * n_groups
        self.carry = [0.0] * n_groups
        self.last_used = [0] * n_groups


class NodeCache:
    """One node's hot-row cache: per-(path label, shard group) residency.

    All mutation goes through :meth:`lookup` (demand fill), :meth:`warm`
    (provisioning), :meth:`rewarm` (post-switch re-fetch), :meth:`receive`
    (drain donation), and :meth:`rekey` (membership epoch change);
    :meth:`preview` prices a lookup without touching state, which is how
    the cluster keeps shed-policy re-pricing from double-counting.
    """

    def __init__(self, config: CacheConfig, n_groups: int, hot_rows: int) -> None:
        if n_groups < 1:
            raise ValueError("n_groups must be positive")
        if hot_rows < 1:
            raise ValueError("hot_rows must be positive")
        self.config = config
        self.n_groups = n_groups
        self.hot_rows = hot_rows
        self._cdf = _cdf_for(hot_rows, config.alpha)
        self._labels: dict[str, _LabelState] = {}
        self._total = 0
        self._clock = 0
        self.stats = CacheStats()

    # ---- read side -------------------------------------------------------

    @property
    def resident_entries(self) -> int:
        """Rows currently resident across all labels and groups."""
        return self._total

    def hit_rate(self, label: str, group: int) -> float:
        """Analytic hit probability of one (path, group) residency."""
        state = self._labels.get(label)
        if state is None:
            return 0.0
        return float(self._cdf[min(state.resident[group], self.hot_rows)])

    def affinity(self, group: int) -> float:
        """The best hit rate any resident path offers for ``group`` —
        what a cache-aware router scores candidate nodes by."""
        if not self._labels:
            return 0.0
        return max(
            float(self._cdf[min(state.resident[group], self.hot_rows)])
            for state in self._labels.values()
        )

    def preview(self, label: str, group: int, n_rows: int) -> tuple[int, int]:
        """The ``(hits, misses)`` split :meth:`lookup` would commit for
        this lookup, without mutating any state (pricing-only)."""
        splits, _ = self.preview_batch([(label, group, n_rows)])
        return splits[0]

    # ---- the lookup path -------------------------------------------------

    def preview_batch(
        self, items: list[tuple[str, int, int]]
    ) -> tuple[list[tuple[int, int]], dict]:
        """Price a batch of ``(label, group, n_rows)`` lookups without
        mutating anything: the carry-exact splits are computed
        *sequentially* (each item sees the residency and carry growth
        the ones before it produced, exactly as the commit will apply
        them), tracked in an overlay.  Returns ``(splits, overlay)``;
        hand both to :meth:`commit_batch` and the committed counters
        equal the priced ones by construction — which is what keeps the
        charged service time and the recorded stats in lockstep even
        when the shed policy re-prices a batch."""
        overlay: dict[tuple[str, int], tuple[int, float]] = {}
        splits = []
        lru = self.config.policy == "lru"
        for label, group, n_rows in items:
            if n_rows <= 0:
                splits.append((0, 0))
                continue
            key = (label, group)
            if key in overlay:
                resident, carry = overlay[key]
            else:
                state = self._labels.get(label)
                resident = state.resident[group] if state else 0
                carry = state.carry[group] if state else 0.0
            rate = float(self._cdf[min(resident, self.hot_rows)])
            expected = n_rows * rate + carry
            hits = min(n_rows, int(expected))
            # The fractional remainder rides to the next lookup, so the
            # integer split tracks the analytic rate exactly over a run.
            carry = min(expected - hits, 1.0 - 1e-12)
            misses = n_rows - hits
            if lru and misses:
                resident = min(self.hot_rows, resident + misses)
            overlay[key] = (resident, carry)
            splits.append((hits, misses))
        return splits, overlay

    def commit_batch(
        self,
        items: list[tuple[str, int, int]],
        splits: list[tuple[int, int]],
        overlay: dict,
    ) -> None:
        """Apply a previewed batch: fold the exact previewed splits into
        the counters, install the overlay's residency/carry, bump
        recency, and evict down to capacity (eviction only shapes
        *future* batches — this one was priced and is recorded as
        previewed)."""
        row_bytes = self.config.row_bytes
        for (label, group, n_rows), (hits, misses) in zip(items, splits):
            if n_rows <= 0:
                continue
            state = self._labels.get(label)
            if state is None:
                state = self._labels[label] = _LabelState(self.n_groups)
            self._clock += 1
            state.last_used[group] = self._clock
            self.stats.lookups += n_rows
            self.stats.hits += hits
            self.stats.misses += misses
            self.stats.hit_bytes += hits * row_bytes
            self.stats.fill_bytes += misses * row_bytes
        for (label, group), (resident, carry) in overlay.items():
            state = self._labels.get(label)
            if state is None:
                state = self._labels[label] = _LabelState(self.n_groups)
            grown = resident - state.resident[group]
            if grown > 0:
                state.resident[group] = resident
                self._total += grown
            state.carry[group] = carry
        self._evict_to_capacity()

    def lookup(self, label: str, group: int, n_rows: int) -> tuple[int, int]:
        """Offer ``n_rows`` hot-row gathers for one (path, group): split
        them carry-exactly into hits and misses, update the counters, and
        (under LRU) admit the missed rows."""
        items = [(label, group, n_rows)]
        splits, overlay = self.preview_batch(items)
        self.commit_batch(items, splits, overlay)
        return splits[0]

    def _evict_to_capacity(self) -> None:
        capacity = self.config.capacity_entries
        while self._total > capacity:
            # Least-recently-used (label, group) residency goes first;
            # the set just filled carries the newest clock, so it is
            # only trimmed when nothing older remains.
            _, lbl, g = min(
                (state.last_used[g], lbl, g)
                for lbl, state in self._labels.items()
                for g in range(self.n_groups)
                if state.resident[g] > 0
            )
            state = self._labels[lbl]
            drop = min(state.resident[g], self._total - capacity)
            state.resident[g] -= drop
            self._total -= drop
            self.stats.invalidated_entries += drop

    # ---- provisioning / lifecycle ----------------------------------------

    def warm(self, label: str, groups: list[int] | None = None) -> int:
        """Provision top-row residency for ``groups`` (an even capacity
        share each, fit-static style): the join warm and the static
        policy's preload.  Returns the bytes transferred."""
        groups = list(range(self.n_groups)) if groups is None else groups
        if not groups:
            return 0
        state = self._labels.get(label)
        if state is None:
            state = self._labels[label] = _LabelState(self.n_groups)
        quota = min(self.config.capacity_entries // len(groups), self.hot_rows)
        warmed = 0
        for group in groups:
            free = self.config.capacity_entries - self._total
            grown = min(max(0, quota - state.resident[group]), free)
            if grown:
                state.resident[group] += grown
                self._total += grown
                warmed += grown
            self._clock += 1
            state.last_used[group] = self._clock
        warmed_bytes = warmed * self.config.row_bytes
        self.stats.warm_bytes += warmed_bytes
        return warmed_bytes

    def predict_warm(
        self, label: str, groups: list[int]
    ) -> tuple[int, float]:
        """What :meth:`warm` *would* provision, without mutating anything:
        ``(bytes, affinity_gain)``, where affinity_gain is the mean
        hit-rate increase across ``groups``.  The control plane prices its
        re-warm candidate from this preview — the fabric window from the
        bytes, predicted miss relief from the gain — and only commits
        the mutation when the candidate wins arbitration."""
        if not groups:
            return 0, 0.0
        state = self._labels.get(label)
        quota = min(self.config.capacity_entries // len(groups), self.hot_rows)
        total = self._total
        warmed = 0
        gain = 0.0
        for group in groups:
            resident = state.resident[group] if state else 0
            free = self.config.capacity_entries - total
            grown = min(max(0, quota - resident), free)
            total += grown
            warmed += grown
            gain += float(
                self._cdf[min(resident + grown, self.hot_rows)]
                - self._cdf[min(resident, self.hot_rows)]
            )
        return warmed * self.config.row_bytes, gain / len(groups)

    def rewarm(self, old_label: str, new_label: str) -> int:
        """A representation switch retired ``old_label``: its entries are
        stale (they hold the old representation's vectors) and the same
        hot rows must be re-fetched for ``new_label``.  Returns the bytes
        that re-fetch moves — the caller prices them as a Fig-15-style
        blocking window on the device timeline."""
        state = self._labels.pop(old_label, None)
        if state is None:
            return 0
        stale = sum(state.resident)
        self._total -= stale
        self.stats.invalidations += 1
        self.stats.invalidated_entries += stale
        if stale == 0:
            return 0
        target = self._labels.get(new_label)
        if target is None:
            target = self._labels[new_label] = _LabelState(self.n_groups)
        refetched = 0
        for group in range(self.n_groups):
            free = self.config.capacity_entries - self._total
            grown = min(
                max(0, state.resident[group] - target.resident[group]), free
            )
            if grown:
                target.resident[group] += grown
                self._total += grown
                refetched += grown
            self._clock += 1
            target.last_used[group] = self._clock
        rewarm_bytes = refetched * self.config.row_bytes
        self.stats.rewarm_bytes += rewarm_bytes
        return rewarm_bytes

    def donate(self) -> int:
        """A draining node hands off: return the resident row count and
        empty the cache (the node is leaving the fleet)."""
        donated = self._total
        for state in self._labels.values():
            state.resident = [0] * self.n_groups
            state.carry = [0.0] * self.n_groups
        self._total = 0
        return donated

    def receive(self, label: str, entries: int, groups: list[int]) -> int:
        """Absorb a draining peer's donated hot set into ``groups`` (an
        even spread), capped by free capacity — donation must never evict
        rows this node earned from its own traffic.  Returns the bytes
        actually absorbed."""
        if entries <= 0 or not groups:
            return 0
        state = self._labels.get(label)
        if state is None:
            state = self._labels[label] = _LabelState(self.n_groups)
        share = max(1, entries // len(groups))
        received = 0
        for group in groups:
            free = self.config.capacity_entries - self._total
            grown = min(
                share, max(0, self.hot_rows - state.resident[group]),
                free, entries - received,
            )
            if grown:
                state.resident[group] += grown
                self._total += grown
                received += grown
            self._clock += 1
            state.last_used[group] = self._clock
        received_bytes = received * self.config.row_bytes
        self.stats.donated_bytes += received_bytes
        return received_bytes

    def rekey(self, n_groups: int, hot_rows: int) -> int:
        """A membership epoch change re-sharded the tables: the shard-
        group space this cache is keyed by no longer exists, so all
        entries are dropped and the group arrays resize.  Returns the
        number of invalidated entries."""
        if n_groups < 1:
            raise ValueError("n_groups must be positive")
        if hot_rows < 1:
            raise ValueError("hot_rows must be positive")
        dropped = self._total
        self.n_groups = n_groups
        self.hot_rows = hot_rows
        self._cdf = _cdf_for(hot_rows, self.config.alpha)
        self._labels = {}
        self._total = 0
        self.stats.invalidations += 1
        self.stats.invalidated_entries += dropped
        return dropped


# Popularity curves depend only on (universe size, alpha); share them
# across nodes, runs, and epochs — at production table sizes each curve
# is megabytes of float64.
_CDF_CACHE: dict[tuple[int, float], np.ndarray] = {}


def _cdf_for(hot_rows: int, alpha: float) -> np.ndarray:
    key = (hot_rows, alpha)
    cdf = _CDF_CACHE.get(key)
    if cdf is None:
        cdf = _CDF_CACHE[key] = zipf_popularity_cdf(hot_rows, alpha)
    return cdf
