"""Admission / load-shedding policies for the serving engine.

Overloaded recommendation frontends shed work rather than answer late — a
response that misses the page-render deadline has zero value (Section 5.4's
SLA framing). The engine consults one :class:`ShedPolicy` per query at
dispatch time, after the batch has been routed to a path, so the policy sees
both the projected queue wait and the projected service time.

Policies are deliberately stateless value objects so a single instance can
be shared across simulators and scenarios.

``"none"``
    Serve everything; late answers still count toward raw throughput.
``"drop-late"``
    Shed a query whose *queue wait alone* already exceeds its SLA target —
    the standard production guard: by the time a server frees up the
    response is already worthless.
``"deadline-aware"``
    Shed a query whose projected completion (wait + service) would miss its
    SLA target scaled by ``slack``. Strictly more aggressive than
    ``drop-late``; it also refuses work that would *start* on time but
    finish late, freeing capacity for queries that can still make their
    deadline.
"""

from __future__ import annotations

from dataclasses import dataclass


class ShedPolicy:
    """Decide, per query, whether to admit or shed at dispatch time."""

    name = "policy"

    def admit(self, wait_s: float, service_s: float, sla_s: float) -> bool:
        """Return ``True`` to serve the query, ``False`` to shed it.

        ``wait_s``: time from the query's arrival to its projected start
        (batching delay + queue wait on the routed device).
        ``service_s``: projected service time of the batch carrying it.
        ``sla_s``: the query's SLA latency target (per-tenant aware).
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


@dataclass(frozen=True, repr=False)
class NoShed(ShedPolicy):
    """Serve every query regardless of backlog."""

    name = "none"

    def admit(self, wait_s: float, service_s: float, sla_s: float) -> bool:
        """Admit unconditionally."""
        return True


@dataclass(frozen=True, repr=False)
class DropLate(ShedPolicy):
    """Shed when the queue wait alone already exceeds the SLA target."""

    name = "drop-late"

    def admit(self, wait_s: float, service_s: float, sla_s: float) -> bool:
        """Admit while the queue wait alone still fits the SLA."""
        return wait_s <= sla_s


@dataclass(frozen=True)
class DeadlineAware(ShedPolicy):
    """Shed when the projected completion would miss ``slack * sla``.

    ``slack`` > 1 tolerates marginal misses (shed only clear losses);
    ``slack`` < 1 sheds pre-emptively to keep headroom.
    """

    name = "deadline-aware"
    slack: float = 1.0

    def __post_init__(self) -> None:
        if self.slack <= 0:
            raise ValueError("slack must be positive")

    def admit(self, wait_s: float, service_s: float, sla_s: float) -> bool:
        """Admit while the projected completion fits ``slack * sla``."""
        return wait_s + service_s <= self.slack * sla_s


_BUILTIN = {
    "none": NoShed,
    "drop-late": DropLate,
    "deadline-aware": DeadlineAware,
}

POLICY_NAMES = tuple(_BUILTIN)


def make_policy(spec: str | ShedPolicy | None) -> ShedPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if spec is None:
        return NoShed()
    if isinstance(spec, ShedPolicy):
        return spec
    try:
        return _BUILTIN[spec]()
    except KeyError:
        raise ValueError(
            f"shed_policy must be one of {sorted(_BUILTIN)} or a ShedPolicy, "
            f"got {spec!r}"
        ) from None
