"""WAN link pricing for geo-distributed serving (the region tier).

A :class:`~repro.hardware.topology.LinkSpec` knows *time* — propagation
latency plus serialization at the path's bandwidth.  Inter-region traffic
additionally costs *money/energy per byte*: metered egress on leased or
cloud backbone capacity.  :class:`WanLink` pairs the two, expressing the
per-byte price in the same Joule-equivalent unit the PR-6 cost-based
control plane uses, so a region simulator can fold WAN spend directly
into the fleet's total cost alongside device energy and idle burn.

The calibration is deliberately coarse but ordered: metro dark fiber is
cheap and fast, transcontinental backbone mid-priced, intercontinental
submarine capacity slow and expensive.  What the experiments need is the
*ratio* between compute-energy savings and WAN spend, not cloud-invoice
precision.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.topology import (
    LinkSpec,
    WAN_INTERCONT,
    WAN_METRO,
    WAN_TRANSCON,
)

# Payload one spilled/re-homed query drags across the WAN: the request
# features going out plus the prediction coming back, dominated by the
# dense-feature tensor.  Flat per query — sized payloads would only
# scale every identity in the accounting tests by the same factor.
QUERY_WAN_BYTES = 4096


@dataclass(frozen=True)
class WanLink:
    """A priced WAN path between two regions.

    Wraps a WAN-class :class:`LinkSpec` (time model) with a per-byte
    Joule-equivalent price (cost model).  Frozen so region simulators can
    share one instance across routers, caches, and results.
    """

    spec: LinkSpec
    cost_per_byte_j: float  # J-eq per byte crossing this link

    def __post_init__(self) -> None:
        if self.cost_per_byte_j < 0:
            raise ValueError("cost_per_byte_j must be non-negative")

    @property
    def name(self) -> str:
        """The underlying link class name (``wan-metro`` etc.)."""
        return self.spec.name

    @property
    def latency_s(self) -> float:
        """One-way propagation latency of the link."""
        return self.spec.latency_s

    def one_way_s(self, nbytes: float) -> float:
        """One-way time for a message of ``nbytes`` (latency + transfer)."""
        return self.spec.transfer_time(nbytes)

    def rtt_s(self, nbytes: float) -> float:
        """Round-trip time: request of ``nbytes`` out, small reply back.

        The reply (a prediction vector) is latency-dominated, so the
        return leg is priced at pure propagation latency.
        """
        return self.one_way_s(nbytes) + self.spec.latency_s

    def cost_j(self, nbytes: float) -> float:
        """Joule-equivalent spend for ``nbytes`` crossing the link."""
        if nbytes <= 0:
            return 0.0
        return nbytes * self.cost_per_byte_j


# Priced instances of the topology module's WAN link classes.  The J-eq
# per-byte prices keep the metro/transcon/intercont ordering and sit in a
# range where caching hot rows region-locally (PR-5 tier) visibly pays:
# one 16-byte embedding row costs ~1e-5 J-eq to fetch intercontinentally,
# comparable to serving-energy scales in the single-node model.
WAN_METRO_LINK = WanLink(spec=WAN_METRO, cost_per_byte_j=5e-7)
WAN_TRANSCON_LINK = WanLink(spec=WAN_TRANSCON, cost_per_byte_j=1e-6)
WAN_INTERCONT_LINK = WanLink(spec=WAN_INTERCONT, cost_per_byte_j=2e-6)

WAN_LINKS = {
    link.name: link
    for link in (WAN_METRO_LINK, WAN_TRANSCON_LINK, WAN_INTERCONT_LINK)
}


def resolve_wan_link(link: str | WanLink) -> WanLink:
    """Accept a priced link instance or a WAN link-class name.

    Names resolve through :data:`WAN_LINKS`; unknown names raise with
    the valid choices listed (the CLI leans on this for its error text).
    """
    if isinstance(link, WanLink):
        return link
    resolved = WAN_LINKS.get(link)
    if resolved is None:
        choices = ", ".join(sorted(WAN_LINKS))
        raise ValueError(f"unknown WAN link {link!r}; choose one of {choices}")
    return resolved
