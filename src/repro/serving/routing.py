"""Cluster-level query routers: pick the node that serves each query.

A router sees the candidate nodes the cluster offers it — alive and not
backpressured — and returns exactly one of them.  All routers are
deterministic: given the same arrival sequence and node states they pick
the same nodes, and ties always break toward the lowest node id, so
cluster runs are reproducible and the tie-breaking is testable.

``"round-robin"``
    Cycle over nodes in id order, skipping dead/full ones.  The stateless
    frontend default: perfectly fair under uniform load, oblivious to
    queue depth and shard placement.
``"least-loaded"``
    Pick the node with the fewest queries in flight (admission queue +
    dispatched batches), breaking ties by earliest-free server and then
    node id — the power-of-all-choices load balancer.
``"locality"``
    Shard-locality-aware: route to a replica that holds the query's hot
    shard group locally (cheapest all-to-all exchange), choosing the
    least-loaded owner; fall back to least-loaded overall when no owner
    is available.  Requires the cluster's :class:`~repro.serving.cluster.
    ShardMap`.
``"cache-affinity"``
    Cache-aware cost routing for clusters running the MP-Cache tier
    (:mod:`repro.serving.cache`): score every candidate by its expected
    cost for *this* query — device queue delay plus the fabric time of
    the hot bytes the node would actually miss, ``(1 - affinity) x hot
    bytes / link bandwidth``, where affinity is shard locality (1.0 for
    an owner) or the node's cache residency for the query's group.  At a
    quiet fleet this reduces to locality routing (owners win at zero
    penalty); under a skewed hot spot it spills to the cache-warmest
    non-owners instead of piling onto the group's few owners — the
    behavior pinned in ``benchmarks/test_cluster_cache.py``.  Requires
    the cluster's :class:`~repro.serving.cluster.ShardMap` and
    :class:`~repro.hardware.topology.LinkSpec`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.serving.signals import miss_penalty_s

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cluster imports us)
    from repro.data.queries import Query
    from repro.hardware.topology import LinkSpec
    from repro.serving.cluster import ClusterNode, ShardMap

ROUTER_NAMES = ("round-robin", "least-loaded", "locality", "cache-affinity")


class Router:
    """Interface: map (query, time, candidate nodes) -> one node."""

    name = "router"

    def select_node(
        self, query: "Query", now: float, candidates: Sequence["ClusterNode"]
    ) -> "ClusterNode":
        """Pick exactly one of the offered (alive, non-full) nodes."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any routing state; the cluster calls this at the start of
        every run so repeated runs of one simulator stay deterministic."""

    def update_shard_map(self, shard_map: "ShardMap") -> None:
        """Membership changed (autoscaling rebuilt the shard map for the
        new epoch); placement-aware routers must re-key on the new map.
        Placement-oblivious routers ignore it."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _load_key(node: "ClusterNode", now: float) -> tuple:
    """Deterministic load ordering: queue depth, earliest-free, node id."""
    return (node.inflight_queries, node.earliest_free_delay(now), node.node_id)


class RoundRobinRouter(Router):
    """Cycle over nodes in id order, skipping unavailable ones."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def reset(self) -> None:
        """Rewind the cursor to node 0."""
        self._next = 0

    def select_node(
        self, query: "Query", now: float, candidates: Sequence["ClusterNode"]
    ) -> "ClusterNode":
        """The next candidate at or after the cursor, wrapping."""
        # Candidates arrive sorted by node id; serve the first candidate at
        # or after the cursor, wrapping — dead/full nodes are simply absent.
        chosen = min(
            candidates,
            key=lambda n: ((n.node_id < self._next), n.node_id),
        )
        self._next = chosen.node_id + 1
        return chosen


class LeastLoadedRouter(Router):
    """Fewest in-flight queries; ties to earliest-free, then lowest id."""

    name = "least-loaded"

    def select_node(
        self, query: "Query", now: float, candidates: Sequence["ClusterNode"]
    ) -> "ClusterNode":
        """The candidate with the smallest deterministic load key."""
        return min(candidates, key=lambda n: _load_key(n, now))


class ShardLocalityRouter(Router):
    """Prefer replicas owning the query's hot shard group.

    Serving on an owner keeps the hot fraction of the sample's embedding
    gather local, shrinking the per-batch all-to-all payload; among owners
    the least-loaded wins so locality never creates a hot spot by itself.
    """

    name = "locality"

    def __init__(self, shard_map: "ShardMap") -> None:
        self.shard_map = shard_map

    def update_shard_map(self, shard_map: "ShardMap") -> None:
        """Re-key locality decisions on the new epoch's ownership."""
        self.shard_map = shard_map

    def select_node(
        self, query: "Query", now: float, candidates: Sequence["ClusterNode"]
    ) -> "ClusterNode":
        """The least-loaded owner of the query's hot shard group
        (least-loaded of all candidates when no owner is offered)."""
        group = self.shard_map.group_of(query)
        owners = [
            n for n in candidates if n.node_id in self.shard_map.owners[group]
        ]
        return min(owners or candidates, key=lambda n: _load_key(n, now))


class CacheAffinityRouter(Router):
    """Route by expected per-query cost: queue delay + missed hot bytes.

    The miss penalty prices what routing *away* from affinity costs: the
    query's hot embedding bytes, scaled by how much of them the node
    would actually pull over the fabric (``1 - affinity``), at the link's
    bandwidth.  An owner's affinity is 1.0 (the shard is local); a
    non-owner's is its cache residency for the group
    (:meth:`~repro.serving.cache.NodeCache.affinity`).  Ties break by
    in-flight load, then lowest node id, as everywhere else.
    """

    name = "cache-affinity"

    def __init__(self, shard_map: "ShardMap", link: "LinkSpec") -> None:
        self.shard_map = shard_map
        self.link = link

    def update_shard_map(self, shard_map: "ShardMap") -> None:
        """Re-key ownership (and the hot-byte model) on the new epoch."""
        self.shard_map = shard_map

    def _affinity(self, node: "ClusterNode", group: int) -> float:
        if node.node_id in self.shard_map.owners[group]:
            return 1.0
        if node.cache is None:
            return 0.0
        return node.cache.affinity(group)

    def select_node(
        self, query: "Query", now: float, candidates: Sequence["ClusterNode"]
    ) -> "ClusterNode":
        """The candidate with the lowest expected cost for this query."""
        group = self.shard_map.group_of(query)
        hot_bytes = (
            query.size * self.shard_map.hot_fraction
            * self.shard_map.bytes_per_sample
        )

        def cost(node: "ClusterNode") -> tuple:
            # Queue delay + fabric miss penalty — the shared signal
            # vocabulary (repro.serving.signals), also what the control
            # plane's reroute predictions price.
            miss_s = miss_penalty_s(
                self._affinity(node, group), hot_bytes, self.link
            )
            return (
                node.earliest_free_delay(now) + miss_s,
                node.inflight_queries,
                node.node_id,
            )

        return min(candidates, key=cost)


def make_router(
    router: str | Router,
    shard_map: "ShardMap" = None,
    link: "LinkSpec" = None,
) -> Router:
    """Resolve a router name (or pass an instance through)."""
    if isinstance(router, Router):
        return router
    if router == "round-robin":
        return RoundRobinRouter()
    if router == "least-loaded":
        return LeastLoadedRouter()
    if router == "locality":
        if shard_map is None:
            raise ValueError("locality routing needs the cluster's ShardMap")
        return ShardLocalityRouter(shard_map)
    if router == "cache-affinity":
        if shard_map is None or link is None:
            raise ValueError(
                "cache-affinity routing needs the cluster's ShardMap and "
                "LinkSpec"
            )
        return CacheAffinityRouter(shard_map, link)
    raise ValueError(
        f"unknown router {router!r}; expected one of {ROUTER_NAMES}"
    )
