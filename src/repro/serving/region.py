"""Geo-distributed multi-region serving: clusters composed over WAN links.

The ROADMAP's node -> cluster -> planet ladder: PR 2 made one node a
serving kernel, PR 3-7 grew it into an elastic cluster on one fabric and
one diurnal clock.  This module adds the planet rung.  A
:class:`RegionSimulator` composes existing
:class:`~repro.serving.cluster.ClusterSimulator`s into named *regions*
joined by WAN-class links (tens of milliseconds of propagation, metered
per-byte cost — :mod:`repro.serving.wan`), and drives every region's
cores off ONE shared event loop, so cross-region interactions are
simulated exactly rather than stitched from independent runs.

Composition contract: each member cluster is built with a ``node_base``
offset placing its nodes in a global id space (region i's nodes follow
region i-1's), which makes the flat core list indexable by the kernel's
FLUSH/FINISH events while each region keeps its own shard map, router,
and fabric pricing.  Member clusters must be plain serving clusters —
the region tier owns failure injection, and per-cluster controllers
(switching/autoscale/autopilot) are not composed here.

Traffic model: every query has a *home* region (``region_of``, typically
from :func:`~repro.experiments.setup.follow_the_sun_scenario`, which
phase-offsets each region's diurnal curve so peaks chase the sun).  A
:class:`GeoRouter` decides per arrival whether the query stays home or
*spills* to a remote region:

- ``"pinned"`` never spills — the baseline every geo experiment is
  measured against.
- ``"spill"`` keeps the query home while the home region's projected
  queueing delay sits under ``spill_margin x SLA``; past that it picks
  the cheapest usable remote region (least projected wait, ties to the
  lowest region id) *iff* that region's wait plus the WAN round trip
  strictly beats waiting at home.

A spilled query physically crosses the WAN: its arrival at the remote
region is delayed by the link's one-way time over ``bytes_per_query``
(plus any cache-fill bytes riding along), and the response pays the
return propagation latency, which is added to the query's finish time
before it reaches the metric sinks.  Spill and fill bytes are metered
and priced (J-eq) through the link's ``cost_per_byte_j`` — the WAN bill
folds into the same total-cost figure the PR-6 control plane optimizes.

Cross-region replication and failover: ``region_replication >= 2``
declares that every region's user-partitioned shards also live with its
successor regions (the cluster tier's chained-replica rule, one level
up).  A scheduled region failure (``fail_region`` / ``fail_at``)
displaces every queued and in-flight query of that region at the
failure instant and re-injects them; with replication >= 2 they re-home
over the WAN to the cheapest surviving region (re-home bytes metered)
and *zero queries are lost*; with replication 1 the displaced queries —
and every later arrival homed there — are dropped, the cluster tier's
blunt no-replication lesson at planetary scale.

Region-local WAN caches (``region_cache_bytes > 0``): each region keeps
a :class:`~repro.serving.cache.NodeCache` of *other* regions' hot rows,
keyed by home region.  A spilled query's hot gather is looked up there;
misses become WAN fill bytes on that hop (and, under LRU, residency for
the next spill) — the MP-Cache tier re-priced at WAN scale, where the
miss path is milliseconds instead of microseconds.

Global SLA: the merged global result plus per-home-region metrics and a
cross-region tail (:class:`~repro.serving.metrics.StreamingMetrics` over
only the WAN-crossing queries), all folded by one fan-out sink.

A 1-region ``RegionSimulator`` reproduces ``ClusterSimulator``
record-for-record (no WAN, trivial geo-routing) — pinned in
``tests/unit/test_region.py`` and property-tested across routers x shed
policies x batch sizes in ``tests/property/test_prop_region_parity.py``.
See docs/regions.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.serving.cache import CacheConfig, NodeCache
from repro.serving.cluster import ClusterSimulator, _node_idle_w, _RunState
from repro.serving.engine import (
    ARRIVAL,
    CONTROL,
    FINISH,
    FLUSH,
    SWITCH,
    EventLoop,
    RecordSink,
    StreamingSink,
    drop_query,
)
from repro.serving.metrics import CacheStats, ServingResult, StreamingMetrics
from repro.serving.routing import make_router
from repro.serving.wan import QUERY_WAN_BYTES, WanLink, resolve_wan_link
from repro.serving.workload import ServingScenario

_INF = float("inf")


# ---- geo routing ---------------------------------------------------------


class GeoRouter:
    """Interface: pick the serving region for one arrival.

    ``waits`` holds every region's projected queueing delay (seconds;
    ``inf`` for failed or empty regions), ``rtt_s`` the WAN round trip a
    spill would add, ``sla_s`` the query's latency target.  The home
    region is guaranteed usable when this is called — dead-home
    re-homing is the simulator's job, not the router's.
    """

    name = "geo"

    def select_region(
        self, home: int, waits: list[float], rtt_s: float, sla_s: float
    ) -> int:
        """Return the region id that should serve this query."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear per-run state (stateless routers inherit the no-op)."""


class PinnedGeoRouter(GeoRouter):
    """Every query serves in its home region, whatever the queue says.

    The geo baseline: zero WAN spend, and the follow-the-sun peaks land
    undiluted on each region — exactly the violations spilling exists to
    shave.
    """

    name = "pinned"

    def select_region(
        self, home: int, waits: list[float], rtt_s: float, sla_s: float
    ) -> int:
        """Always the home region."""
        return home


class SpillGeoRouter(GeoRouter):
    """Spill to the cheapest remote region once home projects SLA risk.

    Stays home while the home region's projected wait is within
    ``spill_margin`` of the SLA (margin 0.5 spills when half the budget
    is already queued away — the WAN round trip needs the other half).
    A remote region is only chosen when its projected wait plus the WAN
    round trip *strictly* beats waiting at home, so a fleet-wide peak
    (everyone loaded) degrades to pinned behavior instead of paying WAN
    latency for nothing.  Ties break to the lowest region id —
    deterministic, like the cluster tier's node tie-break.
    """

    name = "spill"

    def __init__(self, spill_margin: float = 0.5) -> None:
        if spill_margin < 0:
            raise ValueError("spill_margin must be non-negative")
        self.spill_margin = spill_margin

    def select_region(
        self, home: int, waits: list[float], rtt_s: float, sla_s: float
    ) -> int:
        """Home while safe; else the least-loaded profitable remote."""
        home_wait = waits[home]
        if home_wait <= self.spill_margin * sla_s:
            return home
        best, best_eta = home, home_wait
        for region, wait in enumerate(waits):
            if region == home or wait == _INF:
                continue
            eta = wait + rtt_s
            if eta < best_eta:  # strict: ascending scan keeps lowest id
                best, best_eta = region, eta
        return best


GEO_ROUTER_NAMES = ("pinned", "spill")


def make_geo_router(
    router: str | GeoRouter, spill_margin: float = 0.5
) -> GeoRouter:
    """Resolve a geo-router name (or pass an instance through)."""
    if isinstance(router, GeoRouter):
        return router
    if router == "pinned":
        return PinnedGeoRouter()
    if router == "spill":
        return SpillGeoRouter(spill_margin)
    raise ValueError(
        f"unknown geo router {router!r}; choose one of {GEO_ROUTER_NAMES}"
    )


# ---- results -------------------------------------------------------------


@dataclass
class RegionResult:
    """A geo run: global merged metrics plus WAN and per-region accounting."""

    result: ServingResult | StreamingMetrics
    regions: list[str]
    router: str
    wan: WanLink
    region_replication: int
    # Per-HOME-region metrics (where the traffic came from) and the
    # cross-region tail (only queries that crossed the WAN).
    per_region: list[StreamingMetrics] = field(default_factory=list)
    cross_region: StreamingMetrics | None = None
    # Per-SERVING-region counters (where the work landed).
    per_region_served: list[int] = field(default_factory=list)
    per_region_dropped: list[int] = field(default_factory=list)
    spills: int = 0  # live-home queries served remotely
    rehomed: int = 0  # dead-home queries re-homed over the WAN
    spill_bytes: int = 0
    rehome_bytes: int = 0
    wan_fill_bytes: int = 0  # cache-miss hot rows pulled across the WAN
    rerouted: int = 0  # displaced queries re-accepted after failover
    lost: int = 0  # displaced queries unservable (replication too low)
    edge_drops: int = 0  # shed at a region edge (backpressure / dead home)
    failed_regions: list[int] = field(default_factory=list)
    wasted_energy_j: float = 0.0
    node_seconds: float = 0.0
    idle_energy_j: float = 0.0
    # Member clusters' node-cache tier, fleet-merged (None when off).
    cache: CacheStats | None = None
    # The WAN tier: region-local caches of remote regions' hot rows.
    region_cache: CacheStats | None = None

    @property
    def wan_bytes(self) -> int:
        """Every byte that crossed a WAN link: spills, re-homes, fills."""
        return self.spill_bytes + self.rehome_bytes + self.wan_fill_bytes

    @property
    def wan_cost_j(self) -> float:
        """J-eq spend on metered WAN traffic (the geo cost-model fold)."""
        return self.wan.cost_j(self.wan_bytes)

    @property
    def total_cost_j(self) -> float:
        """Fleet J-eq: device energy + idle burn + waste + WAN spend."""
        return (
            self.result.total_energy_j
            + self.idle_energy_j
            + self.wasted_energy_j
            + self.wan_cost_j
        )

    def summary(self) -> dict[str, float]:
        """Headline global metrics extended with the geo vocabulary."""
        out = dict(self.result.summary())
        out.update(
            spills=self.spills,
            rehomed=self.rehomed,
            lost=self.lost,
            edge_drops=self.edge_drops,
            wan_mb=self.wan_bytes / 1e6,
            wan_cost_j=self.wan_cost_j,
            total_cost_j=self.total_cost_j,
        )
        for name, metrics in zip(self.regions, self.per_region):
            out[f"viol_{name}"] = metrics.violation_rate
        return out


# ---- the fan-out sink ----------------------------------------------------


class _GeoSink:
    """One sink fanned out three ways: global, per-home-region, cross-WAN.

    ``crossed[index]`` holds the return-leg WAN latency of a query
    currently served away from home; it is folded into the query's
    finish time here — once, exactly when the outcome is observed — so
    every downstream percentile sees the true client-experienced
    latency.  When nothing in a batch crossed the WAN the whole batch is
    delegated to the wrapped sinks' ``observe_all``, preserving the
    streaming sink's vectorized fold (and 1-region bit-exactness).
    """

    def __init__(self, inner, region_of, region_sinks, cross_sink) -> None:
        self.inner = inner
        self.result = inner.result
        self._region_of = region_of
        self._region_sinks = region_sinks
        self._cross = cross_sink
        self.crossed: dict[int, float] = {}

    def observe(self, index, size, arrival_s, start_s, finish_s, path_label,
                accuracy, energy_j, dropped, sla_s) -> None:
        """Fold one outcome into every tier, WAN return leg included."""
        extra = self.crossed.pop(index, None)
        if extra is not None:
            finish_s += extra
        args = (index, size, arrival_s, start_s, finish_s, path_label,
                accuracy, energy_j, dropped, sla_s)
        self.inner.observe(*args)
        self._region_sinks[self._region_of[index]].observe(*args)
        if extra is not None:
            self._cross.observe(*args)

    def observe_all(self, outcomes) -> None:
        """Fold one batch, vectorized whenever no member crossed the WAN."""
        if self.crossed and any(o[0] in self.crossed for o in outcomes):
            for outcome in outcomes:
                self.observe(*outcome)
            return
        self.inner.observe_all(outcomes)
        if len(self._region_sinks) == 1:
            self._region_sinks[0].observe_all(outcomes)
            return
        by_home: dict[int, list] = {}
        for outcome in outcomes:
            by_home.setdefault(
                int(self._region_of[outcome[0]]), []
            ).append(outcome)
        for home, grouped in by_home.items():
            self._region_sinks[home].observe_all(grouped)


# ---- the simulator -------------------------------------------------------


class RegionSimulator:
    """Named regions of :class:`ClusterSimulator`s joined by a WAN link.

    ``regions`` is an ordered list of ``(name, cluster)`` pairs whose
    ``node_base`` offsets must tile a contiguous global node id space
    (build them with :func:`~repro.experiments.setup.build_regions`).
    See the module docstring for the traffic, spill, replication, and
    failover semantics; every knob is a constructor argument so one
    simulator instance is one reproducible experiment configuration.
    """

    def __init__(
        self,
        regions: list[tuple[str, ClusterSimulator]],
        wan: str | WanLink = "wan-metro",
        geo_router: str | GeoRouter = "spill",
        spill_margin: float = 0.5,
        region_replication: int = 1,
        fail_region: int | None = None,
        fail_at: float | None = None,
        bytes_per_query: int = QUERY_WAN_BYTES,
        region_cache_bytes: int = 0,
    ) -> None:
        if not regions:
            raise ValueError("need at least one region")
        names = [name for name, _ in regions]
        if len(set(names)) != len(names) or any(not n for n in names):
            raise ValueError("region names must be unique and non-empty")
        base = 0
        for name, cluster in regions:
            if cluster.node_base != base:
                raise ValueError(
                    f"region {name!r} has node_base {cluster.node_base}, "
                    f"expected {base}; build member clusters with "
                    "contiguous node_base offsets (see build_regions)"
                )
            if (
                cluster.switch_controller is not None
                or cluster.autoscale is not None
                or cluster.controlplane is not None
                or cluster.fail_at is not None
            ):
                raise ValueError(
                    f"region {name!r}: member clusters must be plain "
                    "serving clusters — failure injection and controllers "
                    "belong to the region tier"
                )
            base += len(cluster.schedulers)
        self.n_nodes = base
        if not 1 <= region_replication <= len(regions):
            raise ValueError("region_replication must be in [1, n_regions]")
        if (fail_region is None) != (fail_at is None):
            raise ValueError("fail_region and fail_at go together")
        if fail_region is not None and not 0 <= fail_region < len(regions):
            raise ValueError("fail_region out of range")
        if fail_at is not None and fail_at < 0:
            raise ValueError("fail_at must be non-negative")
        if bytes_per_query <= 0:
            raise ValueError("bytes_per_query must be positive")
        if region_cache_bytes < 0:
            raise ValueError("region_cache_bytes must be non-negative")
        self.regions = list(regions)
        self.wan = resolve_wan_link(wan)
        self.geo_router = make_geo_router(geo_router, spill_margin)
        self.region_replication = region_replication
        self.fail_region = fail_region
        self.fail_at = fail_at
        self.bytes_per_query = bytes_per_query
        self.region_cache_bytes = region_cache_bytes
        self.scheduler_name = regions[0][1].scheduler_name

    @property
    def n_regions(self) -> int:
        """How many regions this simulator composes."""
        return len(self.regions)

    @property
    def region_names(self) -> list[str]:
        """The region names, in global node id order."""
        return [name for name, _ in self.regions]

    # ---- public entry points ---------------------------------------------

    def run(self, scenario: ServingScenario, region_of) -> RegionResult:
        """Simulate with exact record-backed global metrics.

        ``region_of[i]`` is query ``i``'s home region id (the parallel
        array :func:`~repro.data.queries.merge_query_arrays` returns).
        """
        sink = RecordSink(self.scheduler_name, scenario.sla_s)
        return self._simulate(scenario, sink, region_of)

    def run_streaming(self, scenario: ServingScenario, region_of) -> RegionResult:
        """Simulate with constant-memory merged global metrics."""
        sink = StreamingSink(self.scheduler_name, scenario.sla_s)
        return self._simulate(scenario, sink, region_of)

    # ---- internals -------------------------------------------------------

    def _build_region_caches(self) -> list[NodeCache] | None:
        """One WAN cache per region, keyed by *home* region group."""
        if not self.region_cache_bytes:
            return None
        dim = self.regions[0][1].plan.dim
        hot_rows = max(
            1, max(c._cache_hot_total for _, c in self.regions)
        )
        config = CacheConfig(
            capacity_bytes=self.region_cache_bytes,
            embedding_dim=dim,
            policy="lru",
        )
        return [
            config.build(self.n_regions, hot_rows)
            for _ in range(self.n_regions)
        ]

    def _simulate(self, scenario, inner_sink, region_of) -> RegionResult:
        n_queries = len(scenario.queries)
        if len(region_of) != n_queries:
            raise ValueError(
                f"region_of has {len(region_of)} entries for "
                f"{n_queries} queries"
            )
        n = self.n_regions
        if any(not 0 <= int(r) < n for r in region_of):
            raise ValueError("region_of entries must be region ids")

        # Per-region run state: each region keeps its own shard map,
        # fabric pricing, and intra-region router; the cores live in one
        # flat global list the shared kernel loop indexes by node id.
        rstates: list[_RunState] = []
        region_cores: list[list] = []
        cores: list = []
        for name, cluster in self.regions:
            state = _RunState(
                cluster.shard_map,
                list(range(cluster.node_base,
                           cluster.node_base + len(cluster.schedulers))),
            )
            state.router = make_router(
                cluster._router_spec,
                shard_map=cluster.shard_map,
                link=cluster.link,
            )
            state.router.reset()
            rcores = cluster._make_cores(state)
            state.active = list(rcores)
            rstates.append(state)
            region_cores.append(rcores)
            cores.extend(rcores)

        region_sinks = [
            StreamingSink(self.scheduler_name, scenario.sla_s)
            for _ in range(n)
        ]
        cross_sink = StreamingSink(self.scheduler_name, scenario.sla_s)
        sink = _GeoSink(inner_sink, region_of, region_sinks, cross_sink)
        wan_caches = self._build_region_caches()
        # Fill bytes with the WAN cache off: the whole hot gather rides
        # the hop every time (nothing region-local to hit).
        row_bytes = self.regions[0][1].plan.dim * 4

        res = RegionResult(
            result=inner_sink.result,
            regions=self.region_names,
            router=self.geo_router.name,
            wan=self.wan,
            region_replication=self.region_replication,
            per_region=[s.result for s in region_sinks],
            cross_region=cross_sink.result,
            per_region_served=[0] * n,
            per_region_dropped=[0] * n,
        )
        failed: set[int] = set()
        reinjected: set[int] = set()
        assigned: dict[int, int] = {}  # index -> region it is in flight to
        activated_at: dict[int, float] = {c.node_id: 0.0 for c in cores}
        active_seconds: dict[int, float] = {}
        rtt_est = self.wan.rtt_s(self.bytes_per_query)
        self.geo_router.reset()

        def wait_of(region: int, now: float) -> float:
            if region in failed:
                return _INF
            best = _INF
            for core in rstates[region].active:
                if core.alive and not core.full:
                    delay = core.earliest_free_delay(now)
                    if delay < best:
                        best = delay
            return best

        def wan_fill(target: int, home: int, query) -> int:
            # The spilled query's hot gather at the serving region: hits
            # are already region-local, misses ride this hop's WAN
            # transfer (and, under LRU, stay for the next spill).
            rows = self.regions[home][1]._hot_rows_per_sample * query.size
            if rows <= 0:
                return 0
            if wan_caches is None:
                return rows * row_bytes
            _, misses = wan_caches[target].lookup("wan", home, rows)
            return misses * wan_caches[target].config.row_bytes

        def forward(query, target: int, now: float, loop, fill: int) -> None:
            delay = self.wan.one_way_s(self.bytes_per_query + fill)
            sink.crossed[query.index] = self.wan.latency_s
            assigned[query.index] = target
            loop.push(now + delay, ARRIVAL, query)

        def local_admit(query, now, region: int):
            state = rstates[region]
            candidates = [
                c for c in state.active if c.alive and not c.full
            ]
            if not candidates:
                reinjected.discard(query.index)
                drop_query(sink, query, scenario.sla_for(query))
                res.edge_drops += 1
                return None
            core = state.router.select_node(query, now, candidates)
            if query.index in reinjected:
                reinjected.discard(query.index)
                res.rerouted += 1
            return core

        def decide(query, now, loop):
            home = int(region_of[query.index])
            if home in failed:
                usable = [
                    r for r in range(n)
                    if r not in failed and wait_of(r, now) < _INF
                ]
                if self.region_replication >= 2 and usable:
                    target = min(usable, key=lambda r: (wait_of(r, now), r))
                    fill = wan_fill(target, home, query)
                    res.rehomed += 1
                    res.rehome_bytes += self.bytes_per_query
                    res.wan_fill_bytes += fill
                    forward(query, target, now, loop, fill)
                    return None
                # No surviving replica holds the home shards: the query
                # is unservable.  Displaced work is *lost*; a fresh
                # arrival to a dead unreplicated region is an edge drop.
                if query.index in reinjected:
                    reinjected.discard(query.index)
                    res.lost += 1
                else:
                    res.edge_drops += 1
                drop_query(sink, query, scenario.sla_for(query))
                return None
            waits = [wait_of(r, now) for r in range(n)]
            target = self.geo_router.select_region(
                home, waits, rtt_est, scenario.sla_for(query)
            )
            if target != home:
                fill = wan_fill(target, home, query)
                res.spills += 1
                res.spill_bytes += self.bytes_per_query
                res.wan_fill_bytes += fill
                forward(query, target, now, loop, fill)
                return None
            return local_admit(query, now, home)

        def admit(query, now, loop):
            target = assigned.pop(query.index, None)
            if target is None:
                return decide(query, now, loop)
            if target in failed:
                # Died while the query was on the wire: decide again
                # from home (possibly another hop, metered again).
                return decide(query, now, loop)
            return local_admit(query, now, target)

        def on_region_fail(region: int, now: float, loop) -> None:
            if region in failed:
                return
            failed.add(region)
            res.failed_regions.append(region)
            state = rstates[region]
            for core in list(state.active):
                displaced, wasted = core.displace()
                res.wasted_energy_j += wasted
                for query in displaced:
                    reinjected.add(query.index)
                    loop.push(now, ARRIVAL, query)
                node = core.node_id
                active_seconds[node] = active_seconds.get(node, 0.0) + (
                    now - activated_at.pop(node)
                )
            state.active = []

        def on_control(kind, payload, now, loop):
            tag, region = payload
            if tag == "region-fail":
                on_region_fail(region, now, loop)

        extra_events: list[tuple] = []
        if self.fail_at is not None:
            extra_events.append(
                (self.fail_at, CONTROL, ("region-fail", self.fail_region))
            )

        # The kernel loop, inlined from engine.run_kernel: geo admission
        # needs the loop handle (spills re-push delayed arrivals), which
        # the engine's admit contract does not pass.
        loop = EventLoop()
        loop.seed_arrivals(scenario.queries)
        for time_s, kind, payload in extra_events:
            loop.push(time_s, kind, payload)
        end_s = 0.0
        while loop:
            end_s, seq, kind, payload = loop.pop()
            if kind == ARRIVAL:
                core = admit(payload, end_s, loop)
                if core is not None:
                    core.enqueue(payload, end_s, loop, scenario, sink)
            elif kind == FLUSH:
                node_id, generation = payload
                cores[node_id].on_flush(
                    generation, end_s, loop, scenario, sink
                )
            elif kind == FINISH:
                cores[payload].on_finish(seq, sink)
            elif kind == SWITCH:
                node_id, device = payload
                cores[node_id].on_switch_complete(device, end_s)
            else:
                on_control(kind, payload, end_s, loop)

        for node, since in activated_at.items():
            active_seconds[node] = active_seconds.get(node, 0.0) + (
                end_s - since
            )
        for node, seconds in active_seconds.items():
            res.node_seconds += seconds
            res.idle_energy_j += seconds * _node_idle_w(cores[node])
        if any(c.cache_config is not None for _, c in self.regions):
            res.cache = CacheStats()
        for region, rcores in enumerate(region_cores):
            for core in rcores:
                res.per_region_served[region] += core.served
                res.per_region_dropped[region] += core.shed
                if res.cache is not None and core.cache is not None:
                    res.cache.merge(core.cache.stats)
        if wan_caches is not None:
            res.region_cache = CacheStats()
            for cache in wan_caches:
                res.region_cache.merge(cache.stats)
        return res
