"""Shared control signals and hysteresis: one vocabulary for every controller.

PRs 3-5 stacked four control mechanisms — representation switching
(:mod:`repro.core.switching`), elastic autoscaling
(:mod:`repro.serving.autoscale`), the cache tier's warm/donate flows
(:mod:`repro.serving.cache`), and cache-affinity routing
(:mod:`repro.serving.routing`) — and each grew its own copy of the same
three ideas:

- **pressure** — a queueing delay measured against the SLA
  (:func:`queue_pressure`), computed identically by the switch
  controller (the batch's oldest-member wait), the autoscaler (the
  worst member wait fleet-wide), and the unified control plane;
- **window utilization** — the resident path's service time for the
  current batch mix against the batching window
  (:func:`window_utilization`), the *leading* overload indicator that
  fires before a backlog commits to the timeline;
- **thrash control** — patience streaks that must agree on one target,
  busy windows while an action is in flight, and cooldowns after it
  completes (:class:`Hysteresis`).

This module is where those live now, in exactly one place, so the
signals cannot drift between controllers.  The standalone controllers
keep their exact PR-3/PR-4 decision rules on top of these primitives;
the :class:`~repro.serving.controlplane.ControlPlane` arbitrates all
four mechanisms against one cost function using the same primitives.

:class:`ExclusionWindow` is the cross-mechanism interlock: a committed
scale operation suppresses switch evaluation until its warm window
closes (and vice versa), which is what stops a switch and a scale-down
from racing at a marginal operating point — the thrash reproduced by
``tests/unit/test_controlplane.py``.
"""

from __future__ import annotations


def queue_pressure(wait_s: float, sla_s: float) -> float:
    """Queueing delay as a fraction of the SLA — the shared pressure signal.

    Every controller in the repo reads load the same way: ``wait_s`` is a
    queueing delay (the batch's oldest-member wait for the switch
    controller and the control plane, the worst member wait for the
    autoscaler, the device-queue component alone for calm checks) and the
    SLA is the yardstick.  >= 1 means the delay alone already blows the
    target.
    """
    return wait_s / sla_s


def window_utilization(
    path, batch_size: int, timeout_s: float, floor_guard: bool = False
) -> float:
    """Service time of the current batch mix against the batching window.

    ``>= 1`` means the device cannot drain what one flush window admits —
    the leading surge indicator that fires before a backlog commits to
    the timeline.  Returns 0.0 when batching is disabled (no window, no
    signal).

    ``floor_guard=True`` additionally returns 0.0 when the path cannot
    serve even a singleton within the window (``latency(1) >=
    timeout_s``): such a path would read as saturated forever, so the
    wait/queue pressures are the only trustworthy signals there.  The
    autoscaler and the control plane guard; the switch controller does
    not — a floor-saturated residency is exactly what it must switch
    away from.
    """
    if timeout_s <= 0:
        return 0.0
    if floor_guard and path.latency(1) >= timeout_s:
        return 0.0
    return path.latency(max(1, batch_size)) / timeout_s


def miss_penalty_s(affinity: float, hot_bytes: float, link) -> float:
    """Fabric seconds a node pays for the hot bytes it would miss.

    The cache-affinity router's per-query cost term, shared with the
    control plane's reroute/rewarm predictions: the query's hot embedding
    bytes, scaled by how much of them the node would actually pull over
    the fabric (``1 - affinity``), at the link's bandwidth.  Affinity is
    1.0 for a shard owner, else the node's cache residency for the
    query's group.
    """
    return (1.0 - affinity) * (hot_bytes / link.bandwidth)


class Hysteresis:
    """Keyed thrash control: patience streaks, busy windows, cooldowns.

    One instance serves one controller.  Keys scope the state — the
    switch controller keys by device name, the autoscaler and the
    control plane by the fleet — and each key carries:

    - a **streak**: consecutive :meth:`vote` calls agreeing on one
      target (targets compare by ``==``; pass ``id(obj)`` to get
      identity semantics for objects whose ``==`` is unusable, e.g.
      :class:`~repro.core.paths.ExecutionPath` with its profile arrays).
      A vote for a different target restarts the count at 1 — mixed
      verdicts never accumulate — while repeated votes at a bound keep
      accumulating, so evidence blocked by a membership bound is not
      thrown away.
    - a **busy** flag (:meth:`begin`): while an action is in flight the
      key is :meth:`blocked` and never re-evaluated.
    - a **cooldown** (:meth:`complete`): after the action's window
      closes the key stays blocked for ``cooldown_s`` regardless of
      pressure.
    """

    __slots__ = ("_streaks", "_busy", "_cooldown_until")

    def __init__(self) -> None:
        self._streaks: dict = {}
        self._busy: set = set()
        self._cooldown_until: dict = {}

    def reset(self) -> None:
        """Clear all state (run start)."""
        self._streaks.clear()
        self._busy.clear()
        self._cooldown_until.clear()

    def blocked(self, key, now: float) -> bool:
        """True while ``key`` has an action in flight or is cooling down."""
        return key in self._busy or now < self._cooldown_until.get(key, 0.0)

    def vote(self, key, target) -> int:
        """One dispatch's verdict for ``key``: returns the streak length.

        The caller compares the count against its own patience and
        decides; bounds stay the caller's concern so a blocked streak
        keeps accumulating (see the autoscaler's bound semantics).
        """
        prev, count = self._streaks.get(key, (None, 0))
        count = count + 1 if prev == target else 1
        self._streaks[key] = (target, count)
        return count

    def clear(self, key) -> None:
        """Inconclusive evidence: the streak starts over."""
        self._streaks.pop(key, None)

    def begin(self, key) -> None:
        """An action committed: mark busy and drop the spent streak."""
        self._streaks.pop(key, None)
        self._busy.add(key)

    def complete(self, key, now: float, cooldown_s: float) -> None:
        """The action's window closed: release busy, arm the cooldown."""
        self._busy.discard(key)
        self._cooldown_until[key] = now + cooldown_s


class ExclusionWindow:
    """Cross-mechanism interlock: at most one control domain acts at a time.

    Each domain (``"switch"``, ``"scale"``) :meth:`acquire`\\ s the window
    up to the instant its committed action stops perturbing the fleet —
    a join's warm completion, a switch's ready time, a drain's cooldown.
    While any *other* domain holds the window, :meth:`blocked` suppresses
    evaluation entirely: the queue spike a scale operation induces must
    not read as switch evidence, and vice versa.  A domain never blocks
    itself — its own serialization is its controller's busy state.
    """

    __slots__ = ("_until",)

    def __init__(self) -> None:
        self._until: dict[str, float] = {}

    def acquire(self, domain: str, until: float) -> None:
        """Hold the window for ``domain`` until ``until`` (monotone)."""
        if until > self._until.get(domain, 0.0):
            self._until[domain] = until

    def blocked(self, domain: str, now: float) -> bool:
        """True while another domain's committed action is still open."""
        return any(
            d != domain and now < until for d, until in self._until.items()
        )
