"""Discrete-event serving loop.

Queries arrive on their timestamps; the scheduler routes each to an
execution path; the chosen path's device serves queries FIFO across its
``concurrency`` parallel servers (replicated boards/pods expose one server
per replica; paths sharing a device share its servers — e.g. table-CPU and
DHE-CPU both occupy the CPU). Per-query latency = queue wait + service
time; energy comes from the device's power model over the service interval.
"""

from __future__ import annotations

from repro.core.online import Scheduler
from repro.hardware.energy import average_power
from repro.hardware.latency import estimate_breakdown
from repro.serving.metrics import QueryRecord, ServingResult
from repro.serving.workload import ServingScenario


class ServingSimulator:
    """Runs a scenario through a scheduler.

    ``shed_policy``: ``"none"`` serves everything (late answers still
    count toward raw throughput); ``"drop-late"`` sheds a query whose
    queue wait alone already exceeds the SLA target — the standard
    load-shedding guard in production serving, where a late response has
    zero value to the requesting page.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        track_energy: bool = True,
        shed_policy: str = "none",
    ) -> None:
        if shed_policy not in ("none", "drop-late"):
            raise ValueError("shed_policy must be 'none' or 'drop-late'")
        self.scheduler = scheduler
        self.track_energy = track_energy
        self.shed_policy = shed_policy

    def run(self, scenario: ServingScenario) -> ServingResult:
        free_at: dict[str, list[float]] = {
            path.device.name: [0.0] * path.device.concurrency
            for path in self.scheduler.paths
        }
        result = ServingResult(
            scheduler_name=self.scheduler.name, sla_s=scenario.sla_s
        )
        for query in sorted(scenario.queries, key=lambda q: q.arrival_s):
            decision = self.scheduler.select(
                query.size, scenario.sla_s, query.arrival_s, free_at
            )
            path = decision.path
            servers = free_at[path.device.name]
            server = min(range(len(servers)), key=servers.__getitem__)
            if (
                self.shed_policy == "drop-late"
                and servers[server] - query.arrival_s > scenario.sla_s
            ):
                result.records.append(
                    QueryRecord(
                        index=query.index,
                        size=query.size,
                        arrival_s=query.arrival_s,
                        start_s=query.arrival_s,
                        finish_s=query.arrival_s,
                        path_label="DROPPED",
                        accuracy=0.0,
                        dropped=True,
                    )
                )
                continue
            start = max(query.arrival_s, servers[server])
            finish = start + decision.service_s
            servers[server] = finish
            energy = 0.0
            if self.track_energy:
                energy = self._query_energy(path, query.size, decision.service_s)
            result.records.append(
                QueryRecord(
                    index=query.index,
                    size=query.size,
                    arrival_s=query.arrival_s,
                    start_s=start,
                    finish_s=finish,
                    path_label=path.label,
                    accuracy=path.accuracy,
                    energy_j=energy,
                )
            )
        return result

    def _query_energy(self, path, query_size: int, service_s: float) -> float:
        model = path.extra.get("model")
        if model is None:
            # Utilization-agnostic fallback.
            return path.device.tdp_w * 0.5 * service_s
        breakdown = estimate_breakdown(
            path.rep,
            model,
            path.device,
            query_size,
            encoder_hit_rate=path.encoder_hit_rate,
            decoder_speedup=path.decoder_speedup,
        )
        return average_power(path.device, breakdown) * service_s
