"""Single-node serving: a thin façade over the shared serving kernel.

The engine mechanics — heap-ordered event loop, generation-stamped flush
timers, per-device micro-batching, shed policies, energy apportionment —
live in :mod:`repro.serving.engine`; this module owns only what is
specific to a one-node deployment: construct one
:class:`~repro.serving.engine.EngineCore`, admit every arrival to it, and
choose a metrics sink. The cluster (:mod:`repro.serving.cluster`) drives
N of the same cores behind a router; neither simulator carries an event
loop of its own.

With batching disabled (``max_batch_size=1``, the default) the kernel
reduces event-for-event to the seed per-query loop — kept verbatim below
as :class:`ReferenceSimulator`, the parity oracle — and reproduces its
records exactly; the equivalence is pinned by unit tests, a property test
over random scenarios (``tests/property/test_prop_engine_parity.py``),
and ``benchmarks/test_serving_engine_scale.py``. With batching enabled
the kernel routes once per coalesced batch instead of once per query,
which is what lets 100k+-query scenarios simulate several times faster
than the reference loop.

Metrics sinks are pluggable: :meth:`ServingSimulator.run` materializes
every :class:`~repro.serving.metrics.QueryRecord` (exact percentiles,
figure reproductions); :meth:`ServingSimulator.run_streaming` folds
outcomes into constant-memory :class:`~repro.serving.metrics.
StreamingMetrics` so million-query runs never hold per-query state.

Runtime representation switching: pass a :class:`~repro.core.switching.
SwitchController` and the kernel lets it swap a device's resident
representation between batches, charging the load/teardown window as a
blocking event on the device timeline (see docs/switching.md).
"""

from __future__ import annotations

from repro.core.online import Scheduler
from repro.serving.engine import (
    EngineCore,
    RecordSink,
    StreamingSink,
    apportion_energy,  # noqa: F401  (canonical home: repro.serving.engine)
    query_energy,
    run_kernel,
    shed_batch,  # noqa: F401  (canonical home: repro.serving.engine)
)
from repro.serving.fastpath import run_fastpath
from repro.serving.metrics import QueryRecord, ServingResult, StreamingMetrics
from repro.serving.policies import ShedPolicy, make_policy
from repro.serving.workload import ServingScenario


class ServingSimulator:
    """Event-driven engine: runs a scenario through a scheduler.

    ``shed_policy``: a policy name (``"none"``, ``"drop-late"``,
    ``"deadline-aware"``) or a :class:`~repro.serving.policies.ShedPolicy`
    instance.

    ``max_batch_size`` / ``batch_timeout_s``: micro-batching knobs. A batch
    dispatches when it holds ``max_batch_size`` queries or when its oldest
    query has waited ``batch_timeout_s`` seconds, whichever comes first.
    ``max_batch_size=1`` disables coalescing and reproduces the reference
    per-query loop exactly; a timeout of 0 with a larger batch size
    coalesces only same-timestamp arrivals.

    ``switch_controller``: optional :class:`~repro.core.switching.
    SwitchController` enabling runtime representation switching; its
    per-run state is reset at every ``run``/``run_streaming`` call, and
    its ``events`` record the switches of the latest run.

    ``engine``: ``"event"`` (default) drives the shared event kernel;
    ``"fast"`` drives the vectorized array fast path
    (:mod:`repro.serving.fastpath`) — record-for-record equal to the
    kernel, an order of magnitude faster at scale, but single-node only
    and incompatible with runtime switching (rejected here).
    """

    def __init__(
        self,
        scheduler: Scheduler,
        track_energy: bool = True,
        shed_policy: str | ShedPolicy = "none",
        max_batch_size: int = 1,
        batch_timeout_s: float = 0.0,
        switch_controller=None,
        engine: str = "event",
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if batch_timeout_s < 0:
            raise ValueError("batch_timeout_s must be non-negative")
        if engine not in ("event", "fast"):
            raise ValueError("engine must be 'event' or 'fast'")
        if engine == "fast" and switch_controller is not None:
            raise ValueError(
                "engine='fast' does not support runtime switching; "
                "use the event engine for switch_controller runs"
            )
        self.scheduler = scheduler
        self.track_energy = track_energy
        self.policy = make_policy(shed_policy)
        self.max_batch_size = max_batch_size
        self.batch_timeout_s = batch_timeout_s
        self.switch_controller = switch_controller
        self.engine = engine

    @property
    def shed_policy(self) -> str:
        """Name of the active shed policy (back-compat accessor)."""
        return self.policy.name

    # ---- public entry points ---------------------------------------------

    def run(self, scenario: ServingScenario) -> ServingResult:
        """Simulate and return the exact, record-backed result."""
        sink = RecordSink(self.scheduler.name, scenario.sla_s)
        self._simulate(scenario, sink)
        return sink.result

    def run_streaming(self, scenario: ServingScenario) -> StreamingMetrics:
        """Simulate without materializing per-query records (O(1) memory)."""
        sink = StreamingSink(self.scheduler.name, scenario.sla_s)
        self._simulate(scenario, sink)
        return sink.result

    # ---- kernel façade ---------------------------------------------------

    def _simulate(self, scenario: ServingScenario, sink) -> None:
        if self.engine == "fast":
            run_fastpath(
                self.scheduler, scenario, sink,
                policy=self.policy,
                max_batch_size=self.max_batch_size,
                batch_timeout_s=self.batch_timeout_s,
                track_energy=self.track_energy,
            )
            return
        core = EngineCore(
            self.scheduler,
            self.policy,
            max_batch_size=self.max_batch_size,
            batch_timeout_s=self.batch_timeout_s,
            track_energy=self.track_energy,
            switcher=self.switch_controller,
        )
        run_kernel([core], scenario, sink, admit=lambda query, now: core)


class ReferenceSimulator:
    """The seed per-query FIFO loop, retained verbatim as the parity oracle.

    Serves as the ground truth the event kernel must reproduce with
    batching disabled, and as the wall-clock baseline the batching engine
    is benchmarked against. Only ``"none"`` and ``"drop-late"`` shedding
    exist here, as in the seed.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        track_energy: bool = True,
        shed_policy: str = "none",
    ) -> None:
        if shed_policy not in ("none", "drop-late"):
            raise ValueError("shed_policy must be 'none' or 'drop-late'")
        self.scheduler = scheduler
        self.track_energy = track_energy
        self.shed_policy = shed_policy

    def run(self, scenario: ServingScenario) -> ServingResult:
        """Serve the scenario query by query, strictly in arrival order."""
        free_at: dict[str, list[float]] = {
            path.device.name: [0.0] * path.device.concurrency
            for path in self.scheduler.paths
        }
        result = ServingResult(
            scheduler_name=self.scheduler.name, sla_s=scenario.sla_s
        )
        for query in sorted(scenario.queries, key=lambda q: q.arrival_s):
            decision = self.scheduler.select(
                query.size, scenario.sla_s, query.arrival_s, free_at
            )
            path = decision.path
            servers = free_at[path.device.name]
            server = min(range(len(servers)), key=servers.__getitem__)
            if (
                self.shed_policy == "drop-late"
                and servers[server] - query.arrival_s > scenario.sla_s
            ):
                result.records.append(
                    QueryRecord(
                        index=query.index,
                        size=query.size,
                        arrival_s=query.arrival_s,
                        start_s=query.arrival_s,
                        finish_s=query.arrival_s,
                        path_label="DROPPED",
                        accuracy=0.0,
                        dropped=True,
                    )
                )
                continue
            start = max(query.arrival_s, servers[server])
            finish = start + decision.service_s
            servers[server] = finish
            energy = 0.0
            if self.track_energy:
                energy = query_energy(path, query.size, decision.service_s)
            result.records.append(
                QueryRecord(
                    index=query.index,
                    size=query.size,
                    arrival_s=query.arrival_s,
                    start_s=start,
                    finish_s=finish,
                    path_label=path.label,
                    accuracy=path.accuracy,
                    energy_j=energy,
                )
            )
        return result
