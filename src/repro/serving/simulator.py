"""Event-driven serving engine with per-device micro-batching.

The engine advances a heap-ordered event queue of query **arrivals** and
batch **flush timers**. Arriving queries coalesce in an admission queue;
a batch dispatches when it reaches ``max_batch_size`` or when its oldest
query has waited ``batch_timeout_s`` (flush timer). Each dispatched batch
is routed *once* via the scheduler's :meth:`~repro.core.online.Scheduler.
select_batch` hook, placed on the routed path's earliest-free server, and
served in a single device pass — ``path.latency(total_samples)`` amortizes
the per-pass base latency across every query in the batch, exactly how
production recommendation frontends (DeepRecSys-style) batch candidate
ranking. Queries routed to different paths/devices therefore interleave:
each device serves its own stream of batches FIFO across its
``concurrency`` parallel servers.

Admission is pluggable (:mod:`repro.serving.policies`): at dispatch time
every query in the batch is offered to the shed policy with its projected
queue wait and the batch's projected service time; shed queries are
recorded as dropped and excluded from the batch before the service time is
finalized.

With batching disabled (``max_batch_size=1``, the default) the engine
reduces event-for-event to the seed per-query loop — kept verbatim below
as :class:`ReferenceSimulator` — and reproduces its records exactly; the
equivalence is pinned by tests. With batching enabled the engine routes
once per batch instead of once per query, which is what lets 100k+-query
scenarios simulate several times faster than the reference loop.

Metrics sinks are also pluggable: :meth:`ServingSimulator.run` materializes
every :class:`QueryRecord` (exact percentiles, figure reproductions);
:meth:`ServingSimulator.run_streaming` folds outcomes into constant-memory
:class:`~repro.serving.metrics.StreamingMetrics` so million-query runs
never hold per-query state.
"""

from __future__ import annotations

import heapq

from repro.core.online import Scheduler
from repro.hardware.energy import average_power
from repro.hardware.latency import estimate_breakdown
from repro.serving.metrics import QueryRecord, ServingResult, StreamingMetrics
from repro.serving.policies import NoShed, ShedPolicy, make_policy
from repro.serving.workload import ServingScenario

_ARRIVAL = 0
_FLUSH = 1


def shed_batch(
    policy: ShedPolicy, batch, projected_start: float, service_s: float,
    scenario, on_shed,
) -> list:
    """Split a routed batch into admitted queries, reporting shed ones.

    Shared by the single-node engine and the cluster so the admission
    semantics — wait measured from arrival to projected start, the batch's
    projected service time, per-tenant SLA resolution — live in one place.
    ``on_shed(query, sla_s)`` is called for every query the policy refuses.
    """
    if isinstance(policy, NoShed):
        return batch
    admitted = []
    for query in batch:
        sla_q = scenario.sla_for(query)
        wait = projected_start - query.arrival_s
        if policy.admit(wait, service_s, sla_q):
            admitted.append(query)
        else:
            on_shed(query, sla_q)
    return admitted


def apportion_energy(
    batch_energy: float, query_size: int, admitted_count: int,
    admitted_size: int,
) -> float:
    """One query's energy share of a served batch, by sample count.

    A singleton batch keeps the exact per-query value (bit-for-bit with
    the reference loop); larger batches split by each query's share of
    the batch's samples.
    """
    if admitted_count == 1:
        return batch_energy
    return batch_energy * query_size / admitted_size


def query_energy(path, query_size: int, service_s: float) -> float:
    """Energy of one device pass (utilization-aware when a model is attached)."""
    model = path.extra.get("model")
    if model is None:
        # Utilization-agnostic fallback.
        return path.device.tdp_w * 0.5 * service_s
    breakdown = estimate_breakdown(
        path.rep,
        model,
        path.device,
        query_size,
        encoder_hit_rate=path.encoder_hit_rate,
        decoder_speedup=path.decoder_speedup,
    )
    return average_power(path.device, breakdown) * service_s


class _RecordSink:
    """Materialize every outcome as a QueryRecord (exact metrics)."""

    def __init__(self, scheduler_name: str, sla_s: float) -> None:
        self.result = ServingResult(scheduler_name=scheduler_name, sla_s=sla_s)

    def observe(self, index, size, arrival_s, start_s, finish_s, path_label,
                accuracy, energy_j, dropped, sla_s) -> None:
        self.result.records.append(
            QueryRecord(
                index=index, size=size, arrival_s=arrival_s, start_s=start_s,
                finish_s=finish_s, path_label=path_label, accuracy=accuracy,
                energy_j=energy_j, dropped=dropped,
                # Only tenant-specific targets are stamped on the record, so
                # single-SLA runs stay identical to the reference loop's.
                sla_s=None if sla_s == self.result.sla_s else sla_s,
            )
        )


class _StreamingSink:
    """Fold outcomes into constant-memory running aggregates."""

    def __init__(self, scheduler_name: str, sla_s: float) -> None:
        self.result = StreamingMetrics(scheduler_name=scheduler_name, sla_s=sla_s)

    def observe(self, index, size, arrival_s, start_s, finish_s, path_label,
                accuracy, energy_j, dropped, sla_s) -> None:
        self.result.observe(
            size, arrival_s, start_s, finish_s, path_label, accuracy,
            energy_j=energy_j, dropped=dropped, sla_s=sla_s,
        )


class ServingSimulator:
    """Event-driven engine: runs a scenario through a scheduler.

    ``shed_policy``: a policy name (``"none"``, ``"drop-late"``,
    ``"deadline-aware"``) or a :class:`~repro.serving.policies.ShedPolicy`
    instance.

    ``max_batch_size`` / ``batch_timeout_s``: micro-batching knobs. A batch
    dispatches when it holds ``max_batch_size`` queries or when its oldest
    query has waited ``batch_timeout_s`` seconds, whichever comes first.
    ``max_batch_size=1`` disables coalescing and reproduces the reference
    per-query loop exactly; a timeout of 0 with a larger batch size
    coalesces only same-timestamp arrivals.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        track_energy: bool = True,
        shed_policy: str | ShedPolicy = "none",
        max_batch_size: int = 1,
        batch_timeout_s: float = 0.0,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if batch_timeout_s < 0:
            raise ValueError("batch_timeout_s must be non-negative")
        self.scheduler = scheduler
        self.track_energy = track_energy
        self.policy = make_policy(shed_policy)
        self.max_batch_size = max_batch_size
        self.batch_timeout_s = batch_timeout_s

    @property
    def shed_policy(self) -> str:
        """Name of the active shed policy (back-compat accessor)."""
        return self.policy.name

    # ---- public entry points ---------------------------------------------

    def run(self, scenario: ServingScenario) -> ServingResult:
        """Simulate and return the exact, record-backed result."""
        sink = _RecordSink(self.scheduler.name, scenario.sla_s)
        self._simulate(scenario, sink)
        return sink.result

    def run_streaming(self, scenario: ServingScenario) -> StreamingMetrics:
        """Simulate without materializing per-query records (O(1) memory)."""
        sink = _StreamingSink(self.scheduler.name, scenario.sla_s)
        self._simulate(scenario, sink)
        return sink.result

    # ---- event loop ---------------------------------------------------------

    def _simulate(self, scenario: ServingScenario, sink) -> None:
        free_at: dict[str, list[float]] = {
            path.device.name: [0.0] * path.device.concurrency
            for path in self.scheduler.paths
        }
        arrivals = sorted(scenario.queries, key=lambda q: q.arrival_s)
        # (time, seq, kind, payload): arrivals get seq 0..n-1 in sorted
        # order so simultaneous arrivals keep submission order and pop
        # before any flush timer armed at the same instant.
        events: list[tuple] = [
            (q.arrival_s, i, _ARRIVAL, q) for i, q in enumerate(arrivals)
        ]
        heapq.heapify(events)
        seq = len(events)
        pending: list = []
        generation = 0  # bumped per dispatch; stale flush timers are skipped
        armed = False

        while events:
            time, _, kind, payload = heapq.heappop(events)
            if kind == _ARRIVAL:
                pending.append(payload)
                if len(pending) >= self.max_batch_size:
                    self._dispatch(pending, time, free_at, scenario, sink)
                    pending = []
                    generation += 1
                    armed = False
                elif not armed:
                    heapq.heappush(
                        events,
                        (time + self.batch_timeout_s, seq, _FLUSH, generation),
                    )
                    seq += 1
                    armed = True
            elif payload == generation and pending:
                self._dispatch(pending, time, free_at, scenario, sink)
                pending = []
                generation += 1
                armed = False

    def _dispatch(self, batch, now: float, free_at, scenario, sink) -> None:
        total_size = sum(q.size for q in batch)
        decision = self.scheduler.select_batch(
            total_size, scenario.sla_s, now, free_at
        )
        path = decision.path
        servers = free_at[path.device.name]
        server = min(range(len(servers)), key=servers.__getitem__)
        projected_start = max(now, servers[server])

        def on_shed(query, sla_q):
            sink.observe(
                query.index, query.size, query.arrival_s, query.arrival_s,
                query.arrival_s, "DROPPED", 0.0, 0.0, True, sla_q,
            )

        admitted = shed_batch(
            self.policy, batch, projected_start, decision.service_s,
            scenario, on_shed,
        )
        if not admitted:
            return

        admitted_size = total_size
        service_s = decision.service_s
        if len(admitted) != len(batch):
            admitted_size = sum(q.size for q in admitted)
            service_s = path.latency(admitted_size)
        start = projected_start
        finish = start + service_s
        servers[server] = finish
        self.scheduler.on_batch_dispatched(path, admitted_size, start, finish)

        batch_energy = 0.0
        if self.track_energy:
            batch_energy = query_energy(path, admitted_size, service_s)
        for query in admitted:
            energy = apportion_energy(
                batch_energy, query.size, len(admitted), admitted_size
            )
            sink.observe(
                query.index, query.size, query.arrival_s, start, finish,
                path.label, path.accuracy, energy, False,
                scenario.sla_for(query),
            )


class ReferenceSimulator:
    """The seed per-query FIFO loop, retained verbatim.

    Serves as the ground truth the event engine must reproduce with
    batching disabled, and as the wall-clock baseline the batching engine
    is benchmarked against. Only ``"none"`` and ``"drop-late"`` shedding
    exist here, as in the seed.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        track_energy: bool = True,
        shed_policy: str = "none",
    ) -> None:
        if shed_policy not in ("none", "drop-late"):
            raise ValueError("shed_policy must be 'none' or 'drop-late'")
        self.scheduler = scheduler
        self.track_energy = track_energy
        self.shed_policy = shed_policy

    def run(self, scenario: ServingScenario) -> ServingResult:
        free_at: dict[str, list[float]] = {
            path.device.name: [0.0] * path.device.concurrency
            for path in self.scheduler.paths
        }
        result = ServingResult(
            scheduler_name=self.scheduler.name, sla_s=scenario.sla_s
        )
        for query in sorted(scenario.queries, key=lambda q: q.arrival_s):
            decision = self.scheduler.select(
                query.size, scenario.sla_s, query.arrival_s, free_at
            )
            path = decision.path
            servers = free_at[path.device.name]
            server = min(range(len(servers)), key=servers.__getitem__)
            if (
                self.shed_policy == "drop-late"
                and servers[server] - query.arrival_s > scenario.sla_s
            ):
                result.records.append(
                    QueryRecord(
                        index=query.index,
                        size=query.size,
                        arrival_s=query.arrival_s,
                        start_s=query.arrival_s,
                        finish_s=query.arrival_s,
                        path_label="DROPPED",
                        accuracy=0.0,
                        dropped=True,
                    )
                )
                continue
            start = max(query.arrival_s, servers[server])
            finish = start + decision.service_s
            servers[server] = finish
            energy = 0.0
            if self.track_energy:
                energy = query_energy(path, query.size, decision.service_s)
            result.records.append(
                QueryRecord(
                    index=query.index,
                    size=query.size,
                    arrival_s=query.arrival_s,
                    start_s=start,
                    finish_s=finish,
                    path_label=path.label,
                    accuracy=path.accuracy,
                    energy_j=energy,
                )
            )
        return result
