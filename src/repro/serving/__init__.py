"""Event-driven query-serving simulation, single-node and clustered
(Sections 5.3-6.9).

One serving kernel (:mod:`repro.serving.engine`: :class:`EventLoop` +
:class:`Batcher` + :class:`EngineCore` over a :class:`~repro.serving.
devices.DeviceTimeline`) backs every engine in the repo.  Entry points
and the knobs they share:

- :class:`ServingSimulator` — a thin 1-node façade over the kernel.
  ``shed_policy`` (``"none"`` / ``"drop-late"`` / ``"deadline-aware"`` or
  a :class:`ShedPolicy`) governs admission at dispatch; ``max_batch_size``
  / ``batch_timeout_s`` govern micro-batch coalescing (1 / 0.0 reproduces
  the per-query reference loop).
- :class:`ClusterSimulator` — N kernel cores behind a :mod:`~repro.
  serving.routing` router, with shard replication, link-priced all-to-all
  exchange, backpressure (``max_queue``) and failover (``fail_at`` /
  ``fail_node``).
- Both accept a :class:`~repro.core.switching.SwitchController` for
  runtime representation switching (load/teardown charged on the device
  timelines — docs/switching.md).
- The cluster additionally accepts an :class:`~repro.serving.autoscale.
  AutoscaleController` for elastic fleets: membership grows and shrinks
  mid-run with live shard handoff (docs/autoscaling.md).
- Or a :class:`~repro.serving.controlplane.ControlPlane` — the unified
  SLO autopilot that arbitrates switching, scaling, cache re-warm, and
  re-routing against one cost function, one action per tick, with the
  full decision trace in :attr:`ClusterResult.control_decisions`
  (docs/controlplane.md).
- ``cache_bytes > 0`` turns on the cluster MP-Cache tier: every node
  runs a :class:`~repro.serving.cache.NodeCache` of hot embedding rows
  in front of the fabric, with hit/miss/fill accounting merged into
  :attr:`ClusterResult.cache` and a ``"cache-affinity"`` router that
  scores nodes by shard locality x cache residency (docs/caching.md).
- Both report through either exact record-backed :class:`ServingResult`
  (``run``) or constant-memory :class:`StreamingMetrics`
  (``run_streaming``); the two share one metric vocabulary.
- The single-node façade also hosts the **array fast path**
  (``ServingSimulator(engine="fast")`` / :func:`serve_arrays`): batch
  formation, shedding, pricing and metrics evaluated as numpy array
  passes over a :class:`~repro.data.queries.QueryArrays` stream —
  record-for-record equal to the event kernel, an order of magnitude
  faster at day scale (docs/serving.md).

See docs/serving.md, docs/cluster.md, and docs/switching.md for the
guided tour.
"""

from repro.serving.autoscale import (
    AutoscaleController,
    ScaleEvent,
    shard_slice_bytes,
)
from repro.serving.cache import CacheConfig, NodeCache
from repro.serving.controlplane import (
    ACTION_CLASSES,
    AutopilotOps,
    CandidateCost,
    ControlDecision,
    ControlPlane,
    format_decision,
)
from repro.serving.cluster import (
    ClusterNode,
    ClusterResult,
    ClusterSimulator,
    ShardMap,
)
from repro.serving.devices import DeviceTimeline
from repro.serving.engine import (
    Batcher,
    EngineCore,
    EventLoop,
    RecordSink,
    StreamingSink,
    run_kernel,
)
from repro.serving.fastpath import plan_batches, run_fastpath, serve_arrays
from repro.serving.metrics import (
    CacheStats,
    P2Quantile,
    QueryRecord,
    ReservoirSampler,
    ServingResult,
    StreamingMetrics,
)
from repro.serving.policies import (
    DeadlineAware,
    DropLate,
    NoShed,
    ShedPolicy,
    make_policy,
)
from repro.serving.routing import (
    CacheAffinityRouter,
    LeastLoadedRouter,
    Router,
    RoundRobinRouter,
    ShardLocalityRouter,
    make_router,
)
from repro.serving.simulator import ReferenceSimulator, ServingSimulator
from repro.serving.workload import ServingScenario, TenantSpec

__all__ = [
    "ACTION_CLASSES",
    "AutopilotOps",
    "AutoscaleController",
    "Batcher",
    "CacheAffinityRouter",
    "CacheConfig",
    "CacheStats",
    "CandidateCost",
    "ClusterNode",
    "ClusterResult",
    "ClusterSimulator",
    "ControlDecision",
    "ControlPlane",
    "DeadlineAware",
    "DeviceTimeline",
    "DropLate",
    "EngineCore",
    "EventLoop",
    "LeastLoadedRouter",
    "NoShed",
    "NodeCache",
    "P2Quantile",
    "QueryRecord",
    "RecordSink",
    "ReferenceSimulator",
    "ReservoirSampler",
    "Router",
    "RoundRobinRouter",
    "ScaleEvent",
    "ServingResult",
    "ServingScenario",
    "ServingSimulator",
    "ShardLocalityRouter",
    "ShardMap",
    "ShedPolicy",
    "StreamingMetrics",
    "StreamingSink",
    "TenantSpec",
    "format_decision",
    "make_policy",
    "make_router",
    "plan_batches",
    "run_fastpath",
    "run_kernel",
    "serve_arrays",
    "shard_slice_bytes",
]
