"""Discrete-event query-serving simulation (Sections 5.3-6.8)."""

from repro.serving.metrics import ServingResult, QueryRecord
from repro.serving.simulator import ServingSimulator
from repro.serving.workload import ServingScenario

__all__ = ["ServingResult", "QueryRecord", "ServingSimulator", "ServingScenario"]
