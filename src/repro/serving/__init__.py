"""Event-driven query-serving simulation, single-node and clustered
(Sections 5.3-6.9).

Entry points and the knobs they share:

- :class:`ServingSimulator` — one node.  ``shed_policy`` (``"none"`` /
  ``"drop-late"`` / ``"deadline-aware"`` or a :class:`ShedPolicy`) governs
  admission at dispatch; ``max_batch_size`` / ``batch_timeout_s`` govern
  micro-batch coalescing (1 / 0.0 reproduces the per-query reference loop).
- :class:`ClusterSimulator` — N nodes behind a :mod:`~repro.serving.routing`
  router, with shard replication, link-priced all-to-all exchange,
  backpressure (``max_queue``) and failover (``fail_at`` / ``fail_node``).
- Both report through either exact record-backed :class:`ServingResult`
  (``run``) or constant-memory :class:`StreamingMetrics`
  (``run_streaming``); the two share one metric vocabulary.

See docs/serving.md and docs/cluster.md for the guided tour.
"""

from repro.serving.cluster import (
    ClusterNode,
    ClusterResult,
    ClusterSimulator,
    ShardMap,
)
from repro.serving.metrics import (
    P2Quantile,
    QueryRecord,
    ReservoirSampler,
    ServingResult,
    StreamingMetrics,
)
from repro.serving.policies import (
    DeadlineAware,
    DropLate,
    NoShed,
    ShedPolicy,
    make_policy,
)
from repro.serving.routing import (
    LeastLoadedRouter,
    Router,
    RoundRobinRouter,
    ShardLocalityRouter,
    make_router,
)
from repro.serving.simulator import ReferenceSimulator, ServingSimulator
from repro.serving.workload import ServingScenario, TenantSpec

__all__ = [
    "ClusterNode",
    "ClusterResult",
    "ClusterSimulator",
    "DeadlineAware",
    "DropLate",
    "LeastLoadedRouter",
    "NoShed",
    "P2Quantile",
    "QueryRecord",
    "ReferenceSimulator",
    "ReservoirSampler",
    "Router",
    "RoundRobinRouter",
    "ServingResult",
    "ServingScenario",
    "ServingSimulator",
    "ShardLocalityRouter",
    "ShardMap",
    "ShedPolicy",
    "StreamingMetrics",
    "TenantSpec",
    "make_policy",
    "make_router",
]
