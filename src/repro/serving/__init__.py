"""Event-driven query-serving simulation (Sections 5.3-6.8)."""

from repro.serving.metrics import (
    P2Quantile,
    QueryRecord,
    ReservoirSampler,
    ServingResult,
    StreamingMetrics,
)
from repro.serving.policies import (
    DeadlineAware,
    DropLate,
    NoShed,
    ShedPolicy,
    make_policy,
)
from repro.serving.simulator import ReferenceSimulator, ServingSimulator
from repro.serving.workload import ServingScenario, TenantSpec

__all__ = [
    "DeadlineAware",
    "DropLate",
    "NoShed",
    "P2Quantile",
    "QueryRecord",
    "ReferenceSimulator",
    "ReservoirSampler",
    "ServingResult",
    "ServingScenario",
    "ServingSimulator",
    "ShedPolicy",
    "StreamingMetrics",
    "TenantSpec",
    "make_policy",
]
