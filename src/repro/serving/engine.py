"""The serving kernel: one event loop shared by every engine in the repo.

PR 1 built an event-driven single-node engine; PR 2 composed N copies of
it into a cluster — and immediately had to patch the two hand-rolled
loops against drift (``shed_batch`` / ``apportion_energy`` were extracted
precisely because the copies diverged). This module collapses the
duplication: batching, dispatch, shedding, backpressure accounting, and
energy apportionment now exist in exactly one place, and both
:class:`~repro.serving.simulator.ServingSimulator` (a thin 1-node façade)
and :class:`~repro.serving.cluster.ClusterSimulator` (N kernel instances
behind a router) are drivers over these pieces.

The kernel's vocabulary:

:class:`EventLoop`
    A heap of ``(time, seq, kind, payload)`` tuples. Arrivals are seeded
    with sequence numbers ``0..n-1`` in arrival order, so simultaneous
    arrivals keep submission order and pop before any timer armed at the
    same instant; every later push gets the next sequence number.
:class:`Batcher`
    The admission queue of one engine: coalesces arrivals until the batch
    holds ``max_batch_size`` queries or the oldest has waited
    ``batch_timeout_s``. Flush timers are *generation-stamped*: a timer
    armed for generation ``g`` is ignored once a full batch already
    dispatched generation ``g`` — stale timers cost one heap pop, nothing
    else.
:class:`EngineCore`
    One node's serving kernel: scheduler + :class:`~repro.serving.devices.
    DeviceTimeline` + :class:`Batcher` + shed policy. ``dispatch`` routes
    the batch once (``Scheduler.select_batch``), places it on the routed
    device's earliest-free server, offers every member to the shed
    policy, re-prices the pass on the surviving samples, and charges the
    device timeline. A ``service_extra`` hook prices per-batch costs the
    node itself cannot see (the cluster's all-to-all embedding exchange);
    a :class:`~repro.core.switching.SwitchController` may ride along to
    swap the device's resident representation between batches.
:func:`run_kernel`
    The shared driver: pops events and demultiplexes them onto the cores.
    ``admit(query, now)`` decides which core (if any) receives an arrival
    — the single-node façade always answers its only core, the cluster
    answers through its router, backpressure, and coverage checks.

Outcome commit timing is the one real divergence between the façades:
a failure-free single node records outcomes at *dispatch* (keeping the
record order bit-for-bit identical to the seed reference loop), while the
cluster defers them to the batch's *finish* event so a node failure can
still displace in-flight batches and re-inject their queries
(``defer_commit=True``). Everything upstream of that commit is shared.

Sinks are pluggable: :class:`RecordSink` materializes every
:class:`~repro.serving.metrics.QueryRecord` (exact percentiles),
:class:`StreamingSink` folds outcomes into constant-memory
:class:`~repro.serving.metrics.StreamingMetrics`.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.hardware.energy import average_power
from repro.hardware.latency import estimate_breakdown
from repro.serving.devices import DeviceTimeline
from repro.serving.metrics import QueryRecord, ServingResult, StreamingMetrics
from repro.serving.policies import NoShed, ShedPolicy

# Event kinds, ordered only for readability — ties resolve by sequence
# number, never by kind.
ARRIVAL = 0
FLUSH = 1
FINISH = 2
CONTROL = 3  # façade-defined (the cluster's node-failure events)
SWITCH = 4  # representation-switch completion


# ---- shared admission / pricing helpers ----------------------------------


def shed_batch(
    policy: ShedPolicy, batch, projected_start: float, service_s: float,
    scenario, on_shed,
) -> list:
    """Split a routed batch into admitted queries, reporting shed ones.

    The admission semantics — wait measured from arrival to projected
    start, the batch's projected service time, per-tenant SLA resolution —
    live here, in one place, for every engine. ``on_shed(query, sla_s)``
    is called for every query the policy refuses.
    """
    if isinstance(policy, NoShed):
        return batch
    admitted = []
    for query in batch:
        sla_q = scenario.sla_for(query)
        wait = projected_start - query.arrival_s
        if policy.admit(wait, service_s, sla_q):
            admitted.append(query)
        else:
            on_shed(query, sla_q)
    return admitted


def apportion_energy(
    batch_energy: float, query_size: int, admitted_count: int,
    admitted_size: int,
) -> float:
    """One query's energy share of a served batch, by sample count.

    A singleton batch keeps the exact per-query value (bit-for-bit with
    the reference loop); larger batches split by each query's share of
    the batch's samples.
    """
    if admitted_count == 1:
        return batch_energy
    return batch_energy * query_size / admitted_size


def query_energy(path, query_size: int, service_s: float) -> float:
    """Energy of one device pass (utilization-aware when a model is attached)."""
    model = path.extra.get("model")
    if model is None:
        # Utilization-agnostic fallback.
        return path.device.tdp_w * 0.5 * service_s
    breakdown = estimate_breakdown(
        path.rep,
        model,
        path.device,
        query_size,
        encoder_hit_rate=path.encoder_hit_rate,
        decoder_speedup=path.decoder_speedup,
    )
    return average_power(path.device, breakdown) * service_s


def drop_query(sink, query, sla_s: float) -> None:
    """Record one query shed before execution (policy, edge, or coverage)."""
    sink.observe(
        query.index, query.size, query.arrival_s, query.arrival_s,
        query.arrival_s, "DROPPED", 0.0, 0.0, True, sla_s,
    )


# ---- metric sinks --------------------------------------------------------


class RecordSink:
    """Materialize every outcome as a QueryRecord (exact metrics)."""

    def __init__(self, scheduler_name: str, sla_s: float) -> None:
        self.result = ServingResult(scheduler_name=scheduler_name, sla_s=sla_s)

    def observe(self, index, size, arrival_s, start_s, finish_s, path_label,
                accuracy, energy_j, dropped, sla_s) -> None:
        """Materialize one outcome as a :class:`QueryRecord`."""
        self.result.records.append(
            QueryRecord(
                index=index, size=size, arrival_s=arrival_s, start_s=start_s,
                finish_s=finish_s, path_label=path_label, accuracy=accuracy,
                energy_j=energy_j, dropped=dropped,
                # Only tenant-specific targets are stamped on the record, so
                # single-SLA runs stay identical to the reference loop's.
                sla_s=None if sla_s == self.result.sla_s else sla_s,
            )
        )

    def observe_all(self, outcomes) -> None:
        """Materialize one dispatched batch's outcomes, in commit order."""
        for outcome in outcomes:
            self.observe(*outcome)


class StreamingSink:
    """Fold outcomes into constant-memory running aggregates."""

    # Below this batch size the per-outcome loop beats columnizing.
    _VECTOR_MIN = 8

    def __init__(self, scheduler_name: str, sla_s: float) -> None:
        self.result = StreamingMetrics(scheduler_name=scheduler_name, sla_s=sla_s)

    def observe(self, index, size, arrival_s, start_s, finish_s, path_label,
                accuracy, energy_j, dropped, sla_s) -> None:
        """Fold one outcome into the streaming aggregates."""
        self.result.observe(
            size, arrival_s, start_s, finish_s, path_label, accuracy,
            energy_j=energy_j, dropped=dropped, sla_s=sla_s,
        )

    def observe_all(self, outcomes) -> None:
        """Fold one dispatched batch's outcomes, vectorized when it pays.

        A dispatched batch shares one path (and is either all served or
        committed drop by drop), so large batches fold through
        :meth:`StreamingMetrics.observe_many` in a handful of array passes
        instead of one Python call per query; small or mixed batches
        replay per outcome.
        """
        if len(outcomes) < self._VECTOR_MIN:
            for outcome in outcomes:
                self.observe(*outcome)
            return
        (_, sizes, arrivals, starts, finishes, labels, accuracies,
         energies, dropped, slas) = zip(*outcomes)
        if any(dropped) or labels.count(labels[0]) != len(labels):
            for outcome in outcomes:
                self.observe(*outcome)
            return
        self.result.observe_many(
            sizes, arrivals, starts, finishes, labels[0],
            np.asarray(accuracies, dtype=np.float64),
            energies=np.asarray(energies, dtype=np.float64),
            slas=np.asarray(slas, dtype=np.float64),
        )


# ---- event loop ----------------------------------------------------------


class EventLoop:
    """Heap-ordered events with a monotone sequence for deterministic ties."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self._seq = 0

    def seed_arrivals(self, queries) -> None:
        """Seed the loop with arrivals, sequence-stamped in arrival order."""
        arrivals = sorted(queries, key=lambda q: q.arrival_s)
        self._heap = [
            (q.arrival_s, i, ARRIVAL, q) for i, q in enumerate(arrivals)
        ]
        self._seq = len(self._heap)
        heapq.heapify(self._heap)

    def push(self, time: float, kind: int, payload) -> int:
        """Schedule an event; returns its sequence number (a stable id)."""
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, kind, payload))
        return seq

    def pop(self) -> tuple:
        """The earliest pending ``(time, seq, kind, payload)`` event."""
        return heapq.heappop(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __len__(self) -> int:
        return len(self._heap)


class Batcher:
    """Admission queue with generation-stamped flush timers."""

    __slots__ = ("max_batch_size", "timeout_s", "pending", "generation", "armed")

    def __init__(self, max_batch_size: int, timeout_s: float) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if timeout_s < 0:
            raise ValueError("batch_timeout_s must be non-negative")
        self.max_batch_size = max_batch_size
        self.timeout_s = timeout_s
        self.pending: list = []
        self.generation = 0  # bumped per dispatch; stale timers are skipped
        self.armed = False

    def add(self, query) -> bool:
        """Queue one arrival; True when the batch is full and must flush."""
        self.pending.append(query)
        return len(self.pending) >= self.max_batch_size

    def take(self) -> list:
        """Claim the pending batch for dispatch and invalidate its timer."""
        batch = self.pending
        self.pending = []
        self.generation += 1
        self.armed = False
        return batch

    def clear(self) -> list:
        """Drop the pending queries without dispatching (node failure or
        drain); the generation bump invalidates any armed flush timer so
        a later revival of the core cannot be flushed by a stale timer."""
        batch = self.pending
        self.pending = []
        self.generation += 1
        self.armed = False
        return batch


class _InFlight:
    """One dispatched batch awaiting its finish event."""

    __slots__ = ("queries", "outcomes", "energy_j")

    def __init__(self, queries, outcomes, energy_j) -> None:
        self.queries = queries
        self.outcomes = outcomes
        self.energy_j = energy_j


class ControlTick:
    """One dispatched batch's control-plane observation.

    The kernel emits exactly one of these per dispatch — including fully
    shed batches, whose pressure is the strongest overload evidence there
    is — and hands it to the core's single ``on_control_tick`` observer.
    Every controller in the repo (switch, autoscale, the unified control
    plane) reads load from this record and nothing else, so the signals
    cannot drift between them.

    ``wait_s`` is the batch's worst member wait (batching fill + device
    queue — what its oldest member endured); ``queue_s`` the device-queue
    component alone; ``extra_s`` the per-batch service cost the node
    cannot see locally (the cluster's fabric exchange + cache split; 0.0
    single-node).  ``batch_size`` counts samples, ``batch_queries`` the
    queries that carried them.
    """

    __slots__ = (
        "path", "wait_s", "queue_s", "extra_s", "batch_size",
        "batch_queries", "now", "loop", "scenario",
    )

    def __init__(self, path, wait_s, queue_s, extra_s, batch_size,
                 batch_queries, now, loop, scenario) -> None:
        self.path = path
        self.wait_s = wait_s
        self.queue_s = queue_s
        self.extra_s = extra_s
        self.batch_size = batch_size
        self.batch_queries = batch_queries
        self.now = now
        self.loop = loop
        self.scenario = scenario


# ---- the kernel ----------------------------------------------------------


class EngineCore:
    """One node's serving kernel: batcher + device timeline + shed policy.

    ``service_extra(core, batch, path)`` prices per-batch service cost
    the node cannot see locally (the cluster's fabric exchange and cache
    hit/miss split for the routed ``path``) — it must be **pure**: the
    shed policy may trigger a second call to re-price the surviving
    subset.  ``service_commit(core, batch, path)`` is its effectful
    sibling, called exactly once per dispatched non-empty batch, where
    stateful per-batch accounting (the cluster's cache fills) belongs.
    ``defer_commit`` moves outcome commit from dispatch to the finish
    event so a failure can invalidate in-flight batches; ``switcher`` is
    an optional :class:`~repro.core.switching.SwitchController` enabling
    runtime representation switching, and ``on_switch(core, device,
    now)`` fires after a switch window completes (the cluster invalidates
    and re-warms the node's cache there); ``cache`` is an optional
    per-node :class:`~repro.serving.cache.NodeCache` — the kernel only
    carries it so routers and cluster hooks can reach it through the
    core.

    ``on_control_tick(core, tick)`` is the kernel's *single* control
    observer: one :class:`ControlTick` per dispatched batch, shed or
    served.  It replaces the PR 3-5 pattern of per-controller hooks
    (``switcher.observe`` + ``on_dispatch``) — a façade installs exactly
    one handler and fans out inside it (the cluster stacks switch +
    autoscale behind a shared exclusion window, or hands the tick to the
    unified :class:`~repro.serving.controlplane.ControlPlane`).  When no
    handler is given and a ``switcher`` is, the switcher's own
    :meth:`~repro.core.switching.SwitchController.on_tick` is wired by
    default, so single-node switching needs no extra plumbing.

    The attributes routers key on — ``node_id``, ``inflight_queries``,
    ``alive``, ``full``, ``earliest_free_delay`` — live here, so a core
    *is* the cluster's node object.
    """

    __slots__ = (
        "node_id", "scheduler", "policy", "batcher", "timeline", "max_queue",
        "track_energy", "defer_commit", "service_extra", "service_commit",
        "switcher", "on_control_tick", "on_switch", "cache", "alive",
        "in_flight", "inflight_queries", "served", "shed",
    )

    def __init__(
        self,
        scheduler,
        policy: ShedPolicy,
        *,
        max_batch_size: int = 1,
        batch_timeout_s: float = 0.0,
        node_id: int = 0,
        max_queue: int = 0,
        track_energy: bool = True,
        defer_commit: bool = False,
        service_extra=None,
        service_commit=None,
        switcher=None,
        on_control_tick=None,
        on_switch=None,
        cache=None,
    ) -> None:
        if max_queue < 0:
            raise ValueError("max_queue must be non-negative")
        self.node_id = node_id
        self.scheduler = scheduler
        self.policy = policy
        self.batcher = Batcher(max_batch_size, batch_timeout_s)
        self.timeline = DeviceTimeline(scheduler.paths)
        self.max_queue = max_queue
        self.track_energy = track_energy
        self.defer_commit = defer_commit
        self.service_extra = service_extra
        self.service_commit = service_commit
        self.switcher = switcher
        if on_control_tick is None and switcher is not None:
            # Default wiring: a lone switch controller is its own control
            # plane — the single-node façade (and direct EngineCore users)
            # get PR-3 switching without installing a handler.
            on_control_tick = switcher.on_tick
        self.on_control_tick = on_control_tick
        self.on_switch = on_switch
        self.cache = cache
        self.alive = True
        self.in_flight: dict[int, _InFlight] = {}
        self.inflight_queries = 0  # admission queue + dispatched, unfinished
        self.served = 0
        self.shed = 0
        if switcher is not None:
            switcher.attach(self)

    # ---- router-facing state --------------------------------------------

    @property
    def full(self) -> bool:
        """True when backpressure must withhold this node from routing."""
        return self.max_queue > 0 and self.inflight_queries >= self.max_queue

    def earliest_free_delay(self, now: float) -> float:
        """Wait until any of this node's devices frees a slot."""
        return self.timeline.earliest_free_delay(now)

    @property
    def free_at(self) -> dict[str, list[float]]:
        """The scheduler-facing device map (owned by the timeline)."""
        return self.timeline.free_at

    # ---- event handlers --------------------------------------------------

    def enqueue(self, query, now: float, loop: EventLoop, scenario, sink) -> None:
        """Admit one arrival: coalesce, and dispatch or arm the timer."""
        self.inflight_queries += 1
        batcher = self.batcher
        if batcher.add(query):
            self.dispatch(now, loop, scenario, sink)
        elif not batcher.armed:
            batcher.armed = True
            loop.push(
                now + batcher.timeout_s, FLUSH, (self.node_id, batcher.generation)
            )

    def on_flush(self, generation: int, now: float, loop: EventLoop,
                 scenario, sink) -> None:
        """A flush timer fired; dispatch unless it went stale."""
        if (
            self.alive
            and generation == self.batcher.generation
            and self.batcher.pending
        ):
            self.dispatch(now, loop, scenario, sink)

    def on_finish(self, seq: int, sink) -> None:
        """A dispatched batch completed; commit deferred outcomes."""
        batch = self.in_flight.pop(seq, None)
        if batch is None:
            return  # invalidated by a failure
        sink.observe_all(batch.outcomes)
        self.inflight_queries -= len(batch.queries)
        self.served += len(batch.queries)

    def on_switch_complete(self, device: str, now: float) -> None:
        """A representation switch's blocking window elapsed."""
        if self.switcher is not None:
            self.switcher.complete(self, device, now)
        if self.on_switch is not None:
            self.on_switch(self, device, now)

    # ---- dispatch (the one copy) ----------------------------------------

    def dispatch(self, now: float, loop: EventLoop, scenario, sink) -> None:
        """Route, shed, price, and commit the pending batch."""
        batch = self.batcher.take()
        total_size = sum(q.size for q in batch)
        decision = self.scheduler.select_batch(
            total_size, scenario.sla_s, now, self.timeline.free_at
        )
        path = decision.path
        device = path.device.name
        server, free = self.timeline.earliest(device)
        projected_start = max(now, free)
        extra_s = 0.0
        if self.service_extra is not None:
            extra_s = self.service_extra(self, batch, path)

        def on_shed(query, sla_q):
            drop_query(sink, query, sla_q)
            self.inflight_queries -= 1
            self.shed += 1

        admitted = shed_batch(
            self.policy, batch, projected_start,
            decision.service_s + extra_s, scenario, on_shed,
        )
        if not admitted:
            if self.on_control_tick is not None:
                # A fully-shed batch is the strongest overload evidence
                # there is; the controllers must still see its pressure or
                # a drowning device could never surge to a faster
                # representation (or a bigger fleet).
                self.on_control_tick(self, ControlTick(
                    path, projected_start - batch[0].arrival_s,
                    projected_start - now, extra_s, total_size, len(batch),
                    now, loop, scenario,
                ))
            return

        admitted_size = total_size
        compute_s = decision.service_s
        if len(admitted) != len(batch):
            # Re-price the pass on the surviving samples only.
            admitted_size = sum(q.size for q in admitted)
            compute_s = path.latency(admitted_size)
            if self.service_extra is not None:
                extra_s = self.service_extra(self, admitted, path)
        start = projected_start
        finish = start + compute_s + extra_s
        self.timeline.commit(device, server, finish)
        self.scheduler.on_batch_dispatched(path, admitted_size, start, finish)
        if self.service_commit is not None:
            # The effectful twin of service_extra: stateful per-batch
            # accounting (cache fills) happens exactly once, on the final
            # admitted set, no matter how many times pricing re-ran.
            self.service_commit(self, admitted, path)

        batch_energy = 0.0
        if self.track_energy:
            # Energy covers the device pass; fabric exchange is priced in
            # time only (NIC power is negligible next to the device TDP).
            batch_energy = query_energy(path, admitted_size, compute_s)
        outcomes = [
            (
                query.index, query.size, query.arrival_s, start, finish,
                path.label, path.accuracy,
                apportion_energy(
                    batch_energy, query.size, len(admitted), admitted_size
                ),
                False, scenario.sla_for(query),
            )
            for query in admitted
        ]
        seq = loop.push(finish, FINISH, self.node_id)
        if self.defer_commit:
            self.in_flight[seq] = _InFlight(admitted, outcomes, batch_energy)
        else:
            sink.observe_all(outcomes)
            self.in_flight[seq] = _InFlight(admitted, (), batch_energy)
        if self.on_control_tick is not None:
            # Pressure signal: the batch's worst queueing delay (batching
            # fill + device queue), i.e. what its oldest member endured.
            self.on_control_tick(self, ControlTick(
                path, projected_start - admitted[0].arrival_s,
                projected_start - now, extra_s, admitted_size, len(admitted),
                now, loop, scenario,
            ))

    # ---- failure / membership support ------------------------------------

    def displace(self) -> tuple[list, float]:
        """Kill the node: return its displaced queries and wasted energy."""
        displaced = self.batcher.clear()
        wasted = 0.0
        for batch in self.in_flight.values():
            displaced.extend(batch.queries)
            wasted += batch.energy_j
        self.alive = False
        self.in_flight = {}
        self.inflight_queries = 0
        return displaced, wasted

    def drain(self) -> list:
        """Gracefully retire the node (scale-down): stop admitting, hand
        back the queued-but-undispatched queries for re-routing, and let
        already-dispatched batches run to completion — unlike
        :meth:`displace`, no committed work (or energy) is wasted."""
        pending = self.batcher.clear()
        self.inflight_queries -= len(pending)
        self.alive = False
        return pending

    def revive(self) -> None:
        """Re-admit a drained node to service (scale-up reusing its slot).

        Any batches still in flight from before the drain keep their
        finish events; the batcher was cleared (and its flush generation
        bumped) at drain time, so the revived core starts empty."""
        self.alive = True


def run_kernel(cores, scenario, sink, admit, extra_events=(), on_control=None):
    """Drive engine cores off one shared event heap until it drains.

    ``admit(query, now) -> EngineCore | None`` places each arrival (None
    means the arrival was consumed at the edge — the admitter records the
    drop itself). ``extra_events`` seeds façade-specific events (the
    cluster's failure or forced scale operations); ``on_control(kind,
    payload, now, loop)`` handles any kind the kernel does not know.
    Returns the timestamp of the last event processed — the run's end
    time, which fleet accounting (node-seconds) needs.
    """
    loop = EventLoop()
    loop.seed_arrivals(scenario.queries)
    for time, kind, payload in extra_events:
        loop.push(time, kind, payload)

    time = 0.0
    while loop:
        time, seq, kind, payload = loop.pop()
        if kind == ARRIVAL:
            core = admit(payload, time)
            if core is not None:
                core.enqueue(payload, time, loop, scenario, sink)
        elif kind == FLUSH:
            node_id, generation = payload
            cores[node_id].on_flush(generation, time, loop, scenario, sink)
        elif kind == FINISH:
            cores[payload].on_finish(seq, sink)
        elif kind == SWITCH:
            node_id, device = payload
            cores[node_id].on_switch_complete(device, time)
        else:
            on_control(kind, payload, time, loop)
    return time
