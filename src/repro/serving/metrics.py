"""Serving metrics: throughput of correct predictions, SLA violations,
switching breakdowns, and energy (Section 5.4).

Two aggregation modes share one metric vocabulary:

:class:`ServingResult`
    Exact, record-backed — holds every :class:`QueryRecord` and computes
    percentiles from the full latency distribution. The right tool for
    paper-figure reproductions (thousands of queries).
:class:`StreamingMetrics`
    Constant-memory — running counters plus P² (Jain & Chlamtac 1985)
    percentile estimators and a bounded latency reservoir, so
    million-query scenarios never materialize per-query records.

Dropped (shed) queries count toward ``violation_rate`` and ``drop_rate``
but are **excluded from latency percentiles** in both modes: a shed query
was never answered, so it has no latency — folding its ``finish == arrival``
record in would inject 0 s samples and make overloaded runs look *faster*
the more they drop. For the same reason they are excluded from
``total_samples`` (and therefore ``raw_throughput`` and
``mean_accuracy``): a dropped query's samples were never served, and
counting them while the makespan shrinks would make a failing,
drop-heavy cluster report *higher* samples/s than a healthy one.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np


@dataclass
class CacheStats:
    """Hit/miss/fill accounting for one cache (or a merged fleet view).

    The cluster's MP-Cache tier (:mod:`repro.serving.cache`) counts row
    lookups, not queries: every hot-row gather a node cannot serve from
    shard-local memory either **hits** its cache (a DRAM read, priced in
    ``hit_s``) or **misses** and fills over the cluster fabric
    (``fill_bytes``).  The identities every run must satisfy — pinned in
    the cache benchmark — are ``hits + misses == lookups`` and
    ``fill_bytes == misses * row_bytes``; warm, re-warm, and donation
    traffic is tallied separately so every byte that moved is visible.
    """

    lookups: int = 0  # hot-row gathers offered to the cache
    hits: int = 0
    misses: int = 0
    hit_bytes: int = 0  # payload served from cache (DRAM reads)
    fill_bytes: int = 0  # demand fills pulled over the fabric on misses
    warm_bytes: int = 0  # provisioning fills (static preload, join warm)
    rewarm_bytes: int = 0  # re-fetches after a representation switch
    donated_bytes: int = 0  # hot-set bytes received from a draining peer
    invalidated_entries: int = 0  # entries dropped by switch/re-key/eviction
    invalidations: int = 0  # invalidation events (switches + re-keys)
    hit_s: float = 0.0  # device time charged for cache reads
    rewarm_s: float = 0.0  # device time blocked by post-switch re-warms

    @property
    def hit_rate(self) -> float:
        """Fraction of offered lookups served from cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "CacheStats") -> None:
        """Fold another cache's counters into this one (fleet roll-up)."""
        self.lookups += other.lookups
        self.hits += other.hits
        self.misses += other.misses
        self.hit_bytes += other.hit_bytes
        self.fill_bytes += other.fill_bytes
        self.warm_bytes += other.warm_bytes
        self.rewarm_bytes += other.rewarm_bytes
        self.donated_bytes += other.donated_bytes
        self.invalidated_entries += other.invalidated_entries
        self.invalidations += other.invalidations
        self.hit_s += other.hit_s
        self.rewarm_s += other.rewarm_s

    def summary(self) -> dict[str, float]:
        """The cache metric vocabulary as one printable dict."""
        return {
            "cache_lookups": self.lookups,
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_hit_rate": self.hit_rate,
            "cache_fill_bytes": self.fill_bytes,
            "cache_warm_bytes": self.warm_bytes,
            "cache_rewarm_bytes": self.rewarm_bytes,
        }


@dataclass(frozen=True)
class QueryRecord:
    """One served query's outcome."""

    index: int
    size: int
    arrival_s: float
    start_s: float
    finish_s: float
    path_label: str
    accuracy: float  # percent
    energy_j: float = 0.0
    dropped: bool = False  # shed by an overload policy before execution
    # Per-query SLA override (multi-tenant); None means the run-level target.
    sla_s: float | None = None

    @property
    def latency_s(self) -> float:
        """Arrival-to-finish latency — what the SLA target judges."""
        return self.finish_s - self.arrival_s

    @property
    def correct_samples(self) -> float:
        """Expected correct predictions this query contributed (0 if shed)."""
        if self.dropped:
            return 0.0
        return self.size * self.accuracy / 100.0


@dataclass
class ServingResult:
    """Aggregated outcome of one simulated serving run."""

    scheduler_name: str
    sla_s: float
    records: list[QueryRecord] = field(default_factory=list)

    # ---- core paper metrics ----------------------------------------------

    @property
    def makespan_s(self) -> float:
        """Time from the epoch to the last recorded finish."""
        if not self.records:
            return 0.0
        return max(r.finish_s for r in self.records)

    @property
    def total_samples(self) -> int:
        """Samples actually served (dropped queries were never answered)."""
        return sum(r.size for r in self.records if not r.dropped)

    @property
    def raw_throughput(self) -> float:
        """Samples served per second."""
        span = self.makespan_s
        return self.total_samples / span if span > 0 else 0.0

    @property
    def correct_prediction_throughput(self) -> float:
        """QPS x QuerySize x Accuracy, aggregated (Section 5.4)."""
        span = self.makespan_s
        if span <= 0:
            return 0.0
        return sum(r.correct_samples for r in self.records) / span

    def _sla_of(self, record: QueryRecord) -> float:
        """The SLA target governing one record (per-tenant aware)."""
        return self.sla_s if record.sla_s is None else record.sla_s

    @property
    def compliant_correct_throughput(self) -> float:
        """Correct predictions per second counting only SLA-compliant
        queries — a late recommendation response is worthless to the
        requesting page, so tight targets penalize slow deployments even
        when their raw throughput keeps up (Figure 13, right)."""
        span = self.makespan_s
        if span <= 0:
            return 0.0
        compliant = sum(
            r.correct_samples
            for r in self.records
            if r.latency_s <= self._sla_of(r)
        )
        return compliant / span

    @property
    def achieved_qps(self) -> float:
        """Queries handled per second of makespan (served and dropped)."""
        span = self.makespan_s
        return len(self.records) / span if span > 0 else 0.0

    @property
    def violation_rate(self) -> float:
        """Fraction of queries exceeding the SLA latency target (dropped
        queries count as violations — they were never answered)."""
        if not self.records:
            return 0.0
        violated = sum(
            1 for r in self.records if r.dropped or r.latency_s > self._sla_of(r)
        )
        return violated / len(self.records)

    @property
    def drop_rate(self) -> float:
        """Fraction of queries shed by the overload policy."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.dropped) / len(self.records)

    @property
    def mean_accuracy(self) -> float:
        """Sample-weighted accuracy of served predictions (percent)."""
        total = self.total_samples
        if total == 0:
            return 0.0
        return sum(r.accuracy * r.size for r in self.records) / total

    @property
    def total_energy_j(self) -> float:
        """Device energy spent on served queries, in joules."""
        return sum(r.energy_j for r in self.records)

    # ---- distributions ------------------------------------------------------

    def latency_percentile(self, q: float) -> float:
        """Latency percentile over *served* queries; shed queries were never
        answered and must not deflate the tail with 0 s samples."""
        served = [r.latency_s for r in self.records if not r.dropped]
        if not served:
            return 0.0
        return float(np.percentile(served, q))

    @property
    def p50_latency_s(self) -> float:
        """Median served latency, in seconds."""
        return self.latency_percentile(50)

    @property
    def p95_latency_s(self) -> float:
        """95th-percentile served latency, in seconds."""
        return self.latency_percentile(95)

    @property
    def p99_latency_s(self) -> float:
        """99th-percentile served latency, in seconds."""
        return self.latency_percentile(99)

    def switching_breakdown(self) -> dict[str, float]:
        """Fraction of queries served by each path (Figure 15)."""
        counts = Counter(r.path_label for r in self.records)
        total = len(self.records)
        return {label: count / total for label, count in sorted(counts.items())}

    def summary(self) -> dict[str, float]:
        """The headline metric vocabulary as one printable dict."""
        return {
            "correct_tput": self.correct_prediction_throughput,
            "raw_tput": self.raw_throughput,
            "qps": self.achieved_qps,
            "accuracy": self.mean_accuracy,
            "violation_rate": self.violation_rate,
            "drop_rate": self.drop_rate,
            "p99_latency_ms": self.p99_latency_s * 1e3,
            "energy_j": self.total_energy_j,
        }


class P2Quantile:
    """Streaming quantile via the P² algorithm (Jain & Chlamtac, 1985).

    Tracks five markers whose heights approximate the ``q``-quantile with
    O(1) memory and O(1) update — the standard record-free percentile
    estimator for long-running serving telemetry.
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        self.q = q
        self._initial: list[float] = []
        self._heights: list[float] = []
        self._pos: list[float] = []
        self._desired: list[float] = []
        self._inc = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self.count = 0

    def observe(self, x: float) -> None:
        """Fold one sample into the five-marker state."""
        self.count += 1
        if self._heights:
            self._update(x)
            return
        self._initial.append(x)
        if len(self._initial) == 5:
            self._initial.sort()
            self._heights = list(self._initial)
            self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
            self._desired = [
                1.0, 1.0 + 2.0 * self.q, 1.0 + 4.0 * self.q,
                3.0 + 2.0 * self.q, 5.0,
            ]

    def _update(self, x: float) -> None:
        h, pos = self._heights, self._pos
        if x < h[0]:
            h[0] = x
            cell = 0
        elif x >= h[4]:
            h[4] = x
            cell = 3
        else:
            cell = next(i for i in range(4) if h[i] <= x < h[i + 1])
        for i in range(cell + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._inc[i]
        self._adjust()

    def _adjust(self) -> bool:
        """One sweep of interior-marker adjustment; True if any marker moved."""
        h, pos = self._heights, self._pos
        moved = False
        for i in (1, 2, 3):
            d = self._desired[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                d <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                step = 1.0 if d > 0 else -1.0
                candidate = self._parabolic(i, step)
                if not h[i - 1] < candidate < h[i + 1]:
                    candidate = self._linear(i, step)
                h[i] = candidate
                pos[i] += step
                moved = True
        return moved

    _CHUNK_MIN = 256

    @staticmethod
    def _quantile_sorted(xs: np.ndarray, frac: float) -> float:
        """Linear-interpolated quantile of an already-sorted array."""
        idx = frac * (xs.size - 1)
        lo = int(idx)
        rem = idx - lo
        if rem == 0.0:
            return float(xs[lo])
        return float(xs[lo] + rem * (xs[lo + 1] - xs[lo]))

    def observe_sorted(self, xs: np.ndarray) -> None:
        """Fold a pre-sorted chunk of samples in O(log m) marker updates.

        Chunked update (the ``observe_many`` hot path): a sorted block is
        itself an excellent quantile estimate, so each interior marker
        height moves toward the block's empirical quantile weighted by the
        block's share of all observations, while marker positions advance
        by exact below-marker counts so later per-sample ``observe`` calls
        stay coherent. Per-sample and chunked folding therefore agree to
        estimator accuracy, not bit-for-bit — counters stay exact either
        way. Intended for blocks of at least ``_CHUNK_MIN`` samples;
        ``observe_many`` routes smaller chunks through ``observe``.
        """
        m = int(xs.size)
        if m == 0:
            return
        if not self._heights:
            if len(self._initial) + m < 5:
                self._initial.extend(float(v) for v in xs)
                self.count += m
                return
            if self._initial:
                xs = np.sort(np.concatenate([self._initial, xs]))
                self._initial = []
            self.count += m
            n = self.count
            self._heights = [
                self._quantile_sorted(xs, frac) for frac in self._inc
            ]
            self._pos = [1.0 + frac * (n - 1) for frac in self._inc]
            self._desired = [1.0 + frac * (n - 1) for frac in self._inc]
            return
        h, pos = self._heights, self._pos
        self.count += m
        weight = m / self.count
        if xs[0] < h[0]:
            h[0] = float(xs[0])
        if xs[-1] > h[4]:
            h[4] = float(xs[-1])
        for i in (1, 2, 3):
            h[i] += weight * (self._quantile_sorted(xs, self._inc[i]) - h[i])
        below = np.searchsorted(xs, h[1:4], side="left")
        for i in (1, 2, 3):
            pos[i] += float(below[i - 1])
        pos[4] += float(m)
        for i in range(5):
            self._desired[i] += self._inc[i] * m

    def observe_many(self, xs) -> None:
        """Fold a chunk of samples (one sort per 4096-sample block).

        Chunks smaller than ``_CHUNK_MIN`` replay through per-sample
        ``observe`` — a tiny block's empirical tail quantile is too noisy
        to blend, and the per-sample loop is cheap at that size.
        """
        xs = np.asarray(xs, dtype=np.float64)
        if xs.size < self._CHUNK_MIN:
            for x in xs.tolist():
                self.observe(x)
            return
        block = 4096
        for start in range(0, xs.size, block):
            self.observe_sorted(np.sort(xs[start:start + block]))

    def _parabolic(self, i: int, d: float) -> float:
        h, n = self._heights, self._pos
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, n = self._heights, self._pos
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        """The current estimate of the tracked quantile."""
        if self._heights:
            return self._heights[2]
        if not self._initial:
            return 0.0
        return float(np.percentile(self._initial, self.q * 100.0))


class ReservoirSampler:
    """Uniform bounded-memory sample of a stream (Vitter's Algorithm R)."""

    _BLOCK = 4096

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._rng = np.random.default_rng(seed)
        self._sample: list[float] = []
        self.count = 0
        # Uniforms are drawn in blocks: one Generator call per 4096
        # observations instead of one per observation (hot streaming path).
        self._uniforms = self._rng.random(self._BLOCK)
        self._cursor = 0

    def observe(self, x: float) -> None:
        """Offer one sample; it survives with probability capacity/count."""
        self.count += 1
        if len(self._sample) < self.capacity:
            self._sample.append(x)
            return
        if self._cursor == self._BLOCK:
            self._uniforms = self._rng.random(self._BLOCK)
            self._cursor = 0
        j = int(self._uniforms[self._cursor] * self.count)
        self._cursor += 1
        if j < self.capacity:
            self._sample[j] = x

    def observe_many(self, xs) -> None:
        """Offer a chunk of samples, bit-identical to per-sample ``observe``.

        Consumes the block-drawn uniforms in exactly the per-sample order
        and computes all replacement slots vectorized; Python touches only
        the ~``capacity * ln(count/capacity)`` surviving samples, so 10M
        observations cost thousands of list writes, not millions.
        """
        xs = np.asarray(xs, dtype=np.float64)
        i = 0
        n = int(xs.size)
        fill = self.capacity - len(self._sample)
        if fill > 0:
            take = min(fill, n)
            self._sample.extend(xs[:take].tolist())
            self.count += take
            i = take
        while i < n:
            if self._cursor == self._BLOCK:
                self._uniforms = self._rng.random(self._BLOCK)
                self._cursor = 0
            take = min(self._BLOCK - self._cursor, n - i)
            uniforms = self._uniforms[self._cursor:self._cursor + take]
            counts = self.count + 1 + np.arange(take, dtype=np.float64)
            slots = (uniforms * counts).astype(np.int64)
            self._cursor += take
            self.count += take
            survivors = np.flatnonzero(slots < self.capacity)
            values = xs[i:i + take]
            sample = self._sample
            for k in survivors.tolist():
                sample[slots[k]] = float(values[k])
            i += take

    def percentile(self, q: float) -> float:
        """Percentile estimate over the reservoir's current sample."""
        if not self._sample:
            return 0.0
        return float(np.percentile(self._sample, q))


class StreamingMetrics:
    """Record-free aggregation with the :class:`ServingResult` vocabulary.

    ``observe`` ingests one query outcome; every paper metric is then
    available as a property. Named percentiles (p50/p95/p99) come from P²
    estimators; arbitrary ``latency_percentile(q)`` queries fall back to a
    uniform reservoir over served latencies. Memory is O(reservoir), not
    O(queries).
    """

    PERCENTILES = (50.0, 95.0, 99.0)

    def __init__(
        self,
        scheduler_name: str,
        sla_s: float,
        reservoir_size: int = 2048,
        seed: int = 0,
    ) -> None:
        self.scheduler_name = scheduler_name
        self.sla_s = sla_s
        self.n = 0
        self.n_dropped = 0
        self.n_violations = 0
        self.total_samples = 0
        self._correct_sum = 0.0
        self._compliant_correct_sum = 0.0
        self._accuracy_weighted_sum = 0.0
        self._energy_sum = 0.0
        self._max_finish = 0.0
        self._path_counts: Counter[str] = Counter()
        self._estimators = {p: P2Quantile(p / 100.0) for p in self.PERCENTILES}
        self._reservoir = ReservoirSampler(reservoir_size, seed=seed)

    def observe(
        self,
        size: int,
        arrival_s: float,
        start_s: float,
        finish_s: float,
        path_label: str,
        accuracy: float,
        energy_j: float = 0.0,
        dropped: bool = False,
        sla_s: float | None = None,
    ) -> None:
        """Fold one query outcome into the running aggregates.

        ``sla_s`` overrides the run-level target for this query (multi-tenant
        scenarios carry per-tenant SLAs)."""
        sla = self.sla_s if sla_s is None else sla_s
        self.n += 1
        self._path_counts[path_label] += 1
        self._max_finish = max(self._max_finish, finish_s)
        if dropped:
            self.n_dropped += 1
            self.n_violations += 1
            return
        self.total_samples += size
        latency = finish_s - arrival_s
        correct = size * accuracy / 100.0
        self._correct_sum += correct
        self._accuracy_weighted_sum += accuracy * size
        self._energy_sum += energy_j
        if latency > sla:
            self.n_violations += 1
        else:
            self._compliant_correct_sum += correct
        for estimator in self._estimators.values():
            estimator.observe(latency)
        self._reservoir.observe(latency)

    def observe_many(
        self,
        sizes,
        arrivals,
        starts,
        finishes,
        path_label: str,
        accuracies,
        energies=0.0,
        dropped: bool = False,
        slas=None,
        block: int = 4096,
    ) -> None:
        """Fold a chunk of same-path outcomes in vectorized passes.

        Array counterpart of :meth:`observe` for one ``path_label`` at a
        time (callers group outcomes by path; a dispatch batch shares its
        path by construction). ``accuracies``/``energies``/``slas`` accept
        scalars or per-query arrays; ``slas=None`` applies the run-level
        target. ``dropped`` marks the whole chunk as shed.

        Counter metrics (throughput, violation/drop rates, breakdowns)
        are exactly the per-sample values; the reservoir consumes its
        uniforms bit-identically; summed floats and P² percentile
        estimates agree to accumulation order / estimator accuracy —
        pinned in ``tests/property/test_prop_engine_parity.py``.
        """
        sizes = np.asarray(sizes, dtype=np.int64)
        m = int(sizes.size)
        if m == 0:
            return
        finishes = np.asarray(finishes, dtype=np.float64)
        self.n += m
        self._path_counts[path_label] += m
        self._max_finish = max(self._max_finish, float(finishes.max()))
        if dropped:
            self.n_dropped += m
            self.n_violations += m
            return
        arrivals = np.asarray(arrivals, dtype=np.float64)
        del starts  # observe() never reads start_s either
        sla = np.broadcast_to(
            np.asarray(
                self.sla_s if slas is None else slas, dtype=np.float64
            ),
            (m,),
        )
        accuracy = np.broadcast_to(
            np.asarray(accuracies, dtype=np.float64), (m,)
        )
        self.total_samples += int(sizes.sum())
        latency = finishes - arrivals
        correct = sizes * accuracy / 100.0
        self._correct_sum += float(correct.sum())
        self._accuracy_weighted_sum += float((accuracy * sizes).sum())
        if np.ndim(energies):
            self._energy_sum += float(
                np.asarray(energies, dtype=np.float64).sum()
            )
        else:
            self._energy_sum += float(energies) * m
        violated = latency > sla
        self.n_violations += int(violated.sum())
        self._compliant_correct_sum += float(correct[~violated].sum())
        if m < P2Quantile._CHUNK_MIN:
            # Small folds replay the per-sample estimators (bit-equal to
            # a plain observe() loop), mirroring P2Quantile.observe_many.
            for x in latency.tolist():
                for estimator in self._estimators.values():
                    estimator.observe(x)
            self._reservoir.observe_many(latency)
            return
        for start in range(0, m, block):
            chunk = latency[start:start + block]
            ordered = np.sort(chunk)
            for estimator in self._estimators.values():
                estimator.observe_sorted(ordered)
            self._reservoir.observe_many(chunk)

    def observe_record(self, record: QueryRecord, sla_s: float | None = None) -> None:
        """Fold one materialized :class:`QueryRecord` (record-sink shim)."""
        self.observe(
            record.size, record.arrival_s, record.start_s, record.finish_s,
            record.path_label, record.accuracy, energy_j=record.energy_j,
            dropped=record.dropped,
            sla_s=record.sla_s if sla_s is None else sla_s,
        )

    # ---- core paper metrics ----------------------------------------------

    @property
    def makespan_s(self) -> float:
        """Time from the epoch to the latest observed finish."""
        return self._max_finish

    @property
    def raw_throughput(self) -> float:
        """Samples served per second."""
        span = self.makespan_s
        return self.total_samples / span if span > 0 else 0.0

    @property
    def correct_prediction_throughput(self) -> float:
        """QPS x QuerySize x Accuracy, aggregated (Section 5.4)."""
        span = self.makespan_s
        return self._correct_sum / span if span > 0 else 0.0

    @property
    def compliant_correct_throughput(self) -> float:
        """Correct predictions per second over SLA-compliant queries only."""
        span = self.makespan_s
        return self._compliant_correct_sum / span if span > 0 else 0.0

    @property
    def achieved_qps(self) -> float:
        """Queries handled per second of makespan (served and dropped)."""
        span = self.makespan_s
        return self.n / span if span > 0 else 0.0

    @property
    def violation_rate(self) -> float:
        """Fraction of queries late or dropped against their SLA target."""
        return self.n_violations / self.n if self.n else 0.0

    @property
    def drop_rate(self) -> float:
        """Fraction of queries shed before execution."""
        return self.n_dropped / self.n if self.n else 0.0

    @property
    def mean_accuracy(self) -> float:
        """Sample-weighted accuracy of served predictions (percent)."""
        if self.total_samples == 0:
            return 0.0
        return self._accuracy_weighted_sum / self.total_samples

    @property
    def total_energy_j(self) -> float:
        """Device energy spent on served queries, in joules."""
        return self._energy_sum

    # ---- distributions ------------------------------------------------------

    def latency_percentile(self, q: float) -> float:
        """Percentile over served latencies: P² for the named percentiles,
        reservoir estimate otherwise."""
        estimator = self._estimators.get(float(q))
        if estimator is not None:
            return estimator.value
        return self._reservoir.percentile(q)

    @property
    def p50_latency_s(self) -> float:
        """Median served latency, in seconds (P² estimate)."""
        return self.latency_percentile(50)

    @property
    def p95_latency_s(self) -> float:
        """95th-percentile served latency, in seconds (P² estimate)."""
        return self.latency_percentile(95)

    @property
    def p99_latency_s(self) -> float:
        """99th-percentile served latency, in seconds (P² estimate)."""
        return self.latency_percentile(99)

    def switching_breakdown(self) -> dict[str, float]:
        """Fraction of queries served by each path (Figure 15)."""
        if not self.n:
            return {}
        return {
            label: count / self.n
            for label, count in sorted(self._path_counts.items())
        }

    def summary(self) -> dict[str, float]:
        """The headline metric vocabulary as one printable dict."""
        return {
            "correct_tput": self.correct_prediction_throughput,
            "raw_tput": self.raw_throughput,
            "qps": self.achieved_qps,
            "accuracy": self.mean_accuracy,
            "violation_rate": self.violation_rate,
            "drop_rate": self.drop_rate,
            "p99_latency_ms": self.p99_latency_s * 1e3,
            "energy_j": self.total_energy_j,
        }
