"""Serving metrics: throughput of correct predictions, SLA violations,
switching breakdowns, and energy (Section 5.4)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class QueryRecord:
    """One served query's outcome."""

    index: int
    size: int
    arrival_s: float
    start_s: float
    finish_s: float
    path_label: str
    accuracy: float  # percent
    energy_j: float = 0.0
    dropped: bool = False  # shed by an overload policy before execution

    @property
    def latency_s(self) -> float:
        return self.finish_s - self.arrival_s

    @property
    def correct_samples(self) -> float:
        if self.dropped:
            return 0.0
        return self.size * self.accuracy / 100.0


@dataclass
class ServingResult:
    """Aggregated outcome of one simulated serving run."""

    scheduler_name: str
    sla_s: float
    records: list[QueryRecord] = field(default_factory=list)

    # ---- core paper metrics ----------------------------------------------

    @property
    def makespan_s(self) -> float:
        if not self.records:
            return 0.0
        return max(r.finish_s for r in self.records)

    @property
    def total_samples(self) -> int:
        return sum(r.size for r in self.records)

    @property
    def raw_throughput(self) -> float:
        """Samples served per second."""
        span = self.makespan_s
        return self.total_samples / span if span > 0 else 0.0

    @property
    def correct_prediction_throughput(self) -> float:
        """QPS x QuerySize x Accuracy, aggregated (Section 5.4)."""
        span = self.makespan_s
        if span <= 0:
            return 0.0
        return sum(r.correct_samples for r in self.records) / span

    @property
    def compliant_correct_throughput(self) -> float:
        """Correct predictions per second counting only SLA-compliant
        queries — a late recommendation response is worthless to the
        requesting page, so tight targets penalize slow deployments even
        when their raw throughput keeps up (Figure 13, right)."""
        span = self.makespan_s
        if span <= 0:
            return 0.0
        compliant = sum(
            r.correct_samples for r in self.records if r.latency_s <= self.sla_s
        )
        return compliant / span

    @property
    def achieved_qps(self) -> float:
        span = self.makespan_s
        return len(self.records) / span if span > 0 else 0.0

    @property
    def violation_rate(self) -> float:
        """Fraction of queries exceeding the SLA latency target (dropped
        queries count as violations — they were never answered)."""
        if not self.records:
            return 0.0
        violated = sum(
            1 for r in self.records if r.dropped or r.latency_s > self.sla_s
        )
        return violated / len(self.records)

    @property
    def drop_rate(self) -> float:
        """Fraction of queries shed by the overload policy."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.dropped) / len(self.records)

    @property
    def mean_accuracy(self) -> float:
        """Sample-weighted accuracy of served predictions (percent)."""
        total = self.total_samples
        if total == 0:
            return 0.0
        return sum(r.accuracy * r.size for r in self.records) / total

    @property
    def total_energy_j(self) -> float:
        return sum(r.energy_j for r in self.records)

    # ---- distributions ------------------------------------------------------

    def latency_percentile(self, q: float) -> float:
        if not self.records:
            return 0.0
        return float(np.percentile([r.latency_s for r in self.records], q))

    @property
    def p50_latency_s(self) -> float:
        return self.latency_percentile(50)

    @property
    def p95_latency_s(self) -> float:
        return self.latency_percentile(95)

    @property
    def p99_latency_s(self) -> float:
        return self.latency_percentile(99)

    def switching_breakdown(self) -> dict[str, float]:
        """Fraction of queries served by each path (Figure 15)."""
        counts = Counter(r.path_label for r in self.records)
        total = len(self.records)
        return {label: count / total for label, count in sorted(counts.items())}

    def summary(self) -> dict[str, float]:
        return {
            "correct_tput": self.correct_prediction_throughput,
            "raw_tput": self.raw_throughput,
            "qps": self.achieved_qps,
            "accuracy": self.mean_accuracy,
            "violation_rate": self.violation_rate,
            "p99_latency_ms": self.p99_latency_s * 1e3,
            "energy_j": self.total_energy_j,
        }
