"""Unified cost-based control plane: one SLO autopilot behind every knob.

PRs 3-5 gave the serving stack four independent control mechanisms —
runtime representation switching (:mod:`repro.core.switching`), elastic
autoscaling (:mod:`repro.serving.autoscale`), cache warm/donate
(:mod:`repro.serving.cache`), and cache-affinity routing
(:mod:`repro.serving.routing`) — each watching the same pressure
signals through its own thresholds and its own hysteresis.  Stacked,
they co-exist (the cluster serializes them behind a shared
:class:`~repro.serving.signals.ExclusionWindow`) but they never *agree*:
a surge that one warm window would absorb can fire a scale-up **and** a
switch, and a calm trough drains a node while a calm switch was about to
recover accuracy on it for free.

The :class:`ControlPlane` replaces the stack with one arbiter.  Every
control tick (one :class:`~repro.serving.engine.ControlTick` per
dispatched batch anywhere in the fleet) it classifies the operating
point with the shared :mod:`~repro.serving.signals` vocabulary —
**surge** (SLA pressure or an effectively saturated batching window,
exchange time included) or **calm** (device queues idle) — then prices
every candidate action against ONE cost function and commits **at most
one action per tick** through one fleet-wide
:class:`~repro.serving.signals.Hysteresis`:

====================  ==================================================
action                predicted cost (joule-equivalents, J-eq)
====================  ==================================================
``hold``              0 — the baseline every candidate is priced against
``switch:<label>``    the Fig-15 window: ``overhead_s x node_cost_w``
``scale:up``          ``warm_s x node_cost_w + horizon_s x (idle_w +
                      node_cost_w)`` — the handoff plus one more node's
                      idle power and occupancy over the horizon
``scale:down``        ``-horizon_s x (idle_w + node_cost_w)`` — the
                      same term, reclaimed
``reroute:<name>``    ``-(miss-penalty saving per query) x query rate x
                      horizon_s x node_cost_w``
``rewarm``            the cache fill's fabric window:
                      ``warm_s x node_cost_w``
====================  ==================================================

One J-eq is one joule of fleet energy or ``1 / node_cost_w``
node-seconds — the two axes of the fleet cost metric
(:attr:`~repro.serving.cluster.ClusterResult.fleet_energy_j` and
``node_seconds``) collapsed onto a single scale so a switch window, a
node's idle draw, and a cache fill are directly comparable.  In a surge
the cheapest feasible action fires (relief at the least cost); in a calm
the most negative one (the biggest saving — or an accuracy-recovering
calm switch when nothing saves).  Infeasible candidates stay in the
trace with their predicted costs, so every
:class:`ControlDecision` records not just what fired but what it beat
— the decision traces the Pareto bench and CI artifacts ship.

The plane owns patience/cooldown at the *fleet* level; the mechanism
objects it drives (:meth:`~repro.core.switching.SwitchController.
start_switch`, the cluster's scale/rewarm/reroute executors) only
execute and price.  Because one hysteresis serializes every action
class, the switch/scale race the stacked controllers need an exclusion
window for cannot occur here by construction.

The plane duck-types the :class:`~repro.serving.autoscale.
AutoscaleController` protocol (bounds, ``schedule``, ``clone``,
``on_scale_started`` / ``on_scale_complete``), so the cluster's
membership machinery — epochs, warm windows, drains, forced schedules —
drives it unchanged.  See docs/controlplane.md for the guided tour and
``benchmarks/test_ablation_scheduler.py`` for the headline result: on a
diurnal flash-crowd the autopilot Pareto-dominates every single-mechanism
baseline and the stacked-but-independent controllers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.serving.autoscale import ScaleEvent
from repro.serving.signals import (
    Hysteresis,
    queue_pressure,
    window_utilization,
)

#: The four action classes the plane arbitrates (plus the implicit
#: ``hold``).  ``ControlPlane(actions=...)`` may enable any subset;
#: an empty tuple makes the plane a pure observer (it still classifies
#: and traces, but can only hold).
ACTION_CLASSES = ("switch", "scale", "reroute", "rewarm")

# One fleet-wide hysteresis key: the plane commits one action at a time,
# whatever its class — that single key IS the unified thrash control.
_FLEET = "fleet"


@dataclass(frozen=True)
class CandidateCost:
    """One candidate action's predicted price, feasible or not.

    ``action`` is the class-qualified name (``"switch:mlp-gpu"``,
    ``"scale:up"``, ``"reroute:cache-affinity"``, ``"rewarm"``,
    ``"hold"``); ``cost_j`` its predicted joule-equivalents (negative =
    a saving); ``detail`` the human-readable why (target, window,
    or the reason it is infeasible)."""

    action: str
    cost_j: float
    feasible: bool
    detail: str = ""


@dataclass(frozen=True)
class ControlDecision:
    """One committed control action, with everything it rejected.

    Appended to :attr:`ControlPlane.decisions` (and surfaced as
    :attr:`~repro.serving.cluster.ClusterResult.control_decisions`) at
    the instant hysteresis fires — the full candidate table, costs and
    feasibility included, is the decision trace the Pareto bench pins
    and CI uploads per leg."""

    time_s: float
    node_id: int
    mode: str  # "surge" | "calm"
    pressure: float  # worst member wait / SLA at the deciding tick
    util: float  # effective window utilization (exchange included)
    chosen: str  # the committed candidate's action name
    chosen_cost_j: float
    candidates: tuple[CandidateCost, ...]


def format_decision(decision: ControlDecision) -> str:
    """One deterministic text line per decision — the trace format the
    bench results files and CI artifacts use (docs/controlplane.md)."""
    table = ", ".join(
        f"{c.action}={c.cost_j:+.6f}" + ("" if c.feasible else "!")
        for c in decision.candidates
    )
    return (
        f"t={decision.time_s:.6f} node={decision.node_id} {decision.mode} "
        f"pressure={decision.pressure:.3f} util={decision.util:.3f} "
        f"-> {decision.chosen} ({decision.chosen_cost_j:+.6f} J-eq) "
        f"[{table}]"
    )


class AutopilotOps:
    """The executor surface a façade hands the plane via
    :meth:`ControlPlane.begin_run` — everything cluster-specific the
    plane's pricing and execution need, as attributes:

    ``sla_s``
        the run's SLA (float).
    ``n_members()``
        current fleet size.
    ``active_cores()``
        the live engine cores, in node order (a committed switch applies
        fleet-wide: every active node whose resident differs from the
        chosen target switches under the one decision).
    ``idle_w()``
        one node's idle draw in watts (the scale cost term).
    ``predict_join_warm_s()``
        the next join's charged warm window (shard slice + cache warm).
    ``start_scale_up(now, loop)`` / ``scale_down(now, loop)``
        the cluster's membership executors; completion flows back
        through :meth:`ControlPlane.on_scale_complete`.
    ``router_name()`` / ``route_candidates()`` / ``route_miss_s(name)``
        the installed router, the names valid for this cluster, and the
        expected per-query hot-miss fabric penalty under each.
    ``set_router(name)``
        install a different routing policy mid-run.
    ``predict_rewarm(core, label)`` / ``rewarm(core, label, now)``
        preview (``(warm_s, affinity_gain)``) / execute a cache re-warm
        on one node (``rewarm`` returns the instant the charged fill
        window closes).

    The cluster builds one per run from its own closures; tests may pass
    any object with the same attributes (it is pure duck typing — this
    class only documents the contract and carries the attributes)."""

    def __init__(self, **hooks) -> None:
        self.__dict__.update(hooks)


@dataclass
class ControlPlane:
    """One SLO autopilot arbitrating switch, scale, reroute, and rewarm.

    Construction mirrors :class:`~repro.serving.autoscale.
    AutoscaleController` (the protocol the cluster's membership
    machinery drives): fleet bounds, pressure/utilization thresholds,
    patience and cooldown, an optional forced ``schedule``.  On top of
    those:

    ``actions``
        the enabled action classes (any subset of :data:`ACTION_CLASSES`;
        disabling a class removes its candidates from arbitration — the
        property-test lever that collapses the autopilot onto the
        stacked or static baselines).
    ``horizon_s``
        how far ahead a candidate's recurring costs/savings are priced
        (an extra node's idle draw, a reroute's per-query saving).
        Effectively the planning window one decision is accountable for.
    ``node_cost_w``
        the exchange rate between the fleet cost metric's two axes:
        joule-equivalents one node-second costs.  At the default 1.0 the
        plane optimizes ``fleet_energy_j + node_seconds`` — exactly the
        Pareto bench's cost axis.

    One instance is a reusable template: the cluster clones it per run
    (:meth:`clone`) and binds the clone to the run's executors
    (:meth:`begin_run`), so back-to-back runs stay independent.
    """

    min_nodes: int
    max_nodes: int
    initial_nodes: int | None = None
    actions: tuple = ACTION_CLASSES
    hi_pressure: float = 0.75
    lo_pressure: float = 0.25
    util_hi: float = 0.95
    util_lo: float = 0.85
    patience: int = 4
    patience_down: int = 32
    cooldown_s: float = 0.25
    horizon_s: float = 2.0
    node_cost_w: float = 1.0
    schedule: tuple = ()

    events: list[ScaleEvent] = field(default_factory=list, init=False)
    decisions: list[ControlDecision] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if not 1 <= self.min_nodes <= self.max_nodes:
            raise ValueError("need 1 <= min_nodes <= max_nodes")
        if self.initial_nodes is None:
            self.initial_nodes = self.min_nodes
        if not self.min_nodes <= self.initial_nodes <= self.max_nodes:
            raise ValueError("initial_nodes must be in [min_nodes, max_nodes]")
        unknown = set(self.actions) - set(ACTION_CLASSES)
        if unknown:
            raise ValueError(
                f"unknown action classes {sorted(unknown)}; "
                f"expected a subset of {ACTION_CLASSES}"
            )
        self.actions = tuple(dict.fromkeys(self.actions))
        if not 0.0 <= self.lo_pressure < self.hi_pressure:
            raise ValueError("need 0 <= lo_pressure < hi_pressure")
        if self.util_hi <= 0 or self.util_lo <= 0:
            raise ValueError("util_hi / util_lo must be positive")
        if self.patience < 1 or self.patience_down < 1:
            raise ValueError("patience / patience_down must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        if self.horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if self.node_cost_w < 0:
            raise ValueError("node_cost_w must be non-negative")
        for entry in self.schedule:
            time_s, kind = entry
            if kind not in ("up", "down"):
                raise ValueError(f"schedule kind must be up/down, got {kind!r}")
            if time_s < 0:
                raise ValueError("schedule times must be non-negative")
        self._hysteresis = Hysteresis()
        self._ops: AutopilotOps | None = None
        # Switch windows still open under the one committed fleet-wide
        # switch decision; the fleet hysteresis releases when the last
        # node's window closes.
        self._inflight_switches = 0
        self._demand_fast = 0.0
        self._demand_slow = 0.0
        self._demand_t: float | None = None

    # ---- lifecycle -------------------------------------------------------

    def clone(self) -> "ControlPlane":
        """A fresh plane with the same configuration and no state."""
        return ControlPlane(
            min_nodes=self.min_nodes,
            max_nodes=self.max_nodes,
            initial_nodes=self.initial_nodes,
            actions=self.actions,
            hi_pressure=self.hi_pressure,
            lo_pressure=self.lo_pressure,
            util_hi=self.util_hi,
            util_lo=self.util_lo,
            patience=self.patience,
            patience_down=self.patience_down,
            cooldown_s=self.cooldown_s,
            horizon_s=self.horizon_s,
            node_cost_w=self.node_cost_w,
            schedule=self.schedule,
        )

    def begin_run(self, ops: AutopilotOps) -> None:
        """Bind to one cluster run's executors and clear all state."""
        self._ops = ops
        self._hysteresis.reset()
        self._inflight_switches = 0
        self._demand_fast = 0.0
        self._demand_slow = 0.0
        self._demand_t = None
        self.events = []
        self.decisions = []

    # ---- the arbiter -----------------------------------------------------

    def on_tick(self, core, tick) -> None:
        """One dispatched batch anywhere in the fleet: classify the
        operating point, price every candidate, and commit at most one
        action once the fleet-wide hysteresis agrees.

        Wired as every core's ``on_control_tick`` by the cluster's
        autopilot mode — the single observer that replaced the stacked
        per-controller hooks."""
        ops = self._ops
        if ops is None:
            raise RuntimeError(
                "ControlPlane.on_tick before begin_run(ops); the plane "
                "must be bound to a cluster run's executors first"
            )
        self._observe_demand(tick.now, tick.batch_queries)
        if self._hysteresis.blocked(_FLEET, tick.now):
            return
        timeout = core.batcher.timeout_s
        pressure = queue_pressure(tick.wait_s, ops.sla_s)
        # Effective window utilization: the resident path's service time
        # plus everything else the dispatch pays on the device (fabric
        # exchange, cache misses — tick.extra_s), against the batching
        # window.  The extra term is what makes a cache re-warm or a
        # reroute a *capacity* action here: they shrink extra_s.
        util = window_utilization(
            tick.path, tick.batch_size, timeout, floor_guard=True
        )
        if timeout > 0:
            util += tick.extra_s / timeout
        if pressure >= self.hi_pressure or util >= self.util_hi:
            mode = "surge"
        elif queue_pressure(tick.queue_s, ops.sla_s) <= self.lo_pressure:
            # Calm keys on the device-queue component alone: at a quiet
            # trough every batch still waits out the flush window, which
            # must not read as load (same rule as the autoscaler's).
            mode = "calm"
        else:
            self._hysteresis.clear(core.node_id)
            self._hysteresis.clear(_FLEET)
            return
        # Patience accumulates on the operating MODE, per node: ticks
        # arrive interleaved from every node in the fleet, and different
        # nodes are legitimately in different states (the node that just
        # switched is calm while its neighbour still drowns) — one
        # fleet-wide streak would let that interleaving reset the
        # evidence forever.  Each node's streak asks the one question
        # patience is for — is this surge/calm real or noise, *here*? —
        # while the busy/cooldown state stays fleet-wide (one action in
        # flight at a time, whatever its class), and the deciding tick's
        # arbitration picks what to do about it.
        streak = self._hysteresis.vote(core.node_id, mode)
        if mode == "calm":
            # Calm actions (drains, quality upgrades, router tweaks)
            # shrink or reshape the whole fleet, so calm is a FLEET
            # verdict: one shared streak that any node's non-calm tick
            # resets.  Surge relief stays per-node — a drowning node
            # must not wait for its idle neighbours to agree.
            fleet_calm = self._hysteresis.vote(_FLEET, "calm")
        else:
            self._hysteresis.clear(_FLEET)
            fleet_calm = 0
        if streak < self.patience:
            return
        if mode == "calm" and fleet_calm < self.patience_down:
            # Calm is never urgent: a surge is relieved at ``patience``,
            # but every calm optimization waits out ``patience_down``
            # ticks of fleet-wide agreement.  A premature join costs one
            # warm window; a premature drain or upgrade costs re-queued
            # user traffic the moment load ticks back up, and at a
            # marginal operating point the cheap calm switch would
            # otherwise thrash against the surge relief at exactly the
            # cooldown period.
            return
        candidates = self._candidates(core, tick, mode, util, pressure)
        best, execute = self._choose(candidates)
        if best is None:
            # Nothing actionable on THIS node at this instant; the
            # surge/calm evidence stays — another node's tick may hold
            # the feasible action.
            return
        self._hysteresis.begin(_FLEET)
        # The deciding node's evidence is spent: its next action needs a
        # fresh streak, not the tail of the one that just committed.
        self._hysteresis.clear(core.node_id)
        self.decisions.append(
            ControlDecision(
                time_s=tick.now,
                node_id=core.node_id,
                mode=mode,
                pressure=pressure,
                util=util,
                chosen=best.action,
                chosen_cost_j=best.cost_j,
                candidates=tuple(c for c, _ in candidates),
            )
        )
        execute()

    _TREND_FAST_TAU_S = 0.5
    _TREND_SLOW_TAU_S = 2.0
    _TREND_MARGIN = 1.05

    def _observe_demand(self, now: float, queries: int) -> None:
        """Two-horizon EWMA of the fleet arrival rate (queries/s).

        Every tick folds its batch into two exponentially-decayed rate
        estimators; each accumulator's steady-state value IS the rate,
        because an impulse of ``q`` queries contributes ``q / tau``
        decaying with time-constant ``tau`` (total area ``q``).  Arrival
        rate is the one load signal no control action perturbs — a
        switch changes service time and a join changes per-node share,
        so utilization collapses right after either and would read as
        "load falling" — which makes fast-over-slow here the plane's
        demand *trend*: rising while the half-second estimate runs ahead
        of the two-second one.
        """
        if self._demand_t is None:
            self._demand_t = now
        dt = now - self._demand_t
        self._demand_t = now
        if dt > 0:
            self._demand_fast *= math.exp(-dt / self._TREND_FAST_TAU_S)
            self._demand_slow *= math.exp(-dt / self._TREND_SLOW_TAU_S)
        self._demand_fast += queries / self._TREND_FAST_TAU_S
        self._demand_slow += queries / self._TREND_SLOW_TAU_S

    def _demand_rising(self) -> bool:
        return self._demand_fast > self._demand_slow * self._TREND_MARGIN

    # ---- candidate generation / pricing ----------------------------------

    def _candidates(self, core, tick, mode, util_eff, pressure):
        """Price every enabled action at this operating point: a list of
        ``(CandidateCost, execute)`` pairs (``execute`` is None for the
        infeasible ones and the ``hold`` baseline).

        The SLA is a *constraint*, not a term in the cost: once the
        queueing delay alone blows the target (``pressure >= 1``), or the
        resident path saturates the batching window all by itself (no
        amount of extra-time shaving can drain it), the cheap levers — a
        reroute's policy swap, a re-warm's fill window — cannot relieve
        the surge, and choosing them because they are cheap would starve
        the capacity levers behind the shared hysteresis.  They stay in
        the trace, priced, but marked infeasible; only switch and scale
        arbitrate a blown SLA."""
        out = [
            (CandidateCost("hold", 0.0, True, "keep the configuration"), None)
        ]
        resident_util = window_utilization(
            tick.path, tick.batch_size, core.batcher.timeout_s,
            floor_guard=True,
        )
        blown = mode == "surge" and (
            pressure >= 1.0 or resident_util >= self.util_hi
        )
        if "switch" in self.actions:
            out.append(self._switch_candidate(core, tick, mode))
        if "scale" in self.actions:
            out.append(self._scale_candidate(tick, mode, util_eff))
        if "reroute" in self.actions:
            out.append(self._demote(self._reroute_candidate(core, tick), blown))
        if "rewarm" in self.actions and mode == "surge":
            out.append(self._demote(self._rewarm_candidate(core, tick), blown))
        return [pair for pair in out if pair is not None]

    @staticmethod
    def _demote(pair, blown):
        """Mark a cheap-lever candidate infeasible under a blown SLA."""
        if pair is None or not blown:
            return pair
        cand, _ = pair
        if not cand.feasible:
            return pair
        return (
            CandidateCost(
                cand.action, cand.cost_j, False,
                "SLA already blown; only capacity levers arbitrate "
                f"({cand.detail})",
            ),
            None,
        )

    def _switch_candidate(self, core, tick, mode):
        ops = self._ops
        switcher = core.switcher
        if switcher is None:
            return None
        device = tick.path.device.name
        paths = switcher.candidates.get(device)
        if paths is None or len(paths) < 2:
            return None
        size = tick.batch_size
        if mode == "surge":
            size = switcher.full_batch_size(
                core, tick.batch_size, tick.batch_queries
            )
        target = switcher.desired(
            device, mode, size, ops.sla_s, tick.wait_s
        )
        resident = switcher.resident(device)
        if mode == "calm" and target.accuracy > resident.accuracy:
            # A quality upgrade must survive the next surge, not just the
            # current trough: judged at the batch size the trough happens
            # to show, a slow-but-accurate path always "fits", and the
            # first load ramp forces the switch straight back — a thrash
            # cycle at exactly the cooldown period.  Demand fit at the
            # batcher's FULL window instead.
            full = switcher.full_batch_size(
                core, tick.batch_size, tick.batch_queries
            )
            window = core.batcher.timeout_s
            if window > 0 and target.latency(full) >= self.util_lo * window:
                return (
                    CandidateCost(
                        "switch", 0.0, False,
                        f"{device}: upgrade {target.label} would saturate "
                        f"a full batch window",
                    ),
                    None,
                )
        # A committed switch is FLEET-wide: the deciding tick's signals
        # pick the target, and every active node whose resident differs
        # (and whose per-device window/cooldown is clear) switches under
        # the one decision.  Priced honestly: the sum of every laggard's
        # overhead window.
        movers = []
        overhead = 0.0
        for other in ops.active_cores():
            sw = other.switcher
            if sw is None or device not in sw.candidates:
                continue
            if sw.switching(device, tick.now):
                continue
            held = sw.resident(device)
            if held is target:
                continue
            movers.append((other, sw))
            overhead += sw.switch_overhead_s(held, target)
        if not movers:
            return (
                CandidateCost(
                    "switch", 0.0, False,
                    f"{device}: fleet already resident on {target.label} "
                    "(or switch windows/cooldowns in flight)",
                ),
                None,
            )

        def execute(now=tick.now, loop=tick.loop):
            self._inflight_switches = len(movers)
            for other, sw in movers:
                sw.start_switch(other, device, target, now, loop)

        return (
            CandidateCost(
                f"switch:{target.label}",
                overhead * self.node_cost_w,
                True,
                f"{device}: {len(movers)} node(s) -> {target.label}, "
                f"{overhead:.6f}s total window",
            ),
            execute,
        )

    def _scale_candidate(self, tick, mode, util_eff):
        ops = self._ops
        n = ops.n_members()
        idle_w = ops.idle_w()
        if mode == "surge":
            warm_s = ops.predict_join_warm_s()
            cost = warm_s * self.node_cost_w + self.horizon_s * (
                idle_w + self.node_cost_w
            )
            if n >= self.max_nodes:
                return (
                    CandidateCost(
                        "scale:up", cost, False,
                        f"fleet already at max_nodes={self.max_nodes}",
                    ),
                    None,
                )

            def execute(now=tick.now, loop=tick.loop):
                ops.start_scale_up(now, loop)

            return (
                CandidateCost(
                    "scale:up", cost, True,
                    f"join node {n}: {warm_s:.6f}s warm + {idle_w:.0f}W "
                    f"idle over the {self.horizon_s}s horizon",
                ),
                execute,
            )
        # Calm: draining reclaims a node's idle draw and occupancy, but
        # only if the survivors can absorb the load inside the window.
        cost = -self.horizon_s * (idle_w + self.node_cost_w)
        if n <= self.min_nodes:
            return (
                CandidateCost(
                    "scale:down", cost, False,
                    f"fleet already at min_nodes={self.min_nodes}",
                ),
                None,
            )
        survivors = util_eff * n / (n - 1)
        if survivors > self.util_lo:
            return (
                CandidateCost(
                    "scale:down", cost, False,
                    f"survivors' projected utilization {survivors:.3f} "
                    f"> util_lo={self.util_lo}",
                ),
                None,
            )
        if self._demand_rising():
            # The queues are calm NOW, but the arrival-rate trend says
            # more is coming: draining into a rising edge re-queues the
            # reclaimed capacity's traffic the moment it lands, and the
            # drain's saving is priced over ``horizon_s`` — a horizon
            # the trend says the calm won't survive.
            return (
                CandidateCost(
                    "scale:down", cost, False,
                    f"fleet demand rising "
                    f"({self._demand_fast:.0f} q/s over the last "
                    f"{self._TREND_FAST_TAU_S:g}s vs "
                    f"{self._demand_slow:.0f} over "
                    f"{self._TREND_SLOW_TAU_S:g}s)",
                ),
                None,
            )

        def execute(now=tick.now, loop=tick.loop):
            ops.scale_down(now, loop)

        return (
            CandidateCost(
                "scale:down", cost, True,
                f"drain node {n - 1}: reclaim {idle_w:.0f}W idle over "
                f"the {self.horizon_s}s horizon",
            ),
            execute,
        )

    def _reroute_candidate(self, core, tick):
        ops = self._ops
        names = tuple(ops.route_candidates())
        current = ops.router_name()
        alternatives = [n for n in names if n != current]
        if not alternatives:
            return None
        best_name = min(
            alternatives, key=lambda n: (ops.route_miss_s(n), n)
        )
        saving_per_query = ops.route_miss_s(current) - ops.route_miss_s(
            best_name
        )
        timeout = core.batcher.timeout_s
        # Query rate estimate: the window just dispatched this many
        # queries, so the policy saving recurs roughly that often.
        rate = tick.batch_queries / (timeout if timeout > 0 else ops.sla_s)
        cost = -saving_per_query * rate * self.horizon_s * self.node_cost_w
        if saving_per_query <= 1e-12:
            return (
                CandidateCost(
                    f"reroute:{best_name}", cost, False,
                    f"{current} already minimizes the expected miss "
                    "penalty",
                ),
                None,
            )

        def execute(now=tick.now):
            ops.set_router(best_name)
            self._hysteresis.complete(_FLEET, now, self.cooldown_s)

        return (
            CandidateCost(
                f"reroute:{best_name}", cost, True,
                f"{current} -> {best_name}: saves "
                f"{saving_per_query:.9f}s/query over the "
                f"{self.horizon_s}s horizon",
            ),
            execute,
        )

    def _rewarm_candidate(self, core, tick):
        ops = self._ops
        if core.cache is None:
            return None
        label = tick.path.label
        warm_s, gain = ops.predict_rewarm(core, label)
        cost = warm_s * self.node_cost_w
        # Marginal refills are churn, not relief: each fill window blocks
        # the node, so a re-warm must buy a real affinity step.
        if gain <= 0.02 or warm_s <= 0:
            return (
                CandidateCost(
                    "rewarm", cost, False,
                    f"node {core.node_id}: cache already warm for "
                    f"{label}",
                ),
                None,
            )

        def execute(now=tick.now):
            ready = ops.rewarm(core, label, now)
            # The fill window blocks the node like a handoff; cool down
            # from its close, not its start.
            self._hysteresis.complete(_FLEET, ready, self.cooldown_s)

        return (
            CandidateCost(
                "rewarm", cost, True,
                f"node {core.node_id}: {warm_s:.6f}s fill, "
                f"+{gain:.3f} affinity",
            ),
            execute,
        )

    @staticmethod
    def _choose(candidates):
        """The arbitration rule: cheapest feasible non-hold candidate
        (ties break by action name, so arbitration is deterministic).
        Surge relief and calm savings fall out of the same comparison —
        savings are negative costs."""
        viable = [
            (cand, execute)
            for cand, execute in candidates
            if cand.feasible and execute is not None
        ]
        if not viable:
            return None, None
        return min(viable, key=lambda pair: (pair[0].cost_j, pair[0].action))

    # ---- cluster callbacks (the AutoscaleController protocol) ------------

    def on_scale_started(self) -> None:
        """A forced (scheduled) membership change is executing: freeze
        arbitration until it completes, as a priced one would."""
        self._hysteresis.begin(_FLEET)

    def on_scale_complete(self, now: float, event: ScaleEvent) -> None:
        """A membership change's handoff finished: record it, reset the
        evidence, arm the shared cooldown."""
        self.events.append(event)
        self._hysteresis.complete(_FLEET, now, self.cooldown_s)

    def on_switch_complete(self, core, device: str, now: float) -> None:
        """One node's switch window elapsed (relayed by the cluster's
        ``on_switch`` hook): release the fleet hysteresis once the LAST
        window of the committed fleet-wide switch closes.  The switch
        controllers' own per-device cooldowns were armed separately."""
        if self._inflight_switches > 1:
            self._inflight_switches -= 1
            return
        self._inflight_switches = 0
        self._hysteresis.complete(_FLEET, now, self.cooldown_s)

    @property
    def total_warm_s(self) -> float:
        """Device time blocked by scale-up warm windows across the run."""
        return sum(e.warm_s for e in self.events)
