"""Elastic autoscaling: grow and shrink the serving fleet mid-run.

The cluster built in PR 2 is a fixed-size fleet: a flash crowd can only
be shed, never absorbed, and the night-time trough burns a full fleet's
idle power serving a trickle.  This module adds the missing control
loop.  An :class:`AutoscaleController` watches the same pressure signals
the :class:`~repro.core.switching.SwitchController` uses per device —
the dispatched batch's worst queueing delay against the SLA, and the
resident path's service time saturating the batching window (the
leading indicator that fires before a backlog commits to the timeline)
— but acts on the *fleet*: add a kernel core when the signals say
surge, drain one when they say calm.

Scale operations are priced, never free:

- **Scale-up (live shard handoff in)** — the joining node must warm its
  slice of the next epoch's :class:`~repro.serving.cluster.ShardMap`
  over the cluster fabric before it can serve.  The warm window is
  ``link.transfer_time(slice bytes)`` (:func:`shard_slice_bytes`) and is
  charged as a :meth:`~repro.serving.devices.DeviceTimeline.block` on
  every one of the joining node's devices — the same mechanism that
  prices the Fig-15 representation-switch window.  The node joins the
  routable set only when the warm completes.
  When the cluster runs the MP-Cache tier (:mod:`repro.serving.cache`),
  the join's cache warm — the hottest rows of the shard groups it will
  serve *remotely* (its shard slice already covers the owned ones) —
  streams inside the same charged window
  (``ScaleEvent.cache_warm_bytes``), so the node is not just routable
  but *warm* when it starts serving.
- **Scale-down (live shard handoff out)** — the draining node stops
  admitting, hands its queued-but-undispatched queries back through the
  cluster's existing failover re-injection path (they re-enter the event
  heap at the drain instant and are re-routed to the surviving members),
  and lets its already-dispatched batches run to completion.  Nothing is
  displaced, so — unlike a node *failure* — scale-down wastes zero
  energy and loses zero queries: the **zero-loss drain invariant**,
  property-tested in ``tests/property/test_prop_engine_parity.py``.
  Under the cache tier the drain also donates its hot set to the
  surviving replicas (``ScaleEvent.cache_donated_bytes``), so the rows
  the fleet worked to cache outlive the node that cached them.

Membership is always a prefix ``{0..k-1}`` of the node ids (joins take
the lowest inactive id, drains retire the highest active id), and every
membership change starts a new *epoch*: the cluster re-shards the same
tables onto the new member count (:meth:`~repro.analysis.sharding.
ShardingPlan.cardinalities` + :func:`~repro.analysis.sharding.
greedy_shard`) and rebuilds the :class:`~repro.serving.cluster.ShardMap`
the routers and the exchange pricing consult.  Scale operations are
strictly serialized — a join's warm window must complete before the
next operation may start — which is what keeps the prefix invariant
(and therefore the shard-map indexing) sound.

Thrash control mirrors the switch controller's: a hysteresis band
between ``lo_pressure`` and ``hi_pressure`` where nothing triggers,
``patience`` (and the more conservative ``patience_down``) consecutive
agreeing dispatches before an operation starts, and ``cooldown_s`` of
frozen membership after each operation completes.

See docs/autoscaling.md for the guided tour and
``benchmarks/test_autoscaling.py`` for the headline result: under a
diurnal flash-crowd scenario the elastic fleet matches a statically
max-provisioned fleet's SLA-violation rate at materially fewer
node-seconds (and therefore less idle energy), with every handoff
charged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.sharding import ShardingPlan, replica_nodes
from repro.serving.signals import Hysteresis, queue_pressure, window_utilization

# The autoscaler governs the fleet as a whole: one hysteresis key, two
# possible streak targets.
_FLEET = "fleet"
_UP = "up"
_DOWN = "down"


def shard_slice_bytes(
    plan: ShardingPlan, node_id: int, replication: int = 1
) -> int:
    """Embedding-table bytes node ``node_id`` hosts under ``plan``.

    This is the payload a joining node must pull over the cluster fabric
    before it can serve its shard slice: every feature slice whose
    replication chain (:func:`~repro.analysis.sharding.replica_nodes` —
    the same placement rule :meth:`~repro.serving.cluster.ShardMap.
    from_plan` chains ownership by) lands on the node, at
    ``rows x dim x 4`` bytes.
    """
    if not 0 <= node_id < plan.n_nodes:
        raise ValueError("node_id out of range for the plan")
    if not 1 <= replication <= plan.n_nodes:
        raise ValueError("replication must be in [1, n_nodes]")
    total = 0
    for slices in plan.assignment:
        for anchor, rows in slices:
            if node_id in replica_nodes(anchor, replication, plan.n_nodes):
                total += rows * plan.dim * 4
    return total


@dataclass(frozen=True)
class ScaleEvent:
    """One fleet membership change, fully priced."""

    time_s: float  # when the decision fired
    ready_s: float  # when the new membership serves (== time_s for "down")
    kind: str  # "up" | "down"
    node_id: int  # the node joining or draining
    n_members: int  # fleet size after the operation
    warm_bytes: int = 0  # shard slice streamed to a joining node
    warm_s: float = 0.0  # its fabric transfer window (charged as a block)
    reinjected: int = 0  # queries a draining node handed back
    # Hot rows streamed alongside the shard slice so the join starts warm
    # (cluster cache tier only; included in warm_s's charged window).
    cache_warm_bytes: int = 0
    # Hot-set bytes a drain donated to the surviving replicas' caches.
    cache_donated_bytes: int = 0


@dataclass
class AutoscaleController:
    """Decide when the fleet grows or shrinks, and never thrash.

    One controller instance governs one cluster run; the cluster clones
    its configured template per run (:meth:`clone`) so back-to-back runs
    of one simulator stay independent and deterministic.

    Decision rule, evaluated once per dispatched batch anywhere in the
    fleet (the cluster feeds every core's ``on_control_tick`` observer
    here), reusing the shared :mod:`repro.serving.signals` vocabulary: pressure = the batch's worst member wait (batching fill
    + device queue) / the run SLA, and window saturation as the leading
    surge indicator.

    - **surge** — pressure >= ``hi_pressure``, or the batch's service
      time saturating the batching window (window utilization =
      ``path.latency(batch) / batch_timeout`` >= ``util_hi``, the
      leading indicator that fires before a backlog commits to the
      timeline): on ``patience`` consecutive dispatches -> **scale up**
      (if below ``max_nodes``).
    - **calm** — the *device-queue* component of the wait alone
      (``queue_s``, batching fill excluded — at a quiet trough every
      batch still waits out the flush window, which must not read as
      load) <= ``lo_pressure`` of the SLA, **and** the post-drain
      projection holds: window utilization scaled by ``n / (n-1)`` (the
      load the survivors would inherit) stays <= ``util_lo``.  On
      ``patience_down`` consecutive dispatches -> **scale down** (if
      above ``min_nodes``).  Draining is deliberately more patient than
      joining: a premature join costs one warm window, a premature drain
      costs re-queued user traffic.
    - anything in between resets both streaks.

    ``schedule`` forces membership changes at fixed times regardless of
    pressure — ``((t, "up"), (t2, "down"), ...)`` — the hook benchmarks
    and the scale-2-4-2 accounting property test drive.

    ``initial_nodes`` (default ``min_nodes``) sets the membership at
    ``t == 0``.
    """

    min_nodes: int
    max_nodes: int
    initial_nodes: int | None = None
    hi_pressure: float = 0.75
    lo_pressure: float = 0.25
    util_hi: float = 0.95
    util_lo: float = 0.85
    patience: int = 8
    patience_down: int = 32
    cooldown_s: float = 0.5
    schedule: tuple = ()

    events: list[ScaleEvent] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if not 1 <= self.min_nodes <= self.max_nodes:
            raise ValueError("need 1 <= min_nodes <= max_nodes")
        if self.initial_nodes is None:
            self.initial_nodes = self.min_nodes
        if not self.min_nodes <= self.initial_nodes <= self.max_nodes:
            raise ValueError("initial_nodes must be in [min_nodes, max_nodes]")
        if not 0.0 <= self.lo_pressure < self.hi_pressure:
            raise ValueError("need 0 <= lo_pressure < hi_pressure")
        if self.util_hi <= 0 or self.util_lo <= 0:
            raise ValueError("util_hi / util_lo must be positive")
        if self.patience < 1 or self.patience_down < 1:
            raise ValueError("patience / patience_down must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        for entry in self.schedule:
            time_s, kind = entry
            if kind not in ("up", "down"):
                raise ValueError(f"schedule kind must be up/down, got {kind!r}")
            if time_s < 0:
                raise ValueError("schedule times must be non-negative")
        # Shared thrash control (one fleet-wide key): the up/down streaks,
        # the in-progress freeze, and the post-operation cooldown all live
        # in the same Hysteresis the switch controller uses per device.
        self._hysteresis = Hysteresis()

    # ---- lifecycle -------------------------------------------------------

    def clone(self) -> "AutoscaleController":
        """A fresh controller with the same configuration and no state."""
        return AutoscaleController(
            min_nodes=self.min_nodes,
            max_nodes=self.max_nodes,
            initial_nodes=self.initial_nodes,
            hi_pressure=self.hi_pressure,
            lo_pressure=self.lo_pressure,
            util_hi=self.util_hi,
            util_lo=self.util_lo,
            patience=self.patience,
            patience_down=self.patience_down,
            cooldown_s=self.cooldown_s,
            schedule=self.schedule,
        )

    # ---- the decision ----------------------------------------------------

    def observe(
        self, core, path, wait_s: float, queue_s: float, batch_size: int,
        batch_queries: int, sla_s: float, n_members: int, now: float,
    ) -> str | None:
        """One dispatched batch anywhere in the fleet: update the streaks
        and return ``"up"`` / ``"down"`` when hysteresis says the fleet
        must move (``None`` otherwise — by far the common case).

        ``wait_s`` is the batch's worst member wait, ``queue_s`` its
        device-queue component alone; ``batch_size`` counts samples,
        ``batch_queries`` the queries that carried them; ``n_members`` is
        the current fleet size (bounds are checked here so a streak at a
        bound neither fires nor resets the evidence it accumulated).
        """
        if self._hysteresis.blocked(_FLEET, now):
            return None
        pressure = queue_pressure(wait_s, sla_s)
        # Window utilization with the floor guard: a path whose singleton
        # latency already exceeds the timeout would read as saturated
        # forever, so there the wait/queue pressures are the only
        # trustworthy signals and util drops out of both branches.
        util = window_utilization(
            path, batch_size, core.batcher.timeout_s, floor_guard=True
        )
        if pressure >= self.hi_pressure or util >= self.util_hi:
            # Bounds are checked after the vote so a streak at the fleet
            # ceiling neither fires nor loses the evidence it accumulated.
            streak = self._hysteresis.vote(_FLEET, _UP)
            if streak >= self.patience and n_members < self.max_nodes:
                self._hysteresis.begin(_FLEET)
                return "up"
        elif queue_pressure(queue_s, sla_s) <= self.lo_pressure and (
            n_members <= 1
            or util * n_members / (n_members - 1) <= self.util_lo
        ):
            streak = self._hysteresis.vote(_FLEET, _DOWN)
            if streak >= self.patience_down and n_members > self.min_nodes:
                self._hysteresis.begin(_FLEET)
                return "down"
        else:
            self._hysteresis.clear(_FLEET)
        return None

    # ---- cluster callbacks -----------------------------------------------

    def on_scale_started(self) -> None:
        """A forced (scheduled) operation is executing: freeze decisions
        until it completes, exactly as a pressure-driven one would."""
        self._hysteresis.begin(_FLEET)

    def on_scale_complete(self, now: float, event: ScaleEvent) -> None:
        """The operation's handoff finished: record it, reset the
        evidence, and arm the cooldown."""
        self.events.append(event)
        self._hysteresis.complete(_FLEET, now, self.cooldown_s)

    @property
    def total_warm_s(self) -> float:
        """Device time blocked by shard warm windows across the run."""
        return sum(e.warm_s for e in self.events)
