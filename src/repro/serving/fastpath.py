"""The array fast path: a vectorized single-node serving engine.

The event kernel (:mod:`repro.serving.engine`) pays Python-level cost for
every ARRIVAL/FLUSH/FINISH event — fundamentally per *event*, which caps
the engine-scale benchmark around an order of magnitude over the seed
reference loop and puts a production *day* of traffic (10M+ queries from
millions of users, the ROADMAP north star) out of reach. This module
replaces the event loop for the single-node case with closed-form array
accounting over the column query stream
(:class:`~repro.data.queries.QueryArrays`):

**Batch formation is precomputable.** On one node, a batch's membership
and dispatch time depend only on the sorted arrival times, the batch
capacity ``B``, and the flush timeout — never on dispatch outcomes: a
batch starting at query ``s`` ends at
``min(s + B, #arrivals <= arrival[s] + timeout)`` and dispatches at its
filling arrival (full) or at ``arrival[s] + timeout`` (flush). FINISH
events only decrement counters, so no heap survives
(:func:`plan_batches`).

**Batch pricing is vectorizable.** Service times for every batch total
come from one :meth:`~repro.core.paths.PathProfile.latency_many` pass per
candidate path — bit-equal to the kernel's per-batch scalar calls — and
routing replays each scheduler's decision rule against those tables
(:func:`_make_router`). Shed policies evaluate as per-batch masks over
the members' wait vector; outcomes land block-wise in preallocated
columns and reach the sink through
:meth:`~repro.serving.metrics.StreamingMetrics.observe_many` (streaming)
or one block materialization pass (records).

**Parity is the contract.** For every supported configuration the fast
path reproduces the kernel's records bit for bit — same floats, same
commit order — pinned by ``tests/property/test_prop_engine_parity.py``
across shed policies, batch sizes, schedulers, and multi-tenant SLAs;
the kernel remains the reference semantics. Unknown scheduler or policy
subclasses degrade gracefully: routing falls back to the scheduler's own
``select_batch`` and shedding to per-member ``admit`` calls, preserving
exactness at reduced (still batch-level, never event-level) speed.

What the fast path does **not** cover — and
:class:`~repro.serving.simulator.ServingSimulator` rejects up front —
is anything that injects events between batches: runtime representation
switching, the cluster's failure/membership control plane, autoscaling.
Those remain event-kernel territory; ``serve --fastpath`` enforces the
same boundary at the CLI.
"""

from __future__ import annotations

import numpy as np

from repro.core.online import (
    GreedyLatencyScheduler,
    MultiPathScheduler,
    Scheduler,
    StaticScheduler,
    TableSwitchScheduler,
)
from repro.data.queries import QueryArrays
from repro.serving.devices import DeviceTimeline
from repro.serving.engine import RecordSink, StreamingSink, query_energy
from repro.serving.metrics import QueryRecord, ServingResult, StreamingMetrics
from repro.serving.policies import (
    DeadlineAware,
    DropLate,
    NoShed,
    ShedPolicy,
    make_policy,
)

DROPPED_LABEL = "DROPPED"


# ---- batch formation ------------------------------------------------------


def plan_batches(
    arrivals: np.ndarray, max_batch_size: int, timeout_s: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precompute every batch's ``[start, end)`` slice and dispatch time.

    Single-node batch boundaries are a pure function of the sorted
    arrival vector: the kernel's flush timer for a batch starting at
    ``s`` fires at ``arrivals[s] + timeout_s``, and same-instant arrivals
    pop before that timer (the event loop seeds arrivals with the lowest
    sequence numbers), so the batch extends to
    ``min(s + max_batch_size, searchsorted(arrivals, deadline, "right"))``.
    A full batch dispatches at its filling arrival's timestamp, a flushed
    one at the deadline — exactly the event semantics, with no heap.

    Returns ``(starts, ends, dispatch_times)`` as parallel arrays.
    """
    n = int(arrivals.size)
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=np.float64)
    if max_batch_size == 1:
        starts = np.arange(n, dtype=np.int64)
        return starts, starts + 1, arrivals.astype(np.float64, copy=True)
    deadlines = arrivals + timeout_s
    limits = np.searchsorted(arrivals, deadlines, side="right")
    starts: list[int] = []
    ends: list[int] = []
    times: list[float] = []
    s = 0
    # The boundary chain is sequential (each start depends on the last
    # end) but touches only ~n / batch_size elements, so per-batch array
    # indexing beats materializing full python lists.
    while s < n:
        end_full = s + max_batch_size
        end_time = int(limits[s])
        if end_full <= end_time:
            end, when = end_full, float(arrivals[end_full - 1])
        else:
            end, when = end_time, float(deadlines[s])
        starts.append(s)
        ends.append(end)
        times.append(when)
        s = end
    return (
        np.asarray(starts, dtype=np.int64),
        np.asarray(ends, dtype=np.int64),
        np.asarray(times, dtype=np.float64),
    )


# ---- routing --------------------------------------------------------------


def _decide(paths, services, b, now, free_at):
    """First path minimizing projected finish (wait + service)."""
    best = None
    best_i = -1
    for i in paths:
        pool = free_at[i[1]]
        earliest = min(pool)
        wait = earliest - now
        if wait < 0.0:
            wait = 0.0
        finish = wait + services[i[0]][b]
        if best is None or finish < best:
            best = finish
            best_i = i[0]
    return best_i


def _make_router(scheduler: Scheduler, totals: np.ndarray, sla_s: float):
    """Compile a scheduler into ``route(b, now, free_at) -> (path, service)``.

    Service-time tables are precomputed per path over every batch total
    (bit-equal to the kernel's scalar pricing); each built-in scheduler's
    decision rule — including tie-breaks, which follow Python ``max`` /
    ``min`` first-winner semantics — is replayed against those tables.
    Scheduler *subclasses* (which may override selection) fall back to
    calling ``select_batch`` itself: exact, just not table-accelerated.
    """
    paths = scheduler.paths
    if type(scheduler) is StaticScheduler:
        path = paths[0]
        services = path.latency_many(totals)
        services_l = services.tolist()

        def route(b, now, free_at):
            return path, services_l[b]

        return route

    if type(scheduler) is TableSwitchScheduler:
        tables = [(i, p.device.name) for i, p in enumerate(paths)]
        services = [p.latency_many(totals).tolist() for p in paths]

        def route(b, now, free_at):
            # Queue-blind: lowest profiled service time, first wins ties.
            best_i = 0
            best = services[0][b]
            for i, _ in tables[1:]:
                s = services[i][b]
                if s < best:
                    best, best_i = s, i
            return paths[best_i], best

        return route

    if type(scheduler) is GreedyLatencyScheduler:
        entries = [(i, p.device.name) for i, p in enumerate(paths)]
        services = [p.latency_many(totals).tolist() for p in paths]

        def route(b, now, free_at):
            i = _decide(entries, services, b, now, free_at)
            return paths[i], services[i][b]

        return route

    if type(scheduler) is MultiPathScheduler:
        services = [p.latency_many(totals).tolist() for p in paths]
        by_kind = []
        for kind in scheduler.preference:
            group = [
                (i, p.device.name, p.accuracy)
                for i, p in enumerate(paths)
                if p.kind == kind
            ]
            if group:
                by_kind.append(group)
        fallback = [
            (i, p.device.name)
            for i, p in enumerate(paths)
            if p.kind == "table"
        ] or [(i, p.device.name) for i, p in enumerate(paths)]

        def route(b, now, free_at):
            for group in by_kind:
                best_key = None
                best_i = -1
                for i, device, accuracy in group:
                    pool = free_at[device]
                    earliest = min(pool)
                    wait = earliest - now
                    if wait < 0.0:
                        wait = 0.0
                    finish = wait + services[i][b]
                    if finish <= sla_s:
                        key = (accuracy, -finish)
                        if best_key is None or key > best_key:
                            best_key, best_i = key, i
                if best_i >= 0:
                    return paths[best_i], services[best_i][b]
            i = _decide(fallback, services, b, now, free_at)
            return paths[i], services[i][b]

        return route

    def route(b, now, free_at):
        decision = scheduler.select_batch(
            int(totals[b]), sla_s, now, free_at
        )
        return decision.path, decision.service_s

    return route


# ---- outcome columns ------------------------------------------------------


class _Columns:
    """Preallocated outcome columns, filled block-wise in commit order."""

    __slots__ = (
        "index", "size", "arrival", "start", "finish", "code", "energy",
        "dropped", "sla", "cursor",
    )

    def __init__(self, n: int) -> None:
        self.index = np.empty(n, dtype=np.int64)
        self.size = np.empty(n, dtype=np.int64)
        self.arrival = np.empty(n, dtype=np.float64)
        self.start = np.empty(n, dtype=np.float64)
        self.finish = np.empty(n, dtype=np.float64)
        self.code = np.empty(n, dtype=np.int32)
        self.energy = np.zeros(n, dtype=np.float64)
        self.dropped = np.zeros(n, dtype=np.bool_)
        self.sla = np.empty(n, dtype=np.float64)
        self.cursor = 0


class _Labels:
    """Interned (path label, accuracy) pairs the code column indexes."""

    __slots__ = ("names", "accuracies", "_codes")

    def __init__(self) -> None:
        self.names: list[str] = []
        self.accuracies: list[float] = []
        self._codes: dict[int, int] = {}

    def code_of(self, key: int, name: str, accuracy: float) -> int:
        """Intern one (label, accuracy) pair under an identity key."""
        code = self._codes.get(key)
        if code is None:
            code = len(self.names)
            self._codes[key] = code
            self.names.append(name)
            self.accuracies.append(accuracy)
        return code


# ---- the vectorized engine ------------------------------------------------


def _simulate_columns(
    scheduler: Scheduler,
    arrivals: np.ndarray,
    sizes: np.ndarray,
    indices: np.ndarray,
    slas: np.ndarray,
    policy: ShedPolicy,
    max_batch_size: int,
    batch_timeout_s: float,
    track_energy: bool,
    sla_s: float,
) -> tuple[_Columns, _Labels]:
    """Run the batch plan through routing/shedding/pricing into columns."""
    n = int(arrivals.size)
    cols = _Columns(n)
    labels = _Labels()
    if n == 0:
        return cols, labels
    timeline = DeviceTimeline(scheduler.paths)
    free_at = timeline.free_at
    starts, ends, times = plan_batches(arrivals, max_batch_size, batch_timeout_s)
    totals = np.add.reduceat(sizes, starts)
    route = _make_router(scheduler, totals, sla_s)

    no_shed = isinstance(policy, NoShed)
    drop_late = type(policy) is DropLate
    deadline = type(policy) is DeadlineAware
    slack = policy.slack if deadline else 1.0
    drop_code = -1

    starts_l = starts.tolist()
    ends_l = ends.tolist()
    times_l = times.tolist()
    totals_l = totals.tolist()
    # Only the generic-policy fallback reads per-query SLAs as floats;
    # materializing the full list up front would cost ~4% of a 10M run.
    slas_l: list[float] | None = None

    for b in range(len(starts_l)):
        s = starts_l[b]
        e = ends_l[b]
        now = times_l[b]
        path, service_s = route(b, now, free_at)
        device = path.device.name
        server, free = timeline.earliest(device)
        projected_start = free if free > now else now

        members = slice(s, e)
        admitted_count = e - s
        admitted_size = totals_l[b]
        compute_s = service_s
        if not no_shed:
            wait = projected_start - arrivals[members]
            batch_slas = slas[members]
            if drop_late:
                ok = wait <= batch_slas
            elif deadline:
                ok = wait + service_s <= slack * batch_slas
            else:
                if slas_l is None:
                    slas_l = slas.tolist()
                ok = np.fromiter(
                    (
                        policy.admit(w, service_s, slas_l[s + j])
                        for j, w in enumerate(wait.tolist())
                    ),
                    dtype=np.bool_, count=e - s,
                )
            admitted_count = int(ok.sum())
            if admitted_count < e - s:
                if drop_code < 0:
                    drop_code = labels.code_of(-1, DROPPED_LABEL, 0.0)
                shed = np.flatnonzero(~ok) + s
                c = cols.cursor
                k = shed.size
                cols.index[c:c + k] = indices[shed]
                cols.size[c:c + k] = sizes[shed]
                cols.arrival[c:c + k] = arrivals[shed]
                cols.start[c:c + k] = arrivals[shed]
                cols.finish[c:c + k] = arrivals[shed]
                cols.code[c:c + k] = drop_code
                cols.dropped[c:c + k] = True
                cols.sla[c:c + k] = slas[shed]
                cols.cursor = c + k
                if admitted_count == 0:
                    continue
                members = np.flatnonzero(ok) + s
                admitted_size = int(sizes[members].sum())
                compute_s = path.latency(admitted_size)

        finish = projected_start + compute_s
        timeline.commit(device, server, finish)
        scheduler.on_batch_dispatched(
            path, admitted_size, projected_start, finish
        )
        batch_energy = 0.0
        if track_energy:
            batch_energy = query_energy(path, admitted_size, compute_s)
        code = labels.code_of(id(path), path.label, path.accuracy)
        c = cols.cursor
        k = admitted_count
        batch_sizes = sizes[members]
        cols.index[c:c + k] = indices[members]
        cols.size[c:c + k] = batch_sizes
        cols.arrival[c:c + k] = arrivals[members]
        cols.start[c:c + k] = projected_start
        cols.finish[c:c + k] = finish
        cols.code[c:c + k] = code
        if batch_energy:
            if k == 1:
                cols.energy[c] = batch_energy
            else:
                cols.energy[c:c + k] = (
                    batch_energy * batch_sizes / admitted_size
                )
        cols.sla[c:c + k] = slas[members]
        cols.cursor = c + k
    return cols, labels


# ---- sink delivery --------------------------------------------------------


def _flush_columns(cols: _Columns, labels: _Labels, sink) -> None:
    """Deliver the committed columns to a sink in bulk.

    :class:`~repro.serving.engine.RecordSink` gets one block
    materialization pass (records in commit order, bit-equal to the
    kernel's); :class:`~repro.serving.engine.StreamingSink` folds each
    label group through ``observe_many``; any other sink receives the
    kernel's per-outcome ``observe`` calls in commit order.
    """
    n = cols.cursor
    if isinstance(sink, StreamingSink):
        metrics = sink.result
        codes = cols.code[:n]
        for code, name in enumerate(labels.names):
            group = np.flatnonzero(codes == code)
            if not group.size:
                continue
            dropped = bool(cols.dropped[group[0]])
            metrics.observe_many(
                cols.size[group], cols.arrival[group], cols.start[group],
                cols.finish[group], name, labels.accuracies[code],
                energies=cols.energy[group], dropped=dropped,
                slas=cols.sla[group],
            )
        return
    columns = zip(
        cols.index[:n].tolist(), cols.size[:n].tolist(),
        cols.arrival[:n].tolist(), cols.start[:n].tolist(),
        cols.finish[:n].tolist(), cols.code[:n].tolist(),
        cols.energy[:n].tolist(), cols.dropped[:n].tolist(),
        cols.sla[:n].tolist(),
    )
    names = labels.names
    accuracies = labels.accuracies
    if isinstance(sink, RecordSink):
        records = sink.result.records
        default_sla = sink.result.sla_s
        for idx, size, arrival, start, finish, code, energy, drop, sla in columns:
            records.append(QueryRecord(
                index=idx, size=size, arrival_s=arrival, start_s=start,
                finish_s=finish, path_label=names[code],
                accuracy=accuracies[code], energy_j=energy, dropped=drop,
                sla_s=None if sla == default_sla else sla,
            ))
        return
    for idx, size, arrival, start, finish, code, energy, drop, sla in columns:
        sink.observe(
            idx, size, arrival, start, finish, names[code],
            accuracies[code], energy, drop, sla,
        )


# ---- entry points ---------------------------------------------------------


def _sla_vector(arrays: QueryArrays, sla_s: float, sla_by_tenant) -> np.ndarray:
    """Per-query SLA targets (scenario ``sla_for`` semantics, columnized)."""
    slas = np.full(len(arrays), float(sla_s))
    if sla_by_tenant:
        for code, name in enumerate(arrays.tenants):
            if name:
                slas[arrays.tenant_codes == code] = float(
                    sla_by_tenant.get(name, sla_s)
                )
    return slas


def _sorted_stream(arrays: QueryArrays) -> QueryArrays:
    """The stream in arrival order (stable, matching the kernel's sort)."""
    arrivals = arrays.arrival_s
    if arrivals.size < 2 or bool((arrivals[1:] >= arrivals[:-1]).all()):
        return arrays
    order = np.argsort(arrivals, kind="stable")
    return QueryArrays(
        index=arrays.index[order], size=arrays.size[order],
        arrival_s=arrivals[order], tenant_codes=arrays.tenant_codes[order],
        tenants=arrays.tenants, user=arrays.user[order],
    )


def run_fastpath(
    scheduler: Scheduler,
    scenario,
    sink,
    *,
    policy: ShedPolicy | str = "none",
    max_batch_size: int = 1,
    batch_timeout_s: float = 0.0,
    track_energy: bool = True,
) -> None:
    """Drive one scenario through the array fast path into ``sink``.

    The drop-in replacement for the kernel's ``run_kernel`` drive in the
    single-node façade: same scenario, same sinks, same records —
    ``ServingSimulator(engine="fast")`` lands here.
    """
    arrays = _sorted_stream(scenario.queries.as_arrays())
    slas = _sla_vector(arrays, scenario.sla_s, scenario.sla_by_tenant)
    cols, labels = _simulate_columns(
        scheduler, arrays.arrival_s, arrays.size, arrays.index, slas,
        make_policy(policy), max_batch_size, batch_timeout_s, track_energy,
        scenario.sla_s,
    )
    _flush_columns(cols, labels, sink)


def serve_arrays(
    scheduler: Scheduler,
    arrays: QueryArrays,
    *,
    sla_s: float = 0.010,
    sla_by_tenant: dict[str, float] | None = None,
    shed_policy: ShedPolicy | str = "none",
    max_batch_size: int = 1,
    batch_timeout_s: float = 0.0,
    track_energy: bool = True,
    streaming: bool = True,
) -> StreamingMetrics | ServingResult:
    """Serve a column query stream end to end, no objects anywhere.

    The day-scale entry point: pair with
    :func:`~repro.data.queries.generate_query_arrays` to simulate 10M+
    query streams that never materialize a single ``Query`` —
    constant-memory with ``streaming=True`` (the default), exact records
    with ``streaming=False``.
    """
    if max_batch_size < 1:
        raise ValueError("max_batch_size must be >= 1")
    if batch_timeout_s < 0:
        raise ValueError("batch_timeout_s must be non-negative")
    stream = _sorted_stream(arrays)
    slas = _sla_vector(stream, sla_s, sla_by_tenant)
    sink = (
        StreamingSink(scheduler.name, sla_s)
        if streaming else RecordSink(scheduler.name, sla_s)
    )
    cols, labels = _simulate_columns(
        scheduler, stream.arrival_s, stream.size, stream.index, slas,
        make_policy(shed_policy), max_batch_size, batch_timeout_s,
        track_energy, sla_s,
    )
    _flush_columns(cols, labels, sink)
    return sink.result
