"""Multi-node serving cluster: N serving-kernel cores behind a router.

PR 1 made one node fast; production fleets (Section 6.9) shard the
embedding tables across *nodes* and load-balance queries over them.  This
module turns the repo's static placement machinery into a running
simulation: a :class:`~repro.analysis.sharding.ShardingPlan` says where
table shards live, :mod:`repro.hardware.topology` link costs price the
all-to-all embedding exchange each batch pays, and a pluggable
:mod:`~repro.serving.routing` router decides which node serves each query.

Every node is one :class:`~repro.serving.engine.EngineCore` — the same
kernel the single-node :class:`~repro.serving.simulator.ServingSimulator`
wraps — driven off one shared :class:`~repro.serving.engine.EventLoop`.
This module owns only what is cluster-specific: routing and edge
admission (backpressure, shard coverage), the per-batch exchange pricing
hook, failure injection, and fleet-level accounting.  Batching,
shedding, and energy apportionment live in :mod:`repro.serving.engine`,
in exactly one place.

The data/locality model (:class:`ShardMap`):

- Every sample gathers ``n_features x dim x 4`` bytes of embeddings.
- A ``hot_fraction`` share of that gather hits *user-partitioned* tables:
  each query's user rows hash to one shard group (``group_of``), and a
  node serves them locally iff it replicates that group.  This is the
  production user-sharding pattern that makes request routing matter.
- The cold remainder (item-side tables) is placed by the sharding plan; a
  node serves locally whatever features it hosts, roughly ``replication /
  n_nodes`` of the cold bytes.
- Whatever is not local crosses the cluster fabric once per batch as a
  personalized all-to-all, priced by ``(p-1) * alpha + bytes * beta``
  (:func:`~repro.hardware.topology.alltoall_exchange_time`) and added to
  the batch's service time.

Replication chains each shard group onto the ``replication`` nodes that
follow its anchor, so ``replication >= 2`` survives any single node
failure.  A failure (``fail_at`` / ``fail_node``) kills the node
mid-simulation: its admission queue and in-flight batches are re-injected
at the failure instant and re-routed to surviving replicas (energy already
burned on the lost batches is tallied as ``wasted_energy_j``).  With
``replication == 1`` the dead node's shards are simply gone — displaced
*and* subsequent queries drop, the blunt lesson that sharded serving
without replication has no fault story.

Backpressure: ``max_queue`` bounds each node's outstanding queries
(admission queue + dispatched batches).  Full nodes are withheld from the
router; if every node is full the query is shed at the cluster edge and
recorded as dropped.

A 1-node cluster reproduces :class:`~repro.serving.simulator.
ServingSimulator` record-for-record (zero exchange, trivial routing) —
pinned in ``tests/unit/test_cluster.py`` and property-tested over random
scenarios in ``tests/property/test_prop_engine_parity.py``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.analysis.sharding import ShardingPlan
from repro.core.online import Scheduler
from repro.data.queries import Query
from repro.hardware.topology import (
    ETHERNET_100G,
    LinkSpec,
    alltoall_exchange_time,
)
from repro.serving.engine import (
    ARRIVAL,
    CONTROL,
    EngineCore,
    RecordSink,
    StreamingSink,
    drop_query,
    run_kernel,
)
from repro.serving.metrics import ServingResult, StreamingMetrics
from repro.serving.policies import ShedPolicy, make_policy
from repro.serving.routing import Router, make_router
from repro.serving.workload import ServingScenario

# A cluster node *is* an engine core; the name is kept for the router API
# and for callers of the PR-2 interface.
ClusterNode = EngineCore

_KNUTH = 2654435761  # multiplicative hash for query -> shard group


@dataclass(frozen=True)
class ShardMap:
    """Shard-group ownership + per-sample remote-byte model for a cluster."""

    n_nodes: int
    replication: int
    hot_fraction: float
    bytes_per_sample: int
    # owners[g] = nodes replicating shard group g (anchor g + successors).
    owners: tuple[frozenset[int], ...]
    # cold_local_share[n] = fraction of item-side bytes node n hosts locally.
    cold_local_share: tuple[float, ...]

    @classmethod
    def from_plan(
        cls,
        plan: ShardingPlan,
        replication: int = 1,
        hot_fraction: float = 0.5,
    ) -> "ShardMap":
        n = plan.n_nodes
        if not 1 <= replication <= n:
            raise ValueError("replication must be in [1, n_nodes]")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        owners = tuple(
            frozenset((g + k) % n for k in range(replication)) for g in range(n)
        )
        # A node hosts a feature's bytes locally in proportion to the rows
        # it holds: a table-wise feature is fully local to its replicas,
        # while a row-split feature is local only for the row range each
        # node carries (a lookup's row lands locally with that fraction).
        # Replication chains slices the same way it chains groups.
        n_features = len(plan.assignment)
        feature_bytes = plan.dim * 4
        local_bytes = [0.0] * n
        for slices in plan.assignment:
            total_rows = sum(rows for _, rows in slices)
            if total_rows == 0:
                continue
            for node, rows in slices:
                share = feature_bytes * rows / total_rows
                for k in range(replication):
                    local_bytes[(node + k) % n] += share
        total = max(1, n_features * feature_bytes)
        return cls(
            n_nodes=n,
            replication=replication,
            hot_fraction=hot_fraction,
            bytes_per_sample=n_features * feature_bytes,
            owners=owners,
            cold_local_share=tuple(b / total for b in local_bytes),
        )

    def group_of(self, query: Query) -> int:
        """The shard group holding this query's user-partitioned rows."""
        return ((query.index * _KNUTH) & 0xFFFFFFFF) % self.n_nodes

    def remote_bytes_per_sample(self, node_id: int, group: int) -> float:
        """Embedding bytes one sample pulls over the fabric when served
        on ``node_id`` with its hot rows in ``group``."""
        hot = self.hot_fraction * self.bytes_per_sample
        cold = self.bytes_per_sample - hot
        hot_remote = 0.0 if node_id in self.owners[group] else hot
        return hot_remote + cold * (1.0 - self.cold_local_share[node_id])

    def coverage_ok(self, alive: set[int]) -> bool:
        """True while every shard group keeps at least one alive replica."""
        return all(owner_set & alive for owner_set in self.owners)


@dataclass
class ClusterResult:
    """A cluster run: merged serving metrics plus fleet-level accounting."""

    result: ServingResult | StreamingMetrics
    n_nodes: int
    router: str
    replication: int
    per_node_served: list[int]
    per_node_dropped: list[int]
    rerouted: int = 0  # queries re-homed by failover
    lost: int = 0  # displaced queries unservable (replication too low)
    edge_drops: int = 0  # shed at the cluster edge (backpressure / coverage)
    failed_nodes: list[int] = field(default_factory=list)
    wasted_energy_j: float = 0.0
    switches: int = 0  # runtime representation switches across the fleet
    switch_overhead_s: float = 0.0  # device time blocked by switching

    def summary(self) -> dict[str, float]:
        merged = dict(self.result.summary())
        merged.update(
            n_nodes=self.n_nodes,
            rerouted=self.rerouted,
            lost=self.lost,
            edge_drops=self.edge_drops,
            wasted_energy_j=self.wasted_energy_j,
        )
        if self.switches:
            merged.update(
                switches=self.switches,
                switch_overhead_s=self.switch_overhead_s,
            )
        return merged


class ClusterSimulator:
    """Compose N serving-kernel cores behind a router.

    ``scheduler``: one :class:`~repro.core.online.Scheduler` shared by every
    node (safe — the built-in schedulers are stateless given ``free_at``),
    or a sequence of per-node scheduler instances for stateful subclasses.

    ``plan``: the :class:`~repro.analysis.sharding.ShardingPlan` placing the
    model's tables; ``plan.n_nodes`` fixes the cluster size.

    ``router``: ``"round-robin"`` | ``"least-loaded"`` | ``"locality"`` or a
    :class:`~repro.serving.routing.Router` instance.

    ``shed_policy`` / ``max_batch_size`` / ``batch_timeout_s`` mirror the
    single-node :class:`~repro.serving.simulator.ServingSimulator` and apply
    per node.  ``max_queue`` bounds each node's outstanding queries (0 =
    unbounded).  ``fail_at`` / ``fail_node`` schedule one node failure.

    ``switch_controller``: optional :class:`~repro.core.switching.
    SwitchController`; each node gets its own clone (and its own scheduler
    copy, so one node's representation switch never leaks into another's
    path set).
    """

    def __init__(
        self,
        scheduler: Scheduler | list[Scheduler],
        plan: ShardingPlan,
        router: str | Router = "round-robin",
        replication: int = 1,
        link: LinkSpec = ETHERNET_100G,
        hot_fraction: float = 0.5,
        shed_policy: str | ShedPolicy = "none",
        max_batch_size: int = 1,
        batch_timeout_s: float = 0.0,
        max_queue: int = 0,
        fail_at: float | None = None,
        fail_node: int = 0,
        track_energy: bool = True,
        switch_controller=None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if batch_timeout_s < 0:
            raise ValueError("batch_timeout_s must be non-negative")
        if max_queue < 0:
            raise ValueError("max_queue must be non-negative")
        n_nodes = plan.n_nodes
        if isinstance(scheduler, Scheduler):
            schedulers = [scheduler] * n_nodes
        else:
            schedulers = list(scheduler)
            if len(schedulers) != n_nodes:
                raise ValueError(
                    f"need one scheduler per node: got {len(schedulers)} "
                    f"for {n_nodes} nodes"
                )
        if fail_at is not None and not 0 <= fail_node < n_nodes:
            raise ValueError("fail_node out of range")
        self.plan = plan
        self.shard_map = ShardMap.from_plan(plan, replication, hot_fraction)
        self._router_spec = router
        self.schedulers = schedulers
        self.link = link
        self.policy = make_policy(shed_policy)
        self.max_batch_size = max_batch_size
        self.batch_timeout_s = batch_timeout_s
        self.max_queue = max_queue
        self.fail_at = fail_at
        self.fail_node = fail_node
        self.track_energy = track_energy
        self.switch_controller = switch_controller
        self.scheduler_name = schedulers[0].name

    # ---- public entry points ---------------------------------------------

    def run(self, scenario: ServingScenario) -> ClusterResult:
        """Simulate and return exact, record-backed cluster metrics."""
        sink = RecordSink(self.scheduler_name, scenario.sla_s)
        return self._simulate(scenario, sink)

    def run_streaming(self, scenario: ServingScenario) -> ClusterResult:
        """Simulate with constant-memory merged metrics (O(1) per query)."""
        sink = StreamingSink(self.scheduler_name, scenario.sla_s)
        return self._simulate(scenario, sink)

    # ---- kernel façade ---------------------------------------------------

    def _make_cores(self, alive_ids: set[int]) -> list[EngineCore]:
        # The exchange hook closes over this run's alive set — per-run
        # state stays in the run, keeping the simulator reentrant.
        def exchange(core, batch):
            return self._exchange_s(core, batch, alive_ids)

        cores = []
        for node_id, sched in enumerate(self.schedulers):
            switcher = None
            if self.switch_controller is not None:
                # Residency is per node: give the node its own controller
                # clone and its own scheduler copy with a private path list.
                switcher = self.switch_controller.clone()
                sched = copy.copy(sched)
                sched.paths = list(sched.paths)
            cores.append(
                EngineCore(
                    sched,
                    self.policy,
                    max_batch_size=self.max_batch_size,
                    batch_timeout_s=self.batch_timeout_s,
                    node_id=node_id,
                    max_queue=self.max_queue,
                    track_energy=self.track_energy,
                    defer_commit=True,
                    service_extra=exchange,
                    switcher=switcher,
                )
            )
        return cores

    def _simulate(self, scenario: ServingScenario, sink) -> ClusterResult:
        alive_ids = set(range(len(self.schedulers)))
        cores = self._make_cores(alive_ids)
        router = make_router(self._router_spec, shard_map=self.shard_map)
        router.reset()
        cluster = ClusterResult(
            result=sink.result,
            n_nodes=len(cores),
            router=router.name,
            replication=self.shard_map.replication,
            per_node_served=[0] * len(cores),
            per_node_dropped=[0] * len(cores),
        )
        coverage_ok = True
        # Indices of failure-displaced queries awaiting re-admission; a
        # query only counts as rerouted once a surviving node accepts it
        # (a re-injection shed at the edge is an edge drop, not a reroute).
        reinjected: set[int] = set()

        def admit(query, now):
            candidates = [c for c in cores if c.alive and not c.full]
            if not candidates or not coverage_ok:
                reinjected.discard(query.index)
                drop_query(sink, query, scenario.sla_for(query))
                cluster.edge_drops += 1
                return None
            core = router.select_node(query, now, candidates)
            if query.index in reinjected:
                reinjected.discard(query.index)
                cluster.rerouted += 1
            return core

        def on_control(kind, payload, now, loop):
            nonlocal coverage_ok
            core = cores[payload]
            if not core.alive:
                return
            alive_ids.discard(payload)
            cluster.failed_nodes.append(payload)
            displaced, wasted = core.displace()
            cluster.wasted_energy_j += wasted
            coverage_ok = bool(alive_ids) and self.shard_map.coverage_ok(
                alive_ids
            )
            if coverage_ok:
                # Surviving replicas hold every shard: re-inject the
                # displaced queries at the failure instant for re-routing.
                for query in displaced:
                    reinjected.add(query.index)
                    loop.push(now, ARRIVAL, query)
            else:
                cluster.lost += len(displaced)
                for query in displaced:
                    drop_query(sink, query, scenario.sla_for(query))

        extra_events = ()
        if self.fail_at is not None:
            extra_events = ((self.fail_at, CONTROL, self.fail_node),)
        run_kernel(
            cores, scenario, sink, admit,
            extra_events=extra_events, on_control=on_control,
        )

        for core in cores:
            cluster.per_node_served[core.node_id] = core.served
            cluster.per_node_dropped[core.node_id] = core.shed
            if core.switcher is not None:
                cluster.switches += len(core.switcher.events)
                cluster.switch_overhead_s += core.switcher.total_overhead_s
        return cluster

    # ---- helpers ---------------------------------------------------------

    def _exchange_s(self, core: EngineCore, batch, alive_ids: set[int]) -> float:
        """Per-batch all-to-all embedding exchange on the cluster fabric."""
        remote = sum(
            q.size
            * self.shard_map.remote_bytes_per_sample(
                core.node_id, self.shard_map.group_of(q)
            )
            for q in batch
        )
        return alltoall_exchange_time(remote, len(alive_ids), self.link)
