"""Multi-node serving cluster: N event-driven node engines behind a router.

PR 1 made one node fast; production fleets (Section 6.9) shard the
embedding tables across *nodes* and load-balance queries over them.  This
module turns the repo's static placement machinery into a running
simulation: a :class:`~repro.analysis.sharding.ShardingPlan` says where
table shards live, :mod:`repro.hardware.topology` link costs price the
all-to-all embedding exchange each batch pays, and a pluggable
:mod:`~repro.serving.routing` router decides which node serves each query.

The data/locality model (:class:`ShardMap`):

- Every sample gathers ``n_features x dim x 4`` bytes of embeddings.
- A ``hot_fraction`` share of that gather hits *user-partitioned* tables:
  each query's user rows hash to one shard group (``group_of``), and a
  node serves them locally iff it replicates that group.  This is the
  production user-sharding pattern that makes request routing matter.
- The cold remainder (item-side tables) is placed by the sharding plan; a
  node serves locally whatever features it hosts, roughly ``replication /
  n_nodes`` of the cold bytes.
- Whatever is not local crosses the cluster fabric once per batch as a
  personalized all-to-all, priced by ``(p-1) * alpha + bytes * beta``
  (:func:`~repro.hardware.topology.alltoall_exchange_time`) and added to
  the batch's service time.

Replication chains each shard group onto the ``replication`` nodes that
follow its anchor, so ``replication >= 2`` survives any single node
failure.  A failure (``fail_at`` / ``fail_node``) kills the node
mid-simulation: its admission queue and in-flight batches are re-injected
at the failure instant and re-routed to surviving replicas (energy already
burned on the lost batches is tallied as ``wasted_energy_j``).  With
``replication == 1`` the dead node's shards are simply gone — displaced
*and* subsequent queries drop, the blunt lesson that sharded serving
without replication has no fault story.

Backpressure: ``max_queue`` bounds each node's outstanding queries
(admission queue + dispatched batches).  Full nodes are withheld from the
router; if every node is full the query is shed at the cluster edge and
recorded as dropped.

A 1-node cluster reproduces :class:`~repro.serving.simulator.
ServingSimulator` record-for-record (zero exchange, trivial routing) —
pinned in ``tests/unit/test_cluster.py``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.analysis.sharding import ShardingPlan
from repro.core.online import Scheduler
from repro.data.queries import Query
from repro.hardware.topology import (
    ETHERNET_100G,
    LinkSpec,
    alltoall_exchange_time,
)
from repro.serving.metrics import ServingResult, StreamingMetrics
from repro.serving.policies import ShedPolicy, make_policy
from repro.serving.routing import Router, make_router
from repro.serving.simulator import (
    _RecordSink,
    _StreamingSink,
    apportion_energy,
    query_energy,
    shed_batch,
)
from repro.serving.workload import ServingScenario

_ARRIVAL = 0
_FLUSH = 1
_FINISH = 2
_FAIL = 3

_KNUTH = 2654435761  # multiplicative hash for query -> shard group


@dataclass(frozen=True)
class ShardMap:
    """Shard-group ownership + per-sample remote-byte model for a cluster."""

    n_nodes: int
    replication: int
    hot_fraction: float
    bytes_per_sample: int
    # owners[g] = nodes replicating shard group g (anchor g + successors).
    owners: tuple[frozenset[int], ...]
    # cold_local_share[n] = fraction of item-side bytes node n hosts locally.
    cold_local_share: tuple[float, ...]

    @classmethod
    def from_plan(
        cls,
        plan: ShardingPlan,
        replication: int = 1,
        hot_fraction: float = 0.5,
    ) -> "ShardMap":
        n = plan.n_nodes
        if not 1 <= replication <= n:
            raise ValueError("replication must be in [1, n_nodes]")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        owners = tuple(
            frozenset((g + k) % n for k in range(replication)) for g in range(n)
        )
        # A node hosts a feature's bytes locally in proportion to the rows
        # it holds: a table-wise feature is fully local to its replicas,
        # while a row-split feature is local only for the row range each
        # node carries (a lookup's row lands locally with that fraction).
        # Replication chains slices the same way it chains groups.
        n_features = len(plan.assignment)
        feature_bytes = plan.dim * 4
        local_bytes = [0.0] * n
        for slices in plan.assignment:
            total_rows = sum(rows for _, rows in slices)
            if total_rows == 0:
                continue
            for node, rows in slices:
                share = feature_bytes * rows / total_rows
                for k in range(replication):
                    local_bytes[(node + k) % n] += share
        total = max(1, n_features * feature_bytes)
        return cls(
            n_nodes=n,
            replication=replication,
            hot_fraction=hot_fraction,
            bytes_per_sample=n_features * feature_bytes,
            owners=owners,
            cold_local_share=tuple(b / total for b in local_bytes),
        )

    def group_of(self, query: Query) -> int:
        """The shard group holding this query's user-partitioned rows."""
        return ((query.index * _KNUTH) & 0xFFFFFFFF) % self.n_nodes

    def remote_bytes_per_sample(self, node_id: int, group: int) -> float:
        """Embedding bytes one sample pulls over the fabric when served
        on ``node_id`` with its hot rows in ``group``."""
        hot = self.hot_fraction * self.bytes_per_sample
        cold = self.bytes_per_sample - hot
        hot_remote = 0.0 if node_id in self.owners[group] else hot
        return hot_remote + cold * (1.0 - self.cold_local_share[node_id])

    def coverage_ok(self, alive: set[int]) -> bool:
        """True while every shard group keeps at least one alive replica."""
        return all(owner_set & alive for owner_set in self.owners)


@dataclass
class _InFlight:
    """One dispatched batch awaiting its finish event."""

    queries: list[Query]
    outcomes: list[tuple]
    energy_j: float


class ClusterNode:
    """One node's engine state: admission queue, flush arming, server pools."""

    def __init__(self, node_id: int, scheduler: Scheduler, max_queue: int = 0) -> None:
        self.node_id = node_id
        self.scheduler = scheduler
        self.max_queue = max_queue
        self.free_at: dict[str, list[float]] = {
            path.device.name: [0.0] * path.device.concurrency
            for path in scheduler.paths
        }
        self.pending: list[Query] = []
        self.generation = 0
        self.armed = False
        self.alive = True
        self.in_flight: dict[int, _InFlight] = {}
        self.inflight_queries = 0  # admission queue + dispatched, unfinished

    @property
    def full(self) -> bool:
        return self.max_queue > 0 and self.inflight_queries >= self.max_queue

    def earliest_free_delay(self, now: float) -> float:
        earliest = min(min(pool) for pool in self.free_at.values())
        return max(0.0, earliest - now)


@dataclass
class ClusterResult:
    """A cluster run: merged serving metrics plus fleet-level accounting."""

    result: ServingResult | StreamingMetrics
    n_nodes: int
    router: str
    replication: int
    per_node_served: list[int]
    per_node_dropped: list[int]
    rerouted: int = 0  # queries re-homed by failover
    lost: int = 0  # displaced queries unservable (replication too low)
    edge_drops: int = 0  # shed at the cluster edge (backpressure / coverage)
    failed_nodes: list[int] = field(default_factory=list)
    wasted_energy_j: float = 0.0

    def summary(self) -> dict[str, float]:
        merged = dict(self.result.summary())
        merged.update(
            n_nodes=self.n_nodes,
            rerouted=self.rerouted,
            lost=self.lost,
            edge_drops=self.edge_drops,
            wasted_energy_j=self.wasted_energy_j,
        )
        return merged


class ClusterSimulator:
    """Compose N per-node event engines behind a router.

    ``scheduler``: one :class:`~repro.core.online.Scheduler` shared by every
    node (safe — the built-in schedulers are stateless given ``free_at``),
    or a sequence of per-node scheduler instances for stateful subclasses.

    ``plan``: the :class:`~repro.analysis.sharding.ShardingPlan` placing the
    model's tables; ``plan.n_nodes`` fixes the cluster size.

    ``router``: ``"round-robin"`` | ``"least-loaded"`` | ``"locality"`` or a
    :class:`~repro.serving.routing.Router` instance.

    ``shed_policy`` / ``max_batch_size`` / ``batch_timeout_s`` mirror the
    single-node :class:`~repro.serving.simulator.ServingSimulator` and apply
    per node.  ``max_queue`` bounds each node's outstanding queries (0 =
    unbounded).  ``fail_at`` / ``fail_node`` schedule one node failure.
    """

    def __init__(
        self,
        scheduler: Scheduler | list[Scheduler],
        plan: ShardingPlan,
        router: str | Router = "round-robin",
        replication: int = 1,
        link: LinkSpec = ETHERNET_100G,
        hot_fraction: float = 0.5,
        shed_policy: str | ShedPolicy = "none",
        max_batch_size: int = 1,
        batch_timeout_s: float = 0.0,
        max_queue: int = 0,
        fail_at: float | None = None,
        fail_node: int = 0,
        track_energy: bool = True,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if batch_timeout_s < 0:
            raise ValueError("batch_timeout_s must be non-negative")
        if max_queue < 0:
            raise ValueError("max_queue must be non-negative")
        n_nodes = plan.n_nodes
        if isinstance(scheduler, Scheduler):
            schedulers = [scheduler] * n_nodes
        else:
            schedulers = list(scheduler)
            if len(schedulers) != n_nodes:
                raise ValueError(
                    f"need one scheduler per node: got {len(schedulers)} "
                    f"for {n_nodes} nodes"
                )
        if fail_at is not None and not 0 <= fail_node < n_nodes:
            raise ValueError("fail_node out of range")
        self.plan = plan
        self.shard_map = ShardMap.from_plan(plan, replication, hot_fraction)
        self._router_spec = router
        self.schedulers = schedulers
        self.link = link
        self.policy = make_policy(shed_policy)
        self.max_batch_size = max_batch_size
        self.batch_timeout_s = batch_timeout_s
        self.max_queue = max_queue
        self.fail_at = fail_at
        self.fail_node = fail_node
        self.track_energy = track_energy
        self.scheduler_name = schedulers[0].name

    # ---- public entry points ---------------------------------------------

    def run(self, scenario: ServingScenario) -> ClusterResult:
        """Simulate and return exact, record-backed cluster metrics."""
        sink = _RecordSink(self.scheduler_name, scenario.sla_s)
        return self._simulate(scenario, sink)

    def run_streaming(self, scenario: ServingScenario) -> ClusterResult:
        """Simulate with constant-memory merged metrics (O(1) per query)."""
        sink = _StreamingSink(self.scheduler_name, scenario.sla_s)
        return self._simulate(scenario, sink)

    # ---- event loop ------------------------------------------------------

    def _simulate(self, scenario: ServingScenario, sink) -> ClusterResult:
        nodes = [
            ClusterNode(i, sched, self.max_queue)
            for i, sched in enumerate(self.schedulers)
        ]
        router = make_router(self._router_spec, shard_map=self.shard_map)
        router.reset()
        cluster = ClusterResult(
            result=sink.result,
            n_nodes=len(nodes),
            router=router.name,
            replication=self.shard_map.replication,
            per_node_served=[0] * len(nodes),
            per_node_dropped=[0] * len(nodes),
        )
        alive_ids = set(range(len(nodes)))
        coverage_ok = True
        # Indices of failure-displaced queries awaiting re-admission; a
        # query only counts as rerouted once a surviving node accepts it
        # (a re-injection shed at the edge is an edge drop, not a reroute).
        reinjected: set[int] = set()

        arrivals = sorted(scenario.queries, key=lambda q: q.arrival_s)
        events: list[tuple] = [
            (q.arrival_s, i, _ARRIVAL, q) for i, q in enumerate(arrivals)
        ]
        seq = len(events)
        if self.fail_at is not None:
            events.append((self.fail_at, seq, _FAIL, self.fail_node))
            seq += 1
        heapq.heapify(events)

        while events:
            time, event_seq, kind, payload = heapq.heappop(events)

            if kind == _ARRIVAL:
                query = payload
                candidates = [n for n in nodes if n.alive and not n.full]
                if not candidates or not coverage_ok:
                    reinjected.discard(query.index)
                    self._drop(query, scenario, sink)
                    cluster.edge_drops += 1
                    continue
                node = router.select_node(query, time, candidates)
                if query.index in reinjected:
                    reinjected.discard(query.index)
                    cluster.rerouted += 1
                node.pending.append(query)
                node.inflight_queries += 1
                if len(node.pending) >= self.max_batch_size:
                    seq = self._dispatch(
                        node, time, scenario, sink, cluster, alive_ids,
                        events, seq,
                    )
                elif not node.armed:
                    heapq.heappush(
                        events,
                        (
                            time + self.batch_timeout_s, seq, _FLUSH,
                            (node.node_id, node.generation),
                        ),
                    )
                    seq += 1
                    node.armed = True

            elif kind == _FLUSH:
                node_id, generation = payload
                node = nodes[node_id]
                if node.alive and generation == node.generation and node.pending:
                    seq = self._dispatch(
                        node, time, scenario, sink, cluster, alive_ids,
                        events, seq,
                    )

            elif kind == _FINISH:
                node = nodes[payload]
                batch = node.in_flight.pop(event_seq, None)
                if batch is None:
                    continue  # invalidated by a failure
                for outcome in batch.outcomes:
                    sink.observe(*outcome)
                node.inflight_queries -= len(batch.queries)
                cluster.per_node_served[payload] += len(batch.queries)

            elif kind == _FAIL:
                node = nodes[payload]
                if not node.alive:
                    continue
                node.alive = False
                alive_ids.discard(payload)
                cluster.failed_nodes.append(payload)
                coverage_ok = bool(alive_ids) and self.shard_map.coverage_ok(
                    alive_ids
                )
                displaced = list(node.pending)
                for batch in node.in_flight.values():
                    displaced.extend(batch.queries)
                    cluster.wasted_energy_j += batch.energy_j
                node.pending = []
                node.in_flight = {}
                node.inflight_queries = 0
                node.armed = False
                if coverage_ok:
                    # Surviving replicas hold every shard: re-inject the
                    # displaced queries at the failure instant for re-routing.
                    for query in displaced:
                        reinjected.add(query.index)
                        heapq.heappush(events, (time, seq, _ARRIVAL, query))
                        seq += 1
                else:
                    cluster.lost += len(displaced)
                    for query in displaced:
                        self._drop(query, scenario, sink)

        return cluster

    # ---- helpers ---------------------------------------------------------

    def _drop(self, query: Query, scenario, sink) -> None:
        sink.observe(
            query.index, query.size, query.arrival_s, query.arrival_s,
            query.arrival_s, "DROPPED", 0.0, 0.0, True,
            scenario.sla_for(query),
        )

    def _exchange_s(self, node: ClusterNode, batch, n_alive: int) -> float:
        remote = sum(
            q.size
            * self.shard_map.remote_bytes_per_sample(
                node.node_id, self.shard_map.group_of(q)
            )
            for q in batch
        )
        return alltoall_exchange_time(remote, n_alive, self.link)

    def _dispatch(
        self, node: ClusterNode, now: float, scenario, sink,
        cluster: ClusterResult, alive_ids: set[int], events: list, seq: int,
    ) -> int:
        batch = node.pending
        node.pending = []
        node.generation += 1
        node.armed = False

        total_size = sum(q.size for q in batch)
        decision = node.scheduler.select_batch(
            total_size, scenario.sla_s, now, node.free_at
        )
        path = decision.path
        servers = node.free_at[path.device.name]
        server = min(range(len(servers)), key=servers.__getitem__)
        projected_start = max(now, servers[server])
        exchange_s = self._exchange_s(node, batch, len(alive_ids))

        def on_shed(query, sla_q):
            self._drop(query, scenario, sink)
            node.inflight_queries -= 1
            cluster.per_node_dropped[node.node_id] += 1

        admitted = shed_batch(
            self.policy, batch, projected_start,
            decision.service_s + exchange_s, scenario, on_shed,
        )
        if not admitted:
            return seq

        admitted_size = total_size
        compute_s = decision.service_s
        if len(admitted) != len(batch):
            admitted_size = sum(q.size for q in admitted)
            compute_s = path.latency(admitted_size)
            exchange_s = self._exchange_s(node, admitted, len(alive_ids))
        service_s = compute_s + exchange_s
        start = projected_start
        finish = start + service_s
        servers[server] = finish
        node.scheduler.on_batch_dispatched(path, admitted_size, start, finish)

        batch_energy = 0.0
        if self.track_energy:
            # Energy covers the device pass; the fabric exchange is priced
            # in time only (NIC power is negligible next to the device TDP).
            batch_energy = query_energy(path, admitted_size, compute_s)
        outcomes = []
        for query in admitted:
            energy = apportion_energy(
                batch_energy, query.size, len(admitted), admitted_size
            )
            outcomes.append((
                query.index, query.size, query.arrival_s, start, finish,
                path.label, path.accuracy, energy, False,
                scenario.sla_for(query),
            ))
        node.in_flight[seq] = _InFlight(
            queries=admitted, outcomes=outcomes, energy_j=batch_energy
        )
        heapq.heappush(events, (finish, seq, _FINISH, node.node_id))
        return seq + 1
