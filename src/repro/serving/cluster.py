"""Multi-node serving cluster: N serving-kernel cores behind a router.

PR 1 made one node fast; production fleets (Section 6.9) shard the
embedding tables across *nodes* and load-balance queries over them.  This
module turns the repo's static placement machinery into a running
simulation: a :class:`~repro.analysis.sharding.ShardingPlan` says where
table shards live, :mod:`repro.hardware.topology` link costs price the
all-to-all embedding exchange each batch pays, and a pluggable
:mod:`~repro.serving.routing` router decides which node serves each query.

Every node is one :class:`~repro.serving.engine.EngineCore` — the same
kernel the single-node :class:`~repro.serving.simulator.ServingSimulator`
wraps — driven off one shared :class:`~repro.serving.engine.EventLoop`.
This module owns only what is cluster-specific: routing and edge
admission (backpressure, shard coverage), the per-batch exchange pricing
hook, failure injection, and fleet-level accounting.  Batching,
shedding, and energy apportionment live in :mod:`repro.serving.engine`,
in exactly one place.

The data/locality model (:class:`ShardMap`):

- Every sample gathers ``n_features x dim x 4`` bytes of embeddings.
- A ``hot_fraction`` share of that gather hits *user-partitioned* tables:
  each query's user rows hash to one shard group (``group_of``), and a
  node serves them locally iff it replicates that group.  This is the
  production user-sharding pattern that makes request routing matter.
- The cold remainder (item-side tables) is placed by the sharding plan; a
  node serves locally whatever features it hosts, roughly ``replication /
  n_nodes`` of the cold bytes.
- Whatever is not local crosses the cluster fabric once per batch as a
  personalized all-to-all, priced by ``(p-1) * alpha + bytes * beta``
  (:func:`~repro.hardware.topology.alltoall_exchange_time`) and added to
  the batch's service time.

Replication chains each shard group onto the ``replication`` nodes that
follow its anchor, so ``replication >= 2`` survives any single node
failure.  A failure (``fail_at`` / ``fail_node``) kills the node
mid-simulation: its admission queue and in-flight batches are re-injected
at the failure instant and re-routed to surviving replicas (energy already
burned on the lost batches is tallied as ``wasted_energy_j``).  With
``replication == 1`` the dead node's shards are simply gone — displaced
*and* subsequent queries drop, the blunt lesson that sharded serving
without replication has no fault story.

Backpressure: ``max_queue`` bounds each node's outstanding queries
(admission queue + dispatched batches).  Full nodes are withheld from the
router; if every node is full the query is shed at the cluster edge and
recorded as dropped.

The cache tier: pass ``cache_bytes > 0`` and every node runs a
:class:`~repro.serving.cache.NodeCache` in front of the fabric — the hot
(user-partitioned) rows a node keeps serving for groups it does *not*
own stay resident, so repeat traffic stops paying the cold all-to-all
price.  Per batch the cache splits the non-owned hot gathers into hits
(a DRAM read, charged on the batch's service time) and misses (fill
bytes that ride the all-to-all exchange and, under the LRU policy, grow
residency).  A representation switch invalidates the outgoing path's
entries and re-warms them for the incoming path inside a Fig-15-style
:meth:`~repro.serving.devices.DeviceTimeline.block`; an autoscale join
streams its cache warm alongside its shard slice (both inside the
charged warm window) and a drain donates its hot set to the surviving
replicas.  The ``"cache-affinity"`` router exploits the tier: it scores
candidates by shard locality x cache residency instead of ownership
alone.  See :mod:`repro.serving.cache` and docs/caching.md.

Elasticity: pass an :class:`~repro.serving.autoscale.AutoscaleController`
and the fleet grows and shrinks mid-run.  Membership is a prefix of the
node ids; every change re-shards the tables onto the new member count and
rebuilds the :class:`ShardMap` (a new *epoch*).  A joining node warms its
shard slice over the fabric before it serves (the warm window is charged
as a :meth:`~repro.serving.devices.DeviceTimeline.block`); a draining
node hands its queued queries back through the failover re-injection
path and lets dispatched batches finish — zero loss, zero waste.  See
:mod:`repro.serving.autoscale` and docs/autoscaling.md.

A 1-node cluster reproduces :class:`~repro.serving.simulator.
ServingSimulator` record-for-record (zero exchange, trivial routing) —
pinned in ``tests/unit/test_cluster.py`` and property-tested over random
scenarios in ``tests/property/test_prop_engine_parity.py``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.sharding import ShardingPlan, greedy_shard, replica_nodes
from repro.core.online import Scheduler
from repro.data.queries import Query
from repro.hardware.topology import (
    ETHERNET_100G,
    LinkSpec,
    alltoall_exchange_time,
)
from repro.serving.autoscale import AutoscaleController, ScaleEvent, shard_slice_bytes
from repro.serving.cache import CacheConfig, NodeCache
from repro.serving.controlplane import (
    AutopilotOps,
    ControlDecision,
    ControlPlane,
)
from repro.serving.engine import (
    ARRIVAL,
    CONTROL,
    EngineCore,
    RecordSink,
    StreamingSink,
    drop_query,
    run_kernel,
)
from repro.serving.metrics import CacheStats, ServingResult, StreamingMetrics
from repro.serving.policies import ShedPolicy, make_policy
from repro.serving.routing import Router, make_router
from repro.serving.signals import ExclusionWindow, miss_penalty_s
from repro.serving.workload import ServingScenario

if TYPE_CHECKING:  # importing SwitchEvent at runtime would close a cycle
    from repro.core.switching import SwitchEvent

# A cluster node *is* an engine core; the name is kept for the router API
# and for callers of the PR-2 interface.
ClusterNode = EngineCore

_KNUTH = 2654435761  # multiplicative hash for query -> shard group


@dataclass(frozen=True)
class ShardMap:
    """Shard-group ownership + per-sample remote-byte model for a cluster.

    ``node_base`` offsets every node id in ``owners`` (and the indexing of
    ``cold_local_share``) by a constant: a cluster composed into a multi-
    region fleet (:mod:`repro.serving.region`) keeps its shard groups
    local but its nodes live in a *global* id space, so one shared event
    loop can drive every region's cores.  Standalone clusters keep the
    default base of 0 and nothing changes.
    """

    n_nodes: int
    replication: int
    hot_fraction: float
    bytes_per_sample: int
    # owners[g] = nodes replicating shard group g (anchor g + successors).
    owners: tuple[frozenset[int], ...]
    # cold_local_share[n] = fraction of item-side bytes node n hosts locally.
    cold_local_share: tuple[float, ...]
    node_base: int = 0  # global id of this cluster's node 0

    @classmethod
    def from_plan(
        cls,
        plan: ShardingPlan,
        replication: int = 1,
        hot_fraction: float = 0.5,
        node_base: int = 0,
    ) -> "ShardMap":
        """Derive the cluster's ownership and locality model from a
        sharding plan: chain each shard group (and each table slice) onto
        ``replication`` consecutive nodes and precompute every node's
        locally-held share of the cold (item-side) bytes."""
        n = plan.n_nodes
        if not 1 <= replication <= n:
            raise ValueError("replication must be in [1, n_nodes]")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        if node_base < 0:
            raise ValueError("node_base must be non-negative")
        owners = tuple(
            frozenset(node_base + r for r in replica_nodes(g, replication, n))
            for g in range(n)
        )
        # A node hosts a feature's bytes locally in proportion to the rows
        # it holds: a table-wise feature is fully local to its replicas,
        # while a row-split feature is local only for the row range each
        # node carries (a lookup's row lands locally with that fraction).
        # Replication chains slices the same way it chains groups.
        n_features = len(plan.assignment)
        feature_bytes = plan.dim * 4
        local_bytes = [0.0] * n
        for slices in plan.assignment:
            total_rows = sum(rows for _, rows in slices)
            if total_rows == 0:
                continue
            for node, rows in slices:
                share = feature_bytes * rows / total_rows
                for replica in replica_nodes(node, replication, n):
                    local_bytes[replica] += share
        total = max(1, n_features * feature_bytes)
        return cls(
            n_nodes=n,
            replication=replication,
            hot_fraction=hot_fraction,
            bytes_per_sample=n_features * feature_bytes,
            owners=owners,
            cold_local_share=tuple(b / total for b in local_bytes),
            node_base=node_base,
        )

    def group_of(self, query: Query) -> int:
        """The shard group holding this query's user-partitioned rows.

        Keyed by ``query.user`` when the scenario models user identity
        (heavy users make their group hot), else by ``query.index``
        (uniform across groups, the pre-cache behavior)."""
        key = query.user if query.user >= 0 else query.index
        return ((key * _KNUTH) & 0xFFFFFFFF) % self.n_nodes

    def remote_bytes_per_sample(self, node_id: int, group: int) -> float:
        """Embedding bytes one sample pulls over the fabric when served
        on ``node_id`` with its hot rows in ``group``."""
        hot = self.hot_fraction * self.bytes_per_sample
        hot_remote = 0.0 if node_id in self.owners[group] else hot
        return hot_remote + self.cold_remote_bytes_per_sample(node_id)

    def cold_remote_bytes_per_sample(self, node_id: int) -> float:
        """The cold (item-side) share of one sample's fabric pull — the
        component the cache tier cannot shrink (it caches hot rows)."""
        cold = (1.0 - self.hot_fraction) * self.bytes_per_sample
        return cold * (1.0 - self.cold_local_share[node_id - self.node_base])

    def coverage_ok(self, alive: set[int]) -> bool:
        """True while every shard group keeps at least one alive replica."""
        return all(owner_set & alive for owner_set in self.owners)


@dataclass
class ClusterResult:
    """A cluster run: merged serving metrics plus fleet-level accounting."""

    result: ServingResult | StreamingMetrics
    n_nodes: int
    router: str
    replication: int
    per_node_served: list[int]
    per_node_dropped: list[int]
    rerouted: int = 0  # queries re-homed by failover
    lost: int = 0  # displaced queries unservable (replication too low)
    edge_drops: int = 0  # shed at the cluster edge (backpressure / coverage)
    failed_nodes: list[int] = field(default_factory=list)
    wasted_energy_j: float = 0.0
    switches: int = 0  # runtime representation switches across the fleet
    switch_overhead_s: float = 0.0  # device time blocked by switching
    node_seconds: float = 0.0  # total node-active time (fleet cost metric)
    idle_energy_j: float = 0.0  # idle power burned over node-active time
    scale_ups: int = 0  # autoscaling joins completed
    scale_downs: int = 0  # autoscaling drains completed
    handoff_overhead_s: float = 0.0  # device time blocked by shard warms
    scale_events: list[ScaleEvent] = field(default_factory=list)
    # Every representation switch across the fleet, time-ordered — with
    # ``scale_events`` this is the full control timeline a race between
    # mechanisms would show up in (tests pin the interlock against it).
    switch_events: list[SwitchEvent] = field(default_factory=list)
    # Fleet-merged MP-Cache tier accounting (None when the tier is off).
    cache: CacheStats | None = None
    # The autopilot's decision trace — every committed action with the
    # predicted costs of everything it beat (empty without a
    # :class:`~repro.serving.controlplane.ControlPlane`).
    control_decisions: list[ControlDecision] = field(default_factory=list)

    @property
    def fleet_energy_j(self) -> float:
        """Served-query energy plus the idle power of powered-on nodes —
        the number an elastic fleet actually shrinks."""
        return self.result.total_energy_j + self.idle_energy_j

    def summary(self) -> dict[str, float]:
        """Merged metric vocabulary: the underlying serving metrics plus
        fleet-level accounting (and scaling activity when present)."""
        merged = dict(self.result.summary())
        merged.update(
            n_nodes=self.n_nodes,
            rerouted=self.rerouted,
            lost=self.lost,
            edge_drops=self.edge_drops,
            wasted_energy_j=self.wasted_energy_j,
            node_seconds=self.node_seconds,
            idle_energy_j=self.idle_energy_j,
        )
        if self.switches:
            merged.update(
                switches=self.switches,
                switch_overhead_s=self.switch_overhead_s,
            )
        if self.scale_ups or self.scale_downs:
            merged.update(
                scale_ups=self.scale_ups,
                scale_downs=self.scale_downs,
                handoff_overhead_s=self.handoff_overhead_s,
            )
        if self.cache is not None:
            merged.update(self.cache.summary())
        if self.control_decisions:
            merged.update(control_actions=len(self.control_decisions))
        return merged


class ClusterSimulator:
    """Compose N serving-kernel cores behind a router.

    ``scheduler``: one :class:`~repro.core.online.Scheduler` shared by every
    node (safe — the built-in schedulers are stateless given ``free_at``),
    or a sequence of per-node scheduler instances for stateful subclasses.

    ``plan``: the :class:`~repro.analysis.sharding.ShardingPlan` placing the
    model's tables; ``plan.n_nodes`` fixes the cluster size.

    ``router``: ``"round-robin"`` | ``"least-loaded"`` | ``"locality"`` or a
    :class:`~repro.serving.routing.Router` instance.

    ``shed_policy`` / ``max_batch_size`` / ``batch_timeout_s`` mirror the
    single-node :class:`~repro.serving.simulator.ServingSimulator` and apply
    per node.  ``max_queue`` bounds each node's outstanding queries (0 =
    unbounded).  ``fail_at`` / ``fail_node`` schedule one node failure.

    ``switch_controller``: optional :class:`~repro.core.switching.
    SwitchController`; each node gets its own clone (and its own scheduler
    copy, so one node's representation switch never leaks into another's
    path set).

    ``autoscale``: optional :class:`~repro.serving.autoscale.
    AutoscaleController` making the fleet elastic.  The plan must be
    sized for ``autoscale.max_nodes`` (the fleet ceiling); membership
    starts at ``autoscale.initial_nodes`` and every change re-shards onto
    the new member count.  Elasticity and failure injection are mutually
    exclusive — a failure breaks the membership-prefix invariant the
    epoch shard maps index by.

    ``controlplane``: optional :class:`~repro.serving.controlplane.
    ControlPlane` — the unified SLO autopilot.  Mutually exclusive with
    ``autoscale`` (the plane *subsumes* the autoscaler: scale is one of
    its action classes), subject to the same plan-sizing/failure/
    replication rules, and composable with ``switch_controller`` (the
    plane arbitrates, the controller executes and prices) and the cache
    tier (re-warm and cache-affinity re-routing become candidate
    actions).  The run's decision trace lands in
    :attr:`ClusterResult.control_decisions`.

    ``cache_bytes`` / ``cache_policy`` / ``cache_alpha`` /
    ``cache_hot_rows``: the per-node MP-Cache tier.  ``cache_bytes > 0``
    gives every node a :class:`~repro.serving.cache.NodeCache` of that
    byte budget (``"lru"`` demand-fill or ``"static"`` preloaded
    residency); ``cache_hot_rows`` sizes the fleet-wide hot-row universe
    the per-group popularity curves are cut from (default: the plan's
    total rows scaled by ``hot_fraction``).  The ``"cache-affinity"``
    router requires the tier to be on.
    """

    def __init__(
        self,
        scheduler: Scheduler | list[Scheduler],
        plan: ShardingPlan,
        router: str | Router = "round-robin",
        replication: int = 1,
        link: LinkSpec = ETHERNET_100G,
        hot_fraction: float = 0.5,
        shed_policy: str | ShedPolicy = "none",
        max_batch_size: int = 1,
        batch_timeout_s: float = 0.0,
        max_queue: int = 0,
        fail_at: float | None = None,
        fail_node: int = 0,
        track_energy: bool = True,
        switch_controller=None,
        autoscale: AutoscaleController | None = None,
        controlplane: ControlPlane | None = None,
        cache_bytes: int = 0,
        cache_policy: str = "lru",
        cache_alpha: float = 1.05,
        cache_hot_rows: int | None = None,
        node_base: int = 0,
    ) -> None:
        if node_base < 0:
            raise ValueError("node_base must be non-negative")
        if node_base and (
            switch_controller is not None
            or autoscale is not None
            or controlplane is not None
            or fail_at is not None
        ):
            raise ValueError(
                "node_base composes a cluster into a region fleet; per-"
                "cluster controllers and failure injection are owned by "
                "the RegionSimulator there"
            )
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if batch_timeout_s < 0:
            raise ValueError("batch_timeout_s must be non-negative")
        if max_queue < 0:
            raise ValueError("max_queue must be non-negative")
        n_nodes = plan.n_nodes
        if isinstance(scheduler, Scheduler):
            schedulers = [scheduler] * n_nodes
        else:
            schedulers = list(scheduler)
            if len(schedulers) != n_nodes:
                raise ValueError(
                    f"need one scheduler per node: got {len(schedulers)} "
                    f"for {n_nodes} nodes"
                )
        if fail_at is not None and not 0 <= fail_node < n_nodes:
            raise ValueError("fail_node out of range")
        if controlplane is not None and autoscale is not None:
            raise ValueError(
                "pass either controlplane or autoscale, not both — the "
                "autopilot subsumes the autoscaler (scale is one of its "
                "action classes)"
            )
        elastic = controlplane if controlplane is not None else autoscale
        if elastic is not None:
            kind = "controlplane" if controlplane is not None else "autoscale"
            if elastic.max_nodes != n_nodes:
                raise ValueError(
                    f"the sharding plan is sized for {n_nodes} nodes but "
                    f"{kind}.max_nodes is {elastic.max_nodes}; build "
                    "the plan for the fleet ceiling"
                )
            if fail_at is not None:
                raise ValueError(
                    "elastic membership and failure injection cannot be "
                    "combined"
                )
            if replication > elastic.min_nodes:
                raise ValueError(
                    f"replication {replication} exceeds {kind}.min_nodes "
                    f"{elastic.min_nodes}; every epoch must fit its chains"
                )
        if cache_bytes < 0:
            raise ValueError("cache_bytes must be non-negative")
        if router == "cache-affinity" and cache_bytes == 0:
            raise ValueError(
                "cache-affinity routing scores nodes by cache residency; "
                "enable the cache tier (cache_bytes > 0)"
            )
        self.plan = plan
        self.node_base = node_base
        self.shard_map = ShardMap.from_plan(
            plan, replication, hot_fraction, node_base=node_base
        )
        self.cache_config = (
            CacheConfig(
                capacity_bytes=cache_bytes,
                embedding_dim=plan.dim,
                alpha=cache_alpha,
                policy=cache_policy,
            )
            if cache_bytes
            else None
        )
        if cache_hot_rows is not None and cache_hot_rows < 1:
            raise ValueError("cache_hot_rows must be positive")
        # The fleet-wide hot-row universe: the user-partitioned share of
        # the plan's rows.  Each k-member epoch cuts it into k per-group
        # popularity curves.
        self._cache_hot_total = (
            cache_hot_rows
            if cache_hot_rows is not None
            else max(1, int(hot_fraction * sum(plan.cardinalities())))
        )
        # A sample's hot gather in rows (the unit the cache counts in):
        # its user-side features, one row each.  Floored to 1 whenever a
        # hot fraction exists at all — rounding to 0 would silently make
        # every hot byte free under the cached model.
        n_hot = hot_fraction * len(plan.assignment)
        self._hot_rows_per_sample = max(1, round(n_hot)) if n_hot > 0 else 0
        self._router_spec = router
        self.schedulers = schedulers
        self.link = link
        self.policy = make_policy(shed_policy)
        self.max_batch_size = max_batch_size
        self.batch_timeout_s = batch_timeout_s
        self.max_queue = max_queue
        self.fail_at = fail_at
        self.fail_node = fail_node
        self.track_energy = track_energy
        self.switch_controller = switch_controller
        self.autoscale = autoscale
        self.controlplane = controlplane
        self.scheduler_name = schedulers[0].name
        # Epoch cache: k-member (plan, shard map) pairs are deterministic
        # functions of the ceiling plan, shared across runs.
        self._epoch_cache: dict[int, tuple[ShardingPlan, ShardMap]] = {}

    # ---- public entry points ---------------------------------------------

    def run(self, scenario: ServingScenario) -> ClusterResult:
        """Simulate and return exact, record-backed cluster metrics."""
        self._check_standalone()
        sink = RecordSink(self.scheduler_name, scenario.sla_s)
        return self._simulate(scenario, sink)

    def run_streaming(self, scenario: ServingScenario) -> ClusterResult:
        """Simulate with constant-memory merged metrics (O(1) per query)."""
        self._check_standalone()
        sink = StreamingSink(self.scheduler_name, scenario.sla_s)
        return self._simulate(scenario, sink)

    def _check_standalone(self) -> None:
        if self.node_base:
            raise ValueError(
                "a cluster built with node_base != 0 is a region member; "
                "drive it through RegionSimulator.run, not directly"
            )

    # ---- kernel façade ---------------------------------------------------

    def _hot_rows_per_group(self, k: int) -> int:
        """The per-group hot-row universe of a ``k``-member epoch."""
        return max(1, self._cache_hot_total // k)

    def _build_cache(self, k: int) -> NodeCache:
        """A fresh node cache keyed to a ``k``-member epoch's groups."""
        return self.cache_config.build(k, self._hot_rows_per_group(k))

    def _make_cores(
        self, state: "_RunState", on_control_tick=None, on_switch_extra=None
    ) -> list[EngineCore]:
        # The exchange hook closes over this run's state (membership and
        # the current epoch's shard map) — per-run state stays in the
        # run, keeping the simulator reentrant.
        def exchange(core, batch, path):
            return self._exchange_s(core, batch, path, state)

        commit = None
        rewarm_after = None
        if self.cache_config is not None:
            def commit(core, batch, path):
                self._cache_batch(core, batch, path, state, commit=True)

            if self.switch_controller is not None:
                rewarm_after = self._rewarm_after_switch
        # ``on_switch_extra`` is the control plane's completion relay;
        # the cache re-warm (which extends the blocked window) runs
        # first so the plane observes the switch at its priced close.
        if on_switch_extra is None:
            on_switch = rewarm_after
        elif rewarm_after is None:
            on_switch = on_switch_extra
        else:
            def on_switch(core, device, now):
                rewarm_after(core, device, now)
                on_switch_extra(core, device, now)

        elastic = self.controlplane or self.autoscale
        k_groups = (
            elastic.initial_nodes
            if elastic is not None
            else self.plan.n_nodes
        )
        cores = []
        for local, sched in enumerate(self.schedulers):
            node_id = self.node_base + local
            switcher = None
            if self.switch_controller is not None:
                # Residency is per node: give the node its own controller
                # clone and its own scheduler copy with a private path list.
                switcher = self.switch_controller.clone()
                sched = copy.copy(sched)
                sched.paths = list(sched.paths)
            cache = None
            if self.cache_config is not None:
                cache = self._build_cache(k_groups)
                if self.cache_config.policy == "static" and local < k_groups:
                    # Profiled residency, provisioned offline like the
                    # single-node EncoderCache.fit_static: resident paths
                    # preload in order until the byte budget is spent.
                    # Only the groups the node does NOT own — owned
                    # groups are shard-local and never consult the cache
                    # — and only initially-active members (autoscale
                    # spares warm at join time, charged).
                    initial_map = self._epoch(k_groups)[1]
                    groups = _cached_groups(node_id, initial_map)
                    for path in sched.paths:
                        cache.warm(path.label, groups)
            cores.append(
                EngineCore(
                    sched,
                    self.policy,
                    max_batch_size=self.max_batch_size,
                    batch_timeout_s=self.batch_timeout_s,
                    node_id=node_id,
                    max_queue=self.max_queue,
                    track_energy=self.track_energy,
                    defer_commit=True,
                    service_extra=exchange,
                    service_commit=commit,
                    switcher=switcher,
                    on_control_tick=on_control_tick,
                    on_switch=on_switch,
                    cache=cache,
                )
            )
        return cores

    def _epoch(self, k: int) -> tuple[ShardingPlan, ShardMap]:
        """The (plan, shard map) pair governing a ``k``-member epoch.

        The full-fleet epoch is exactly the plan the simulator was built
        with; smaller epochs re-shard the same tables onto ``k`` nodes
        (deterministic, so the pairs are cached across runs)."""
        if k == self.plan.n_nodes:
            return self.plan, self.shard_map
        cached = self._epoch_cache.get(k)
        if cached is None:
            plan = greedy_shard(self.plan.cardinalities(), self.plan.dim, k)
            cached = (
                plan,
                ShardMap.from_plan(
                    plan,
                    self.shard_map.replication,
                    self.shard_map.hot_fraction,
                    node_base=self.node_base,
                ),
            )
            self._epoch_cache[k] = cached
        return cached

    def _simulate(self, scenario: ServingScenario, sink) -> ClusterResult:
        n_total = len(self.schedulers)
        plane = self.controlplane.clone() if self.controlplane else None
        controller = (
            plane if plane is not None
            else self.autoscale.clone() if self.autoscale else None
        )
        k0 = controller.initial_nodes if controller else n_total
        state = _RunState(self._epoch(k0)[1], list(range(k0)))
        state.router = make_router(
            self._router_spec, shard_map=state.shard_map, link=self.link
        )
        state.router.reset()
        cluster = ClusterResult(
            result=sink.result,
            n_nodes=n_total,
            router=state.router.name,
            replication=self.shard_map.replication,
            per_node_served=[0] * n_total,
            per_node_dropped=[0] * n_total,
        )
        coverage_ok = True
        # Indices of displaced/drained queries awaiting re-admission; a
        # query only counts as rerouted once a surviving node accepts it
        # (a re-injection shed at the edge is an edge drop, not a reroute).
        reinjected: set[int] = set()
        # Fleet accounting: when each member last became active, and the
        # per-node active seconds accumulated by completed drains.
        activated_at: dict[int, float] = {node: 0.0 for node in state.members}
        active_seconds: dict[int, float] = {}
        # One scale operation at a time: a join's warm window must finish
        # before the next operation may start, which is what keeps
        # membership a prefix of the node ids (and the epoch shard maps'
        # node indexing sound).
        pending_join: dict | None = None

        # Cross-mechanism interlock (the switch/scale race fix): a
        # committed scale operation suppresses switch evaluation until
        # its warm window (or drain cooldown) closes, and a committed
        # switch suppresses scale evaluation until the device serves
        # again — a controller reacting to the queue spike the *other*
        # mechanism induced would thrash at marginal operating points.
        excl = ExclusionWindow()

        def control_tick(core, tick):
            # Stacked-but-independent PR-3/4/5 controllers behind the
            # kernel's single observer: switch first (the PR-3 hook ran
            # first historically), then the fleet controller.
            if core.switcher is not None and not excl.blocked(
                "switch", tick.now
            ):
                before = len(core.switcher.events)
                core.switcher.on_tick(core, tick)
                if len(core.switcher.events) > before:
                    excl.acquire(
                        "switch", core.switcher.events[-1].ready_s
                    )
            if controller is None or excl.blocked("scale", tick.now):
                return
            decision = controller.observe(
                core, tick.path, tick.wait_s, tick.queue_s,
                tick.batch_size, tick.batch_queries, scenario.sla_s,
                len(state.members), tick.now,
            )
            if decision == "up":
                start_scale_up(tick.now, tick.loop)
                excl.acquire("scale", pending_join["ready_s"])
            elif decision == "down":
                scale_down(tick.now, tick.loop)
                # A drain has no warm window; hold the interlock for the
                # controller's own cooldown so a switch cannot fire into
                # the survivors' inherited-load spike.
                excl.acquire("scale", tick.now + controller.cooldown_s)

        if plane is not None:
            # Autopilot mode: the plane IS the single observer (the
            # stacked path and its exclusion window never run), and the
            # switch-completion relay releases its fleet hysteresis.
            on_tick, on_switch_extra = plane.on_tick, plane.on_switch_complete
        else:
            on_tick = control_tick if controller else None
            on_switch_extra = None
        cores = self._make_cores(
            state, on_control_tick=on_tick, on_switch_extra=on_switch_extra
        )
        for core in cores[k0:]:
            core.alive = False  # powered off until a scale-up joins them
        state.active = cores[:k0]

        def start_scale_up(now, loop):
            nonlocal pending_join
            node = len(state.members)
            next_plan, next_map = self._epoch(node + 1)
            warm_bytes = shard_slice_bytes(
                next_plan, node, self.shard_map.replication
            )
            join_cache = None
            cache_warm_bytes = 0
            if self.cache_config is not None:
                # The join's cache warms alongside its shard slice: the
                # hottest rows of the groups it will serve *remotely*
                # (its shard slice already covers the owned ones) stream
                # inside the same charged window, so the node starts warm.
                join_cache = self._build_cache(node + 1)
                cache_warm_bytes = join_cache.warm(
                    cores[node].scheduler.paths[0].label,
                    _cached_groups(node, next_map),
                )
            warm_s = self.link.transfer_time(warm_bytes + cache_warm_bytes)
            core = cores[node]
            ready = now
            for device in core.timeline.free_at:
                ready = max(ready, core.timeline.block(device, now, warm_s))
            pending_join = {
                "node": node, "map": next_map, "warm_bytes": warm_bytes,
                "warm_s": warm_s, "decided_s": now, "ready_s": ready,
                "cache": join_cache, "cache_warm_bytes": cache_warm_bytes,
            }
            loop.push(ready, CONTROL, ("join", node))

        def rekey_caches(k):
            # A new epoch re-sharded the tables: every member's cache is
            # keyed by a group space that no longer exists.
            if self.cache_config is None:
                return
            hot_rows = self._hot_rows_per_group(k)
            for member in state.active:
                if member.cache is not None:
                    member.cache.rekey(k, hot_rows)

        def finish_scale_up(now):
            nonlocal pending_join
            join, pending_join = pending_join, None
            node = join["node"]
            core = cores[node]
            core.revive()
            state.members.append(node)
            rekey_caches(len(state.members))
            if join["cache"] is not None:
                # Install the warmed cache; counters the node accumulated
                # in an earlier membership stint carry over.
                join["cache"].stats.merge(core.cache.stats)
                core.cache = join["cache"]
            state.active.append(core)
            state.shard_map = join["map"]
            state.router.update_shard_map(state.shard_map)
            activated_at[node] = now
            cluster.scale_ups += 1
            cluster.handoff_overhead_s += join["warm_s"]
            event = ScaleEvent(
                time_s=join["decided_s"], ready_s=now, kind="up",
                node_id=node, n_members=len(state.members),
                warm_bytes=join["warm_bytes"], warm_s=join["warm_s"],
                cache_warm_bytes=join["cache_warm_bytes"],
            )
            cluster.scale_events.append(event)
            controller.on_scale_complete(now, event)

        def scale_down(now, loop):
            node = state.members.pop()
            core = cores[node]
            state.active.remove(core)
            state.shard_map = self._epoch(len(state.members))[1]
            state.router.update_shard_map(state.shard_map)
            donated_bytes = 0
            if core.cache is not None:
                # The drain donates its hot set: survivors absorb an even
                # share into the groups they serve remotely under the new
                # epoch (owned groups never consult the cache), so the
                # rows the fleet worked to cache outlive the node.
                rekey_caches(len(state.members))
                donated = core.cache.donate()
                share = donated // max(1, len(state.active))
                for survivor in state.active:
                    donated_bytes += survivor.cache.receive(
                        survivor.scheduler.paths[0].label, share,
                        _cached_groups(survivor.node_id, state.shard_map),
                    )
            handed_back = core.drain()
            for query in handed_back:
                reinjected.add(query.index)
                loop.push(now, ARRIVAL, query)
            # The node stays powered until its dispatched batches finish.
            busy_until = max(
                max(pool) for pool in core.timeline.free_at.values()
            )
            active_seconds[node] = active_seconds.get(node, 0.0) + (
                max(now, busy_until) - activated_at.pop(node)
            )
            cluster.scale_downs += 1
            event = ScaleEvent(
                time_s=now, ready_s=now, kind="down", node_id=node,
                n_members=len(state.members), reinjected=len(handed_back),
                cache_donated_bytes=donated_bytes,
            )
            cluster.scale_events.append(event)
            controller.on_scale_complete(now, event)

        def admit(query, now):
            candidates = [c for c in state.active if c.alive and not c.full]
            if not candidates or not coverage_ok:
                reinjected.discard(query.index)
                drop_query(sink, query, scenario.sla_for(query))
                cluster.edge_drops += 1
                return None
            core = state.router.select_node(query, now, candidates)
            if query.index in reinjected:
                reinjected.discard(query.index)
                cluster.rerouted += 1
            return core

        def on_fail(node, now, loop):
            nonlocal coverage_ok
            core = cores[node]
            if not core.alive:
                return
            state.active.remove(core)
            cluster.failed_nodes.append(node)
            displaced, wasted = core.displace()
            cluster.wasted_energy_j += wasted
            alive_ids = {c.node_id for c in state.active}
            coverage_ok = bool(alive_ids) and state.shard_map.coverage_ok(
                alive_ids
            )
            if coverage_ok:
                # Surviving replicas hold every shard: re-inject the
                # displaced queries at the failure instant for re-routing.
                for query in displaced:
                    reinjected.add(query.index)
                    loop.push(now, ARRIVAL, query)
            else:
                cluster.lost += len(displaced)
                for query in displaced:
                    drop_query(sink, query, scenario.sla_for(query))
            active_seconds[node] = active_seconds.get(node, 0.0) + (
                now - activated_at.pop(node)
            )

        def on_control(kind, payload, now, loop):
            if isinstance(payload, int):
                on_fail(payload, now, loop)
                return
            tag, op = payload
            if tag == "join":
                finish_scale_up(now)
                return
            # tag == "scale": a forced (scheduled) membership change.
            if pending_join is not None:
                # Serialize behind the in-flight join; the join's event
                # carries an earlier sequence number, so at the retry
                # instant it is guaranteed to have completed.
                loop.push(pending_join["ready_s"], CONTROL, payload)
                return
            # A forced membership change perturbs the fleet exactly like
            # a reactive one: it must hold the same interlock, or the
            # switch controller reads the join's warm-window queue spike
            # as switch evidence (the race the interlock exists to fix).
            if op == "up" and len(state.members) < controller.max_nodes:
                controller.on_scale_started()
                start_scale_up(now, loop)
                excl.acquire("scale", pending_join["ready_s"])
            elif op == "down" and len(state.members) > controller.min_nodes:
                controller.on_scale_started()
                scale_down(now, loop)
                excl.acquire("scale", now + controller.cooldown_s)

        if plane is not None:
            plane.begin_run(
                self._autopilot_ops(
                    scenario, state, cores, start_scale_up, scale_down
                )
            )

        extra_events: list[tuple] = []
        if self.fail_at is not None:
            extra_events.append((self.fail_at, CONTROL, self.fail_node))
        if controller is not None:
            for time_s, op in controller.schedule:
                extra_events.append((time_s, CONTROL, ("scale", op)))
        end_s = run_kernel(
            cores, scenario, sink, admit,
            extra_events=tuple(extra_events), on_control=on_control,
        )

        for node, since in activated_at.items():
            active_seconds[node] = active_seconds.get(node, 0.0) + (
                end_s - since
            )
        for node, seconds in active_seconds.items():
            cluster.node_seconds += seconds
            cluster.idle_energy_j += seconds * _node_idle_w(cores[node])
        if self.cache_config is not None:
            cluster.cache = CacheStats()
        for core in cores:
            cluster.per_node_served[core.node_id] = core.served
            cluster.per_node_dropped[core.node_id] = core.shed
            if core.switcher is not None:
                cluster.switches += len(core.switcher.events)
                cluster.switch_overhead_s += core.switcher.total_overhead_s
                cluster.switch_events.extend(core.switcher.events)
            if cluster.cache is not None and core.cache is not None:
                cluster.cache.merge(core.cache.stats)
        cluster.switch_events.sort(key=lambda e: e.time_s)
        # A mid-run reroute changes the installed policy; report what the
        # fleet ended on, and ship the autopilot's decision trace.
        cluster.router = state.router.name
        if plane is not None:
            cluster.control_decisions = plane.decisions
        return cluster

    # ---- helpers ---------------------------------------------------------

    def _autopilot_ops(
        self, scenario, state: "_RunState", cores, start_scale_up, scale_down
    ) -> AutopilotOps:
        """The executor surface the autopilot prices and drives — the
        cluster's own machinery, closed over this run's state.

        Predictions reuse the exact pricing the executors charge: a
        join's warm window is the same shard-slice + cache-warm transfer
        :meth:`_simulate`'s ``start_scale_up`` blocks the joining node
        for (memoized per membership count — it is deterministic), a
        re-warm's window is what :meth:`~repro.serving.cache.NodeCache.
        warm` would actually move, and a reroute's saving prices each
        policy's expected hot-miss fabric penalty with the same
        :func:`~repro.serving.signals.miss_penalty_s` the
        cache-affinity router scores candidates by (ownership for
        placement-aware policies, residency credit for
        ``"cache-affinity"``, the fleet mean for blind ones)."""
        n_total = len(cores)
        route_names = ["round-robin", "least-loaded", "locality"]
        if self.cache_config is not None:
            route_names.append("cache-affinity")
        join_warm_s: dict[int, float] = {}

        def predict_join_warm_s():
            node = len(state.members)
            if node >= n_total:
                return 0.0
            warm = join_warm_s.get(node)
            if warm is None:
                next_plan, next_map = self._epoch(node + 1)
                warm_bytes = shard_slice_bytes(
                    next_plan, node, self.shard_map.replication
                )
                if self.cache_config is not None:
                    cache_bytes, _ = self._build_cache(node + 1).predict_warm(
                        cores[node].scheduler.paths[0].label,
                        _cached_groups(node, next_map),
                    )
                    warm_bytes += cache_bytes
                warm = join_warm_s[node] = self.link.transfer_time(warm_bytes)
            return warm

        def route_miss_s(name):
            shard_map = state.shard_map
            if not state.active:
                return 0.0
            hot_bytes = shard_map.hot_fraction * shard_map.bytes_per_sample
            placement_aware = name in ("locality", "cache-affinity")
            total = 0.0
            for group in range(shard_map.n_nodes):
                affinities = []
                for member in state.active:
                    if member.node_id in shard_map.owners[group]:
                        affinities.append(1.0)
                    elif name == "cache-affinity" and member.cache is not None:
                        affinities.append(member.cache.affinity(group))
                    else:
                        affinities.append(0.0)
                affinity = (
                    max(affinities) if placement_aware
                    else sum(affinities) / len(affinities)
                )
                total += miss_penalty_s(affinity, hot_bytes, self.link)
            return total / shard_map.n_nodes

        def set_router(name):
            state.router = make_router(
                name, shard_map=state.shard_map, link=self.link
            )
            state.router.reset()

        def predict_rewarm(core, label):
            warm_bytes, gain = core.cache.predict_warm(
                label, _cached_groups(core.node_id, state.shard_map)
            )
            if not warm_bytes:
                return 0.0, gain
            return self.link.transfer_time(warm_bytes), gain

        def rewarm(core, label, now):
            warmed_bytes = core.cache.warm(
                label, _cached_groups(core.node_id, state.shard_map)
            )
            if not warmed_bytes:
                return now
            # Priced exactly like the post-switch re-warm: the fill
            # rides the fabric and blocks the node's devices.
            warm_s = self.link.transfer_time(warmed_bytes)
            core.cache.stats.rewarm_s += warm_s
            ready = now
            for device in core.timeline.free_at:
                ready = max(ready, core.timeline.block(device, now, warm_s))
            return ready

        return AutopilotOps(
            sla_s=scenario.sla_s,
            n_members=lambda: len(state.members),
            active_cores=lambda: list(state.active),
            # The marginal node's idle draw (homogeneous fleets make the
            # choice moot; heterogeneous ones price the next join).
            idle_w=lambda: _node_idle_w(
                cores[min(len(state.members), n_total - 1)]
            ),
            predict_join_warm_s=predict_join_warm_s,
            start_scale_up=start_scale_up,
            scale_down=scale_down,
            router_name=lambda: state.router.name,
            route_candidates=lambda: tuple(route_names),
            route_miss_s=route_miss_s,
            set_router=set_router,
            predict_rewarm=predict_rewarm,
            rewarm=rewarm,
        )

    def _exchange_s(
        self, core: EngineCore, batch, path, state: "_RunState"
    ) -> float:
        """Per-batch all-to-all embedding exchange on the cluster fabric.

        With the cache tier on, the batch's non-owned hot gathers split
        into cache hits (a local DRAM read on the routed path's device)
        and misses (fill bytes that ride the all-to-all); this call is
        pure — the split is committed once per dispatched batch by
        :meth:`_cache_batch`."""
        shard_map = state.shard_map
        if core.cache is None:
            remote = sum(
                q.size
                * shard_map.remote_bytes_per_sample(
                    core.node_id, shard_map.group_of(q)
                )
                for q in batch
            )
            return alltoall_exchange_time(remote, len(state.active), self.link)
        remote, hit_bytes = self._cache_batch(
            core, batch, path, state, commit=False
        )
        return (
            alltoall_exchange_time(remote, len(state.active), self.link)
            + hit_bytes / path.device.dram_bandwidth
        )

    def _cache_batch(
        self, core: EngineCore, batch, path, state: "_RunState", commit: bool
    ) -> tuple[float, int]:
        """One batch through the node cache: ``(remote_bytes, hit_bytes)``.

        ``commit=False`` previews the carry-exact hit/miss splits for
        pricing (sequentially, each lookup seeing the residency growth
        of the ones before it) and stashes them per core;
        ``commit=True`` — called by the engine exactly once per
        dispatched batch — applies the stashed splits verbatim, so the
        recorded counters always equal the priced ones and shed-policy
        re-pricing can never double-count a fill."""
        shard_map = state.shard_map
        cache = core.cache
        row_bytes = self.cache_config.row_bytes
        cold = shard_map.cold_remote_bytes_per_sample(core.node_id)
        remote = 0.0
        items = []
        batch_key = tuple(q.index for q in batch)
        for q in batch:
            remote += q.size * cold
            group = shard_map.group_of(q)
            if core.node_id in shard_map.owners[group]:
                continue  # hot rows are shard-local; the cache sits idle
            items.append((path.label, group, q.size * self._hot_rows_per_sample))
        pending = state.pending_cache.get(core.node_id)
        if pending is not None and pending[0] == batch_key:
            _, splits, overlay = pending
        else:
            splits, overlay = cache.preview_batch(items)
        hits = sum(h for h, _ in splits)
        misses = sum(m for _, m in splits)
        remote += misses * row_bytes
        hit_bytes = hits * row_bytes
        if commit:
            state.pending_cache.pop(core.node_id, None)
            cache.commit_batch(items, splits, overlay)
            if hit_bytes:
                cache.stats.hit_s += hit_bytes / path.device.dram_bandwidth
        else:
            state.pending_cache[core.node_id] = (batch_key, splits, overlay)
        return remote, hit_bytes

    def _rewarm_after_switch(
        self, core: EngineCore, device: str, now: float
    ) -> None:
        """A representation switch completed on ``device``: the outgoing
        path's cached rows are stale.  Drop them, re-fetch the same hot
        set for the incoming path over the fabric, and charge the window
        as a device block — priced exactly like the Fig-15 switch window
        it extends."""
        cache = core.cache
        if cache is None:
            return
        event = next(
            (e for e in reversed(core.switcher.events) if e.device == device),
            None,
        )
        if event is None:
            return
        rewarm_bytes = cache.rewarm(event.from_label, event.to_label)
        if rewarm_bytes:
            rewarm_s = self.link.transfer_time(rewarm_bytes)
            cache.stats.rewarm_s += rewarm_s
            core.timeline.block(device, now, rewarm_s)


class _RunState:
    """Mutable per-run cluster state the kernel hooks close over: the
    current epoch's shard map, the member ids (always a prefix), the
    routable cores, the installed router (mutable — the autopilot's
    reroute action swaps it mid-run), and each core's most recent
    previewed cache splits (pending until the dispatch commits them)."""

    __slots__ = ("shard_map", "members", "active", "router", "pending_cache")

    def __init__(self, shard_map: ShardMap, members: list[int]) -> None:
        self.shard_map = shard_map
        self.members = members
        self.active: list[EngineCore] = []
        self.router: Router | None = None
        self.pending_cache: dict[int, tuple] = {}


def _cached_groups(node_id: int, shard_map: ShardMap) -> list[int]:
    """The shard groups ``node_id`` serves *through its cache*: the ones
    it does not own (owned groups are shard-local and bypass the tier).
    This is what join warms, drain donations, and static preloads
    target."""
    return [
        g for g in range(shard_map.n_nodes)
        if node_id not in shard_map.owners[g]
    ]


def _node_idle_w(core: EngineCore) -> float:
    """Idle power of one node: its devices' idle draw, deduplicated."""
    seen: dict[str, float] = {}
    for path in core.scheduler.paths:
        seen[path.device.name] = path.device.idle_w
    return sum(seen.values())
