"""DLRM (Naumov et al. 2019) with a pluggable embedding representation.

Architecture: dense features -> bottom MLP; sparse features -> embedding
representation (table / DHE / select / hybrid); dot-product interaction of
the bottom output with all embedding vectors; top MLP -> CTR logit.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.collection import EmbeddingCollection
from repro.embeddings.dhe import DHEEmbedding
from repro.embeddings.hybrid import HybridEmbedding
from repro.embeddings.select import SelectEmbedding
from repro.embeddings.table import TableEmbedding
from repro.embeddings.ttrec import TTEmbedding
from repro.models.configs import ModelConfig
from repro.models.interactions import DotInteraction
from repro.nn.layers import MLP
from repro.nn.module import Module


class DLRM(Module):
    def __init__(
        self,
        bottom_mlp: MLP,
        embeddings: EmbeddingCollection,
        top_mlp: MLP,
    ) -> None:
        if bottom_mlp.layer_sizes[-1] != embeddings.output_dim:
            raise ValueError(
                "bottom MLP output dim must equal the embedding output dim "
                f"({bottom_mlp.layer_sizes[-1]} != {embeddings.output_dim})"
            )
        expected = DotInteraction.output_dim(
            embeddings.output_dim, embeddings.n_features
        )
        if top_mlp.layer_sizes[0] != expected:
            raise ValueError(
                f"top MLP input dim must be {expected}, got {top_mlp.layer_sizes[0]}"
            )
        self.bottom_mlp = bottom_mlp
        self.embeddings = embeddings
        self.interaction = DotInteraction()
        self.top_mlp = top_mlp

    def forward(self, dense: np.ndarray, sparse_ids: np.ndarray) -> np.ndarray:
        """Return CTR logits of shape ``[batch]``."""
        z0 = self.bottom_mlp(dense)
        emb = self.embeddings(sparse_ids)
        interacted = self.interaction(z0, emb)
        return self.top_mlp(interacted)[:, 0]

    def backward(self, grad_logits: np.ndarray) -> None:
        grad = self.top_mlp.backward(grad_logits[:, None])
        grad_z0, grad_emb = self.interaction.backward(grad)
        self.bottom_mlp.backward(grad_z0)
        self.embeddings.backward(grad_emb)
        return None

    def predict_proba(self, dense: np.ndarray, sparse_ids: np.ndarray) -> np.ndarray:
        logits = self.forward(dense, sparse_ids)
        return 1.0 / (1.0 + np.exp(-logits))

    def flops_per_sample(self) -> int:
        dense_flops = self.bottom_mlp.flops(1) + self.top_mlp.flops(1)
        interaction = DotInteraction.flops(
            1, self.embeddings.output_dim, self.embeddings.n_features
        )
        return dense_flops + interaction + self.embeddings.flops_per_sample()


def build_dlrm(
    config: ModelConfig,
    representation: str,
    rng: np.random.Generator,
    k: int = 32,
    dnn: int = 64,
    h: int = 2,
    table_dim: int | None = None,
    dhe_dim: int | None = None,
    dhe_features: set[int] | frozenset[int] = frozenset(),
    tt_rank: int = 8,
) -> DLRM:
    """Assemble a DLRM whose embeddings use the given representation.

    ``representation``: ``table`` | ``dhe`` | ``select`` | ``hybrid`` |
    ``ttrec``. For ``select``, ``dhe_features`` lists feature indices that
    use DHE (the paper replaces the 3 largest tables). For ``hybrid``, the
    embedding output dim is ``table_dim + dhe_dim`` (defaults: half of
    embedding_dim each). ``ttrec`` is the tensor-train baseline the paper
    compares DHE against (Section 2.2); ``tt_rank`` sets its TT-rank.
    """
    dim = config.embedding_dim
    features: list[Module] = []
    if representation == "table":
        features = [
            TableEmbedding(rows, dim, rng) for rows in config.cardinalities
        ]
        out_dim = dim
    elif representation == "dhe":
        features = [
            DHEEmbedding(dim, k, dnn, h, rng, seed=1000 + f)
            for f in range(config.n_sparse)
        ]
        out_dim = dim
    elif representation == "select":
        chosen = set(dhe_features) or _largest_features(config, 3)
        features = [
            SelectEmbedding(rows, dim, f in chosen, k, dnn, h, rng, seed=1000 + f)
            for f, rows in enumerate(config.cardinalities)
        ]
        out_dim = dim
    elif representation == "hybrid":
        t_dim = table_dim if table_dim is not None else max(1, dim // 2)
        g_dim = dhe_dim if dhe_dim is not None else dim - t_dim
        features = [
            HybridEmbedding(rows, t_dim, g_dim, k, dnn, h, rng, seed=1000 + f)
            for f, rows in enumerate(config.cardinalities)
        ]
        out_dim = t_dim + g_dim
    elif representation == "ttrec":
        features = [
            TTEmbedding(rows, dim, tt_rank, rng) for rows in config.cardinalities
        ]
        out_dim = dim
    else:
        raise ValueError(f"unknown representation {representation!r}")

    collection = EmbeddingCollection(features)
    bottom_sizes = [config.n_dense, *config.bottom_mlp, out_dim]
    interaction_dim = DotInteraction.output_dim(out_dim, config.n_sparse)
    top_sizes = [interaction_dim, *config.top_mlp, 1]
    bottom = MLP(bottom_sizes, rng, hidden_activation="relu")
    top = MLP(top_sizes, rng, hidden_activation="relu")
    return DLRM(bottom, collection, top)


def _largest_features(config: ModelConfig, n: int) -> set[int]:
    order = sorted(
        range(config.n_sparse), key=lambda f: config.cardinalities[f], reverse=True
    )
    return set(order[:n])
