"""Model/dataset specifications for Criteo Kaggle and Terabyte.

Cardinalities are the genuine ones: the Kaggle vector is the standard
26-feature count list (33.76 M rows total; with dim=16 the embedding
footprint is the paper's 2.16 GB baseline), and the Terabyte vector is the
MLPerf configuration with ``max_ind_range=10M`` (49.2 M rows; with dim=64 it
is the paper's 12.58 GB baseline). ``*_MINI`` configs shrink cardinalities
for real (seconds-scale) training runs while keeping the 13-dense/26-sparse
structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

# Criteo Kaggle per-feature cardinalities (Display Advertising Challenge).
KAGGLE_CARDINALITIES = [
    1460, 583, 10131227, 2202608, 305, 24, 12517, 633, 3, 93145, 5683,
    8351593, 3194, 27, 14992, 5461306, 10, 5652, 2173, 4, 7046547, 18, 15,
    286181, 105, 142572,
]

# Criteo Terabyte, MLPerf DLRM config with max_ind_range = 10M.
TERABYTE_CARDINALITIES = [
    9980333, 36084, 17217, 7378, 20134, 3, 7112, 1442, 61, 9758201, 1333352,
    313829, 10, 2208, 11156, 122, 4, 970, 14, 9994222, 7267859, 9946608,
    415421, 12420, 101, 36,
]


@dataclass(frozen=True)
class ModelConfig:
    """Architecture of one DLRM variant on one dataset."""

    name: str
    n_dense: int
    cardinalities: list[int]
    embedding_dim: int
    bottom_mlp: list[int] = field(default_factory=list)  # hidden sizes only
    top_mlp: list[int] = field(default_factory=list)  # hidden sizes only

    @property
    def n_sparse(self) -> int:
        return len(self.cardinalities)

    @property
    def total_rows(self) -> int:
        return sum(self.cardinalities)

    def table_bytes(self, dim: int | None = None) -> int:
        d = dim if dim is not None else self.embedding_dim
        return self.total_rows * d * 4

    def bottom_sizes(self) -> list[int]:
        return [self.n_dense, *self.bottom_mlp, self.embedding_dim]

    def top_sizes(self) -> list[int]:
        from repro.models.interactions import DotInteraction

        interaction_dim = DotInteraction.output_dim(self.embedding_dim, self.n_sparse)
        return [interaction_dim, *self.top_mlp, 1]


KAGGLE = ModelConfig(
    name="kaggle",
    n_dense=13,
    cardinalities=KAGGLE_CARDINALITIES,
    embedding_dim=16,
    bottom_mlp=[512, 256, 64],
    top_mlp=[512, 256],
)

TERABYTE = ModelConfig(
    name="terabyte",
    n_dense=13,
    cardinalities=TERABYTE_CARDINALITIES,
    embedding_dim=64,
    bottom_mlp=[512, 256],
    top_mlp=[512, 512, 256],
)


def scaled_config(base: ModelConfig, max_rows: int, name: str | None = None) -> ModelConfig:
    """Shrink a config's cardinalities (capped at ``max_rows``) for real training."""
    if max_rows <= 1:
        raise ValueError("max_rows must be > 1")
    capped = [min(rows, max_rows) for rows in base.cardinalities]
    return replace(base, name=name or f"{base.name}-mini", cardinalities=capped)


# Laptop-scale variants: same structure, tables capped so full models train in
# seconds. Used by examples and the integration test suite.
KAGGLE_MINI = scaled_config(KAGGLE, max_rows=1000, name="kaggle-mini")
TERABYTE_MINI = scaled_config(TERABYTE, max_rows=1000, name="terabyte-mini")
