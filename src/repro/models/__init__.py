"""Deep Learning Recommendation Model (DLRM) with pluggable embeddings."""

from repro.models.dlrm import DLRM, build_dlrm
from repro.models.interactions import DotInteraction
from repro.models.configs import (
    ModelConfig,
    KAGGLE,
    TERABYTE,
    KAGGLE_MINI,
    TERABYTE_MINI,
    scaled_config,
)

__all__ = [
    "DLRM",
    "build_dlrm",
    "DotInteraction",
    "ModelConfig",
    "KAGGLE",
    "TERABYTE",
    "KAGGLE_MINI",
    "TERABYTE_MINI",
    "scaled_config",
]
