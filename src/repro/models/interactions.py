"""DLRM's dot-product feature interaction with explicit backward."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class DotInteraction(Module):
    """Pairwise dot products among the dense vector and all embeddings.

    Inputs: bottom-MLP output ``z0`` of shape ``[B, d]`` and embeddings ``E``
    of shape ``[B, F, d]``. Output: ``[B, d + (F+1)F/2]`` — ``z0`` concatenated
    with the strictly-lower-triangular entries of the Gram matrix of the
    ``F+1`` vectors, exactly as in facebookresearch/dlrm.
    """

    def forward(self, z0: np.ndarray, embeddings: np.ndarray) -> np.ndarray:
        if z0.ndim != 2 or embeddings.ndim != 3:
            raise ValueError("z0 must be [B, d]; embeddings must be [B, F, d]")
        if z0.shape[0] != embeddings.shape[0] or z0.shape[1] != embeddings.shape[2]:
            raise ValueError(
                f"incompatible shapes {z0.shape} and {embeddings.shape}: the "
                "bottom-MLP output dim must equal the embedding dim"
            )
        stacked = np.concatenate([z0[:, None, :], embeddings], axis=1)  # [B, N, d]
        n_vectors = stacked.shape[1]
        gram = stacked @ stacked.transpose(0, 2, 1)  # [B, N, N]
        rows, cols = np.tril_indices(n_vectors, k=-1)
        self._stacked = stacked
        self._tril = (rows, cols)
        self._d = z0.shape[1]
        return np.concatenate([z0, gram[:, rows, cols]], axis=1)

    def backward(self, grad_output: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        d = self._d
        stacked = self._stacked
        rows, cols = self._tril
        batch, n_vectors, _ = stacked.shape

        grad_z0_direct = grad_output[:, :d]
        grad_pairs = grad_output[:, d:]

        grad_gram = np.zeros((batch, n_vectors, n_vectors))
        grad_gram[:, rows, cols] = grad_pairs
        # d(gram)/d(stacked): gram = S S^T, so dS = (G + G^T) S.
        sym = grad_gram + grad_gram.transpose(0, 2, 1)
        grad_stacked = sym @ stacked

        grad_z0 = grad_stacked[:, 0, :] + grad_z0_direct
        grad_embeddings = grad_stacked[:, 1:, :]
        return grad_z0, grad_embeddings

    @staticmethod
    def output_dim(dim: int, n_features: int) -> int:
        n_vectors = n_features + 1
        return dim + n_vectors * (n_vectors - 1) // 2

    @staticmethod
    def flops(batch_size: int, dim: int, n_features: int) -> int:
        n_vectors = n_features + 1
        return 2 * batch_size * n_vectors * n_vectors * dim
