"""Model-quality estimation for representation configurations."""

from repro.quality.calibration import DatasetAnchors, ANCHORS
from repro.quality.estimator import QualityEstimator
from repro.quality.fitting import FittedCurve, fit_k_curve, fit_quality_residual

__all__ = [
    "QualityEstimator",
    "DatasetAnchors",
    "ANCHORS",
    "FittedCurve",
    "fit_k_curve",
    "fit_quality_residual",
]
