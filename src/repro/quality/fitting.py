"""Fit accuracy-vs-k curves from measured training runs.

The estimator ships with anchors from the paper; when users train their own
sweeps (any dataset), this module fits the same saturating-exponential form
``acc(k) = ceiling - span * exp(-k / k0)`` so Algorithm 1 can rank unseen
configurations on new workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import least_squares


@dataclass(frozen=True)
class FittedCurve:
    ceiling: float  # accuracy as k -> infinity
    span: float  # ceiling minus the k -> 0 floor
    k0: float  # saturation constant

    def accuracy(self, k: float) -> float:
        return self.ceiling - self.span * np.exp(-k / self.k0)

    @property
    def floor(self) -> float:
        return self.ceiling - self.span

    def k_for_accuracy(self, target: float) -> float:
        """Smallest k reaching ``target`` accuracy (inf if unreachable)."""
        if target >= self.ceiling:
            return float("inf")
        if target <= self.floor:
            return 0.0
        return float(-self.k0 * np.log((self.ceiling - target) / self.span))


def fit_k_curve(
    ks: np.ndarray,
    accuracies: np.ndarray,
    k0_init: float = 256.0,
) -> FittedCurve:
    """Least-squares fit of the saturating form to (k, accuracy) pairs."""
    ks = np.asarray(ks, dtype=np.float64)
    accuracies = np.asarray(accuracies, dtype=np.float64)
    if ks.shape != accuracies.shape or ks.size < 3:
        raise ValueError("need >= 3 matching (k, accuracy) points")
    if np.any(ks <= 0):
        raise ValueError("k values must be positive")

    ceiling0 = accuracies.max()
    span0 = max(accuracies.max() - accuracies.min(), 1e-6)

    def residuals(theta):
        ceiling, log_span, log_k0 = theta
        curve = ceiling - np.exp(log_span) * np.exp(-ks / np.exp(log_k0))
        return curve - accuracies

    fit = least_squares(
        residuals,
        x0=[ceiling0, np.log(span0), np.log(k0_init)],
        method="lm",
    )
    ceiling, log_span, log_k0 = fit.x
    return FittedCurve(
        ceiling=float(ceiling),
        span=float(np.exp(log_span)),
        k0=float(np.exp(log_k0)),
    )


def fit_quality_residual(curve: FittedCurve, ks: np.ndarray, accs: np.ndarray) -> float:
    """RMS error of a fitted curve on held-out points."""
    preds = np.array([curve.accuracy(k) for k in np.asarray(ks)])
    return float(np.sqrt(np.mean((preds - np.asarray(accs)) ** 2)))
