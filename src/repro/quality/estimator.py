"""Calibrated accuracy model over representation configurations.

``QualityEstimator.accuracy`` is deterministic and monotone in the
characteristics the paper established (Section 3.1): more hash functions
help until saturation, decoder width/height barely matter, hybrid sits on
top of both mechanisms, and shrinking table dims costs accuracy.
"""

from __future__ import annotations

import math

from repro.core.representations import RepresentationConfig
from repro.quality.calibration import ANCHORS, DatasetAnchors


class QualityEstimator:
    def __init__(self, dataset: str) -> None:
        try:
            self.anchors: DatasetAnchors = ANCHORS[dataset]
        except KeyError:
            raise KeyError(
                f"unknown dataset {dataset!r}; known: {sorted(ANCHORS)}"
            ) from None

    # ---- component curves ----------------------------------------------

    def table_accuracy(self, dim: int) -> float:
        """Table accuracy vs. embedding dim (halving below reference costs
        ``dim_penalty_per_halving``; growing beyond reference saturates)."""
        if dim <= 0:
            raise ValueError("dim must be positive")
        a = self.anchors
        if dim >= a.reference_dim:
            # Mild diminishing returns above the tuned baseline dim.
            bonus = 0.01 * math.log2(dim / a.reference_dim)
            return a.table_accuracy + min(bonus, 0.02)
        halvings = math.log2(a.reference_dim / dim)
        return a.table_accuracy - a.dim_penalty_per_halving * halvings

    def dhe_gain(self, k: int, dnn: int, h: int) -> float:
        """DHE accuracy relative to the table baseline, saturating in k."""
        a = self.anchors
        max_gain = a.dhe_accuracy - a.table_accuracy
        floor = -a.dhe_floor_offset
        span = max_gain - floor
        k_term = 1.0 - math.exp(-k / a.k_saturation)
        # Decoder shape has a second-order effect (Figure 4: same-k points
        # cluster): +-0.01 spread across the explored widths/heights.
        decoder_capacity = max(1, dnn * max(1, h))
        decoder_term = 0.01 * math.tanh(math.log(decoder_capacity / 256.0))
        return floor + span * k_term + decoder_term

    # ---- public API ------------------------------------------------------

    def accuracy(self, rep: RepresentationConfig) -> float:
        """Predicted CTR accuracy (percent) of a trained model using ``rep``."""
        a = self.anchors
        if rep.kind == "table":
            return self.table_accuracy(rep.embedding_dim)
        if rep.kind == "dhe":
            return a.table_accuracy + self.dhe_gain(rep.k, rep.dnn, rep.h)
        if rep.kind == "select":
            # Replacing a few tables with DHE moves part-way to full DHE.
            fraction = min(1.0, rep.n_dhe_features / 26.0 * 3.0)
            return a.table_accuracy + fraction * max(
                0.0, self.dhe_gain(rep.k, rep.dnn, rep.h)
            ) * 0.6
        if rep.kind == "hybrid":
            synergy = a.hybrid_accuracy - a.dhe_accuracy
            base = self.table_accuracy(rep.table_dim)
            gain = max(0.0, self.dhe_gain(rep.k, rep.dnn, rep.h))
            saturation = 1.0 - math.exp(-rep.k / a.k_saturation)
            return base + gain + synergy * saturation
        raise ValueError(f"unknown kind {rep.kind!r}")

    def best(self, reps: list[RepresentationConfig]) -> RepresentationConfig:
        if not reps:
            raise ValueError("no representations given")
        return max(reps, key=self.accuracy)
