"""Accuracy anchors from the paper's measured results.

The paper's accuracies come from hundreds of 18-24 h Criteo training runs we
cannot rerun offline; the estimator instead interpolates between these
published anchor points (Table 2, Table 4, Figures 3-4, Section 6.1). The
*shapes* — accuracy saturating in k, decoder size nearly irrelevant, hybrid
on top, small table dims degrading — are the properties MP-Rec's algorithms
consume, and the real numpy trainer validates the orderings at mini scale
(see tests/integration/test_training_orderings.py).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DatasetAnchors:
    """Published accuracy anchor points for one dataset."""

    name: str
    table_accuracy: float  # Table 2 baseline at the reference dim
    dhe_accuracy: float  # Table 2 best DHE
    hybrid_accuracy: float  # Table 2 best hybrid
    reference_dim: int  # embedding dim of the baseline model
    # Accuracy lost per halving of the table dim below reference (Table 4:
    # Kaggle dim 16 -> 4 costs 0.069%, i.e. 0.0345 per halving).
    dim_penalty_per_halving: float = 0.0345
    # Saturation constant of the accuracy-vs-k curve (Figure 4: gains level
    # off approaching k ~ 2048).
    k_saturation: float = 256.0
    # DHE with k -> 0 collapses well below the table baseline.
    dhe_floor_offset: float = 0.60


ANCHORS: dict[str, DatasetAnchors] = {
    "kaggle": DatasetAnchors(
        name="kaggle",
        table_accuracy=78.79,
        dhe_accuracy=78.94,
        hybrid_accuracy=78.98,
        reference_dim=16,
    ),
    "terabyte": DatasetAnchors(
        name="terabyte",
        table_accuracy=80.81,
        dhe_accuracy=80.99,
        hybrid_accuracy=81.03,
        reference_dim=64,
    ),
    # Production case study (Sec 6.1): hybrid improves accuracy by 0.014%.
    "internal": DatasetAnchors(
        name="internal",
        table_accuracy=79.500,
        dhe_accuracy=79.508,
        hybrid_accuracy=79.514,
        reference_dim=64,
        k_saturation=512.0,
    ),
}
