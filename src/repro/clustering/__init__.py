"""Clustering substrate for MP-Cache's decoder tier."""

from repro.clustering.kmeans import KMeans
from repro.clustering.knn import nearest_centroid, normalize_rows

__all__ = ["KMeans", "nearest_centroid", "normalize_rows"]
