"""k-means with k-means++ initialization, written on numpy.

MP-Cache's decoder tier profiles the intermediate dense vectors produced by
the encoder stack and represents their distribution with N centroids
(Section 4.3); this is the clustering engine that builds those centroids.
"""

from __future__ import annotations

import numpy as np


class KMeans:
    def __init__(
        self,
        n_clusters: int,
        max_iter: int = 50,
        tol: float = 1e-6,
        seed: int = 0,
    ) -> None:
        if n_clusters <= 0:
            raise ValueError("n_clusters must be positive")
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.centroids: np.ndarray | None = None
        self.inertia: float = float("inf")
        self.n_iter: int = 0

    def fit(self, points: np.ndarray) -> "KMeans":
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError("points must be [n, dim]")
        n = points.shape[0]
        if n < self.n_clusters:
            raise ValueError(
                f"need >= {self.n_clusters} points, got {n}"
            )
        rng = np.random.default_rng(self.seed)
        centroids = self._init_plus_plus(points, rng)
        prev_inertia = float("inf")
        for iteration in range(self.max_iter):
            labels, dists = self._assign(points, centroids)
            inertia = float(dists.sum())
            for c in range(self.n_clusters):
                members = points[labels == c]
                if len(members):
                    centroids[c] = members.mean(axis=0)
                else:
                    # Re-seed an empty cluster at the farthest point.
                    centroids[c] = points[int(np.argmax(dists))]
            self.n_iter = iteration + 1
            if prev_inertia - inertia <= self.tol * max(prev_inertia, 1e-12):
                break
            prev_inertia = inertia
        self.centroids = centroids
        labels, dists = self._assign(points, centroids)
        self.inertia = float(dists.sum())
        return self

    def predict(self, points: np.ndarray) -> np.ndarray:
        if self.centroids is None:
            raise RuntimeError("fit() must be called before predict()")
        labels, _ = self._assign(np.asarray(points, dtype=np.float64), self.centroids)
        return labels

    def transform_to_centroids(self, points: np.ndarray) -> np.ndarray:
        """Replace each point with its nearest centroid (the cache's output)."""
        if self.centroids is None:
            raise RuntimeError("fit() must be called before transform")
        return self.centroids[self.predict(points)]

    # ------------------------------------------------------------------

    def _init_plus_plus(
        self, points: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        n = points.shape[0]
        centroids = np.empty((self.n_clusters, points.shape[1]))
        centroids[0] = points[rng.integers(n)]
        closest_sq = _sq_dists(points, centroids[0][None, :]).ravel()
        for c in range(1, self.n_clusters):
            total = closest_sq.sum()
            if total <= 0:
                centroids[c:] = points[rng.integers(n, size=self.n_clusters - c)]
                break
            probs = closest_sq / total
            idx = rng.choice(n, p=probs)
            centroids[c] = points[idx]
            closest_sq = np.minimum(
                closest_sq, _sq_dists(points, centroids[c][None, :]).ravel()
            )
        return centroids

    def _assign(
        self, points: np.ndarray, centroids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        sq = _sq_dists(points, centroids)
        labels = np.argmin(sq, axis=1)
        return labels, sq[np.arange(points.shape[0]), labels]


def _sq_dists(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, [n_points, n_centroids]."""
    p_sq = np.sum(points**2, axis=1, keepdims=True)
    c_sq = np.sum(centroids**2, axis=1)
    cross = points @ centroids.T
    return np.maximum(p_sq + c_sq - 2.0 * cross, 0.0)
