"""Nearest-centroid search by parallelizable dot products.

The paper's observation (Section 4.3): when vectors are L2-normalized,
finding the nearest centroid reduces to one matrix multiply plus argmax —
far cheaper than a decoder MLP pass.
"""

from __future__ import annotations

import numpy as np


def normalize_rows(x: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    norms = np.linalg.norm(x, axis=-1, keepdims=True)
    return x / np.maximum(norms, eps)


def nearest_centroid(
    queries: np.ndarray, centroids: np.ndarray, assume_normalized: bool = False
) -> np.ndarray:
    """Index of the max-cosine-similarity centroid per query row."""
    if queries.ndim != 2 or centroids.ndim != 2:
        raise ValueError("queries and centroids must be 2D")
    if queries.shape[1] != centroids.shape[1]:
        raise ValueError("dim mismatch between queries and centroids")
    if not assume_normalized:
        queries = normalize_rows(queries)
        centroids = normalize_rows(centroids)
    scores = queries @ centroids.T
    return np.argmax(scores, axis=1)


def knn_flops(n_queries: int, dim: int, n_centroids: int) -> int:
    """FLOPs of the dot-product search (the MP-Cache decoder fast path)."""
    return 2 * n_queries * dim * n_centroids
