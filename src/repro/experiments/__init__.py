"""Pre-wired experiment setups shared by benchmarks and examples.

These helpers assemble the paper's evaluation configurations — HW-1/HW-2/
HW-3 design points, MP-Cache effects, static and dynamic schedulers — from
the core library so each bench regenerates its table/figure with a few
calls.
"""

from repro.experiments.setup import (
    HW1,
    HW2,
    HardwareConfig,
    dataset_for,
    default_cache_effect,
    hw1_devices,
    hw2_devices,
    build_plan,
    build_schedulers,
    run_serving_comparison,
)

__all__ = [
    "HW1",
    "HW2",
    "HardwareConfig",
    "dataset_for",
    "default_cache_effect",
    "hw1_devices",
    "hw2_devices",
    "build_plan",
    "build_schedulers",
    "run_serving_comparison",
]
