"""Assembly of the paper's evaluation design points (Section 5.1).

HW-1: CPU (32 GB DRAM) + GPU (32 GB HBM2) — the main evaluation platform.
HW-2: CPU (1 GB) + GPU (200 MB) — the memory-constrained case study.
HW-3: CPU (32 GB) + IPU board/pod — the custom-accelerator case study
(assembled per-bench via ``repro.hardware.topology``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.sharding import greedy_shard
from repro.core.mp_cache import CacheEffect, DecoderCentroidCache, EncoderCache
from repro.core.offline import MappingPlan, OfflinePlanner
from repro.core.online import (
    MultiPathScheduler,
    Scheduler,
    StaticScheduler,
    TableSwitchScheduler,
)
from repro.core.profiler import make_path
from repro.core.representations import RepresentationConfig, paper_configs
from repro.core.switching import SwitchController
from repro.data.zipf import ZipfSampler
from repro.hardware.catalog import CPU_BROADWELL, GPU_V100
from repro.hardware.device import GB, MB, DeviceSpec
from repro.hardware.topology import ETHERNET_100G, LinkSpec
from repro.models.configs import KAGGLE, TERABYTE, ModelConfig
from repro.quality.estimator import QualityEstimator
import numpy as np

from repro.data.queries import generate_query_arrays, merge_query_arrays
from repro.serving.autoscale import AutoscaleController
from repro.serving.cluster import ClusterResult, ClusterSimulator
from repro.serving.region import GeoRouter, RegionResult, RegionSimulator
from repro.serving.wan import WanLink
from repro.serving.controlplane import ACTION_CLASSES, ControlPlane
from repro.serving.metrics import ServingResult
from repro.serving.routing import Router
from repro.serving.simulator import ServingSimulator
from repro.serving.workload import ServingScenario


@dataclass(frozen=True)
class HardwareConfig:
    name: str
    cpu_dram: int
    gpu_dram: int


HW1 = HardwareConfig(name="HW-1", cpu_dram=32 * GB, gpu_dram=32 * GB)
HW2 = HardwareConfig(name="HW-2", cpu_dram=1 * GB, gpu_dram=200 * MB)

_DATASETS = {"kaggle": KAGGLE, "terabyte": TERABYTE}


def dataset_for(model: ModelConfig) -> str:
    """Quality-estimator dataset key for a model config."""
    name = model.name.split("-")[0]
    return name if name in ("kaggle", "terabyte") else "internal"


def hw1_devices() -> list[DeviceSpec]:
    return [
        CPU_BROADWELL.with_memory_budget(HW1.cpu_dram),
        GPU_V100.with_memory_budget(HW1.gpu_dram),
    ]


def hw2_devices() -> list[DeviceSpec]:
    return [
        CPU_BROADWELL.with_memory_budget(HW2.cpu_dram),
        GPU_V100.with_memory_budget(HW2.gpu_dram),
    ]


def default_cache_effect(
    model: ModelConfig,
    rep: RepresentationConfig,
    capacity_bytes: int = 2 * MB,
    n_centroids: int = 256,
    zipf_alpha: float = 1.05,
) -> CacheEffect:
    """MP-Cache effect with the paper's default sizing (2 MB encoder cache,
    centroid kNN decoder), computed analytically from the traffic model."""
    samplers = [
        ZipfSampler(rows, alpha=zipf_alpha, seed=f)
        for f, rows in enumerate(model.cardinalities)
    ]
    encoder = EncoderCache(capacity_bytes, rep.embedding_dim)
    encoder.fit_static(samplers)
    hit_rate = encoder.expected_hit_rate(samplers)
    decoder = DecoderCentroidCache(n_centroids)
    return CacheEffect(
        encoder_hit_rate=hit_rate,
        decoder_speedup=decoder.speedup(rep),
        accuracy_penalty=0.002,
    )


def build_plan(
    model: ModelConfig,
    devices: list[DeviceSpec] | None = None,
) -> MappingPlan:
    """Run the offline stage (Algorithm 1) on the given platform."""
    estimator = QualityEstimator(dataset_for(model))
    planner = OfflinePlanner(model, estimator)
    return planner.plan(devices if devices is not None else hw1_devices())


def build_schedulers(
    model: ModelConfig,
    devices: list[DeviceSpec] | None = None,
    with_cache: bool = True,
) -> dict[str, Scheduler]:
    """All Figure 10 contenders: static deployments, table CPU-GPU
    switching, and MP-Rec (with MP-Cache unless disabled)."""
    devices = devices if devices is not None else hw1_devices()
    cpu, gpu = devices[0], devices[1]
    estimator = QualityEstimator(dataset_for(model))
    configs = paper_configs(model)

    def static(rep_name: str, device: DeviceSpec) -> StaticScheduler | None:
        rep = configs[rep_name]
        if rep.total_bytes(model) > device.total_memory:
            return None
        path = make_path(
            rep, model, device, estimator.accuracy(rep),
            label=f"{rep_name.upper()}({device.kind.upper()})",
        )
        path.extra["model"] = model
        return StaticScheduler([path])

    schedulers: dict[str, Scheduler] = {}
    for rep_name in ("table", "dhe", "hybrid"):
        for device in (cpu, gpu):
            sched = static(rep_name, device)
            if sched is not None:
                schedulers[f"{rep_name}-{device.kind}"] = sched

    # Table-only CPU<->GPU switching baseline.
    table_paths = []
    for device in (cpu, gpu):
        rep = configs["table"]
        if rep.total_bytes(model) <= device.total_memory:
            path = make_path(
                rep, model, device, estimator.accuracy(rep),
                label=f"TABLE({device.kind.upper()})",
            )
            path.extra["model"] = model
            table_paths.append(path)
    if table_paths:
        schedulers["table-switch"] = TableSwitchScheduler(table_paths)

    # MP-Rec: offline plan -> cached execution paths -> Algorithm 2.
    plan = build_plan(model, devices)
    mp_paths = []
    for device_name, reps in plan.mappings.items():
        device = plan.devices[device_name]
        for rep in reps:
            if rep.uses_dhe and with_cache:
                effect = default_cache_effect(model, rep)
                hit, speed = effect.encoder_hit_rate, effect.decoder_speedup
                accuracy = plan.accuracies[rep.display] - effect.accuracy_penalty
            else:
                hit, speed = 0.0, 1.0
                accuracy = plan.accuracies[rep.display]
            path = make_path(
                rep, model, device, accuracy,
                encoder_hit_rate=hit, decoder_speedup=speed,
                label=f"{rep.kind.upper()}({device.kind.upper()})",
            )
            path.extra["model"] = model
            mp_paths.append(path)
    schedulers["mp-rec"] = MultiPathScheduler(mp_paths)
    return schedulers


def build_switching(
    model: ModelConfig,
    devices: list[DeviceSpec] | None = None,
    with_cache: bool = True,
    initial: str = "table",
    cooldown_s: float = 0.25,
    hi_pressure: float = 0.75,
    lo_pressure: float = 0.25,
    patience: int = 4,
    headroom: float = 0.8,
) -> tuple[Scheduler, SwitchController]:
    """A runtime-switching deployment: one resident representation per
    device (``initial`` kind where mapped, else the device's fastest) and
    a :class:`~repro.core.switching.SwitchController` holding the offline
    plan's other representations as swap candidates.

    This is MP-Rec's memory-frugal sibling: instead of keeping every
    planned representation resident (the multi-path scheduler), each
    device hosts exactly one and pays the Figure-15 load/teardown window
    to change it as load shifts. Pass the returned pair to
    :class:`~repro.serving.simulator.ServingSimulator` /
    :class:`~repro.serving.cluster.ClusterSimulator`.
    """
    devices = devices if devices is not None else hw1_devices()
    plan = build_plan(model, devices)
    candidates: dict[str, list] = {}
    for device_name, reps in plan.mappings.items():
        device = plan.devices[device_name]
        for rep in reps:
            if rep.uses_dhe and with_cache:
                effect = default_cache_effect(model, rep)
                hit, speed = effect.encoder_hit_rate, effect.decoder_speedup
                accuracy = plan.accuracies[rep.display] - effect.accuracy_penalty
            else:
                hit, speed = 0.0, 1.0
                accuracy = plan.accuracies[rep.display]
            path = make_path(
                rep, model, device, accuracy,
                encoder_hit_rate=hit, decoder_speedup=speed,
                label=f"{rep.kind.upper()}({device.kind.upper()})",
            )
            path.extra["model"] = model
            candidates.setdefault(device_name, []).append(path)
    residents = []
    for device_name, paths in candidates.items():
        preferred = [p for p in paths if p.kind == initial]
        residents.append(
            preferred[0] if preferred else min(paths, key=lambda p: p.latency(1))
        )
    controller = SwitchController(
        candidates,
        hi_pressure=hi_pressure,
        lo_pressure=lo_pressure,
        patience=patience,
        cooldown_s=cooldown_s,
        headroom=headroom,
    )
    return MultiPathScheduler(residents), controller


def run_serving_comparison(
    model: ModelConfig,
    scenario: ServingScenario | None = None,
    devices: list[DeviceSpec] | None = None,
    with_cache: bool = True,
    subset: tuple[str, ...] = (),
    shed_policy: str = "none",
    max_batch_size: int = 1,
    batch_timeout_s: float = 0.0,
    streaming: bool = False,
    engine: str = "event",
) -> dict[str, ServingResult]:
    """Run every scheduler through the scenario; returns results by name.

    ``shed_policy`` / ``max_batch_size`` / ``batch_timeout_s`` forward to
    the engine; defaults reproduce the per-query reference behavior.
    ``streaming=True`` swaps exact record-backed results for constant-memory
    :class:`~repro.serving.metrics.StreamingMetrics` (same metric API).
    ``engine="fast"`` swaps the event kernel for the array fast path
    (:mod:`repro.serving.fastpath`) — identical records, far faster at
    scale."""
    scenario = scenario or ServingScenario.paper_default()
    schedulers = build_schedulers(model, devices, with_cache=with_cache)
    if subset:
        schedulers = {k: v for k, v in schedulers.items() if k in subset}
    results = {}
    for name, sched in schedulers.items():
        sim = ServingSimulator(
            sched, shed_policy=shed_policy, max_batch_size=max_batch_size,
            batch_timeout_s=batch_timeout_s, engine=engine,
        )
        results[name] = (
            sim.run_streaming(scenario) if streaming else sim.run(scenario)
        )
    return results


def run_switching_serving(
    model: ModelConfig,
    scenario: ServingScenario | None = None,
    devices: list[DeviceSpec] | None = None,
    shed_policy: str = "none",
    max_batch_size: int = 1,
    batch_timeout_s: float = 0.0,
    streaming: bool = False,
    **switching_kwargs,
):
    """Run one scenario through the runtime-switching deployment.

    Returns ``(result, controller)`` — the controller's ``events`` carry
    the run's residency trace. ``switching_kwargs`` forward to
    :func:`build_switching` (``cooldown_s``, ``patience``, thresholds...).
    """
    scenario = scenario or ServingScenario.paper_default()
    scheduler, controller = build_switching(
        model, devices, **switching_kwargs
    )
    sim = ServingSimulator(
        scheduler, shed_policy=shed_policy, max_batch_size=max_batch_size,
        batch_timeout_s=batch_timeout_s, switch_controller=controller,
    )
    result = sim.run_streaming(scenario) if streaming else sim.run(scenario)
    return result, controller


def build_cluster(
    model: ModelConfig,
    n_nodes: int,
    scheduler: str = "mp-rec",
    router: str | Router = "round-robin",
    replication: int = 1,
    link: LinkSpec = ETHERNET_100G,
    devices: list[DeviceSpec] | None = None,
    with_cache: bool = True,
    cache_bytes: int = 0,
    cache_policy: str = "lru",
    **cluster_kwargs,
) -> ClusterSimulator:
    """Assemble a serving cluster: every node runs the named scheduler's
    paths on its own HW-1 replica, and the model's tables are greedy-LPT
    sharded (:func:`~repro.analysis.sharding.greedy_shard`) across nodes.

    ``cache_bytes`` / ``cache_policy`` size the per-node MP-Cache tier
    (:mod:`repro.serving.cache`; 0 = off) — ``with_cache`` is the older,
    unrelated knob for the *single-node* analytic MP-Cache effect baked
    into each path's latency model.  ``cluster_kwargs`` forward to
    :class:`~repro.serving.cluster.ClusterSimulator` (``shed_policy``,
    ``max_batch_size``, ``max_queue``, ``fail_at``, ``fail_node``,
    ``hot_fraction``, ``cache_alpha``, ``cache_hot_rows``, ...).
    """
    schedulers = build_schedulers(model, devices, with_cache=with_cache)
    if scheduler not in schedulers:
        raise ValueError(
            f"unknown scheduler {scheduler!r}; have {sorted(schedulers)}"
        )
    plan = greedy_shard(model.cardinalities, model.embedding_dim, n_nodes)
    return ClusterSimulator(
        schedulers[scheduler], plan, router=router, replication=replication,
        link=link, cache_bytes=cache_bytes, cache_policy=cache_policy,
        **cluster_kwargs,
    )


def run_cluster_serving(
    model: ModelConfig,
    scenario: ServingScenario | None = None,
    n_nodes: int = 2,
    scheduler: str = "mp-rec",
    router: str | Router = "round-robin",
    replication: int = 1,
    streaming: bool = False,
    **kwargs,
) -> ClusterResult:
    """Run one scenario through a multi-node cluster; the cluster analogue
    of :func:`run_serving_comparison` for a single scheduler."""
    scenario = scenario or ServingScenario.paper_default()
    cluster = build_cluster(
        model, n_nodes, scheduler=scheduler, router=router,
        replication=replication, **kwargs,
    )
    return cluster.run_streaming(scenario) if streaming else cluster.run(scenario)


def build_autoscaled_cluster(
    model: ModelConfig,
    min_nodes: int,
    max_nodes: int,
    scheduler: str = "mp-rec",
    router: str | Router = "least-loaded",
    replication: int = 1,
    link: LinkSpec = ETHERNET_100G,
    devices: list[DeviceSpec] | None = None,
    with_cache: bool = True,
    initial_nodes: int | None = None,
    hi_pressure: float = 0.75,
    lo_pressure: float = 0.25,
    patience: int = 8,
    patience_down: int = 32,
    cooldown_s: float = 0.5,
    **cluster_kwargs,
) -> ClusterSimulator:
    """Assemble an *elastic* serving cluster: the sharding plan is sized
    for the ``max_nodes`` ceiling, membership starts at ``initial_nodes``
    (default ``min_nodes``), and an :class:`~repro.serving.autoscale.
    AutoscaleController` adds or drains nodes as the fleet's pressure
    signals say — joins warm their shard slice over ``link``, drains
    hand queued queries back through the failover path (zero-loss).

    ``cluster_kwargs`` forward through :func:`build_cluster`
    (``shed_policy``, ``max_batch_size``, ``batch_timeout_s``,
    ``max_queue``, ``hot_fraction``, ``cache_bytes``, ``cache_policy``,
    ...) — with the cache tier on, joins warm their cache alongside the
    shard slice and drains donate their hot set.
    """
    controller = AutoscaleController(
        min_nodes=min_nodes,
        max_nodes=max_nodes,
        initial_nodes=initial_nodes,
        hi_pressure=hi_pressure,
        lo_pressure=lo_pressure,
        patience=patience,
        patience_down=patience_down,
        cooldown_s=cooldown_s,
    )
    return build_cluster(
        model, max_nodes, scheduler=scheduler, router=router,
        replication=replication, link=link, devices=devices,
        with_cache=with_cache, autoscale=controller, **cluster_kwargs,
    )


def build_autopilot_cluster(
    model: ModelConfig,
    min_nodes: int,
    max_nodes: int,
    router: str | Router = "least-loaded",
    replication: int = 1,
    link: LinkSpec = ETHERNET_100G,
    devices: list[DeviceSpec] | None = None,
    with_cache: bool = True,
    initial: str = "table",
    actions: tuple = ACTION_CLASSES,
    initial_nodes: int | None = None,
    hi_pressure: float = 0.75,
    lo_pressure: float = 0.25,
    patience: int = 4,
    patience_down: int = 32,
    cooldown_s: float = 0.25,
    horizon_s: float = 2.0,
    node_cost_w: float = 1.0,
    **cluster_kwargs,
) -> ClusterSimulator:
    """Assemble the *autopilot* fleet: every node runs the runtime-
    switching deployment (:func:`build_switching` — one resident
    representation per device, the offline plan's others as swap
    candidates), the plan is sized for the ``max_nodes`` ceiling, and a
    single :class:`~repro.serving.controlplane.ControlPlane` arbitrates
    representation switches, membership changes, cache re-warms, and
    router swaps against one cost function (docs/controlplane.md).

    ``actions`` selects the enabled action classes (default: all four);
    ``cluster_kwargs`` forward to :class:`~repro.serving.cluster.
    ClusterSimulator` (``shed_policy``, ``max_batch_size``,
    ``batch_timeout_s``, ``max_queue``, ``hot_fraction``,
    ``cache_bytes``, ``cache_policy``, ...) — with the cache tier on,
    re-warm and cache-affinity re-routing become live candidates.
    """
    scheduler, switcher = build_switching(
        model, devices, with_cache=with_cache, initial=initial
    )
    plane = ControlPlane(
        min_nodes=min_nodes,
        max_nodes=max_nodes,
        initial_nodes=initial_nodes,
        actions=actions,
        hi_pressure=hi_pressure,
        lo_pressure=lo_pressure,
        patience=patience,
        patience_down=patience_down,
        cooldown_s=cooldown_s,
        horizon_s=horizon_s,
        node_cost_w=node_cost_w,
    )
    plan = greedy_shard(model.cardinalities, model.embedding_dim, max_nodes)
    return ClusterSimulator(
        scheduler, plan, router=router, replication=replication, link=link,
        switch_controller=switcher, controlplane=plane, **cluster_kwargs,
    )


def run_autopilot_serving(
    model: ModelConfig,
    scenario: ServingScenario | None = None,
    min_nodes: int = 1,
    max_nodes: int = 4,
    streaming: bool = False,
    **kwargs,
) -> ClusterResult:
    """Run one scenario under the unified autopilot; the control-plane
    analogue of :func:`run_autoscaled_serving`.  The returned
    :class:`~repro.serving.cluster.ClusterResult` carries the full
    decision trace (``control_decisions`` — every committed action with
    the predicted costs of everything it rejected) alongside the scaling
    trace and fleet accounting."""
    scenario = scenario or ServingScenario.paper_default()
    cluster = build_autopilot_cluster(model, min_nodes, max_nodes, **kwargs)
    return cluster.run_streaming(scenario) if streaming else cluster.run(scenario)


def run_autoscaled_serving(
    model: ModelConfig,
    scenario: ServingScenario | None = None,
    min_nodes: int = 1,
    max_nodes: int = 4,
    streaming: bool = False,
    **kwargs,
) -> ClusterResult:
    """Run one scenario through an elastic cluster; the autoscaling
    analogue of :func:`run_cluster_serving`.  The returned
    :class:`~repro.serving.cluster.ClusterResult` carries the scaling
    trace (``scale_events``), ``node_seconds``, and handoff overhead."""
    scenario = scenario or ServingScenario.paper_default()
    cluster = build_autoscaled_cluster(model, min_nodes, max_nodes, **kwargs)
    return cluster.run_streaming(scenario) if streaming else cluster.run(scenario)


def follow_the_sun_scenario(
    n_regions: int = 3,
    n_queries: int = 3000,
    qps: float = 1000.0,
    mean_size: float = 128.0,
    sla_s: float = 0.05,
    period_s: float = 60.0,
    amplitude: float = 0.8,
    seed: int = 0,
) -> tuple[ServingScenario, np.ndarray]:
    """One global day of traffic with each region's peak chasing the sun.

    Every region gets its own diurnal stream (``n_queries`` each, same
    rate curve) phase-offset by ``period_s / n_regions`` from its
    neighbor, so exactly one region is near peak at any instant while
    another sits in its trough — the scenario where cross-region
    spilling has capacity to borrow.  Returns the merged arrival-ordered
    scenario plus the parallel home-region array
    :class:`~repro.serving.region.RegionSimulator` routes by.  The
    default SLA is 50 ms — geo-scale, room for a WAN round trip — not
    the single-cluster 10 ms.
    """
    if n_regions < 1:
        raise ValueError("n_regions must be >= 1")
    streams = [
        generate_query_arrays(
            n_queries=n_queries,
            mean_size=mean_size,
            qps=qps,
            seed=seed + region,
            process="diurnal",
            period_s=period_s,
            amplitude=amplitude,
            phase_s=region * period_s / n_regions,
        )
        for region in range(n_regions)
    ]
    merged, region_of = merge_query_arrays(streams)
    return ServingScenario(queries=merged.to_queries(), sla_s=sla_s), region_of


def build_regions(
    model: ModelConfig,
    n_regions: int,
    nodes_per_region: int = 1,
    region_names: list[str] | None = None,
    wan: str | WanLink = "wan-metro",
    geo_router: str | GeoRouter = "spill",
    region_replication: int = 1,
    **kwargs,
) -> RegionSimulator:
    """Assemble a geo fleet: ``n_regions`` identical serving clusters
    (each via :func:`build_cluster`, with the contiguous ``node_base``
    offsets region composition requires) behind one WAN link and one
    geo router.  ``kwargs`` split by destination: region-tier knobs
    (``spill_margin``, ``fail_region``, ``fail_at``, ``bytes_per_query``,
    ``region_cache_bytes``) go to the
    :class:`~repro.serving.region.RegionSimulator`; the rest forward to
    every member's :func:`build_cluster` call."""
    if n_regions < 1:
        raise ValueError("n_regions must be >= 1")
    if nodes_per_region < 1:
        raise ValueError("nodes_per_region must be >= 1")
    if region_names is None:
        region_names = [f"r{i}" for i in range(n_regions)]
    if len(region_names) != n_regions:
        raise ValueError("need one name per region")
    region_keys = (
        "spill_margin", "fail_region", "fail_at", "bytes_per_query",
        "region_cache_bytes",
    )
    region_kwargs = {k: kwargs.pop(k) for k in region_keys if k in kwargs}
    regions = [
        (
            region_names[i],
            build_cluster(
                model, nodes_per_region,
                node_base=i * nodes_per_region, **kwargs,
            ),
        )
        for i in range(n_regions)
    ]
    return RegionSimulator(
        regions, wan=wan, geo_router=geo_router,
        region_replication=region_replication, **region_kwargs,
    )


def run_geo_serving(
    model: ModelConfig,
    n_regions: int = 3,
    nodes_per_region: int = 1,
    scenario: ServingScenario | None = None,
    region_of: np.ndarray | None = None,
    streaming: bool = False,
    seed: int = 0,
    **kwargs,
) -> RegionResult:
    """Run a follow-the-sun day through a geo fleet; the region-tier
    analogue of :func:`run_cluster_serving`.  Builds the default
    :func:`follow_the_sun_scenario` (keyed to ``n_regions`` and
    ``seed``) unless a scenario + home array pair is passed."""
    if (scenario is None) != (region_of is None):
        raise ValueError("scenario and region_of go together")
    if scenario is None:
        scenario, region_of = follow_the_sun_scenario(
            n_regions=n_regions, seed=seed
        )
    sim = build_regions(
        model, n_regions, nodes_per_region=nodes_per_region, **kwargs
    )
    if streaming:
        return sim.run_streaming(scenario, region_of)
    return sim.run(scenario, region_of)
