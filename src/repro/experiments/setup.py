"""Assembly of the paper's evaluation design points (Section 5.1).

HW-1: CPU (32 GB DRAM) + GPU (32 GB HBM2) — the main evaluation platform.
HW-2: CPU (1 GB) + GPU (200 MB) — the memory-constrained case study.
HW-3: CPU (32 GB) + IPU board/pod — the custom-accelerator case study
(assembled per-bench via ``repro.hardware.topology``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.sharding import greedy_shard
from repro.core.mp_cache import CacheEffect, DecoderCentroidCache, EncoderCache
from repro.core.offline import MappingPlan, OfflinePlanner
from repro.core.online import (
    MultiPathScheduler,
    Scheduler,
    StaticScheduler,
    TableSwitchScheduler,
)
from repro.core.profiler import make_path
from repro.core.representations import RepresentationConfig, paper_configs
from repro.data.zipf import ZipfSampler
from repro.hardware.catalog import CPU_BROADWELL, GPU_V100
from repro.hardware.device import GB, MB, DeviceSpec
from repro.hardware.topology import ETHERNET_100G, LinkSpec
from repro.models.configs import KAGGLE, TERABYTE, ModelConfig
from repro.quality.estimator import QualityEstimator
from repro.serving.cluster import ClusterResult, ClusterSimulator
from repro.serving.metrics import ServingResult
from repro.serving.routing import Router
from repro.serving.simulator import ServingSimulator
from repro.serving.workload import ServingScenario


@dataclass(frozen=True)
class HardwareConfig:
    name: str
    cpu_dram: int
    gpu_dram: int


HW1 = HardwareConfig(name="HW-1", cpu_dram=32 * GB, gpu_dram=32 * GB)
HW2 = HardwareConfig(name="HW-2", cpu_dram=1 * GB, gpu_dram=200 * MB)

_DATASETS = {"kaggle": KAGGLE, "terabyte": TERABYTE}


def dataset_for(model: ModelConfig) -> str:
    """Quality-estimator dataset key for a model config."""
    name = model.name.split("-")[0]
    return name if name in ("kaggle", "terabyte") else "internal"


def hw1_devices() -> list[DeviceSpec]:
    return [
        CPU_BROADWELL.with_memory_budget(HW1.cpu_dram),
        GPU_V100.with_memory_budget(HW1.gpu_dram),
    ]


def hw2_devices() -> list[DeviceSpec]:
    return [
        CPU_BROADWELL.with_memory_budget(HW2.cpu_dram),
        GPU_V100.with_memory_budget(HW2.gpu_dram),
    ]


def default_cache_effect(
    model: ModelConfig,
    rep: RepresentationConfig,
    capacity_bytes: int = 2 * MB,
    n_centroids: int = 256,
    zipf_alpha: float = 1.05,
) -> CacheEffect:
    """MP-Cache effect with the paper's default sizing (2 MB encoder cache,
    centroid kNN decoder), computed analytically from the traffic model."""
    samplers = [
        ZipfSampler(rows, alpha=zipf_alpha, seed=f)
        for f, rows in enumerate(model.cardinalities)
    ]
    encoder = EncoderCache(capacity_bytes, rep.embedding_dim)
    encoder.fit_static(samplers)
    hit_rate = encoder.expected_hit_rate(samplers)
    decoder = DecoderCentroidCache(n_centroids)
    return CacheEffect(
        encoder_hit_rate=hit_rate,
        decoder_speedup=decoder.speedup(rep),
        accuracy_penalty=0.002,
    )


def build_plan(
    model: ModelConfig,
    devices: list[DeviceSpec] | None = None,
) -> MappingPlan:
    """Run the offline stage (Algorithm 1) on the given platform."""
    estimator = QualityEstimator(dataset_for(model))
    planner = OfflinePlanner(model, estimator)
    return planner.plan(devices if devices is not None else hw1_devices())


def build_schedulers(
    model: ModelConfig,
    devices: list[DeviceSpec] | None = None,
    with_cache: bool = True,
) -> dict[str, Scheduler]:
    """All Figure 10 contenders: static deployments, table CPU-GPU
    switching, and MP-Rec (with MP-Cache unless disabled)."""
    devices = devices if devices is not None else hw1_devices()
    cpu, gpu = devices[0], devices[1]
    estimator = QualityEstimator(dataset_for(model))
    configs = paper_configs(model)

    def static(rep_name: str, device: DeviceSpec) -> StaticScheduler | None:
        rep = configs[rep_name]
        if rep.total_bytes(model) > device.total_memory:
            return None
        path = make_path(
            rep, model, device, estimator.accuracy(rep),
            label=f"{rep_name.upper()}({device.kind.upper()})",
        )
        path.extra["model"] = model
        return StaticScheduler([path])

    schedulers: dict[str, Scheduler] = {}
    for rep_name in ("table", "dhe", "hybrid"):
        for device in (cpu, gpu):
            sched = static(rep_name, device)
            if sched is not None:
                schedulers[f"{rep_name}-{device.kind}"] = sched

    # Table-only CPU<->GPU switching baseline.
    table_paths = []
    for device in (cpu, gpu):
        rep = configs["table"]
        if rep.total_bytes(model) <= device.total_memory:
            path = make_path(
                rep, model, device, estimator.accuracy(rep),
                label=f"TABLE({device.kind.upper()})",
            )
            path.extra["model"] = model
            table_paths.append(path)
    if table_paths:
        schedulers["table-switch"] = TableSwitchScheduler(table_paths)

    # MP-Rec: offline plan -> cached execution paths -> Algorithm 2.
    plan = build_plan(model, devices)
    mp_paths = []
    for device_name, reps in plan.mappings.items():
        device = plan.devices[device_name]
        for rep in reps:
            if rep.uses_dhe and with_cache:
                effect = default_cache_effect(model, rep)
                hit, speed = effect.encoder_hit_rate, effect.decoder_speedup
                accuracy = plan.accuracies[rep.display] - effect.accuracy_penalty
            else:
                hit, speed = 0.0, 1.0
                accuracy = plan.accuracies[rep.display]
            path = make_path(
                rep, model, device, accuracy,
                encoder_hit_rate=hit, decoder_speedup=speed,
                label=f"{rep.kind.upper()}({device.kind.upper()})",
            )
            path.extra["model"] = model
            mp_paths.append(path)
    schedulers["mp-rec"] = MultiPathScheduler(mp_paths)
    return schedulers


def run_serving_comparison(
    model: ModelConfig,
    scenario: ServingScenario | None = None,
    devices: list[DeviceSpec] | None = None,
    with_cache: bool = True,
    subset: tuple[str, ...] = (),
    shed_policy: str = "none",
    max_batch_size: int = 1,
    batch_timeout_s: float = 0.0,
    streaming: bool = False,
) -> dict[str, ServingResult]:
    """Run every scheduler through the scenario; returns results by name.

    ``shed_policy`` / ``max_batch_size`` / ``batch_timeout_s`` forward to
    the event engine; defaults reproduce the per-query reference behavior.
    ``streaming=True`` swaps exact record-backed results for constant-memory
    :class:`~repro.serving.metrics.StreamingMetrics` (same metric API)."""
    scenario = scenario or ServingScenario.paper_default()
    schedulers = build_schedulers(model, devices, with_cache=with_cache)
    if subset:
        schedulers = {k: v for k, v in schedulers.items() if k in subset}
    results = {}
    for name, sched in schedulers.items():
        sim = ServingSimulator(
            sched, shed_policy=shed_policy, max_batch_size=max_batch_size,
            batch_timeout_s=batch_timeout_s,
        )
        results[name] = (
            sim.run_streaming(scenario) if streaming else sim.run(scenario)
        )
    return results


def build_cluster(
    model: ModelConfig,
    n_nodes: int,
    scheduler: str = "mp-rec",
    router: str | Router = "round-robin",
    replication: int = 1,
    link: LinkSpec = ETHERNET_100G,
    devices: list[DeviceSpec] | None = None,
    with_cache: bool = True,
    **cluster_kwargs,
) -> ClusterSimulator:
    """Assemble a serving cluster: every node runs the named scheduler's
    paths on its own HW-1 replica, and the model's tables are greedy-LPT
    sharded (:func:`~repro.analysis.sharding.greedy_shard`) across nodes.

    ``cluster_kwargs`` forward to :class:`~repro.serving.cluster.
    ClusterSimulator` (``shed_policy``, ``max_batch_size``, ``max_queue``,
    ``fail_at``, ``fail_node``, ``hot_fraction``, ...).
    """
    schedulers = build_schedulers(model, devices, with_cache=with_cache)
    if scheduler not in schedulers:
        raise ValueError(
            f"unknown scheduler {scheduler!r}; have {sorted(schedulers)}"
        )
    plan = greedy_shard(model.cardinalities, model.embedding_dim, n_nodes)
    return ClusterSimulator(
        schedulers[scheduler], plan, router=router, replication=replication,
        link=link, **cluster_kwargs,
    )


def run_cluster_serving(
    model: ModelConfig,
    scenario: ServingScenario | None = None,
    n_nodes: int = 2,
    scheduler: str = "mp-rec",
    router: str | Router = "round-robin",
    replication: int = 1,
    streaming: bool = False,
    **kwargs,
) -> ClusterResult:
    """Run one scenario through a multi-node cluster; the cluster analogue
    of :func:`run_serving_comparison` for a single scheduler."""
    scenario = scenario or ServingScenario.paper_default()
    cluster = build_cluster(
        model, n_nodes, scheduler=scheduler, router=router,
        replication=replication, **kwargs,
    )
    return cluster.run_streaming(scenario) if streaming else cluster.run(scenario)
