"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library's main entry points:

- ``train``        — train a DLRM variant on synthetic Criteo-shaped data.
- ``plan``         — run the MP-Rec offline stage (Algorithm 1) and print
                     the representation-hardware mappings.
- ``serve``        — simulate query serving under a chosen scheduler.
- ``characterize`` — operator breakdowns across representations/devices.
- ``generate-data``— write a Criteo-format TSV from the synthetic model.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

DATASETS = {}


def _datasets():
    from repro.data.internal_like import INTERNAL_LIKE
    from repro.models.configs import KAGGLE, KAGGLE_MINI, TERABYTE, TERABYTE_MINI

    return {
        "kaggle": KAGGLE,
        "terabyte": TERABYTE,
        "kaggle-mini": KAGGLE_MINI,
        "terabyte-mini": TERABYTE_MINI,
        "internal-like": INTERNAL_LIKE,
    }


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return parsed


def _non_negative_int(value: str) -> int:
    parsed = int(value)
    if parsed < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return parsed


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="MP-Rec reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train a DLRM variant")
    train.add_argument("--dataset", default="kaggle-mini", choices=sorted(_datasets()))
    train.add_argument(
        "--representation", default="table",
        choices=["table", "dhe", "select", "hybrid", "ttrec"],
    )
    train.add_argument("--steps", type=int, default=100)
    train.add_argument("--batch-size", type=int, default=128)
    train.add_argument("--lr", type=float, default=0.1)
    train.add_argument("--k", type=int, default=32)
    train.add_argument("--dnn", type=int, default=32)
    train.add_argument("--height", type=int, default=1)
    train.add_argument("--seed", type=int, default=0)

    plan = sub.add_parser("plan", help="run the offline stage (Algorithm 1)")
    plan.add_argument("--dataset", default="kaggle", choices=["kaggle", "terabyte"])
    plan.add_argument("--hw", default="hw1", choices=["hw1", "hw2"])

    serve = sub.add_parser("serve", help="simulate query serving")
    serve.add_argument("--dataset", default="kaggle", choices=["kaggle", "terabyte"])
    serve.add_argument(
        "--scheduler", default="mp-rec",
        choices=["mp-rec", "table-cpu", "table-gpu", "dhe-gpu", "hybrid-gpu",
                 "table-switch"],
    )
    serve.add_argument("--queries", type=int, default=1000)
    serve.add_argument("--qps", type=float, default=1000.0)
    serve.add_argument("--sla-ms", type=float, default=10.0)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--arrivals", default="poisson",
        choices=["poisson", "uniform", "diurnal", "mmpp", "flash-crowd"],
    )
    serve.add_argument(
        "--shed-policy", default="none",
        choices=["none", "drop-late", "deadline-aware"],
    )
    serve.add_argument("--max-batch", type=_positive_int, default=1)
    serve.add_argument("--batch-timeout-ms", type=float, default=0.0)
    serve.add_argument(
        "--streaming", action="store_true",
        help="constant-memory metrics (for very large --queries)",
    )
    serve.add_argument(
        "--fastpath", action="store_true",
        help="vectorized array engine: record-identical to the event "
             "kernel, an order of magnitude faster (single-node only; "
             "pairs well with --streaming for 10M+ query days)",
    )
    serve.add_argument(
        "--switching", action="store_true",
        help="runtime representation switching: one resident representation "
             "per device, swapped as load shifts (Fig 15 overhead charged)",
    )
    serve.add_argument(
        "--switch-cooldown", type=float, default=None, metavar="MS",
        help="freeze a device for this long after each switch "
             "(hysteresis; default 250 ms, requires --switching)",
    )
    serve.add_argument(
        "--nodes", type=_positive_int, default=None,
        help="cluster size; >1 serves through the multi-node simulator "
             "(with --regions: nodes per region; default 1)",
    )
    serve.add_argument(
        "--router", default="round-robin",
        choices=["round-robin", "least-loaded", "locality", "cache-affinity"],
        help="cluster query router (--nodes > 1; cache-affinity requires "
             "--cache-mb)",
    )
    serve.add_argument(
        "--replication", type=_positive_int, default=1,
        help="shard replicas per group; >= 2 survives a node failure",
    )
    serve.add_argument(
        "--fail-at", type=float, default=None, metavar="SECONDS",
        help="kill --fail-node at this simulation time (failover drill)",
    )
    serve.add_argument("--fail-node", type=int, default=0)
    serve.add_argument(
        "--max-queue", type=_non_negative_int, default=0,
        help="per-node backpressure bound on outstanding queries (0 = off)",
    )
    serve.add_argument(
        "--link", default="eth-100g", choices=["eth-25g", "eth-100g", "rdma-100g"],
        help="inter-node fabric pricing the embedding all-to-all",
    )
    serve.add_argument(
        "--cache-mb", type=float, default=None, metavar="MB",
        help="per-node MP-Cache tier budget in MB (cluster only: hot "
             "embedding rows cached in front of the fabric)",
    )
    serve.add_argument(
        "--cache-policy", default=None, choices=["lru", "static"],
        help="cache residency policy: lru demand-fills on misses, static "
             "preloads profiled hot rows (default lru; requires --cache-mb)",
    )
    serve.add_argument(
        "--autoscale", action="store_true",
        help="elastic fleet: grow/drain nodes with load (live shard "
             "handoff priced over --link); --nodes is the fleet ceiling",
    )
    serve.add_argument(
        "--min-nodes", type=_positive_int, default=1,
        help="autoscaling floor (requires --autoscale)",
    )
    serve.add_argument(
        "--max-nodes", type=_positive_int, default=None,
        help="autoscaling ceiling (defaults to --nodes; requires --autoscale)",
    )
    serve.add_argument(
        "--scale-cooldown", type=float, default=None, metavar="MS",
        help="freeze membership for this long after each scale operation "
             "(hysteresis; default 500 ms, requires --autoscale)",
    )
    serve.add_argument(
        "--autopilot", action="store_true",
        help="unified SLO autopilot: one control plane arbitrates "
             "representation switches, scale up/down, cache re-warm, and "
             "router swaps against one fleet cost function (subsumes "
             "--switching and --autoscale; --nodes/--max-nodes is the "
             "fleet ceiling, --min-nodes the floor)",
    )
    serve.add_argument(
        "--trace-decisions", type=int, default=8, metavar="N",
        help="print the first N autopilot decisions with every candidate "
             "action's predicted cost (requires --autopilot)",
    )
    serve.add_argument(
        "--regions", type=_positive_int, default=None,
        help="geo-distributed serving: this many regions of --nodes "
             "nodes each over a WAN, driven by a follow-the-sun "
             "phase-offset diurnal day (requires --nodes)",
    )
    serve.add_argument(
        "--wan-link", default=None,
        choices=["wan-metro", "wan-transcon", "wan-intercont"],
        help="WAN link class joining the regions (default wan-metro; "
             "requires --regions)",
    )
    serve.add_argument(
        "--geo-router", default=None, choices=["pinned", "spill"],
        help="cross-region routing: pinned keeps queries home, spill "
             "offloads SLA-risk peaks to the cheapest remote region "
             "(default spill; requires --regions)",
    )
    serve.add_argument(
        "--region-replication", type=_positive_int, default=None,
        help="regions replicating each region's shards; >= 2 survives a "
             "region failure (default 1; requires --regions)",
    )
    serve.add_argument(
        "--region-fail-at", type=float, default=None, metavar="SECONDS",
        help="kill --fail-region at this simulation time (region "
             "failover drill; requires --regions)",
    )
    serve.add_argument(
        "--fail-region", type=int, default=None,
        help="region id for --region-fail-at (requires --regions)",
    )

    char = sub.add_parser("characterize", help="operator breakdowns")
    char.add_argument("--dataset", default="kaggle", choices=["kaggle", "terabyte"])
    char.add_argument("--batch", type=int, default=2048)

    gen = sub.add_parser("generate-data", help="write a Criteo-format TSV")
    gen.add_argument("--out", required=True)
    gen.add_argument("--dataset", default="kaggle-mini", choices=sorted(_datasets()))
    gen.add_argument("--rows", type=int, default=10_000)
    gen.add_argument("--seed", type=int, default=0)
    return parser


def cmd_train(args) -> int:
    from repro.data.synthetic import SyntheticCTRDataset
    from repro.models.dlrm import build_dlrm
    from repro.training.trainer import Trainer

    config = _datasets()[args.dataset]
    rng = np.random.default_rng(args.seed)
    model = build_dlrm(
        config, args.representation, rng, k=args.k, dnn=args.dnn, h=args.height
    )
    dataset = SyntheticCTRDataset(config, seed=args.seed)
    trainer = Trainer(model, dataset, lr=args.lr)
    result = trainer.train(n_steps=args.steps, batch_size=args.batch_size)
    print(f"representation : {args.representation}")
    print(f"parameters     : {model.num_parameters():,}")
    print(f"loss           : {result.losses[0]:.4f} -> {result.final_loss:.4f}")
    print(f"accuracy       : {result.eval_accuracy:.4f}")
    print(f"auc            : {result.eval_auc:.4f}")
    return 0


def cmd_plan(args) -> int:
    from repro.core.offline import OfflinePlanner
    from repro.experiments.setup import hw1_devices, hw2_devices
    from repro.quality.estimator import QualityEstimator

    config = _datasets()[args.dataset]
    devices = hw1_devices() if args.hw == "hw1" else hw2_devices()
    plan = OfflinePlanner(config, QualityEstimator(args.dataset)).plan(devices)
    for device_name, reps in plan.mappings.items():
        print(f"{device_name} ({plan.device_bytes(device_name) / 1e9:.3f} GB used):")
        for rep in reps:
            print(
                f"  {rep.display:24s} {rep.total_bytes(config) / 1e9:8.3f} GB"
                f"   acc {plan.accuracies[rep.display]:.3f}%"
            )
    return 0


def cmd_serve(args) -> int:
    from repro.experiments.setup import run_serving_comparison
    from repro.serving.workload import ServingScenario

    config = _datasets()[args.dataset]
    # Pure flag checks run before the (potentially huge) workload is built.
    # Geo flags first: they redefine what --nodes means (nodes per region).
    if args.regions is None:
        geo_flags = [
            ("--wan-link", args.wan_link is not None),
            ("--geo-router", args.geo_router is not None),
            ("--region-replication", args.region_replication is not None),
            ("--region-fail-at", args.region_fail_at is not None),
            ("--fail-region", args.fail_region is not None),
        ]
        offending = [flag for flag, used in geo_flags if used]
        if offending:
            print(
                f"error: {', '.join(offending)} require(s) --regions",
                file=sys.stderr,
            )
            return 2
    else:
        if args.nodes is None:
            print(
                "error: --regions needs --nodes (the per-region cluster "
                "size)", file=sys.stderr,
            )
            return 2
        incompatible = [
            ("--fastpath", args.fastpath),
            ("--switching", args.switching),
            ("--autoscale", args.autoscale),
            ("--autopilot", args.autopilot),
            ("--fail-at/--fail-node",
             args.fail_at is not None or args.fail_node != 0),
        ]
        offending = [flag for flag, used in incompatible if used]
        if offending:
            print(
                f"error: {', '.join(offending)} cannot combine with "
                "--regions (the region tier owns failure drills; "
                "per-cluster controllers are not composed)",
                file=sys.stderr,
            )
            return 2
        if args.arrivals != "poisson":
            print(
                "error: --regions builds its own follow-the-sun "
                "phase-offset diurnal day; drop --arrivals",
                file=sys.stderr,
            )
            return 2
        if args.region_fail_at is not None and args.region_fail_at < 0:
            print(
                f"error: --region-fail-at must be non-negative, got "
                f"{args.region_fail_at:g}", file=sys.stderr,
            )
            return 2
        if (args.region_fail_at is None) != (args.fail_region is None):
            print(
                "error: --region-fail-at and --fail-region go together",
                file=sys.stderr,
            )
            return 2
        if args.fail_region is not None \
                and not 0 <= args.fail_region < args.regions:
            print(
                f"error: --fail-region {args.fail_region} out of range "
                f"for --regions {args.regions}", file=sys.stderr,
            )
            return 2
        if args.region_replication is not None \
                and args.region_replication > args.regions:
            print(
                f"error: --region-replication {args.region_replication} "
                f"exceeds --regions {args.regions}", file=sys.stderr,
            )
            return 2
        if args.replication > args.nodes:
            print(
                f"error: --replication {args.replication} exceeds "
                f"--nodes {args.nodes} (shards replicate within a "
                "region; across regions use --region-replication)",
                file=sys.stderr,
            )
            return 2
    if args.nodes is None:
        args.nodes = 1
    if args.fastpath:
        event_only = [
            ("--switching", args.switching),
            ("--autoscale", args.autoscale),
            ("--autopilot", args.autopilot),
            ("--nodes > 1", args.nodes > 1),
        ]
        offending = [flag for flag, used in event_only if used]
        if offending:
            print(
                f"error: --fastpath is the single-node array engine; "
                f"{', '.join(offending)} require(s) the event kernel",
                file=sys.stderr,
            )
            return 2
    if args.autopilot:
        if args.switching:
            print(
                "error: --autopilot subsumes --switching (representation "
                "switches are one of its action classes); pass one",
                file=sys.stderr,
            )
            return 2
        if args.autoscale:
            print(
                "error: --autopilot subsumes --autoscale (scale is one of "
                "its action classes); pass one", file=sys.stderr,
            )
            return 2
        if args.scheduler != "mp-rec":
            print(
                "error: --autopilot builds its own one-representation-per-"
                "device deployment; leave --scheduler at its default",
                file=sys.stderr,
            )
            return 2
        if args.switch_cooldown is not None or args.scale_cooldown is not None:
            print(
                "error: --switch-cooldown/--scale-cooldown tune the stand-"
                "alone controllers; the autopilot shares one cooldown "
                "across all action classes (ControlPlane.cooldown_s)",
                file=sys.stderr,
            )
            return 2
    elif args.trace_decisions != 8:
        print("error: --trace-decisions requires --autopilot", file=sys.stderr)
        return 2
    if args.switch_cooldown is not None and not args.switching:
        print("error: --switch-cooldown requires --switching", file=sys.stderr)
        return 2
    if args.switching:
        if args.nodes > 1 or args.autoscale:
            print(
                "error: --switching is a single-node mode (use the "
                "ClusterSimulator API for switching fleets)", file=sys.stderr,
            )
            return 2
        if args.scheduler != "mp-rec":
            print(
                "error: --switching builds its own one-representation-per-"
                "device deployment; leave --scheduler at its default",
                file=sys.stderr,
            )
            return 2
        if args.cache_mb is not None or args.cache_policy is not None:
            print(
                "error: --cache-mb/--cache-policy build the cluster cache "
                "tier (--nodes > 1); --switching is single-node",
                file=sys.stderr,
            )
            return 2
    if args.cache_mb is not None and args.cache_mb <= 0:
        print(
            f"error: --cache-mb must be positive, got {args.cache_mb:g}",
            file=sys.stderr,
        )
        return 2
    if args.cache_policy is not None and args.cache_mb is None:
        print(
            "error: --cache-policy requires --cache-mb (no cache to govern)",
            file=sys.stderr,
        )
        return 2
    if args.router == "cache-affinity" and args.cache_mb is None:
        print(
            "error: --router cache-affinity scores nodes by cache "
            "residency; give the tier a budget with --cache-mb",
            file=sys.stderr,
        )
        return 2
    if not (args.autoscale or args.autopilot):
        fleet_flags = [
            ("--min-nodes", args.min_nodes != 1),
            ("--max-nodes", args.max_nodes is not None),
            ("--scale-cooldown", args.scale_cooldown is not None),
        ]
        ignored = [flag for flag, used in fleet_flags if used]
        if ignored:
            print(
                f"error: {', '.join(ignored)} require(s) --autoscale "
                "or --autopilot", file=sys.stderr,
            )
            return 2
    else:
        mode = "--autopilot" if args.autopilot else "--autoscale"
        max_nodes = args.max_nodes if args.max_nodes is not None else args.nodes
        if args.max_nodes is not None and args.nodes > 1 \
                and args.max_nodes != args.nodes:
            print(
                f"error: --nodes {args.nodes} conflicts with --max-nodes "
                f"{args.max_nodes}; give the fleet ceiling once",
                file=sys.stderr,
            )
            return 2
        if max_nodes < 2:
            print(
                f"error: {mode} with --nodes 1 is not a fleet; give "
                "the ceiling via --nodes or --max-nodes (> 1)",
                file=sys.stderr,
            )
            return 2
        if args.min_nodes > max_nodes:
            print(
                f"error: --min-nodes {args.min_nodes} exceeds the fleet "
                f"ceiling {max_nodes}", file=sys.stderr,
            )
            return 2
        if args.fail_at is not None or args.fail_node != 0:
            print(
                f"error: {mode} and --fail-at/--fail-node cannot be "
                "combined (elastic membership has no failure drill yet)",
                file=sys.stderr,
            )
            return 2
        if args.replication > args.min_nodes:
            print(
                f"error: --replication {args.replication} exceeds "
                f"--min-nodes {args.min_nodes}; every epoch must fit its "
                "replication chains", file=sys.stderr,
            )
            return 2
    if args.regions is not None:
        return _serve_regions(args, config)
    scenario = ServingScenario.with_process(
        args.arrivals, n_queries=args.queries, qps=args.qps,
        sla_s=args.sla_ms / 1e3, seed=args.seed,
    )
    if args.switching:
        return _serve_switching(args, config, scenario)
    if args.autopilot:
        return _serve_autopilot(args, config, scenario, max_nodes)
    if args.autoscale:
        return _serve_autoscale(args, config, scenario, max_nodes)
    if args.nodes > 1:
        if args.replication > args.nodes:
            print(
                f"error: --replication {args.replication} exceeds "
                f"--nodes {args.nodes}", file=sys.stderr,
            )
            return 2
        if args.fail_at is not None and not 0 <= args.fail_node < args.nodes:
            print(
                f"error: --fail-node {args.fail_node} out of range for "
                f"--nodes {args.nodes}", file=sys.stderr,
            )
            return 2
        if args.fail_at is None and args.fail_node != 0:
            print(
                "error: --fail-node requires --fail-at (no failure is "
                "simulated otherwise)", file=sys.stderr,
            )
            return 2
        return _serve_cluster(args, config, scenario)
    # Cluster-only flags must not be silently ignored on a 1-node run.
    cluster_flags = [
        ("--fail-at", args.fail_at is not None),
        ("--fail-node", args.fail_node != 0),
        ("--replication", args.replication > 1),
        ("--max-queue", args.max_queue > 0),
        ("--router", args.router != "round-robin"),
        ("--link", args.link != "eth-100g"),
        ("--cache-mb", args.cache_mb is not None),
        ("--cache-policy", args.cache_policy is not None),
    ]
    ignored = [flag for flag, used in cluster_flags if used]
    if ignored:
        print(
            f"error: {', '.join(ignored)} require(s) --nodes > 1",
            file=sys.stderr,
        )
        return 2
    results = run_serving_comparison(
        config, scenario, subset=(args.scheduler,),
        shed_policy=args.shed_policy, max_batch_size=args.max_batch,
        batch_timeout_s=args.batch_timeout_ms / 1e3,
        streaming=args.streaming,
        engine="fast" if args.fastpath else "event",
    )
    result = results[args.scheduler]
    print(f"scheduler              : {args.scheduler}")
    print(f"engine                 : "
          f"{'fast (array path)' if args.fastpath else 'event kernel'}")
    print(f"correct predictions/s  : {result.correct_prediction_throughput:,.0f}")
    print(f"raw samples/s          : {result.raw_throughput:,.0f}")
    print(f"served accuracy        : {result.mean_accuracy:.3f}%")
    print(f"SLA violations         : {result.violation_rate * 100:.2f}%")
    print(f"shed (dropped)         : {result.drop_rate * 100:.2f}%")
    print(f"p99 latency            : {result.p99_latency_s * 1e3:.2f} ms")
    for label, share in result.switching_breakdown().items():
        print(f"  {label:16s} {share * 100:5.1f}%")
    return 0


def _cache_kwargs(args) -> dict:
    """Cluster cache-tier kwargs from the validated CLI flags."""
    if args.cache_mb is None:
        return {}
    return {
        "cache_bytes": int(args.cache_mb * 2**20),
        "cache_policy": args.cache_policy or "lru",
    }


def _print_cache(cache) -> None:
    """The cache tier's headline counters (one block, cluster modes)."""
    if cache is None:
        return
    print(f"cache hit rate         : {cache.hit_rate * 100:.2f}% "
          f"({cache.hits}/{cache.lookups} row lookups)")
    print(f"cache fill bytes       : {cache.fill_bytes / 1e6:.2f} MB"
          + (f" (+{cache.warm_bytes / 1e6:.2f} MB warmed)"
             if cache.warm_bytes else ""))
    if cache.rewarm_bytes:
        print(f"cache re-warm          : {cache.rewarm_bytes / 1e6:.2f} MB "
              f"in {cache.rewarm_s * 1e3:.2f} ms (switch invalidations)")


def _serve_switching(args, config, scenario) -> int:
    from repro.experiments.setup import run_switching_serving

    cooldown_ms = 250.0 if args.switch_cooldown is None else args.switch_cooldown
    result, controller = run_switching_serving(
        config, scenario, shed_policy=args.shed_policy,
        max_batch_size=args.max_batch,
        batch_timeout_s=args.batch_timeout_ms / 1e3,
        streaming=args.streaming, cooldown_s=cooldown_ms / 1e3,
    )
    print("mode                   : runtime representation switching")
    print(f"correct predictions/s  : {result.correct_prediction_throughput:,.0f}")
    print(f"raw samples/s          : {result.raw_throughput:,.0f}")
    print(f"served accuracy        : {result.mean_accuracy:.3f}%")
    print(f"SLA violations         : {result.violation_rate * 100:.2f}%")
    print(f"shed (dropped)         : {result.drop_rate * 100:.2f}%")
    print(f"p99 latency            : {result.p99_latency_s * 1e3:.2f} ms")
    for label, share in result.switching_breakdown().items():
        print(f"  {label:16s} {share * 100:5.1f}%")
    print(f"switches               : {len(controller.events)}")
    print(f"switch overhead        : {controller.total_overhead_s * 1e3:.2f} ms")
    for event in controller.events[:8]:
        print(
            f"  t={event.time_s * 1e3:8.1f} ms  {event.device}: "
            f"{event.from_label} -> {event.to_label} "
            f"(+{event.overhead_s * 1e3:.1f} ms)"
        )
    return 0


def _serve_autoscale(args, config, scenario, max_nodes) -> int:
    from repro.experiments.setup import run_autoscaled_serving
    from repro.hardware.topology import CLUSTER_LINKS

    cooldown_ms = 500.0 if args.scale_cooldown is None else args.scale_cooldown
    cluster = run_autoscaled_serving(
        config, scenario, min_nodes=args.min_nodes, max_nodes=max_nodes,
        scheduler=args.scheduler, router=args.router,
        replication=args.replication, link=CLUSTER_LINKS[args.link],
        cooldown_s=cooldown_ms / 1e3, shed_policy=args.shed_policy,
        max_batch_size=args.max_batch,
        batch_timeout_s=args.batch_timeout_ms / 1e3,
        max_queue=args.max_queue, streaming=args.streaming,
        **_cache_kwargs(args),
    )
    result = cluster.result
    print(f"elastic cluster        : {args.min_nodes}..{max_nodes} nodes, "
          f"{args.router} router, replication {args.replication}, {args.link}")
    print(f"scheduler              : {args.scheduler}")
    print(f"correct predictions/s  : {result.correct_prediction_throughput:,.0f}")
    print(f"raw samples/s          : {result.raw_throughput:,.0f}")
    print(f"served accuracy        : {result.mean_accuracy:.3f}%")
    print(f"SLA violations         : {result.violation_rate * 100:.2f}%")
    print(f"shed (dropped)         : {result.drop_rate * 100:.2f}%")
    print(f"p99 latency            : {result.p99_latency_s * 1e3:.2f} ms")
    print(f"scale ups / downs      : {cluster.scale_ups} / {cluster.scale_downs}")
    print(f"node-seconds           : {cluster.node_seconds:.3f}")
    print(f"handoff overhead       : {cluster.handoff_overhead_s * 1e3:.2f} ms")
    print(f"rerouted by drains     : {cluster.rerouted}")
    _print_cache(cluster.cache)
    if cluster.edge_drops:
        print(f"edge drops             : {cluster.edge_drops}")
    for event in cluster.scale_events[:10]:
        if event.kind == "up":
            detail = (
                f"warm {event.warm_bytes / 1e6:.1f} MB in "
                f"{event.warm_s * 1e3:.2f} ms"
            )
            if event.cache_warm_bytes:
                detail += f" (+{event.cache_warm_bytes / 1e6:.1f} MB cache)"
        else:
            detail = f"re-injected {event.reinjected}"
            if event.cache_donated_bytes:
                detail += (
                    f", donated {event.cache_donated_bytes / 1e6:.1f} MB cache"
                )
        print(
            f"  t={event.time_s * 1e3:8.1f} ms  {event.kind:4s} node "
            f"{event.node_id} -> {event.n_members} members ({detail})"
        )
    return 0


def _serve_autopilot(args, config, scenario, max_nodes) -> int:
    from repro.experiments.setup import run_autopilot_serving
    from repro.hardware.topology import CLUSTER_LINKS
    from repro.serving.controlplane import format_decision

    cluster = run_autopilot_serving(
        config, scenario, min_nodes=args.min_nodes, max_nodes=max_nodes,
        router=args.router, replication=args.replication,
        link=CLUSTER_LINKS[args.link], shed_policy=args.shed_policy,
        max_batch_size=args.max_batch,
        batch_timeout_s=args.batch_timeout_ms / 1e3,
        max_queue=args.max_queue, streaming=args.streaming,
        **_cache_kwargs(args),
    )
    result = cluster.result
    print(f"autopilot fleet        : {args.min_nodes}..{max_nodes} nodes, "
          f"{args.router} router, replication {args.replication}, {args.link}")
    print(f"correct predictions/s  : {result.correct_prediction_throughput:,.0f}")
    print(f"raw samples/s          : {result.raw_throughput:,.0f}")
    print(f"served accuracy        : {result.mean_accuracy:.3f}%")
    print(f"SLA violations         : {result.violation_rate * 100:.2f}%")
    print(f"shed (dropped)         : {result.drop_rate * 100:.2f}%")
    print(f"p99 latency            : {result.p99_latency_s * 1e3:.2f} ms")
    print(f"control decisions      : {len(cluster.control_decisions)}")
    print(f"scale ups / downs      : {cluster.scale_ups} / {cluster.scale_downs}")
    print(f"node-seconds           : {cluster.node_seconds:.3f}")
    print(f"final router           : {cluster.router}")
    _print_cache(cluster.cache)
    if cluster.edge_drops:
        print(f"edge drops             : {cluster.edge_drops}")
    for decision in cluster.control_decisions[:args.trace_decisions]:
        print(f"  {format_decision(decision)}")
    return 0


def _serve_regions(args, config) -> int:
    from repro.experiments.setup import build_regions, follow_the_sun_scenario
    from repro.hardware.topology import CLUSTER_LINKS

    scenario, region_of = follow_the_sun_scenario(
        n_regions=args.regions, n_queries=args.queries, qps=args.qps,
        sla_s=args.sla_ms / 1e3, seed=args.seed,
    )
    geo_kwargs = {}
    if args.region_fail_at is not None:
        geo_kwargs.update(
            fail_at=args.region_fail_at, fail_region=args.fail_region
        )
    sim = build_regions(
        config, args.regions, nodes_per_region=args.nodes,
        wan=args.wan_link or "wan-metro",
        geo_router=args.geo_router or "spill",
        region_replication=args.region_replication or 1,
        scheduler=args.scheduler, router=args.router,
        replication=args.replication, link=CLUSTER_LINKS[args.link],
        shed_policy=args.shed_policy, max_batch_size=args.max_batch,
        batch_timeout_s=args.batch_timeout_ms / 1e3,
        max_queue=args.max_queue, **_cache_kwargs(args), **geo_kwargs,
    )
    res = (
        sim.run_streaming(scenario, region_of)
        if args.streaming else sim.run(scenario, region_of)
    )
    result = res.result
    print(f"geo fleet              : {args.regions} regions x {args.nodes} "
          f"node(s), {res.router} geo-router, {res.wan.name}, "
          f"region replication {res.region_replication}")
    print(f"scheduler              : {args.scheduler}")
    print(f"correct predictions/s  : {result.correct_prediction_throughput:,.0f}")
    print(f"raw samples/s          : {result.raw_throughput:,.0f}")
    print(f"served accuracy        : {result.mean_accuracy:.3f}%")
    print(f"SLA violations         : {result.violation_rate * 100:.2f}%")
    print(f"shed (dropped)         : {result.drop_rate * 100:.2f}%")
    print(f"p99 latency            : {result.p99_latency_s * 1e3:.2f} ms")
    print(f"spilled / re-homed     : {res.spills} / {res.rehomed}")
    print(f"WAN traffic            : {res.wan_bytes / 1e6:.2f} MB "
          f"({res.wan_cost_j:.2f} J-eq)")
    print(f"total cost             : {res.total_cost_j:.2f} J-eq")
    for name, metrics in zip(res.regions, res.per_region):
        print(f"  {name:8s} violations {metrics.violation_rate * 100:6.2f}%  "
              f"p99 {metrics.p99_latency_s * 1e3:8.2f} ms")
    if res.cross_region is not None and res.cross_region.n:
        print(f"  {'x-region':8s} violations "
              f"{res.cross_region.violation_rate * 100:6.2f}%  "
              f"p99 {res.cross_region.p99_latency_s * 1e3:8.2f} ms "
              f"({res.cross_region.n} crossed)")
    _print_cache(res.cache)
    if res.failed_regions:
        names = [res.regions[r] for r in res.failed_regions]
        print(f"failed regions         : {names}")
        print(f"rerouted / lost        : {res.rerouted} / {res.lost}")
        print(f"wasted energy          : {res.wasted_energy_j:.2f} J")
    if res.edge_drops:
        print(f"edge drops             : {res.edge_drops}")
    return 0


def _serve_cluster(args, config, scenario) -> int:
    from repro.experiments.setup import run_cluster_serving
    from repro.hardware.topology import CLUSTER_LINKS

    cluster = run_cluster_serving(
        config, scenario, n_nodes=args.nodes, scheduler=args.scheduler,
        router=args.router, replication=args.replication,
        link=CLUSTER_LINKS[args.link], shed_policy=args.shed_policy,
        max_batch_size=args.max_batch,
        batch_timeout_s=args.batch_timeout_ms / 1e3,
        max_queue=args.max_queue, fail_at=args.fail_at,
        fail_node=args.fail_node, streaming=args.streaming,
        **_cache_kwargs(args),
    )
    result = cluster.result
    print(f"cluster                : {args.nodes} nodes, {args.router} router, "
          f"replication {args.replication}, {args.link}")
    print(f"scheduler              : {args.scheduler}")
    print(f"correct predictions/s  : {result.correct_prediction_throughput:,.0f}")
    print(f"raw samples/s          : {result.raw_throughput:,.0f}")
    print(f"served accuracy        : {result.mean_accuracy:.3f}%")
    print(f"SLA violations         : {result.violation_rate * 100:.2f}%")
    print(f"shed (dropped)         : {result.drop_rate * 100:.2f}%")
    print(f"p99 latency            : {result.p99_latency_s * 1e3:.2f} ms")
    served = ", ".join(str(n) for n in cluster.per_node_served)
    print(f"per-node served        : [{served}]")
    _print_cache(cluster.cache)
    if cluster.failed_nodes:
        print(f"failed nodes           : {cluster.failed_nodes}")
        print(f"rerouted / lost        : {cluster.rerouted} / {cluster.lost}")
        print(f"wasted energy          : {cluster.wasted_energy_j:.2f} J")
    if cluster.edge_drops:
        print(f"edge drops             : {cluster.edge_drops}")
    return 0


def cmd_characterize(args) -> int:
    from repro.analysis.breakdown import breakdown_table, slowdown_vs
    from repro.core.representations import paper_configs
    from repro.hardware.catalog import CPU_BROADWELL, GPU_V100

    config = _datasets()[args.dataset]
    reps = {
        name: rep
        for name, rep in paper_configs(config).items()
        if name != "dhe_compact"
    }
    for device in (CPU_BROADWELL, GPU_V100):
        breakdowns = breakdown_table(reps, config, device, args.batch)
        slowdowns = slowdown_vs(breakdowns, "table")
        print(f"{device.name} (batch {args.batch}):")
        for name, bd in breakdowns.items():
            print(
                f"  {name:8s} {bd.total * 1e3:10.3f} ms ({slowdowns[name]:6.2f}x)"
            )
    return 0


def cmd_generate_data(args) -> int:
    from repro.data.criteo import write_criteo_file

    config = _datasets()[args.dataset]
    path = write_criteo_file(args.out, config, n_rows=args.rows, seed=args.seed)
    print(f"wrote {args.rows} rows to {path}")
    return 0


_COMMANDS = {
    "train": cmd_train,
    "plan": cmd_plan,
    "serve": cmd_serve,
    "characterize": cmd_characterize,
    "generate-data": cmd_generate_data,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
