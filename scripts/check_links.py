#!/usr/bin/env python
"""Fail on broken relative links — including anchors — in README.md and
docs/*.md.

Scans markdown inline links, skips absolute URLs (http/https/mailto),
resolves everything else against the containing file's directory, and
exits non-zero listing every target that does not exist.  Anchored links
(``page.md#section`` and in-page ``#section``) are validated against the
target file's headings using GitHub's slug rules, so a renamed section
breaks the build instead of silently dead-ending the reader.

    python scripts/check_links.py [file-or-dir ...]   # default: README.md docs/
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

# Inline [text](target) links; reference definitions are rare enough here
# that inline coverage is the job.  Images (![alt](target)) match too.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_SKIP_PREFIXES = ("http://", "https://", "mailto:")
_HEADING = re.compile(r"#{1,6}\s+(.*)")


def _github_slug(heading: str) -> str:
    """GitHub's anchor slug for one heading: lowercase, emphasis/code
    markers stripped, punctuation dropped, spaces to dashes.
    Underscores survive — they are word characters to GitHub, so
    ``## foo (`mp_cache.py`)`` anchors as ``foo-mp_cachepy``."""
    text = heading.strip().lower()
    text = re.sub(r"[`*]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


_ANCHOR_CACHE: dict[pathlib.Path, set[str]] = {}


def heading_anchors(markdown: pathlib.Path) -> set[str]:
    """Every anchor the file's headings define (GitHub slug rules,
    duplicate headings numbered ``slug-1``, ``slug-2``, ...)."""
    cached = _ANCHOR_CACHE.get(markdown)
    if cached is not None:
        return cached
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in markdown.read_text().splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if match:
            slug = _github_slug(match.group(1))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            anchors.add(slug if n == 0 else f"{slug}-{n}")
    _ANCHOR_CACHE[markdown] = anchors
    return anchors


def iter_markdown(paths: list[str]) -> list[pathlib.Path]:
    if not paths:
        candidates = [ROOT / "README.md", ROOT / "docs"]
    else:
        candidates = [pathlib.Path(p) for p in paths]
    files: list[pathlib.Path] = []
    for candidate in candidates:
        if candidate.is_dir():
            files.extend(sorted(candidate.glob("**/*.md")))
        elif candidate.exists():
            files.append(candidate)
        else:
            print(f"warning: {candidate} does not exist", file=sys.stderr)
    return files


def broken_links(markdown: pathlib.Path) -> list[tuple[int, str]]:
    """(line, target) for every link whose file or anchor does not
    resolve from ``markdown``."""
    broken = []
    for lineno, line in enumerate(markdown.read_text().splitlines(), start=1):
        for target in _LINK.findall(line):
            if target.startswith(_SKIP_PREFIXES):
                continue
            path, _, fragment = target.partition("#")
            resolved = (markdown.parent / path).resolve() if path else markdown
            if not resolved.exists():
                broken.append((lineno, target))
                continue
            if fragment and resolved.suffix == ".md":
                if fragment not in heading_anchors(resolved):
                    broken.append((lineno, target))
    return broken


def main(argv: list[str]) -> int:
    files = iter_markdown(argv)
    if not files:
        print("no markdown files found", file=sys.stderr)
        return 1
    failures = 0
    for markdown in files:
        for lineno, target in broken_links(markdown):
            rel = markdown.relative_to(ROOT) if markdown.is_relative_to(ROOT) else markdown
            print(f"{rel}:{lineno}: broken link -> {target}")
            failures += 1
    if failures:
        print(f"\n{failures} broken link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
