#!/usr/bin/env python
"""Fail on broken relative links in README.md and docs/*.md.

Scans markdown inline links and reference definitions, skips absolute
URLs (http/https/mailto) and pure in-page anchors, resolves everything
else against the containing file's directory, and exits non-zero listing
every target that does not exist.

    python scripts/check_links.py [file-or-dir ...]   # default: README.md docs/
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

# Inline [text](target) links; reference definitions are rare enough here
# that inline coverage is the job.  Images (![alt](target)) match too.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_markdown(paths: list[str]) -> list[pathlib.Path]:
    if not paths:
        candidates = [ROOT / "README.md", ROOT / "docs"]
    else:
        candidates = [pathlib.Path(p) for p in paths]
    files: list[pathlib.Path] = []
    for candidate in candidates:
        if candidate.is_dir():
            files.extend(sorted(candidate.glob("**/*.md")))
        elif candidate.exists():
            files.append(candidate)
        else:
            print(f"warning: {candidate} does not exist", file=sys.stderr)
    return files


def broken_links(markdown: pathlib.Path) -> list[tuple[int, str]]:
    broken = []
    for lineno, line in enumerate(markdown.read_text().splitlines(), start=1):
        for target in _LINK.findall(line):
            if target.startswith(_SKIP_PREFIXES):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (markdown.parent / path).resolve()
            if not resolved.exists():
                broken.append((lineno, target))
    return broken


def main(argv: list[str]) -> int:
    files = iter_markdown(argv)
    if not files:
        print("no markdown files found", file=sys.stderr)
        return 1
    failures = 0
    for markdown in files:
        for lineno, target in broken_links(markdown):
            rel = markdown.relative_to(ROOT) if markdown.is_relative_to(ROOT) else markdown
            print(f"{rel}:{lineno}: broken link -> {target}")
            failures += 1
    if failures:
        print(f"\n{failures} broken link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
