#!/usr/bin/env python
"""Fail on public functions/classes lacking docstrings.

The serving kernel and the MP-Rec core are the repo's API surface; every
public module, class, function, and method there must say what it is
for.  "Public" means the name (and every package segment on the way to
it) does not start with an underscore; dunder methods are exempt, as are
trivial overrides consisting solely of ``pass``/``...``.

    python scripts/check_docstrings.py [dir-or-file ...]
    # default: src/repro/serving src/repro/core
"""

from __future__ import annotations

import ast
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_TARGETS = ("src/repro/serving", "src/repro/core")


def is_public(name: str) -> bool:
    return not name.startswith("_")


def is_trivial(node: ast.AST) -> bool:
    """A body that is only ``pass`` / ``...`` (abstract placeholder)."""
    body = getattr(node, "body", [])
    return all(
        isinstance(stmt, ast.Pass)
        or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )
        for stmt in body
    )


def missing_docstrings(path: pathlib.Path) -> list[tuple[int, str]]:
    """(line, qualified name) of every public definition without a doc."""
    tree = ast.parse(path.read_text(), filename=str(path))
    missing: list[tuple[int, str]] = []
    if ast.get_docstring(tree) is None:
        missing.append((1, "<module>"))

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                name = child.name
                qualified = f"{prefix}{name}"
                dunder = name.startswith("__") and name.endswith("__")
                if is_public(name) and not dunder and not is_trivial(child):
                    if ast.get_docstring(child) is None:
                        missing.append((child.lineno, qualified))
                if isinstance(child, ast.ClassDef):
                    walk(child, f"{qualified}.")

    walk(tree, "")
    return missing


def iter_python(paths: list[str]) -> list[pathlib.Path]:
    """Resolve the targets into the .py files they contain."""
    candidates = [
        pathlib.Path(p) for p in (paths or DEFAULT_TARGETS)
    ]
    files: list[pathlib.Path] = []
    for candidate in candidates:
        if not candidate.is_absolute():
            candidate = ROOT / candidate
        if candidate.is_dir():
            files.extend(sorted(candidate.glob("**/*.py")))
        elif candidate.exists():
            files.append(candidate)
        else:
            print(f"warning: {candidate} does not exist", file=sys.stderr)
    return files


def main(argv: list[str]) -> int:
    files = iter_python(argv)
    if not files:
        print("no python files found", file=sys.stderr)
        return 1
    failures = 0
    for path in files:
        for lineno, name in missing_docstrings(path):
            rel = path.relative_to(ROOT) if path.is_relative_to(ROOT) else path
            print(f"{rel}:{lineno}: missing docstring on {name}")
            failures += 1
    if failures:
        print(f"\n{failures} public definition(s) lack docstrings",
              file=sys.stderr)
        return 1
    print(
        f"checked {len(files)} file(s): every public definition is documented"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
