#!/usr/bin/env bash
# CI entry point: lint (byte-compile + collect), the docstring coverage
# gate, tier-1 tests, a quick benchmark smoke pass, the perf-regression
# smoke (pinned speedup / node-seconds-savings floors), and the docs
# link check. Mirrors the Makefile targets for environments without make.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

echo "== lint =="
python -m compileall -q src tests benchmarks examples
python -m pytest --collect-only -q > /dev/null

echo "== docstring coverage gate =="
python scripts/check_docstrings.py

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== benchmark smoke =="
python -m pytest -q \
    benchmarks/test_fig11_throughput_breakdown.py

echo "== perf regression smoke =="
python -m pytest -q \
    benchmarks/test_serving_engine_scale.py \
    benchmarks/test_workload_generation.py \
    benchmarks/test_runtime_switching.py \
    benchmarks/test_autoscaling.py \
    benchmarks/test_cluster_cache.py

echo "== docs link check =="
python scripts/check_links.py
