"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.configs import ModelConfig


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_config() -> ModelConfig:
    """A DLRM small enough for exhaustive gradient checks."""
    return ModelConfig(
        name="tiny",
        n_dense=4,
        cardinalities=[7, 11, 5],
        embedding_dim=6,
        bottom_mlp=[8],
        top_mlp=[10],
    )


@pytest.fixture
def small_config() -> ModelConfig:
    """A DLRM large enough to train meaningfully in seconds."""
    return ModelConfig(
        name="small",
        n_dense=13,
        cardinalities=[50, 200, 1000, 30, 500, 80, 120, 60],
        embedding_dim=8,
        bottom_mlp=[32, 16],
        top_mlp=[32],
    )
