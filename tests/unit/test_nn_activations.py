import numpy as np
import pytest

from repro.nn.activations import Identity, ReLU, Sigmoid, Tanh, make_activation
from repro.nn.gradcheck import check_module_gradients


class TestReLU:
    def test_clamps_negatives(self, rng):
        relu = ReLU()
        x = np.array([-2.0, -0.1, 0.0, 0.5, 3.0])
        np.testing.assert_array_equal(relu(x), [0, 0, 0, 0.5, 3.0])

    def test_gradient_masks(self, rng):
        relu = ReLU()
        x = np.array([-1.0, 2.0])
        relu(x)
        grad = relu.backward(np.array([5.0, 5.0]))
        np.testing.assert_array_equal(grad, [0.0, 5.0])

    def test_numerical_gradient(self, rng):
        # Keep inputs away from the kink at 0.
        x = rng.standard_normal((4, 3))
        x[np.abs(x) < 0.1] += 0.5
        check_module_gradients(ReLU(), x, rng)


class TestSigmoid:
    def test_range(self, rng):
        out = Sigmoid()(rng.standard_normal(100) * 10)
        assert np.all((out > 0) & (out < 1))

    def test_extreme_values_stable(self):
        out = Sigmoid()(np.array([-1000.0, 1000.0]))
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)

    def test_midpoint(self):
        np.testing.assert_allclose(Sigmoid()(np.array([0.0])), [0.5])

    def test_numerical_gradient(self, rng):
        check_module_gradients(Sigmoid(), rng.standard_normal((3, 4)), rng)


class TestTanh:
    def test_matches_numpy(self, rng):
        x = rng.standard_normal(20)
        np.testing.assert_allclose(Tanh()(x), np.tanh(x))

    def test_numerical_gradient(self, rng):
        check_module_gradients(Tanh(), rng.standard_normal((3, 4)), rng)


class TestIdentity:
    def test_passthrough(self, rng):
        x = rng.standard_normal(5)
        np.testing.assert_array_equal(Identity()(x), x)

    def test_gradient_passthrough(self, rng):
        ident = Identity()
        ident(rng.standard_normal(5))
        g = rng.standard_normal(5)
        np.testing.assert_array_equal(ident.backward(g), g)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("relu", ReLU), ("sigmoid", Sigmoid), ("tanh", Tanh),
        ("identity", Identity), ("none", Identity), ("RELU", ReLU),
    ])
    def test_known_names(self, name, cls):
        assert isinstance(make_activation(name), cls)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown activation"):
            make_activation("gelu")
