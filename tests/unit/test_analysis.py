import pytest

from repro.analysis.breakdown import breakdown_table, slowdown_vs
from repro.analysis.scaling import ZionEXModel
from repro.core.representations import paper_configs
from repro.hardware.catalog import CPU_BROADWELL
from repro.models.configs import KAGGLE, TERABYTE


class TestBreakdownHelpers:
    def test_breakdown_table_keys(self):
        cfgs = paper_configs(KAGGLE)
        table = breakdown_table(
            {"table": cfgs["table"], "dhe": cfgs["dhe"]},
            KAGGLE, CPU_BROADWELL, 256,
        )
        assert set(table) == {"table", "dhe"}
        assert table["dhe"].total > table["table"].total

    def test_slowdown_vs(self):
        cfgs = paper_configs(KAGGLE)
        table = breakdown_table(
            {"table": cfgs["table"], "dhe": cfgs["dhe"]},
            KAGGLE, CPU_BROADWELL, 256,
        )
        slowdowns = slowdown_vs(table, "table")
        assert slowdowns["table"] == 1.0
        assert slowdowns["dhe"] > 1.0

    def test_slowdown_missing_baseline(self):
        with pytest.raises(KeyError):
            slowdown_vs({}, "table")


class TestZionEXScaling:
    # Production-scale training workload parameters (ZionEX-class model:
    # tens of MFLOPs per sample, wide embedding exchange).
    ARGS = dict(
        batch_per_iter=65536,
        model_flops_per_sample=25e6,
        embedding_vector_bytes=26 * 64 * 4,
        dense_grad_bytes=30e6,
    )

    def test_sharded_pays_comm(self):
        model = ZionEXModel()
        _, comm = model.iteration_time(n_nodes=16, sharded=True, **self.ARGS)
        assert comm > 0
        _, no_comm = model.iteration_time(n_nodes=16, sharded=False, **self.ARGS)
        assert no_comm == 0

    def test_single_node_no_comm(self):
        model = ZionEXModel()
        _, comm = model.iteration_time(n_nodes=1, sharded=True, **self.ARGS)
        assert comm == 0

    def test_comm_fraction_near_paper(self):
        """ZionEX exposes ~40% of training time as communication (Sec 6.9)."""
        model = ZionEXModel()
        comparison = model.compare(n_nodes=16, **self.ARGS)
        assert 0.25 < comparison.table_comm_fraction < 0.55

    def test_dhe_reduces_total_time_at_scale(self):
        """Paper: ~36% total-time reduction on a 128-GPU (16-node) system."""
        model = ZionEXModel()
        comparison = model.compare(n_nodes=16, **self.ARGS)
        assert 0.2 < comparison.time_reduction < 0.5

    def test_reduction_grows_with_nodes(self):
        model = ZionEXModel()
        small = model.compare(n_nodes=2, **self.ARGS)
        large = model.compare(n_nodes=16, **self.ARGS)
        assert large.time_reduction > small.time_reduction

    def test_dhe_not_worth_it_single_node(self):
        """Without communication to remove, DHE's extra FLOPs are a loss."""
        model = ZionEXModel()
        comparison = model.compare(n_nodes=1, **self.ARGS)
        assert comparison.time_reduction < 0

    def test_rejects_bad_nodes(self):
        with pytest.raises(ValueError):
            ZionEXModel().iteration_time(n_nodes=0, sharded=True, **self.ARGS)
