"""Unit tests for elastic autoscaling: the controller's hysteresis, the
shard-slice warm pricing, and the cluster's scale mechanics (membership,
handoff, zero-loss drain, node-seconds accounting)."""

import pytest

from repro.analysis.sharding import greedy_shard
from repro.core.online import StaticScheduler
from repro.data.queries import Query, QuerySet
from repro.hardware.catalog import CPU_BROADWELL
from repro.hardware.topology import ETHERNET_100G
from repro.serving.autoscale import (
    AutoscaleController,
    shard_slice_bytes,
)
from repro.serving.cluster import ClusterSimulator
from repro.serving.workload import ServingScenario

from tests.unit.test_online import fake_path

SLA_S = 0.010


def scheduler():
    return StaticScheduler(
        [fake_path("table", CPU_BROADWELL, 78.79, 2e-3, label="T")]
    )


def steady_scenario(n=400, qps=4000.0, sla_s=SLA_S):
    queries = [
        Query(index=i, size=1, arrival_s=i / qps) for i in range(n)
    ]
    return ServingScenario(queries=QuerySet(queries=queries), sla_s=sla_s)


def elastic_cluster(max_nodes=4, schedule=(), replication=1, **controller_kwargs):
    controller = AutoscaleController(
        min_nodes=max(2, replication), max_nodes=max_nodes,
        schedule=schedule,
        # Pressure thresholds that never fire by themselves unless a test
        # overrides them: forced schedules drive the membership instead.
        **{"hi_pressure": 1e9, "lo_pressure": 0.0, "patience": 10**9,
           "patience_down": 10**9, **controller_kwargs},
    )
    plan = greedy_shard([4000, 3000, 2000, 1000], 16, max_nodes)
    return ClusterSimulator(
        scheduler(), plan, replication=replication,
        max_batch_size=4, batch_timeout_s=0.001, autoscale=controller,
    )


class TestControllerValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            AutoscaleController(min_nodes=3, max_nodes=2)
        with pytest.raises(ValueError):
            AutoscaleController(min_nodes=0, max_nodes=2)
        with pytest.raises(ValueError):
            AutoscaleController(min_nodes=1, max_nodes=4, initial_nodes=5)

    def test_thresholds_and_patience(self):
        with pytest.raises(ValueError):
            AutoscaleController(1, 2, hi_pressure=0.2, lo_pressure=0.5)
        with pytest.raises(ValueError):
            AutoscaleController(1, 2, patience=0)
        with pytest.raises(ValueError):
            AutoscaleController(1, 2, cooldown_s=-1.0)

    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            AutoscaleController(1, 2, schedule=((0.1, "sideways"),))
        with pytest.raises(ValueError):
            AutoscaleController(1, 2, schedule=((-0.1, "up"),))

    def test_initial_defaults_to_min(self):
        assert AutoscaleController(2, 5).initial_nodes == 2


class FakeCore:
    """Just enough of an EngineCore for controller.observe()."""

    class _Batcher:
        timeout_s = 0.002
        max_batch_size = 8

    batcher = _Batcher()


class TestControllerDecision:
    PATH = fake_path("table", CPU_BROADWELL, 78.79, 1e-5, per_sample=1e-7)

    def controller(self, **kwargs):
        defaults = dict(
            min_nodes=1, max_nodes=4, hi_pressure=0.75, lo_pressure=0.25,
            util_hi=0.95, patience=3, patience_down=4, cooldown_s=1.0,
        )
        defaults.update(kwargs)
        return AutoscaleController(**defaults)

    def observe(self, ctl, wait_s, queue_s, n_members=2, now=0.0, batch=1):
        return ctl.observe(
            FakeCore(), self.PATH, wait_s, queue_s, batch, batch,
            SLA_S, n_members, now,
        )

    def test_surge_after_patience(self):
        ctl = self.controller()
        hot = 0.9 * SLA_S
        assert self.observe(ctl, hot, hot) is None
        assert self.observe(ctl, hot, hot) is None
        assert self.observe(ctl, hot, hot) == "up"

    def test_surge_streak_resets_in_band(self):
        ctl = self.controller()
        hot, mid = 0.9 * SLA_S, 0.5 * SLA_S
        self.observe(ctl, hot, hot)
        self.observe(ctl, hot, hot)
        self.observe(ctl, mid, mid)  # band: resets the streak
        assert self.observe(ctl, hot, hot) is None

    def test_calm_uses_queue_component_not_fill_wait(self):
        # A trough batch waits out the flush window (large wait_s) but has
        # an empty device queue: that is calm, not band.
        ctl = self.controller()
        fill = 0.6 * SLA_S
        for _ in range(3):
            assert self.observe(ctl, fill, 0.0) is None
        assert self.observe(ctl, fill, 0.0) == "down"

    def test_calm_blocked_by_postdrain_projection(self):
        # Large batches (high window utilization) forbid draining even
        # with an empty queue: the survivors could not absorb the load.
        ctl = self.controller(util_lo=0.1)
        for _ in range(10):
            assert self.observe(ctl, 0.0, 0.0, batch=4096) is None

    def test_bounds_gate_firing(self):
        ctl = self.controller()
        hot = 0.9 * SLA_S
        for _ in range(5):
            assert self.observe(ctl, hot, hot, n_members=4) is None
        calm_ctl = self.controller()
        for _ in range(6):
            assert self.observe(calm_ctl, 0.0, 0.0, n_members=1) is None

    def test_in_progress_and_cooldown_gate(self):
        ctl = self.controller()
        hot = 0.9 * SLA_S
        for _ in range(2):
            self.observe(ctl, hot, hot)
        assert self.observe(ctl, hot, hot) == "up"
        # In progress: frozen.
        assert self.observe(ctl, hot, hot) is None
        from repro.serving.autoscale import ScaleEvent
        ctl.on_scale_complete(0.0, ScaleEvent(0.0, 0.0, "up", 2, 3))
        # Cooldown (1 s): still frozen...
        for _ in range(5):
            assert self.observe(ctl, hot, hot, now=0.5) is None
        # ...then live again.
        for _ in range(2):
            assert self.observe(ctl, hot, hot, now=1.5) is None
        assert self.observe(ctl, hot, hot, now=1.5) == "up"

    def test_clone_copies_config_not_state(self):
        ctl = self.controller()
        hot = 0.9 * SLA_S
        self.observe(ctl, hot, hot)
        clone = ctl.clone()
        assert clone.patience == ctl.patience
        assert not clone._hysteresis._streaks and not clone.events


class TestShardSliceBytes:
    def test_single_replica_matches_plan_bytes(self):
        plan = greedy_shard([1000, 2000, 500], 16, 2)
        per_node = plan.node_bytes()
        for node in range(2):
            assert shard_slice_bytes(plan, node) == int(per_node[node])

    def test_replication_chains_slices(self):
        plan = greedy_shard([1000, 2000, 500], 16, 2)
        total = sum(int(b) for b in plan.node_bytes())
        # Replication 2 on 2 nodes: every node hosts everything.
        for node in range(2):
            assert shard_slice_bytes(plan, node, replication=2) == total

    def test_validation(self):
        plan = greedy_shard([1000], 16, 2)
        with pytest.raises(ValueError):
            shard_slice_bytes(plan, 5)
        with pytest.raises(ValueError):
            shard_slice_bytes(plan, 0, replication=3)


class TestClusterScaling:
    def test_forced_join_prices_warm_window(self):
        sim = elastic_cluster(max_nodes=3, schedule=((0.02, "up"),))
        result = sim.run(steady_scenario())
        assert result.scale_ups == 1
        [event] = result.scale_events
        assert event.kind == "up" and event.node_id == 2
        assert event.warm_bytes == shard_slice_bytes(
            sim._epoch(3)[0], 2, 1
        )
        assert event.warm_s == ETHERNET_100G.transfer_time(event.warm_bytes)
        assert event.ready_s - event.time_s >= event.warm_s - 1e-12
        # The joining node served traffic only after its warm.
        assert result.per_node_served[2] > 0
        assert result.handoff_overhead_s == event.warm_s

    def test_forced_drain_is_zero_loss(self):
        sim = elastic_cluster(max_nodes=3, schedule=((0.0, "up"), (0.05, "down")))
        scenario = steady_scenario()
        result = sim.run(scenario)
        assert result.scale_downs == 1
        down = [e for e in result.scale_events if e.kind == "down"][0]
        assert down.node_id == 2 and down.n_members == 2
        assert result.lost == 0 and result.edge_drops == 0
        # Every query accounted exactly once, none dropped.
        indices = sorted(r.index for r in result.result.records)
        assert indices == [q.index for q in scenario.queries]
        assert all(not r.dropped for r in result.result.records)
        # Handed-back queries count as rerouted once re-admitted.
        assert result.rerouted == down.reinjected

    def test_scale_ops_serialize_behind_warm(self):
        # Two forced ups at the same instant: the second queues behind the
        # first join's warm window and lands on the next node id.
        sim = elastic_cluster(max_nodes=4, schedule=((0.01, "up"), (0.01, "up")))
        result = sim.run(steady_scenario())
        assert result.scale_ups == 2
        ups = [e for e in result.scale_events if e.kind == "up"]
        assert [e.node_id for e in ups] == [2, 3]
        assert ups[1].time_s >= ups[0].ready_s

    def test_ops_at_bounds_are_skipped(self):
        sim = elastic_cluster(
            max_nodes=2, schedule=((0.01, "up"), (0.02, "down"))
        )
        result = sim.run(steady_scenario())
        # min == max == membership: neither op can apply.
        assert result.scale_ups == 0 and result.scale_downs == 0

    def test_node_seconds_static_is_full_fleet(self):
        plan = greedy_shard([4000, 3000], 16, 2)
        sim = ClusterSimulator(scheduler(), plan, max_batch_size=4)
        result = sim.run(steady_scenario())
        makespan = result.result.makespan_s
        assert result.node_seconds == pytest.approx(2 * makespan)
        assert result.idle_energy_j > 0

    def test_node_seconds_elastic_is_less_than_ceiling(self):
        sim = elastic_cluster(max_nodes=4, schedule=((0.05, "up"),))
        result = sim.run(steady_scenario())
        makespan = result.result.makespan_s
        assert result.node_seconds < 4 * makespan
        # Two members all run + one member for the post-join remainder.
        assert result.node_seconds == pytest.approx(
            2 * makespan + (makespan - result.scale_events[0].ready_s),
            rel=1e-6,
        )

    def test_repeated_runs_are_deterministic(self):
        sim = elastic_cluster(max_nodes=3, schedule=((0.0, "up"), (0.05, "down")))
        scenario = steady_scenario()
        first = sim.run(scenario)
        second = sim.run(scenario)
        assert first.summary() == second.summary()
        assert first.result.records == second.result.records

    def test_pressure_driven_scale_up_and_down(self):
        # A saturating burst then silence: the fleet grows under pressure
        # and drains back to the floor.
        controller = AutoscaleController(
            min_nodes=1, max_nodes=3, hi_pressure=0.75, lo_pressure=0.25,
            patience=2, patience_down=4, cooldown_s=0.0,
        )
        plan = greedy_shard([4000, 3000, 2000], 16, 3)
        sim = ClusterSimulator(
            scheduler(), plan, max_batch_size=4, batch_timeout_s=0.001,
            autoscale=controller,
        )
        burst = [Query(index=i, size=64, arrival_s=i * 1e-4) for i in range(120)]
        tail = [
            Query(index=120 + i, size=1, arrival_s=0.5 + i * 0.01)
            for i in range(80)
        ]
        scenario = ServingScenario(
            queries=QuerySet(queries=burst + tail), sla_s=SLA_S
        )
        result = sim.run(scenario)
        assert result.scale_ups >= 1
        assert result.scale_downs >= 1
        assert result.lost == 0
        indices = sorted(r.index for r in result.result.records)
        assert indices == list(range(200))


class TestClusterValidation:
    def test_plan_must_match_ceiling(self):
        plan = greedy_shard([4000], 16, 3)
        with pytest.raises(ValueError, match="max_nodes"):
            ClusterSimulator(
                scheduler(), plan,
                autoscale=AutoscaleController(min_nodes=1, max_nodes=4),
            )

    def test_no_failure_injection_with_autoscale(self):
        plan = greedy_shard([4000], 16, 3)
        with pytest.raises(ValueError, match="failure"):
            ClusterSimulator(
                scheduler(), plan, fail_at=0.1,
                autoscale=AutoscaleController(min_nodes=1, max_nodes=3),
            )

    def test_replication_bounded_by_floor(self):
        plan = greedy_shard([4000], 16, 3)
        with pytest.raises(ValueError, match="replication"):
            ClusterSimulator(
                scheduler(), plan, replication=2,
                autoscale=AutoscaleController(min_nodes=1, max_nodes=3),
            )
