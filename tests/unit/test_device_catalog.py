import pytest

from repro.hardware.catalog import (
    CPU_BROADWELL,
    DEVICE_CATALOG,
    GPU_V100,
    IPU_GC200,
    IPU_POD16,
    TPU_V3_CHIP,
    device_by_name,
)
from repro.hardware.device import GB, MB, DeviceSpec


class TestDeviceSpec:
    def test_total_memory(self):
        assert CPU_BROADWELL.total_memory == (
            CPU_BROADWELL.dram_capacity + CPU_BROADWELL.sram_capacity
        )

    def test_fits(self):
        assert GPU_V100.fits(10 * GB)
        assert not GPU_V100.fits(100 * GB)

    def test_fits_in_sram(self):
        assert IPU_GC200.fits_in_sram(800 * MB)
        assert not IPU_GC200.fits_in_sram(2 * GB)

    def test_with_memory_budget(self):
        constrained = GPU_V100.with_memory_budget(200 * MB)
        assert constrained.dram_capacity == 200 * MB
        assert constrained.peak_flops == GPU_V100.peak_flops

    def test_concurrency_from_replicas(self):
        assert CPU_BROADWELL.concurrency == 1
        assert IPU_POD16.concurrency == 16

    def test_sram_per_chip(self):
        assert IPU_POD16.sram_per_chip == IPU_POD16.sram_capacity // 16

    def test_is_accelerator(self):
        assert not CPU_BROADWELL.is_accelerator
        assert TPU_V3_CHIP.is_accelerator

    def test_validation_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            DeviceSpec(
                name="bad", kind="cpu", peak_flops=1e12, dram_bandwidth=1e9,
                dram_capacity=1, sram_capacity=1, sram_bandwidth=1e9,
                tdp_w=1, idle_w=0, launch_overhead_s=0, query_overhead_s=0,
                host_transfer_bw=0, gather_efficiency=1.5, mlp_efficiency=0.5,
                small_gemm_factor=0.5, elementwise_efficiency=0.5,
            )

    def test_validation_rejects_replicas_over_chips(self):
        with pytest.raises(ValueError):
            DeviceSpec(
                name="bad", kind="ipu", peak_flops=1e12, dram_bandwidth=1e9,
                dram_capacity=1, sram_capacity=1, sram_bandwidth=1e9,
                tdp_w=1, idle_w=0, launch_overhead_s=0, query_overhead_s=0,
                host_transfer_bw=0, gather_efficiency=0.5, mlp_efficiency=0.5,
                small_gemm_factor=0.5, elementwise_efficiency=0.5,
                n_chips=2, replicas=4,
            )

    def test_validation_rejects_unknown_parallelism(self):
        with pytest.raises(ValueError):
            DeviceSpec(
                name="bad", kind="tpu", peak_flops=1e12, dram_bandwidth=1e9,
                dram_capacity=1, sram_capacity=1, sram_bandwidth=1e9,
                tdp_w=1, idle_w=0, launch_overhead_s=0, query_overhead_s=0,
                host_transfer_bw=0, gather_efficiency=0.5, mlp_efficiency=0.5,
                small_gemm_factor=0.5, elementwise_efficiency=0.5,
                parallelism="ring",
            )


class TestCatalog:
    def test_paper_table1_values(self):
        # Table 1 anchors: capacities, bandwidths, TDPs.
        assert CPU_BROADWELL.dram_capacity == 264 * GB
        assert CPU_BROADWELL.dram_bandwidth == 76.8e9
        assert CPU_BROADWELL.tdp_w == 105.0
        assert GPU_V100.dram_capacity == 32 * GB
        assert GPU_V100.dram_bandwidth == 900e9
        assert GPU_V100.tdp_w == 250.0
        assert IPU_POD16.dram_capacity == 1024 * GB
        assert IPU_POD16.dram_bandwidth == 80e9
        assert IPU_POD16.tdp_w == 2400.0

    def test_ipu_sram_is_900mb_per_chip(self):
        assert abs(IPU_GC200.sram_capacity / (1000 * MB) - 0.9) < 0.01

    def test_tpu_tdp_ratio_vs_v100(self):
        # Paper O3: TPU chip TDP is 1.8x a V100's.
        assert abs(TPU_V3_CHIP.tdp_w / GPU_V100.tdp_w - 1.8) < 0.01

    def test_lookup_by_name(self):
        assert device_by_name("gpu-v100") is GPU_V100
        with pytest.raises(KeyError):
            device_by_name("h100")

    def test_catalog_complete(self):
        assert len(DEVICE_CATALOG) == 8
        kinds = {d.kind for d in DEVICE_CATALOG.values()}
        assert kinds == {"cpu", "gpu", "tpu", "ipu"}
