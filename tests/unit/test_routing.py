"""Router selection and tie-breaking determinism."""

import pytest

from repro.analysis.sharding import greedy_shard
from repro.data.queries import Query
from repro.hardware.topology import ETHERNET_25G
from repro.serving.cache import CacheConfig
from repro.serving.cluster import ClusterNode, ShardMap
from repro.serving.policies import NoShed
from repro.serving.routing import (
    CacheAffinityRouter,
    LeastLoadedRouter,
    RoundRobinRouter,
    ShardLocalityRouter,
    make_router,
)


class _StubDevice:
    def __init__(self, name="dev", concurrency=1):
        self.name = name
        self.concurrency = concurrency


class _StubPath:
    def __init__(self, device):
        self.device = device


class _StubScheduler:
    def __init__(self, n_servers=1):
        self.paths = [_StubPath(_StubDevice(concurrency=n_servers))]


def _nodes(n, max_queue=0):
    # ClusterNode is the serving kernel's EngineCore; routers only key on
    # node_id / inflight_queries / earliest_free_delay / alive / full.
    return [
        ClusterNode(_StubScheduler(), NoShed(), node_id=i, max_queue=max_queue)
        for i in range(n)
    ]


def _query(index=0):
    return Query(index=index, size=64, arrival_s=0.0)


class TestRoundRobin:
    def test_cycles_in_id_order(self):
        router = RoundRobinRouter()
        nodes = _nodes(3)
        picks = [router.select_node(_query(i), 0.0, nodes).node_id for i in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_missing_candidates(self):
        router = RoundRobinRouter()
        nodes = _nodes(3)
        assert router.select_node(_query(), 0.0, nodes).node_id == 0
        # Node 1 withheld (dead/full): the cycle continues at 2, then wraps.
        available = [nodes[0], nodes[2]]
        assert router.select_node(_query(), 0.0, available).node_id == 2
        assert router.select_node(_query(), 0.0, available).node_id == 0


class TestLeastLoaded:
    def test_picks_fewest_inflight(self):
        router = LeastLoadedRouter()
        nodes = _nodes(3)
        nodes[0].inflight_queries = 5
        nodes[1].inflight_queries = 1
        nodes[2].inflight_queries = 3
        assert router.select_node(_query(), 0.0, nodes).node_id == 1

    def test_tie_breaks_to_lowest_id(self):
        router = LeastLoadedRouter()
        nodes = _nodes(4)
        for _ in range(3):  # deterministic under repetition
            assert router.select_node(_query(), 0.0, nodes).node_id == 0

    def test_queue_tie_breaks_on_earliest_free(self):
        router = LeastLoadedRouter()
        nodes = _nodes(2)
        nodes[0].free_at["dev"][0] = 5.0  # busy until t=5
        nodes[1].free_at["dev"][0] = 1.0
        assert router.select_node(_query(), 0.0, nodes).node_id == 1


class TestShardLocality:
    @pytest.fixture
    def shard_map(self):
        plan = greedy_shard([100, 200, 300, 400], 8, 4)
        return ShardMap.from_plan(plan, replication=2)

    def test_routes_to_an_owner(self, shard_map):
        router = ShardLocalityRouter(shard_map)
        nodes = _nodes(4)
        for index in range(20):
            query = _query(index)
            picked = router.select_node(query, 0.0, nodes)
            assert picked.node_id in shard_map.owners[shard_map.group_of(query)]

    def test_prefers_least_loaded_owner(self, shard_map):
        router = ShardLocalityRouter(shard_map)
        nodes = _nodes(4)
        query = _query(0)
        owners = sorted(shard_map.owners[shard_map.group_of(query)])
        nodes[owners[0]].inflight_queries = 10
        assert router.select_node(query, 0.0, nodes).node_id == owners[1]

    def test_falls_back_when_no_owner_available(self, shard_map):
        router = ShardLocalityRouter(shard_map)
        nodes = _nodes(4)
        query = _query(0)
        owners = shard_map.owners[shard_map.group_of(query)]
        candidates = [n for n in nodes if n.node_id not in owners]
        picked = router.select_node(query, 0.0, candidates)
        assert picked.node_id == min(n.node_id for n in candidates)

    def test_deterministic_across_repeats(self, shard_map):
        router = ShardLocalityRouter(shard_map)
        nodes = _nodes(4)
        picks = [
            router.select_node(_query(i), 0.0, nodes).node_id for i in range(50)
        ]
        repeat = [
            router.select_node(_query(i), 0.0, nodes).node_id for i in range(50)
        ]
        assert picks == repeat


class TestCacheAffinity:
    @pytest.fixture
    def shard_map(self):
        plan = greedy_shard([100, 200, 300, 400], 8, 4)
        return ShardMap.from_plan(plan, replication=1)

    def _router(self, shard_map):
        return CacheAffinityRouter(shard_map, ETHERNET_25G)

    def _warm_cache(self, group, hit=True):
        cache = CacheConfig(capacity_bytes=1 << 20, embedding_dim=8).build(
            n_groups=4, hot_rows=64
        )
        if hit:
            cache.warm("P", [group])  # full residency: affinity 1.0
        return cache

    def test_idle_fleet_routes_to_the_owner(self, shard_map):
        router = self._router(shard_map)
        nodes = _nodes(4)
        for index in range(20):
            query = _query(index)
            picked = router.select_node(query, 0.0, nodes)
            assert picked.node_id in shard_map.owners[shard_map.group_of(query)]

    def test_busy_owner_loses_to_cache_warm_node(self, shard_map):
        router = self._router(shard_map)
        nodes = _nodes(4)
        query = _query(0)
        group = shard_map.group_of(query)
        owner = min(shard_map.owners[group])
        warm = next(n for n in nodes if n.node_id != owner)
        # The owner's device is backed up well past the miss penalty; the
        # fully-warm non-owner serves the hot rows at affinity 1.0.
        nodes[owner].free_at["dev"][0] = 1.0
        warm.cache = self._warm_cache(group)
        assert router.select_node(query, 1e-6, nodes) is warm

    def test_busy_owner_still_beats_cold_nodes_within_penalty(self, shard_map):
        router = self._router(shard_map)
        nodes = _nodes(4)
        query = _query(0)
        group = shard_map.group_of(query)
        owner = min(shard_map.owners[group])
        # A queue shorter than the full miss penalty: eating the wait at
        # the owner is still cheaper than pulling every hot row remotely.
        hot_bytes = query.size * shard_map.hot_fraction * shard_map.bytes_per_sample
        penalty_s = hot_bytes / ETHERNET_25G.bandwidth
        nodes[owner].free_at["dev"][0] = penalty_s / 2
        assert router.select_node(query, 0.0, nodes).node_id == owner

    def test_deterministic_across_repeats(self, shard_map):
        router = self._router(shard_map)
        nodes = _nodes(4)
        nodes[1].cache = self._warm_cache(0)
        picks = [
            router.select_node(_query(i), 0.0, nodes).node_id for i in range(50)
        ]
        repeat = [
            router.select_node(_query(i), 0.0, nodes).node_id for i in range(50)
        ]
        assert picks == repeat


class TestMakeRouter:
    def test_resolves_names(self):
        assert make_router("round-robin").name == "round-robin"
        assert make_router("least-loaded").name == "least-loaded"

    def test_locality_needs_shard_map(self):
        with pytest.raises(ValueError, match="ShardMap"):
            make_router("locality")

    def test_cache_affinity_needs_map_and_link(self):
        plan = greedy_shard([100, 200], 8, 2)
        shard_map = ShardMap.from_plan(plan)
        with pytest.raises(ValueError, match="ShardMap and"):
            make_router("cache-affinity", shard_map=shard_map)
        with pytest.raises(ValueError, match="ShardMap and"):
            make_router("cache-affinity", link=ETHERNET_25G)
        router = make_router(
            "cache-affinity", shard_map=shard_map, link=ETHERNET_25G
        )
        assert router.name == "cache-affinity"

    def test_passes_instances_through(self):
        router = LeastLoadedRouter()
        assert make_router(router) is router

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown router"):
            make_router("random")
