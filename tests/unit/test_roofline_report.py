import pytest

from repro.analysis.report import bar_chart, table
from repro.core.representations import paper_configs
from repro.hardware.catalog import CPU_BROADWELL, GPU_V100, IPU_GC200, TPU_V3_CHIP
from repro.hardware.roofline import (
    classify,
    embedding_traffic_bytes,
    operational_intensity,
    ridge_point,
)
from repro.models.configs import KAGGLE

CFGS = paper_configs(KAGGLE)


class TestRoofline:
    def test_table_intensity_zero(self):
        assert operational_intensity(CFGS["table"], KAGGLE) == 0.0

    def test_dhe_intensity_high(self):
        assert operational_intensity(CFGS["dhe"], KAGGLE) > 100

    def test_hybrid_between(self):
        hybrid = operational_intensity(CFGS["hybrid"], KAGGLE)
        assert 0 < hybrid
        assert hybrid <= operational_intensity(CFGS["dhe"], KAGGLE) * 1.2

    def test_table_memory_bound_everywhere(self):
        """The paper's premise: tables stress memory on every platform."""
        for device in (CPU_BROADWELL, GPU_V100, TPU_V3_CHIP, IPU_GC200):
            point = classify(CFGS["table"], KAGGLE, device)
            assert point.bound == "memory"

    def test_dhe_compute_bound_on_cpu(self):
        point = classify(CFGS["dhe"], KAGGLE, CPU_BROADWELL)
        assert point.bound == "compute"

    def test_ridge_point_ordering(self):
        """More compute per byte of bandwidth -> ridge further right."""
        assert ridge_point(CPU_BROADWELL) < ridge_point(GPU_V100)

    def test_attainable_capped_by_roof(self):
        for rep_name in ("table", "dhe", "hybrid"):
            point = classify(CFGS[rep_name], KAGGLE, GPU_V100)
            roof = GPU_V100.peak_flops * GPU_V100.mlp_efficiency
            assert 0 <= point.attainable_flops <= roof

    def test_traffic_bytes_positive_for_tables(self):
        assert embedding_traffic_bytes(CFGS["table"], KAGGLE) == 26 * 16 * 4

    def test_select_counts_partial_features(self):
        sel = CFGS["select"]
        traffic = embedding_traffic_bytes(sel, KAGGLE)
        assert traffic > 23 * 16 * 4  # 23 table features + encoder stream


class TestReportHelpers:
    def test_bar_chart_scales_to_width(self):
        lines = bar_chart({"a": 1.0, "b": 2.0}, width=10)
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_bar_chart_reference_ratios(self):
        lines = bar_chart({"base": 2.0, "fast": 4.0}, reference="base")
        assert "(2.00x)" in lines[1]

    def test_bar_chart_rejects_negative(self):
        with pytest.raises(ValueError):
            bar_chart({"a": -1.0})

    def test_bar_chart_empty(self):
        assert bar_chart({}) == []

    def test_table_alignment(self):
        lines = table([
            {"name": "x", "value": 1.5},
            {"name": "longer", "value": 22.0},
        ])
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) for line in lines[1:2])

    def test_table_empty(self):
        assert table([]) == []
