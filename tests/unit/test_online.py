import numpy as np
import pytest

from repro.core.online import (
    GreedyLatencyScheduler,
    MultiPathScheduler,
    StaticScheduler,
    TableSwitchScheduler,
)
from repro.core.paths import ExecutionPath, PathProfile
from repro.core.representations import RepresentationConfig
from repro.hardware.catalog import CPU_BROADWELL, GPU_V100


def fake_path(kind, device, accuracy, base_latency, per_sample=1e-6, label=""):
    """A path with an affine latency profile for deterministic tests."""
    sizes = np.unique(np.geomspace(1, 4096, 25).astype(int))
    lats = base_latency + per_sample * sizes
    rep_kwargs = {"k": 8, "dnn": 8, "h": 1} if kind != "table" else {}
    if kind == "hybrid":
        rep_kwargs.update({"table_dim": 8, "dhe_dim": 8})
        rep = RepresentationConfig("hybrid", 16, **rep_kwargs)
    elif kind == "select":
        rep = RepresentationConfig("select", 16, n_dhe_features=1, **rep_kwargs)
    else:
        rep = RepresentationConfig(kind, 16, **rep_kwargs)
    return ExecutionPath(
        rep=rep,
        device=device,
        accuracy=accuracy,
        profile=PathProfile(sizes=sizes, latencies=lats),
        label=label or f"{kind}({device.name})",
    )


@pytest.fixture
def paths():
    return [
        fake_path("table", CPU_BROADWELL, 78.79, 1e-3, label="TBL-CPU"),
        fake_path("table", GPU_V100, 78.79, 2e-3, label="TBL-GPU"),
        fake_path("dhe", GPU_V100, 78.94, 5e-3, label="DHE-GPU"),
        fake_path("hybrid", GPU_V100, 78.98, 8e-3, label="HYB-GPU"),
    ]


def idle(paths):
    return {p.device.name: [0.0] * p.device.concurrency for p in paths}


class TestMultiPathScheduler:
    def test_prefers_hybrid_when_feasible(self, paths):
        sched = MultiPathScheduler(paths)
        decision = sched.select(100, sla_s=0.020, now=0.0, free_at=idle(paths))
        assert decision.path.kind == "hybrid"

    def test_falls_to_dhe_under_tighter_sla(self, paths):
        sched = MultiPathScheduler(paths)
        decision = sched.select(100, sla_s=0.006, now=0.0, free_at=idle(paths))
        assert decision.path.kind == "dhe"

    def test_falls_to_table_under_strict_sla(self, paths):
        sched = MultiPathScheduler(paths)
        decision = sched.select(100, sla_s=0.002, now=0.0, free_at=idle(paths))
        assert decision.path.kind == "table"
        assert decision.path.label == "TBL-CPU"

    def test_defaults_to_fastest_table_when_nothing_fits(self, paths):
        sched = MultiPathScheduler(paths)
        decision = sched.select(100, sla_s=1e-6, now=0.0, free_at=idle(paths))
        assert decision.path.label == "TBL-CPU"

    def test_queue_awareness_reroutes(self, paths):
        """A backed-up GPU makes the hybrid path infeasible."""
        sched = MultiPathScheduler(paths)
        free = idle(paths)
        free["gpu-v100"] = [0.5]  # busy for 500 ms
        decision = sched.select(100, sla_s=0.020, now=0.0, free_at=free)
        assert decision.path.label == "TBL-CPU"
        assert decision.wait_s == 0.0

    def test_wait_time_computed_from_queue(self, paths):
        sched = MultiPathScheduler(paths)
        free = idle(paths)
        free["cpu-broadwell"] = [0.005]
        decision = sched.select(100, sla_s=1e-6, now=0.0, free_at=free)
        # Falls back to earliest-finish table: GPU (wait 0 + 2ms) beats
        # CPU (wait 5ms + 1ms).
        assert decision.path.label == "TBL-GPU"

    def test_empty_paths_rejected(self):
        with pytest.raises(ValueError):
            MultiPathScheduler([])


class TestStaticScheduler:
    def test_always_same_path(self, paths):
        sched = StaticScheduler([paths[2]])
        for size in (1, 100, 4000):
            assert sched.select(size, 0.010, 0.0, idle(paths)).path is paths[2]

    def test_requires_exactly_one(self, paths):
        with pytest.raises(ValueError):
            StaticScheduler(paths[:2])

    def test_name_includes_label(self, paths):
        assert "DHE-GPU" in StaticScheduler([paths[2]]).name


class TestTableSwitchScheduler:
    def test_filters_to_tables(self, paths):
        sched = TableSwitchScheduler(paths)
        assert all(p.kind == "table" for p in sched.paths)

    def test_picks_lower_service_latency(self, paths):
        sched = TableSwitchScheduler(paths)
        decision = sched.select(100, 0.010, 0.0, idle(paths))
        assert decision.path.label == "TBL-CPU"

    def test_queue_blind(self, paths):
        """Unlike MP-Rec, switching ignores queue state (Sec 6.2 I3)."""
        sched = TableSwitchScheduler(paths)
        free = idle(paths)
        free["cpu-broadwell"] = [10.0]  # deeply backed up
        decision = sched.select(100, 0.010, 0.0, free)
        assert decision.path.label == "TBL-CPU"  # still picked


class TestGreedyScheduler:
    def test_ignores_accuracy(self, paths):
        sched = GreedyLatencyScheduler(paths)
        decision = sched.select(100, 1.0, 0.0, idle(paths))
        assert decision.path.label == "TBL-CPU"
