import numpy as np
import pytest

from repro.nn import Linear, MLP, Module, Parameter


class TestParameter:
    def test_stores_float64(self):
        p = Parameter(np.array([1, 2, 3]))
        assert p.data.dtype == np.float64

    def test_grad_starts_zero(self):
        p = Parameter(np.ones((2, 3)))
        assert np.all(p.grad == 0)
        assert p.grad.shape == (2, 3)

    def test_zero_grad_resets(self):
        p = Parameter(np.ones(4))
        p.grad += 5.0
        p.zero_grad()
        assert np.all(p.grad == 0)

    def test_shape_and_size(self):
        p = Parameter(np.ones((3, 5)))
        assert p.shape == (3, 5)
        assert p.size == 15

    def test_repr_includes_name(self):
        p = Parameter(np.ones(2), name="w")
        assert "w" in repr(p)


class TestModuleDiscovery:
    def test_direct_parameters_found(self, rng):
        layer = Linear(3, 4, rng)
        names = dict(layer.named_parameters())
        assert len(names) == 2  # weight + bias

    def test_nested_module_parameters_found(self, rng):
        mlp = MLP([3, 5, 2], rng)
        params = mlp.parameters()
        assert len(params) == 4  # two Linear layers x (weight, bias)

    def test_list_of_modules_found(self, rng):
        class Holder(Module):
            def __init__(self):
                self.layers = [Linear(2, 2, rng), Linear(2, 2, rng)]

        holder = Holder()
        assert len(holder.parameters()) == 4

    def test_num_parameters_counts_scalars(self, rng):
        layer = Linear(3, 4, rng)
        assert layer.num_parameters() == 3 * 4 + 4

    def test_footprint_bytes_fp32(self, rng):
        layer = Linear(3, 4, rng, bias=False)
        assert layer.footprint_bytes() == 12 * 4

    def test_zero_grad_recursive(self, rng):
        mlp = MLP([3, 5, 2], rng)
        for p in mlp.parameters():
            p.grad += 1.0
        mlp.zero_grad()
        assert all(np.all(p.grad == 0) for p in mlp.parameters())

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module().forward()
