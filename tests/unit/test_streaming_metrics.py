import numpy as np
import pytest

from repro.serving.metrics import (
    P2Quantile,
    QueryRecord,
    ReservoirSampler,
    ServingResult,
    StreamingMetrics,
)


def make_records(latencies, sizes=None, accs=None, dropped=None):
    n = len(latencies)
    sizes = sizes or [100] * n
    accs = accs or [80.0] * n
    dropped = dropped or [False] * n
    return [
        QueryRecord(
            index=i, size=sizes[i], arrival_s=0.0, start_s=0.0,
            finish_s=0.0 if dropped[i] else latencies[i],
            path_label="DROPPED" if dropped[i] else f"P{i % 2}",
            accuracy=0.0 if dropped[i] else accs[i],
            dropped=dropped[i],
        )
        for i in range(n)
    ]


class TestP2Quantile:
    def test_small_stream_is_exact(self):
        est = P2Quantile(0.5)
        for x in (3.0, 1.0, 2.0):
            est.observe(x)
        assert est.value == pytest.approx(2.0)

    def test_tracks_known_distribution(self, rng):
        data = rng.exponential(1.0, size=20_000)
        for q in (0.5, 0.95, 0.99):
            est = P2Quantile(q)
            for x in data:
                est.observe(float(x))
            exact = np.percentile(data, q * 100)
            assert est.value == pytest.approx(exact, rel=0.1)

    def test_rejects_degenerate_quantile(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_empty_value_zero(self):
        assert P2Quantile(0.5).value == 0.0


class TestReservoirSampler:
    def test_keeps_everything_below_capacity(self):
        res = ReservoirSampler(100)
        for x in range(50):
            res.observe(float(x))
        assert res.percentile(100) == 49.0
        assert res.percentile(0) == 0.0

    def test_bounded_memory(self):
        res = ReservoirSampler(64)
        for x in range(10_000):
            res.observe(float(x))
        assert len(res._sample) == 64
        assert res.count == 10_000

    def test_approximates_distribution(self, rng):
        res = ReservoirSampler(2000, seed=3)
        data = rng.normal(10.0, 2.0, size=50_000)
        for x in data:
            res.observe(float(x))
        assert res.percentile(50) == pytest.approx(10.0, abs=0.3)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            ReservoirSampler(0)


class TestStreamingVsExact:
    """Streaming aggregation must agree with the record-backed result."""

    def fold(self, records, sla_s=0.010):
        exact = ServingResult(scheduler_name="t", sla_s=sla_s, records=records)
        stream = StreamingMetrics("t", sla_s=sla_s)
        for r in records:
            stream.observe_record(r)
        return exact, stream

    def test_counters_match_exactly(self, rng):
        latencies = rng.exponential(0.01, size=500).tolist()
        dropped = (rng.random(500) < 0.2).tolist()
        exact, stream = self.fold(make_records(latencies, dropped=dropped))
        assert stream.raw_throughput == exact.raw_throughput
        assert stream.correct_prediction_throughput == (
            exact.correct_prediction_throughput
        )
        assert stream.compliant_correct_throughput == (
            exact.compliant_correct_throughput
        )
        assert stream.violation_rate == exact.violation_rate
        assert stream.drop_rate == exact.drop_rate
        assert stream.mean_accuracy == exact.mean_accuracy
        assert stream.achieved_qps == exact.achieved_qps

    def test_percentiles_close_on_small_runs(self, rng):
        latencies = rng.exponential(0.01, size=2000).tolist()
        exact, stream = self.fold(make_records(latencies))
        for q in (50, 95, 99):
            assert stream.latency_percentile(q) == pytest.approx(
                exact.latency_percentile(q), rel=0.15
            )

    def test_switching_breakdown_matches(self):
        exact, stream = self.fold(make_records([0.01] * 10))
        assert stream.switching_breakdown() == exact.switching_breakdown()

    def test_summary_keys_match(self):
        exact, stream = self.fold(make_records([0.01]))
        assert set(stream.summary()) == set(exact.summary())

    def test_per_tenant_sla_override(self):
        stream = StreamingMetrics("t", sla_s=0.010)
        # 20 ms latency: violates the default 10 ms but not a 50 ms tenant SLA.
        rec = make_records([0.020])[0]
        stream.observe_record(rec, sla_s=0.050)
        assert stream.violation_rate == 0.0

    def test_empty_stream_safe(self):
        stream = StreamingMetrics("t", sla_s=0.01)
        assert stream.raw_throughput == 0.0
        assert stream.violation_rate == 0.0
        assert stream.p99_latency_s == 0.0
        assert stream.switching_breakdown() == {}


class TestDroppedExcludedFromPercentiles:
    """Regression: shed queries used to contribute 0 s latencies, so tail
    percentiles *improved* as the system dropped more — exactly backwards."""

    def test_exact_percentiles_ignore_drops(self):
        latencies = [0.020] * 10
        dropped = [False] * 10 + [True] * 90
        records = make_records(latencies + [0.0] * 90, dropped=dropped)
        res = ServingResult(scheduler_name="t", sla_s=0.01, records=records)
        # 90% drops: the old behavior put p50/p95/p99 at 0 s.
        assert res.p50_latency_s == pytest.approx(0.020)
        assert res.p99_latency_s == pytest.approx(0.020)
        # But drops still count against violation and drop rates.
        assert res.drop_rate == 0.9
        assert res.violation_rate >= 0.9

    def test_streaming_percentiles_ignore_drops(self):
        stream = StreamingMetrics("t", sla_s=0.01)
        for r in make_records(
            [0.020] * 10 + [0.0] * 90, dropped=[False] * 10 + [True] * 90
        ):
            stream.observe_record(r)
        assert stream.p99_latency_s == pytest.approx(0.020)
        assert stream.drop_rate == 0.9

    def test_all_dropped_percentile_zero(self):
        records = make_records([0.0] * 5, dropped=[True] * 5)
        res = ServingResult(scheduler_name="t", sla_s=0.01, records=records)
        assert res.p99_latency_s == 0.0

    def test_more_drops_cannot_lower_tail(self):
        """Monotonicity of the fix: adding dropped records leaves the
        latency distribution untouched."""
        served = make_records([0.005, 0.015, 0.030])
        res_clean = ServingResult("t", 0.01, records=list(served))
        extra_drops = make_records([0.0] * 50, dropped=[True] * 50)
        res_loaded = ServingResult("t", 0.01, records=served + extra_drops)
        for q in (50, 95, 99):
            assert res_loaded.latency_percentile(q) == (
                res_clean.latency_percentile(q)
            )


class TestDroppedExcludedFromThroughput:
    """Regression: dropped queries' samples used to count in total_samples
    while the makespan shrank with every shed query, so a drop-heavy
    failing run reported *higher* raw samples/s than a healthy one."""

    def test_exact_throughput_ignores_drops(self):
        served = make_records([0.020] * 10)
        res_clean = ServingResult("t", 0.01, records=list(served))
        drops = make_records([0.0] * 90, dropped=[True] * 90)
        res_loaded = ServingResult("t", 0.01, records=served + drops)
        assert res_loaded.total_samples == res_clean.total_samples
        assert res_loaded.raw_throughput == res_clean.raw_throughput
        # Served accuracy is over served samples, not shed ones.
        assert res_loaded.mean_accuracy == pytest.approx(80.0)

    def test_streaming_throughput_ignores_drops(self):
        stream = StreamingMetrics("t", sla_s=0.01)
        for r in make_records(
            [0.020] * 10 + [0.0] * 90, dropped=[False] * 10 + [True] * 90
        ):
            stream.observe_record(r)
        assert stream.total_samples == 10 * 100
        assert stream.mean_accuracy == pytest.approx(80.0)
        exact = ServingResult(
            "t", 0.01,
            records=make_records(
                [0.020] * 10 + [0.0] * 90,
                dropped=[False] * 10 + [True] * 90,
            ),
        )
        assert stream.raw_throughput == pytest.approx(exact.raw_throughput)


class TestObserveMany:
    """Bulk folding must agree with the per-sample path (fast-path sink)."""

    def _streams(self, rng, n=3000):
        sizes = rng.integers(1, 512, size=n)
        arrivals = np.sort(rng.random(n))
        latencies = rng.exponential(0.01, size=n)
        finishes = arrivals + latencies
        energies = rng.random(n)
        slas = rng.choice([0.005, 0.010, 0.050], size=n)
        return sizes, arrivals, finishes, energies, slas

    def test_counters_match_per_observe(self, rng):
        sizes, arrivals, finishes, energies, slas = self._streams(rng)
        one = StreamingMetrics("t", sla_s=0.010)
        for i in range(sizes.size):
            one.observe(int(sizes[i]), float(arrivals[i]), 0.0,
                        float(finishes[i]), "P", 80.0,
                        energy_j=float(energies[i]), sla_s=float(slas[i]))
        many = StreamingMetrics("t", sla_s=0.010)
        many.observe_many(sizes, arrivals, None, finishes, "P", 80.0,
                          energies=energies, slas=slas)
        assert many.n == one.n
        assert many.n_violations == one.n_violations
        assert many.total_samples == one.total_samples
        assert many.raw_throughput == one.raw_throughput
        assert many.violation_rate == one.violation_rate
        assert many.switching_breakdown() == one.switching_breakdown()
        assert many.total_energy_j == pytest.approx(
            one.total_energy_j, rel=1e-12
        )
        assert many.mean_accuracy == pytest.approx(
            one.mean_accuracy, rel=1e-12
        )

    def test_reservoir_stream_is_bit_identical(self, rng):
        sizes, arrivals, finishes, _, _ = self._streams(rng)
        one = StreamingMetrics("t", sla_s=0.010)
        for i in range(sizes.size):
            one.observe(int(sizes[i]), float(arrivals[i]), 0.0,
                        float(finishes[i]), "P", 80.0)
        many = StreamingMetrics("t", sla_s=0.010)
        many.observe_many(sizes, arrivals, None, finishes, "P", 80.0)
        assert many._reservoir._sample == one._reservoir._sample
        assert many._reservoir.count == one._reservoir.count

    def test_percentiles_track_truth(self, rng):
        sizes, arrivals, finishes, _, _ = self._streams(rng, n=20_000)
        many = StreamingMetrics("t", sla_s=0.010)
        many.observe_many(sizes, arrivals, None, finishes, "P", 80.0)
        latencies = finishes - arrivals
        for q, got in ((50, many.p50_latency_s), (95, many.p95_latency_s),
                       (99, many.p99_latency_s)):
            truth = float(np.percentile(latencies, q))
            assert got == pytest.approx(truth, rel=0.05)

    def test_dropped_chunk_counts_without_latency(self):
        many = StreamingMetrics("t", sla_s=0.010)
        many.observe_many([5, 6], [0.0, 0.1], None, [0.0, 0.1], "DROPPED",
                          0.0, dropped=True)
        assert many.n == 2 and many.n_dropped == 2
        assert many.n_violations == 2
        assert many.total_samples == 0
        assert many.makespan_s == pytest.approx(0.1)

    def test_empty_chunk_is_noop(self):
        many = StreamingMetrics("t", sla_s=0.010)
        many.observe_many([], [], None, [], "P", 80.0)
        assert many.n == 0

    def test_small_chunks_replay_exact_estimators(self, rng):
        """Chunks below the chunked-P2 threshold replay per-sample
        observe, so repeated small folds are bit-equal to the loop."""
        latencies = rng.exponential(0.01, size=100)
        one = StreamingMetrics("t", sla_s=0.010)
        for lat in latencies.tolist():
            one.observe(10, 0.0, 0.0, lat, "P", 80.0)
        many = StreamingMetrics("t", sla_s=0.010)
        for start in range(0, 100, 10):
            chunk = latencies[start:start + 10]
            many.observe_many(np.full(10, 10), np.zeros(10), None, chunk,
                              "P", 80.0)
        assert many.p99_latency_s == one.p99_latency_s
        assert many.p50_latency_s == one.p50_latency_s
