import pytest

from repro.core.representations import RepresentationConfig, paper_configs
from repro.models.configs import KAGGLE, TERABYTE
from repro.quality.estimator import QualityEstimator


class TestAnchors:
    @pytest.mark.parametrize("dataset,table,dhe,hybrid", [
        ("kaggle", 78.79, 78.94, 78.98),
        ("terabyte", 80.81, 80.99, 81.03),
    ])
    def test_paper_table2_reproduced(self, dataset, table, dhe, hybrid):
        est = QualityEstimator(dataset)
        model = KAGGLE if dataset == "kaggle" else TERABYTE
        cfgs = paper_configs(model)
        assert abs(est.accuracy(cfgs["table"]) - table) < 0.01
        assert abs(est.accuracy(cfgs["dhe"]) - dhe) < 0.02
        assert abs(est.accuracy(cfgs["hybrid"]) - hybrid) < 0.02

    def test_hw2_small_dim_table(self):
        # Paper Table 4: dim-4 Kaggle table reaches 78.721%.
        est = QualityEstimator("kaggle")
        assert abs(est.table_accuracy(4) - 78.721) < 0.005

    def test_internal_hybrid_gain(self):
        # Production case study: hybrid improves accuracy by ~0.014%.
        est = QualityEstimator("internal")
        gain = est.anchors.hybrid_accuracy - est.anchors.table_accuracy
        assert abs(gain - 0.014) < 0.002

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            QualityEstimator("movielens")


class TestShapes:
    def test_accuracy_increases_with_k(self):
        est = QualityEstimator("kaggle")
        accs = [
            est.accuracy(RepresentationConfig("dhe", 16, k=k, dnn=128, h=2))
            for k in (2, 32, 512, 2048)
        ]
        assert accs == sorted(accs)
        assert accs[-1] - accs[0] > 0.3  # k matters a lot (Fig 4)

    def test_decoder_shape_second_order(self):
        # Same k, different decoder: differences must be small (Fig 4).
        est = QualityEstimator("kaggle")
        accs = [
            est.accuracy(RepresentationConfig("dhe", 16, k=1024, dnn=d, h=h))
            for d, h in ((64, 1), (128, 2), (480, 4))
        ]
        assert max(accs) - min(accs) < 0.03

    def test_tiny_k_below_table(self):
        est = QualityEstimator("kaggle")
        tiny = est.accuracy(RepresentationConfig("dhe", 16, k=2, dnn=64, h=1))
        assert tiny < est.anchors.table_accuracy

    def test_hybrid_beats_both(self):
        est = QualityEstimator("kaggle")
        cfgs = paper_configs(KAGGLE)
        hybrid = est.accuracy(cfgs["hybrid"])
        assert hybrid > est.accuracy(cfgs["table"])
        assert hybrid > est.accuracy(cfgs["dhe"])

    def test_select_between_table_and_dhe(self):
        est = QualityEstimator("kaggle")
        cfgs = paper_configs(KAGGLE)
        sel = est.accuracy(cfgs["select"])
        assert est.anchors.table_accuracy <= sel <= est.accuracy(cfgs["dhe"])

    def test_table_dim_monotone(self):
        est = QualityEstimator("kaggle")
        accs = [est.table_accuracy(d) for d in (2, 4, 8, 16, 32)]
        assert accs == sorted(accs)

    def test_dim_above_reference_saturates(self):
        est = QualityEstimator("kaggle")
        assert est.table_accuracy(256) - est.table_accuracy(16) < 0.05

    def test_best_selects_max(self):
        est = QualityEstimator("kaggle")
        cfgs = list(paper_configs(KAGGLE).values())
        best = est.best(cfgs)
        assert est.accuracy(best) == max(est.accuracy(c) for c in cfgs)

    def test_best_empty_rejected(self):
        with pytest.raises(ValueError):
            QualityEstimator("kaggle").best([])

    def test_table_accuracy_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            QualityEstimator("kaggle").table_accuracy(0)
