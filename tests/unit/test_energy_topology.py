import pytest

from repro.core.representations import paper_configs
from repro.hardware.catalog import (
    CPU_BROADWELL,
    GPU_V100,
    IPU_GC200,
    IPU_POD16,
    TPU_V3_CHIP,
)
from repro.hardware.device import GB, MB
from repro.hardware.energy import average_power, energy_per_query, energy_per_sample
from repro.hardware.latency import OperatorBreakdown, estimate_breakdown
from repro.hardware.topology import plan_ipu_placement, scale_out
from repro.models.configs import KAGGLE, TERABYTE


class TestEnergy:
    def test_power_between_idle_and_tdp(self):
        bd = estimate_breakdown(paper_configs(KAGGLE)["table"], KAGGLE, GPU_V100, 512)
        power = average_power(GPU_V100, bd)
        assert GPU_V100.idle_w <= power <= GPU_V100.tdp_w

    def test_zero_time_returns_idle(self):
        assert average_power(GPU_V100, OperatorBreakdown()) == GPU_V100.idle_w

    def test_energy_scales_with_time(self):
        rep = paper_configs(KAGGLE)["table"]
        small = energy_per_query(CPU_BROADWELL, estimate_breakdown(rep, KAGGLE, CPU_BROADWELL, 64))
        large = energy_per_query(CPU_BROADWELL, estimate_breakdown(rep, KAGGLE, CPU_BROADWELL, 4096))
        assert large > small

    def test_per_sample_divides(self):
        rep = paper_configs(KAGGLE)["table"]
        bd = estimate_breakdown(rep, KAGGLE, GPU_V100, 128)
        assert energy_per_sample(GPU_V100, bd, 128) == energy_per_query(GPU_V100, bd) / 128

    def test_per_sample_rejects_zero_batch(self):
        with pytest.raises(ValueError):
            energy_per_sample(GPU_V100, OperatorBreakdown(), 0)

    def test_gpu_beats_tpu_energy_for_tables(self):
        """Paper O3: GPU is the most energy-efficient for large table models."""
        rep = paper_configs(TERABYTE)["table"]
        gpu = energy_per_query(GPU_V100, estimate_breakdown(rep, TERABYTE, GPU_V100, 128))
        tpu = energy_per_query(TPU_V3_CHIP, estimate_breakdown(rep, TERABYTE, TPU_V3_CHIP, 128))
        ipu = energy_per_query(IPU_GC200, estimate_breakdown(rep, TERABYTE, IPU_GC200, 128))
        assert gpu < tpu
        assert gpu < ipu


class TestScaleOut:
    def test_replicated_multiplies_resources(self):
        pod = scale_out(IPU_GC200, 4, "replicated")
        assert pod.peak_flops == 4 * IPU_GC200.peak_flops
        assert pod.n_chips == 4
        assert pod.replicas == 4

    def test_sharded_has_one_replica(self):
        pod = scale_out(IPU_GC200, 8, "sharded")
        assert pod.replicas == 1

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            scale_out(IPU_GC200, 0)
        with pytest.raises(ValueError):
            scale_out(IPU_GC200, 4, "ring")


class TestIpuPlacement:
    def test_small_model_full_data_parallelism(self):
        """DHE (~127 MB) fits per chip -> 16 replicas (paper Fig 6)."""
        placement = plan_ipu_placement(127 * MB, IPU_POD16)
        assert placement.strategy == "data"
        assert placement.replicas == 16
        assert placement.fits_on_chip

    def test_board_scale_model_pipelines(self):
        """Kaggle table (2.16 GB) fits 4-chip SRAM -> pipelined, 4 replicas."""
        placement = plan_ipu_placement(int(2.16e9), IPU_POD16)
        assert placement.strategy == "pipeline"
        assert placement.replicas == 4

    def test_pod_scale_model_shards(self):
        """Terabyte table (12.58 GB) only fits pod SRAM -> sharded, no DP
        (paper Insight 6)."""
        placement = plan_ipu_placement(int(12.58e9), IPU_POD16)
        assert placement.strategy == "sharded"
        assert placement.replicas == 1

    def test_oversized_model_spills(self):
        placement = plan_ipu_placement(50 * GB, IPU_POD16)
        assert placement.strategy == "spill"
        assert placement.spilled_bytes > 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            plan_ipu_placement(-1, IPU_POD16)


class TestClusterLinks:
    def test_catalog_links_resolve(self):
        from repro.hardware.topology import CLUSTER_LINKS, ETHERNET_25G

        assert CLUSTER_LINKS["eth-25g"] is ETHERNET_25G
        assert set(CLUSTER_LINKS) == {"eth-25g", "eth-100g", "rdma-100g"}

    def test_transfer_time_alpha_beta(self):
        from repro.hardware.topology import LinkSpec

        link = LinkSpec(name="test", bandwidth=1e9, latency_s=1e-5)
        assert link.transfer_time(0) == 0.0
        assert link.transfer_time(1e9) == pytest.approx(1.0 + 1e-5)

    def test_link_validation(self):
        from repro.hardware.topology import LinkSpec

        with pytest.raises(ValueError):
            LinkSpec(name="bad", bandwidth=0.0, latency_s=1e-6)
        with pytest.raises(ValueError):
            LinkSpec(name="bad", bandwidth=1e9, latency_s=-1.0)

    def test_alltoall_degenerate_cases(self):
        from repro.hardware.topology import ETHERNET_100G, alltoall_exchange_time

        assert alltoall_exchange_time(1e6, 1, ETHERNET_100G) == 0.0
        assert alltoall_exchange_time(0, 8, ETHERNET_100G) == 0.0
        with pytest.raises(ValueError):
            alltoall_exchange_time(1e6, 0, ETHERNET_100G)

    def test_alltoall_scales_with_peers_and_bytes(self):
        from repro.hardware.topology import ETHERNET_100G, alltoall_exchange_time

        base = alltoall_exchange_time(1e6, 2, ETHERNET_100G)
        more_peers = alltoall_exchange_time(1e6, 8, ETHERNET_100G)
        more_bytes = alltoall_exchange_time(1e7, 2, ETHERNET_100G)
        assert more_peers > base  # alpha term grows with fan-out
        assert more_bytes > base  # beta term grows with payload
