import numpy as np
import pytest

from repro.embeddings.hashing import HashFamily, encode_ids


class TestHashFamily:
    def test_output_shape(self):
        family = HashFamily(k=8, m=100, seed=0)
        out = family(np.arange(10))
        assert out.shape == (10, 8)

    def test_range(self):
        family = HashFamily(k=16, m=50, seed=1)
        out = family(np.arange(0, 10_000, 7))
        assert out.min() >= 0 and out.max() < 50

    def test_deterministic_given_seed(self):
        a = HashFamily(k=4, m=1000, seed=7)(np.arange(100))
        b = HashFamily(k=4, m=1000, seed=7)(np.arange(100))
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = HashFamily(k=4, m=1000, seed=1)(np.arange(100))
        b = HashFamily(k=4, m=1000, seed=2)(np.arange(100))
        assert not np.array_equal(a, b)

    def test_functions_are_independent(self):
        out = HashFamily(k=8, m=10_000, seed=3)(np.arange(500))
        # Any two hash columns should disagree on most inputs.
        for i in range(8):
            for j in range(i + 1, 8):
                assert np.mean(out[:, i] == out[:, j]) < 0.05

    def test_roughly_uniform(self):
        family = HashFamily(k=1, m=10, seed=5)
        out = family(np.arange(100_000)).ravel()
        counts = np.bincount(out, minlength=10)
        assert counts.min() > 0.8 * 100_000 / 10
        assert counts.max() < 1.2 * 100_000 / 10

    def test_large_ids_no_overflow(self):
        family = HashFamily(k=4, m=1000, seed=0)
        out = family(np.array([2**33 - 1, 10_131_227]))
        assert out.min() >= 0 and out.max() < 1000

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError):
            HashFamily(k=2, m=10, seed=0)(np.array([-1]))

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            HashFamily(k=0, m=10, seed=0)
        with pytest.raises(ValueError):
            HashFamily(k=2, m=1, seed=0)

    def test_flops_per_id(self):
        assert HashFamily(k=32, m=10, seed=0).flops_per_id() == 128


class TestEncodeIds:
    def test_uniform_range(self):
        hashed = np.array([[0, 50, 99]])
        out = encode_ids(hashed, m=100, transform="uniform")
        np.testing.assert_allclose(out[0, 0], -1.0)
        np.testing.assert_allclose(out[0, 2], 1.0)

    def test_gaussian_standardized(self):
        rng = np.random.default_rng(0)
        hashed = rng.integers(0, 1_000_000, size=(50_000, 1))
        out = encode_ids(hashed, m=1_000_000, transform="gaussian")
        assert abs(out.mean()) < 0.02
        assert abs(out.std() - 1.0) < 0.02

    def test_gaussian_finite(self):
        out = encode_ids(np.array([[0, 999_999]]), m=1_000_000, transform="gaussian")
        assert np.isfinite(out).all()

    def test_unknown_transform(self):
        with pytest.raises(ValueError):
            encode_ids(np.zeros((1, 1), dtype=int), m=10, transform="cauchy")
