import pytest

from repro.core.offline import OfflinePlanner, default_planner_space
from repro.core.representations import paper_configs
from repro.experiments.setup import hw1_devices, hw2_devices
from repro.hardware.device import GB, MB
from repro.models.configs import KAGGLE, TERABYTE
from repro.quality.estimator import QualityEstimator


@pytest.fixture
def planner():
    return OfflinePlanner(KAGGLE, QualityEstimator("kaggle"))


class TestAlgorithm1:
    def test_hw1_maps_all_three_kinds(self, planner):
        """On HW-1 (32 GB each) every device gets hybrid, table, and DHE."""
        plan = planner.plan(hw1_devices())
        for device_name in plan.mappings:
            kinds = [rep.kind for rep in plan.reps_on(device_name)]
            assert kinds == ["hybrid", "table", "dhe"]

    def test_hw1_footprint_matches_table3(self, planner):
        plan = planner.plan(hw1_devices())
        total_gb = plan.unique_rep_bytes() / 1e9
        # Table 3: MP-Rec Kaggle = 4.58 GB (embedding) + small dense MLPs.
        assert 4.4 < total_gb < 4.8

    def test_hw2_cpu_gets_small_table_plus_dhe(self):
        """Table 4: the 1 GB CPU holds a dim-4 table (542 MB) + DHE (123 MB)."""
        planner = OfflinePlanner(KAGGLE, QualityEstimator("kaggle"))
        plan = planner.plan(hw2_devices())
        cpu_reps = plan.reps_on("cpu-broadwell")
        kinds = [rep.kind for rep in cpu_reps]
        assert "table" in kinds and "dhe" in kinds
        assert "hybrid" not in kinds  # 2.29 GB does not fit in 1 GB
        table = next(rep for rep in cpu_reps if rep.kind == "table")
        assert table.embedding_dim == 4  # 542 MB variant
        assert abs(plan.device_bytes("cpu-broadwell") / 1e6 - 665) < 40

    def test_hw2_gpu_gets_dhe_only(self):
        """Table 4: the 200 MB GPU holds only DHE stacks (plus the
        Algorithm 1 line-13 compact fallback)."""
        planner = OfflinePlanner(KAGGLE, QualityEstimator("kaggle"))
        plan = planner.plan(hw2_devices())
        gpu_reps = plan.reps_on("gpu-v100")
        assert set(rep.kind for rep in gpu_reps) == {"dhe"}
        primary = gpu_reps[0]
        assert primary.k == 2048  # the accuracy-optimal stack (123 MB)
        assert abs(primary.total_bytes(KAGGLE) / 1e6 - 130) < 25

    def test_capacity_respected_on_every_device(self, planner):
        for devices in (hw1_devices(), hw2_devices()):
            plan = planner.plan(devices)
            for device in devices:
                assert plan.device_bytes(device.name) <= device.total_memory

    def test_accuracies_assigned_to_all(self, planner):
        plan = planner.plan(hw1_devices())
        for reps in plan.mappings.values():
            for rep in reps:
                assert rep.display in plan.accuracies

    def test_best_accuracy_is_hybrid(self, planner):
        plan = planner.plan(hw1_devices())
        est = QualityEstimator("kaggle")
        assert abs(plan.best_accuracy() - est.accuracy(paper_configs(KAGGLE)["hybrid"])) < 1e-9

    def test_tiny_device_gets_compact_dhe(self):
        planner = OfflinePlanner(KAGGLE, QualityEstimator("kaggle"))
        tiny = hw2_devices()[1].with_memory_budget(40 * MB)
        plan = planner.plan([tiny])
        reps = plan.reps_on(tiny.name)
        assert len(reps) >= 1
        assert all(rep.total_bytes(KAGGLE) <= tiny.total_memory for rep in reps)

    def test_empty_hardware_rejected(self, planner):
        with pytest.raises(ValueError):
            planner.plan([])

    def test_build_paths_profiles_everything(self, planner):
        plan = planner.plan(hw1_devices())
        paths = plan.build_paths(encoder_hit_rate=0.5, decoder_speedup=2.0)
        n_mappings = sum(len(reps) for reps in plan.mappings.values())
        assert len(paths) == n_mappings
        for path in paths:
            assert path.latency(128) > 0
            if path.rep.uses_dhe:
                assert path.encoder_hit_rate == 0.5
            else:
                assert path.encoder_hit_rate == 0.0


class TestPlannerSpace:
    def test_space_has_small_tables(self):
        space = default_planner_space(KAGGLE)
        dims = {rep.embedding_dim for rep in space if rep.kind == "table"}
        assert 4 in dims and 16 in dims

    def test_terabyte_space(self):
        space = default_planner_space(TERABYTE)
        assert any(rep.kind == "hybrid" for rep in space)
