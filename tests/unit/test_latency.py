import numpy as np
import pytest

from repro.core.representations import RepresentationConfig, paper_configs
from repro.hardware.catalog import (
    CPU_BROADWELL,
    GPU_V100,
    IPU_GC200,
    IPU_POD16,
    TPU_V3_CHIP,
)
from repro.hardware.latency import OperatorBreakdown, estimate_breakdown, path_latency
from repro.models.configs import KAGGLE, TERABYTE

TABLE = RepresentationConfig("table", 16)
DHE = RepresentationConfig("dhe", 16, k=1024, dnn=128, h=2)
HYBRID = RepresentationConfig("hybrid", 24, k=1024, dnn=128, h=2, table_dim=16, dhe_dim=8)
SELECT = RepresentationConfig("select", 16, k=1024, dnn=128, h=2, n_dhe_features=3)


class TestBreakdownStructure:
    def test_total_sums_fields(self):
        bd = OperatorBreakdown(host=1, transfer=2, decoder=3)
        assert bd.total == 6

    def test_embedding_access_grouping(self):
        bd = OperatorBreakdown(embedding=1, encoder=2, decoder=3, top_mlp=9)
        assert bd.embedding_access == 6

    def test_scaled(self):
        bd = OperatorBreakdown(host=2.0).scaled(0.5)
        assert bd.host == 1.0

    def test_as_dict_covers_operators(self):
        keys = set(OperatorBreakdown().as_dict())
        assert {"embedding", "encoder", "decoder", "launch", "comm"} <= keys


class TestOperatorAttribution:
    def test_table_has_no_dhe_ops(self):
        bd = estimate_breakdown(TABLE, KAGGLE, CPU_BROADWELL, 128)
        assert bd.encoder == 0 and bd.decoder == 0
        assert bd.embedding > 0

    def test_dhe_has_no_table_gather(self):
        bd = estimate_breakdown(DHE, KAGGLE, CPU_BROADWELL, 128)
        assert bd.embedding == 0
        assert bd.encoder > 0 and bd.decoder > 0

    def test_hybrid_has_both(self):
        bd = estimate_breakdown(HYBRID, KAGGLE, CPU_BROADWELL, 128)
        assert bd.embedding > 0 and bd.decoder > 0

    def test_cpu_has_no_transfer(self):
        assert estimate_breakdown(TABLE, KAGGLE, CPU_BROADWELL, 128).transfer == 0

    def test_gpu_has_transfer_and_launch(self):
        bd = estimate_breakdown(TABLE, KAGGLE, GPU_V100, 128)
        assert bd.transfer > 0
        assert bd.launch == GPU_V100.launch_overhead_s


class TestMonotonicity:
    @pytest.mark.parametrize("rep", [TABLE, DHE, HYBRID, SELECT])
    @pytest.mark.parametrize("device", [CPU_BROADWELL, GPU_V100, TPU_V3_CHIP])
    def test_latency_nondecreasing_in_batch(self, rep, device):
        sizes = [1, 8, 64, 512, 4096]
        lats = [path_latency(rep, KAGGLE, device, n) for n in sizes]
        assert all(b >= a * 0.999 for a, b in zip(lats, lats[1:]))

    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            estimate_breakdown(TABLE, KAGGLE, CPU_BROADWELL, 0)

    def test_rejects_bad_cache_params(self):
        with pytest.raises(ValueError):
            estimate_breakdown(DHE, KAGGLE, CPU_BROADWELL, 8, encoder_hit_rate=1.5)
        with pytest.raises(ValueError):
            estimate_breakdown(DHE, KAGGLE, CPU_BROADWELL, 8, decoder_speedup=0.5)


class TestCacheEffects:
    def test_encoder_hits_reduce_latency(self):
        slow = path_latency(DHE, KAGGLE, CPU_BROADWELL, 256)
        fast = path_latency(DHE, KAGGLE, CPU_BROADWELL, 256, encoder_hit_rate=0.9)
        assert fast < slow

    def test_full_hit_rate_eliminates_stack(self):
        bd = estimate_breakdown(DHE, KAGGLE, CPU_BROADWELL, 256, encoder_hit_rate=1.0)
        assert bd.encoder == 0 and bd.decoder == 0

    def test_decoder_speedup_divides_decoder(self):
        base = estimate_breakdown(DHE, KAGGLE, CPU_BROADWELL, 256)
        sped = estimate_breakdown(DHE, KAGGLE, CPU_BROADWELL, 256, decoder_speedup=4.0)
        np.testing.assert_allclose(sped.decoder, base.decoder / 4.0)

    def test_cache_does_not_affect_table(self):
        base = path_latency(TABLE, KAGGLE, CPU_BROADWELL, 256)
        cached = path_latency(
            TABLE, KAGGLE, CPU_BROADWELL, 256, encoder_hit_rate=0.9,
            decoder_speedup=4.0,
        )
        assert base == cached


class TestPaperShapes:
    def test_fig5_cpu_slowdowns(self):
        """DHE ~10.5x, select ~2.1x, hybrid ~11.2x slower than table on CPU."""
        base = path_latency(TABLE, KAGGLE, CPU_BROADWELL, 2048)
        assert 6 < path_latency(DHE, KAGGLE, CPU_BROADWELL, 2048) / base < 16
        assert 1.3 < path_latency(SELECT, KAGGLE, CPU_BROADWELL, 2048) / base < 3.5
        hybrid_ratio = path_latency(HYBRID, KAGGLE, CPU_BROADWELL, 2048) / base
        assert 6 < hybrid_ratio < 17
        assert hybrid_ratio >= path_latency(DHE, KAGGLE, CPU_BROADWELL, 2048) / base

    def test_fig5_gpu_less_slowdown_than_cpu(self):
        """DHE suffers less on GPU than CPU (massively parallel hashing)."""
        cpu_ratio = path_latency(DHE, KAGGLE, CPU_BROADWELL, 2048) / path_latency(
            TABLE, KAGGLE, CPU_BROADWELL, 2048
        )
        gpu_ratio = path_latency(DHE, KAGGLE, GPU_V100, 2048) / path_latency(
            TABLE, KAGGLE, GPU_V100, 2048
        )
        assert gpu_ratio < cpu_ratio

    def test_ipu_sram_residency_cliff(self):
        """O2: the same table model is dramatically slower once it spills out
        of the scratchpad onto Streaming Memory."""
        from dataclasses import replace

        table_big = paper_configs(KAGGLE)["table"]  # 2.16 GB
        spills = estimate_breakdown(table_big, KAGGLE, IPU_GC200, 256)
        roomy = replace(IPU_GC200, sram_capacity=4 * 1024**3)
        resident = estimate_breakdown(table_big, KAGGLE, roomy, 256)
        assert spills.embedding > 50 * resident.embedding

    def test_tpu_embedding_pipelining_helps(self):
        from dataclasses import replace

        plain = replace(TPU_V3_CHIP, embedding_pipelining=False)
        with_pipe = estimate_breakdown(TABLE, TERABYTE, TPU_V3_CHIP, 2048)
        without = estimate_breakdown(TABLE, TERABYTE, plain, 2048)
        assert with_pipe.embedding < without.embedding

    def test_sharded_pays_communication(self):
        from dataclasses import replace

        sharded = replace(IPU_POD16, parallelism="sharded", replicas=1)
        bd = estimate_breakdown(TABLE, TERABYTE, sharded, 1024)
        assert bd.comm > 0

    def test_replicated_latency_single_chip(self):
        """A replicated pod's per-query latency matches one chip's."""
        from dataclasses import replace

        chip_like = estimate_breakdown(
            paper_configs(KAGGLE)["dhe"], KAGGLE, IPU_GC200, 128
        )
        pod = estimate_breakdown(
            paper_configs(KAGGLE)["dhe"], KAGGLE, IPU_POD16, 128
        )
        # Same order of magnitude (pod replica == one GC200 chip).
        assert 0.5 < pod.total / chip_like.total < 2.0
