import numpy as np
import pytest

from repro.data.queries import (
    MAX_QUERY_SIZE,
    arrival_times,
    generate_query_set,
    lognormal_sizes,
)


class TestLognormalSizes:
    def test_mean_close_to_target(self):
        sizes = lognormal_sizes(50_000, mean_size=128.0)
        assert abs(sizes.mean() - 128) < 10

    def test_bounds(self):
        sizes = lognormal_sizes(10_000, mean_size=128.0)
        assert sizes.min() >= 1
        assert sizes.max() <= MAX_QUERY_SIZE

    def test_right_skew(self):
        sizes = lognormal_sizes(50_000, mean_size=128.0)
        assert np.median(sizes) < sizes.mean()

    def test_small_mean(self):
        sizes = lognormal_sizes(10_000, mean_size=2.0)
        assert 1 <= sizes.mean() < 5

    def test_rejects_sub_one_mean(self):
        with pytest.raises(ValueError):
            lognormal_sizes(10, mean_size=0.5)


class TestArrivalTimes:
    def test_poisson_rate(self):
        times = arrival_times(100_000, qps=1000.0)
        assert abs(times[-1] - 100.0) < 3.0  # ~100 s for 100K @ 1 kQPS

    def test_monotone(self):
        times = arrival_times(1000, qps=500.0)
        assert np.all(np.diff(times) >= 0)

    def test_uniform_process(self):
        times = arrival_times(10, qps=10.0, process="uniform")
        np.testing.assert_allclose(np.diff(times), 0.1)

    def test_rejects_bad_qps(self):
        with pytest.raises(ValueError):
            arrival_times(10, qps=0.0)

    def test_unknown_process(self):
        with pytest.raises(ValueError):
            arrival_times(10, qps=10.0, process="fractal")

    def test_diurnal_mean_rate(self):
        times = arrival_times(30_000, qps=1000.0, process="diurnal")
        achieved = 30_000 / times[-1]
        # Partial trailing periods bias the estimate slightly.
        assert abs(achieved - 1000.0) / 1000.0 < 0.15

    def test_diurnal_rate_oscillates(self):
        """Windows of a diurnal process show materially different rates."""
        times = arrival_times(60_000, qps=1000.0, process="diurnal")
        counts, _ = np.histogram(times, bins=np.arange(0.0, times[-1], 2.5))
        assert counts.max() > 1.3 * max(1, counts.min())

    def test_diurnal_monotone(self):
        times = arrival_times(500, qps=200.0, process="diurnal")
        assert np.all(np.diff(times) >= 0)

    def test_mmpp_mean_rate(self):
        times = arrival_times(40_000, qps=1000.0, process="mmpp")
        achieved = 40_000 / times[-1]
        assert abs(achieved - 1000.0) / 1000.0 < 0.25

    def test_bursty_alias(self):
        a = arrival_times(500, qps=500.0, process="mmpp")
        b = arrival_times(500, qps=500.0, process="bursty")
        np.testing.assert_allclose(a, b)

    def test_mmpp_burstier_than_poisson(self):
        """Squared coefficient of variation of gaps exceeds a Poisson's 1."""
        times = arrival_times(40_000, qps=1000.0, process="mmpp")
        gaps = np.diff(times)
        cv2 = gaps.var() / gaps.mean() ** 2
        assert cv2 > 1.3

    def test_mmpp_monotone(self):
        times = arrival_times(2000, qps=500.0, process="mmpp")
        assert np.all(np.diff(times) >= 0)

    def test_flash_crowd_spike_window_is_denser(self):
        times = arrival_times(30_000, qps=1000.0, process="flash-crowd")
        horizon = 30.0  # nominal n/qps
        spike = np.sum((times >= 0.5 * horizon) & (times < 0.6 * horizon))
        baseline = np.sum((times >= 0.1 * horizon) & (times < 0.2 * horizon))
        assert spike > 3 * baseline

    def test_flash_crowd_monotone(self):
        times = arrival_times(2000, qps=500.0, process="flash-crowd")
        assert np.all(np.diff(times) >= 0)


class TestGenerateQuerySet:
    def test_paper_default_shape(self):
        qs = generate_query_set(n_queries=1000, mean_size=128, qps=1000)
        assert len(qs) == 1000
        assert 100 < qs.mean_size() < 160
        assert qs.total_samples == qs.sizes.sum()

    def test_queries_sorted_by_index(self):
        qs = generate_query_set(n_queries=50)
        assert [q.index for q in qs] == list(range(50))

    def test_deterministic_given_seed(self):
        a = generate_query_set(n_queries=100, seed=5)
        b = generate_query_set(n_queries=100, seed=5)
        assert [q.size for q in a] == [q.size for q in b]
