import numpy as np
import pytest

from repro.data.queries import (
    MAX_QUERY_SIZE,
    Query,
    QueryArrays,
    QuerySet,
    arrival_times,
    generate_query_arrays,
    generate_query_set,
    lognormal_sizes,
)


class TestLognormalSizes:
    def test_mean_close_to_target(self):
        sizes = lognormal_sizes(50_000, mean_size=128.0)
        assert abs(sizes.mean() - 128) < 10

    def test_bounds(self):
        sizes = lognormal_sizes(10_000, mean_size=128.0)
        assert sizes.min() >= 1
        assert sizes.max() <= MAX_QUERY_SIZE

    def test_right_skew(self):
        sizes = lognormal_sizes(50_000, mean_size=128.0)
        assert np.median(sizes) < sizes.mean()

    def test_small_mean(self):
        sizes = lognormal_sizes(10_000, mean_size=2.0)
        assert 1 <= sizes.mean() < 5

    def test_rejects_sub_one_mean(self):
        with pytest.raises(ValueError):
            lognormal_sizes(10, mean_size=0.5)


class TestArrivalTimes:
    def test_poisson_rate(self):
        times = arrival_times(100_000, qps=1000.0)
        assert abs(times[-1] - 100.0) < 3.0  # ~100 s for 100K @ 1 kQPS

    def test_monotone(self):
        times = arrival_times(1000, qps=500.0)
        assert np.all(np.diff(times) >= 0)

    def test_uniform_process(self):
        times = arrival_times(10, qps=10.0, process="uniform")
        np.testing.assert_allclose(np.diff(times), 0.1)

    def test_rejects_bad_qps(self):
        with pytest.raises(ValueError):
            arrival_times(10, qps=0.0)

    def test_unknown_process(self):
        with pytest.raises(ValueError):
            arrival_times(10, qps=10.0, process="fractal")

    def test_diurnal_mean_rate(self):
        times = arrival_times(30_000, qps=1000.0, process="diurnal")
        achieved = 30_000 / times[-1]
        # Partial trailing periods bias the estimate slightly.
        assert abs(achieved - 1000.0) / 1000.0 < 0.15

    def test_diurnal_rate_oscillates(self):
        """Windows of a diurnal process show materially different rates."""
        times = arrival_times(60_000, qps=1000.0, process="diurnal")
        counts, _ = np.histogram(times, bins=np.arange(0.0, times[-1], 2.5))
        assert counts.max() > 1.3 * max(1, counts.min())

    def test_diurnal_monotone(self):
        times = arrival_times(500, qps=200.0, process="diurnal")
        assert np.all(np.diff(times) >= 0)

    def test_mmpp_mean_rate(self):
        times = arrival_times(40_000, qps=1000.0, process="mmpp")
        achieved = 40_000 / times[-1]
        assert abs(achieved - 1000.0) / 1000.0 < 0.25

    def test_bursty_alias(self):
        a = arrival_times(500, qps=500.0, process="mmpp")
        b = arrival_times(500, qps=500.0, process="bursty")
        np.testing.assert_allclose(a, b)

    def test_mmpp_burstier_than_poisson(self):
        """Squared coefficient of variation of gaps exceeds a Poisson's 1."""
        times = arrival_times(40_000, qps=1000.0, process="mmpp")
        gaps = np.diff(times)
        cv2 = gaps.var() / gaps.mean() ** 2
        assert cv2 > 1.3

    def test_mmpp_monotone(self):
        times = arrival_times(2000, qps=500.0, process="mmpp")
        assert np.all(np.diff(times) >= 0)

    def test_flash_crowd_spike_window_is_denser(self):
        times = arrival_times(30_000, qps=1000.0, process="flash-crowd")
        horizon = 30.0  # nominal n/qps
        spike = np.sum((times >= 0.5 * horizon) & (times < 0.6 * horizon))
        baseline = np.sum((times >= 0.1 * horizon) & (times < 0.2 * horizon))
        assert spike > 3 * baseline

    def test_flash_crowd_monotone(self):
        times = arrival_times(2000, qps=500.0, process="flash-crowd")
        assert np.all(np.diff(times) >= 0)


class TestArrivalDeterminism:
    """Fixed seed => identical streams, for every vectorized process."""

    @pytest.mark.parametrize(
        "process", ["poisson", "uniform", "diurnal", "mmpp", "flash-crowd"]
    )
    def test_same_seed_same_stream(self, process):
        a = arrival_times(
            2000, qps=800.0, rng=np.random.default_rng(9), process=process
        )
        b = arrival_times(
            2000, qps=800.0, rng=np.random.default_rng(9), process=process
        )
        np.testing.assert_array_equal(a, b)
        assert a.shape == (2000,)

    @pytest.mark.parametrize(
        "process", ["poisson", "uniform", "diurnal", "mmpp", "flash-crowd"]
    )
    def test_zero_queries_yield_empty_stream(self, process):
        times = arrival_times(0, qps=100.0, process=process)
        assert times.shape == (0,)

    @pytest.mark.parametrize("process", ["diurnal", "mmpp", "flash-crowd"])
    def test_different_seeds_differ(self, process):
        a = arrival_times(
            500, qps=800.0, rng=np.random.default_rng(1), process=process
        )
        b = arrival_times(
            500, qps=800.0, rng=np.random.default_rng(2), process=process
        )
        assert not np.array_equal(a, b)


class TestProcessParameters:
    """arrival_times forwards process parameters to the generators."""

    def test_diurnal_amplitude_changes_oscillation(self):
        calm = arrival_times(
            30_000, qps=1000.0, rng=np.random.default_rng(4),
            process="diurnal", amplitude=0.1,
        )
        wild = arrival_times(
            30_000, qps=1000.0, rng=np.random.default_rng(4),
            process="diurnal", amplitude=0.9,
        )

        def swing(times):
            counts, _ = np.histogram(times, bins=np.arange(0.0, times[-1], 2.5))
            return counts.max() / max(1, counts.min())

        assert swing(wild) > swing(calm)

    def test_mmpp_burst_factor_raises_variability(self):
        mild = arrival_times(
            30_000, qps=1000.0, rng=np.random.default_rng(5),
            process="mmpp", burst_factor=1.5,
        )
        harsh = arrival_times(
            30_000, qps=1000.0, rng=np.random.default_rng(5),
            process="mmpp", burst_factor=4.5,
        )

        def cv2(times):
            deltas = np.diff(times)
            return deltas.var() / deltas.mean() ** 2

        assert cv2(harsh) > cv2(mild)

    def test_flash_crowd_spike_position_honored(self):
        times = arrival_times(
            20_000, qps=1000.0, rng=np.random.default_rng(6),
            process="flash-crowd", spike_start_frac=0.2,
            spike_duration_frac=0.1, spike_factor=6.0,
        )
        horizon = 20.0
        early = np.sum((times >= 0.2 * horizon) & (times < 0.3 * horizon))
        late = np.sum((times >= 0.6 * horizon) & (times < 0.7 * horizon))
        assert early > 3 * late

    def test_stationary_processes_reject_parameters(self):
        with pytest.raises(ValueError, match="no extra parameters"):
            arrival_times(10, qps=10.0, process="poisson", amplitude=0.5)
        with pytest.raises(ValueError, match="no extra parameters"):
            arrival_times(10, qps=10.0, process="uniform", spike_factor=2.0)

    def test_mmpp_parameter_validation(self):
        with pytest.raises(ValueError):
            arrival_times(10, qps=10.0, process="mmpp", burst_factor=1.0)
        with pytest.raises(ValueError):
            arrival_times(10, qps=10.0, process="mmpp", duty=0.0)
        with pytest.raises(ValueError):
            arrival_times(
                10, qps=10.0, process="mmpp", burst_factor=6.0, duty=0.2
            )

    def test_diurnal_amplitude_validation(self):
        with pytest.raises(ValueError):
            arrival_times(10, qps=10.0, process="diurnal", amplitude=1.0)

    def test_flash_crowd_factor_validation(self):
        with pytest.raises(ValueError):
            arrival_times(10, qps=10.0, process="flash-crowd", spike_factor=0.5)


class TestMmppDistribution:
    def test_burst_windows_are_denser_than_calm_windows(self):
        """The on-off structure is visible: the densest 1 s windows run at
        a multiple of the quietest ones."""
        times = arrival_times(
            50_000, qps=1000.0, rng=np.random.default_rng(12), process="mmpp"
        )
        counts, _ = np.histogram(times, bins=np.arange(0.0, times[-1], 1.0))
        dense = np.percentile(counts, 95)
        calm = np.percentile(counts, 20)
        assert dense > 2.0 * calm


class TestGenerateQuerySet:
    def test_paper_default_shape(self):
        qs = generate_query_set(n_queries=1000, mean_size=128, qps=1000)
        assert len(qs) == 1000
        assert 100 < qs.mean_size() < 160
        assert qs.total_samples == qs.sizes.sum()

    def test_queries_sorted_by_index(self):
        qs = generate_query_set(n_queries=50)
        assert [q.index for q in qs] == list(range(50))

    def test_deterministic_given_seed(self):
        a = generate_query_set(n_queries=100, seed=5)
        b = generate_query_set(n_queries=100, seed=5)
        assert [q.size for q in a] == [q.size for q in b]


class TestQueryArrays:
    def test_generate_arrays_matches_object_generator(self):
        """Same seed, same draws: the column generator reproduces the
        object generator's sizes and arrivals exactly."""
        qs = generate_query_set(n_queries=500, seed=9, tenant="acme")
        arrays = generate_query_arrays(n_queries=500, seed=9, tenant="acme")
        assert arrays.size.tolist() == [q.size for q in qs]
        assert arrays.arrival_s.tolist() == [q.arrival_s for q in qs]
        assert [arrays.tenants[c] for c in arrays.tenant_codes] == (
            [q.tenant for q in qs]
        )

    def test_as_arrays_round_trip(self):
        queries = [
            Query(index=i, size=i + 1, arrival_s=0.001 * i,
                  tenant="t" if i % 2 else "", user=i * 7)
            for i in range(20)
        ]
        arrays = QuerySet(queries=queries).as_arrays()
        assert arrays.to_queries() == queries

    def test_as_arrays_is_cached(self):
        qs = generate_query_set(n_queries=50, seed=1)
        assert qs.as_arrays() is qs.as_arrays()

    def test_generated_set_carries_arrays_without_round_trip(self):
        """generate_query_set attaches the columns it drew — asking for
        them must not rebuild from the object list."""
        qs = generate_query_set(n_queries=64, seed=2)
        arrays = qs.as_arrays()
        assert arrays is qs._arrays
        assert len(arrays) == 64
        assert arrays.total_samples == qs.total_samples

    def test_empty_tenant_interned_as_code_zero(self):
        arrays = QueryArrays.from_queries(
            [Query(index=0, size=1, arrival_s=0.0)]
        )
        assert arrays.tenants[0] == ""
        assert arrays.tenant_codes.tolist() == [0]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            QueryArrays(
                index=np.arange(3, dtype=np.int64),
                size=np.ones(2, dtype=np.int64),
                arrival_s=np.zeros(3),
                tenant_codes=np.zeros(3, dtype=np.int32),
                tenants=("",),
                user=np.zeros(3, dtype=np.int64),
            )
