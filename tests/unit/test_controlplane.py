"""Unified control plane: configuration validation, the cost-based
arbitration rule, the demand-trend drain guard, the decision trace, the
switch/scale race interlock, and the parity properties that collapse the
autopilot onto the stacked and static baselines."""

import numpy as np
import pytest

from repro.analysis.sharding import greedy_shard
from repro.core.online import StaticScheduler
from repro.core.paths import ExecutionPath, PathProfile
from repro.core.representations import RepresentationConfig
from repro.core.switching import SwitchController
from repro.data.queries import Query, QuerySet
from repro.hardware.catalog import GPU_V100
from repro.hardware.topology import ETHERNET_25G
from repro.serving.autoscale import AutoscaleController
from repro.serving.cluster import ClusterSimulator
from repro.serving.controlplane import (
    ACTION_CLASSES,
    CandidateCost,
    ControlPlane,
    format_decision,
)
from repro.serving.signals import ExclusionWindow
from repro.serving.workload import ServingScenario

SLA_S = 0.015
SIZES = np.unique(np.geomspace(1, 4096, 25).astype(int)).astype(float)

# Thresholds no workload reaches: the plane (or a stacked controller)
# classifies every tick but never accumulates enough evidence to act.
NEVER = {
    "hi_pressure": 1e9, "lo_pressure": 0.0,
    "patience": 10**9, "patience_down": 10**9,
}
# The switch controller has no separate calm patience.
SW_NEVER = {k: v for k, v in NEVER.items() if k != "patience_down"}


def accurate_path():
    return ExecutionPath(
        rep=RepresentationConfig("table", 16),
        device=GPU_V100,
        accuracy=79.5,
        profile=PathProfile(sizes=SIZES, latencies=0.0003 + 0.0012 * SIZES),
        label="ACCURATE",
    )


def fast_path():
    return ExecutionPath(
        rep=RepresentationConfig("dhe", 16, k=4, dnn=64, h=1),
        device=GPU_V100,
        accuracy=78.0,
        profile=PathProfile(sizes=SIZES, latencies=0.0003 + 0.0004 * SIZES),
        label="FAST",
    )


def burst_scenario(n=1500, qps=3000.0):
    queries = [
        Query(index=i, size=1, arrival_s=i / qps) for i in range(n)
    ]
    return ServingScenario(queries=QuerySet(queries=queries), sla_s=SLA_S)


def make_switcher(**kwargs):
    kwargs.setdefault("load_s", 0.002)
    kwargs.setdefault("teardown_s", 0.0005)
    return SwitchController(
        candidates={GPU_V100.name: [accurate_path(), fast_path()]}, **kwargs
    )


def autopilot_cluster(max_nodes=2, plane=None, switcher=None, **cluster_kwargs):
    plan = greedy_shard([40_000, 30_000, 20_000, 10_000], 16, max_nodes)
    cluster_kwargs.setdefault("max_batch_size", 8)
    cluster_kwargs.setdefault("batch_timeout_s", 0.004)
    return ClusterSimulator(
        StaticScheduler([accurate_path()]), plan,
        switch_controller=switcher, controlplane=plane, **cluster_kwargs,
    )


class TestValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            ControlPlane(min_nodes=3, max_nodes=2)
        with pytest.raises(ValueError):
            ControlPlane(min_nodes=0, max_nodes=2)
        with pytest.raises(ValueError):
            ControlPlane(min_nodes=1, max_nodes=4, initial_nodes=5)
        with pytest.raises(ValueError):
            ControlPlane(min_nodes=2, max_nodes=4, initial_nodes=1)

    def test_initial_nodes_defaults_to_floor(self):
        assert ControlPlane(min_nodes=2, max_nodes=4).initial_nodes == 2

    def test_rejects_unknown_action_class(self):
        with pytest.raises(ValueError, match="unknown action classes"):
            ControlPlane(min_nodes=1, max_nodes=2, actions=("switch", "nap"))

    def test_action_subsets_allowed(self):
        plane = ControlPlane(min_nodes=1, max_nodes=2, actions=("scale",))
        assert plane.actions == ("scale",)
        assert ControlPlane(min_nodes=1, max_nodes=2, actions=()).actions == ()

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError):
            ControlPlane(min_nodes=1, max_nodes=2,
                         lo_pressure=0.9, hi_pressure=0.5)
        with pytest.raises(ValueError):
            ControlPlane(min_nodes=1, max_nodes=2, patience=0)
        with pytest.raises(ValueError):
            ControlPlane(min_nodes=1, max_nodes=2, patience_down=0)
        with pytest.raises(ValueError):
            ControlPlane(min_nodes=1, max_nodes=2, cooldown_s=-1.0)
        with pytest.raises(ValueError):
            ControlPlane(min_nodes=1, max_nodes=2, horizon_s=0.0)
        with pytest.raises(ValueError):
            ControlPlane(min_nodes=1, max_nodes=2, node_cost_w=-1.0)

    def test_rejects_bad_schedule(self):
        with pytest.raises(ValueError, match="up/down"):
            ControlPlane(min_nodes=1, max_nodes=2,
                         schedule=((0.1, "sideways"),))
        with pytest.raises(ValueError):
            ControlPlane(min_nodes=1, max_nodes=2, schedule=((-0.1, "up"),))


class TestDemandTrend:
    """The two-horizon arrival-rate EWMA behind the drain guard."""

    def feed(self, plane, rates, dt=0.005, queries_scale=1.0):
        t = 0.0
        for rate in rates:
            plane._observe_demand(t, rate * dt * queries_scale)
            t += dt

    def plane(self):
        return ControlPlane(min_nodes=1, max_nodes=2)

    def test_steady_rate_settles_flat(self):
        plane = self.plane()
        self.feed(plane, [1000.0] * 4000)  # 20 s of steady 1 kq/s
        assert not plane._demand_rising()
        assert plane._demand_fast == pytest.approx(1000.0, rel=0.05)
        assert plane._demand_slow == pytest.approx(1000.0, rel=0.05)

    def test_rising_rate_reads_rising(self):
        plane = self.plane()
        self.feed(plane, [1000.0] * 4000)
        self.feed(plane, list(np.linspace(1000.0, 3000.0, 400)))
        assert plane._demand_rising()

    def test_falling_rate_reads_flat(self):
        plane = self.plane()
        self.feed(plane, [3000.0] * 4000)
        self.feed(plane, list(np.linspace(3000.0, 1000.0, 400)))
        assert not plane._demand_rising()

    def test_cold_start_reads_rising(self):
        # Both estimators warm from zero, the fast one first: early in a
        # run the trend is conservatively "rising" and drains hold off.
        plane = self.plane()
        self.feed(plane, [1000.0] * 20)
        assert plane._demand_rising()


class TestArbitration:
    """_choose and _demote: the rule that picks one action per tick."""

    def test_choose_picks_cheapest_feasible(self):
        best, execute = ControlPlane._choose([
            (CandidateCost("hold", 0.0, True, ""), None),
            (CandidateCost("switch:FAST", 0.01, True, ""), lambda: "sw"),
            (CandidateCost("scale:up", 102.0, True, ""), lambda: "up"),
            (CandidateCost("rewarm", 0.001, False, "blown"), None),
        ])
        assert best.action == "switch:FAST"
        assert execute() == "sw"

    def test_choose_savings_beat_costs(self):
        best, _ = ControlPlane._choose([
            (CandidateCost("hold", 0.0, True, ""), None),
            (CandidateCost("scale:down", -102.0, True, ""), lambda: None),
            (CandidateCost("reroute:x", -0.001, True, ""), lambda: None),
        ])
        assert best.action == "scale:down"

    def test_choose_tie_breaks_by_action_name(self):
        best, _ = ControlPlane._choose([
            (CandidateCost("reroute:b", 0.5, True, ""), lambda: None),
            (CandidateCost("reroute:a", 0.5, True, ""), lambda: None),
        ])
        assert best.action == "reroute:a"

    def test_choose_returns_none_when_nothing_feasible(self):
        best, execute = ControlPlane._choose([
            (CandidateCost("hold", 0.0, True, ""), None),
            (CandidateCost("scale:up", 102.0, False, "at max"), None),
        ])
        assert best is None and execute is None

    def test_demote_marks_cheap_lever_infeasible_under_blown_sla(self):
        pair = (CandidateCost("rewarm", 0.001, True, "fill 1 KiB"),
                lambda: None)
        cand, execute = ControlPlane._demote(pair, True)
        assert not cand.feasible and execute is None
        assert "SLA already blown" in cand.detail
        assert cand.cost_j == 0.001  # still priced for the trace

    def test_demote_leaves_candidates_alone_when_sla_holds(self):
        pair = (CandidateCost("rewarm", 0.001, True, "fill"), lambda: None)
        assert ControlPlane._demote(pair, False) is pair
        assert ControlPlane._demote(None, True) is None


class TestAutopilotRun:
    """Cluster-level behavior: the plane as the single control observer."""

    def run_surge(self, **plane_kwargs):
        plane_kwargs.setdefault("min_nodes", 2)
        plane_kwargs.setdefault("max_nodes", 2)
        plane_kwargs.setdefault("patience", 1)
        plane_kwargs.setdefault("cooldown_s", 0.05)
        plane = ControlPlane(**plane_kwargs)
        cluster = autopilot_cluster(
            max_nodes=2, plane=plane, switcher=make_switcher()
        )
        return cluster.run(burst_scenario())

    def test_surge_commits_fleet_wide_switch(self):
        # ACCURATE saturates the 4 ms window on its own; the cheapest
        # relief is the switch, and one committed decision moves EVERY
        # resident — not just the deciding node.
        res = self.run_surge()
        assert res.control_decisions, "the surge never produced a decision"
        first = res.control_decisions[0]
        assert first.mode == "surge"
        assert first.chosen == "switch:FAST"
        assert "2 node(s)" in next(
            c.detail for c in first.candidates if c.action == "switch:FAST"
        )
        assert res.switches == 2

    def test_decision_chooses_cheapest_feasible_candidate(self):
        res = self.run_surge()
        for decision in res.control_decisions:
            feasible = [c for c in decision.candidates
                        if c.feasible and c.action != "hold"]
            assert decision.chosen_cost_j == min(c.cost_j for c in feasible)

    def test_decision_trace_is_complete(self):
        # Every decision carries the full candidate table — the hold
        # baseline plus every enabled class, rejected ones included,
        # each with a cost and a reason.
        res = self.run_surge()
        for decision in res.control_decisions:
            actions = [c.action for c in decision.candidates]
            assert actions[0] == "hold"
            assert decision.candidates[0].cost_j == 0.0
            assert any(a.startswith("switch") for a in actions)
            assert any(a.startswith("scale") for a in actions)
            assert all(c.detail for c in decision.candidates[1:])

    def test_format_decision_prices_every_candidate(self):
        res = self.run_surge()
        line = format_decision(res.control_decisions[0])
        assert "-> switch:FAST" in line and "J-eq" in line
        for cand in res.control_decisions[0].candidates:
            assert cand.action in line
        # Infeasible candidates are flagged, so the trace alone shows
        # what was priced out vs what was ruled out.
        assert "!" in line

    def test_scale_up_infeasible_at_ceiling(self):
        res = self.run_surge()
        first = res.control_decisions[0]
        scale = next(c for c in first.candidates if c.action == "scale:up")
        assert not scale.feasible and "max_nodes" in scale.detail

    def test_disabled_action_class_never_appears(self):
        res = self.run_surge(actions=("scale", "reroute", "rewarm"))
        for decision in res.control_decisions:
            assert not any(
                c.action.startswith("switch") for c in decision.candidates
            )
        assert res.switches == 0


class TestRaceInterlock:
    """The switch/scale race fix: one control domain acts at a time."""

    def test_exclusion_window_blocks_other_domain_only(self):
        excl = ExclusionWindow()
        excl.acquire("scale", 1.0)
        assert excl.blocked("switch", 0.5)
        assert not excl.blocked("scale", 0.5)  # never blocks itself
        assert not excl.blocked("switch", 1.0)  # boundary is open

    def test_acquire_is_monotone(self):
        excl = ExclusionWindow()
        excl.acquire("switch", 2.0)
        excl.acquire("switch", 1.0)  # must not shorten the hold
        assert excl.blocked("scale", 1.5)

    def test_stacked_switch_waits_out_join_warm_window(self):
        # Regression for the switch/scale race: a scheduled join opens a
        # long warm window (big shard slice over a 25G link) before the
        # saturated ACCURATE fleet accumulates switch patience.  Without
        # the interlock the switch fires INTO the warm window — reacting
        # to the queue spike the join itself induced.
        plan = greedy_shard([4_000_000, 3_000_000, 2_000_000], 16, 3)
        controller = AutoscaleController(
            min_nodes=2, max_nodes=3, schedule=((0.001, "up"),), **NEVER
        )
        cluster = ClusterSimulator(
            StaticScheduler([accurate_path()]), plan,
            link=ETHERNET_25G, max_batch_size=8, batch_timeout_s=0.004,
            switch_controller=make_switcher(patience=2, cooldown_s=0.05),
            autoscale=controller,
        )
        res = cluster.run(burst_scenario())
        joins = [e for e in res.scale_events if e.kind == "up"]
        assert joins and res.switch_events, "scenario must exercise both"
        ready = joins[0].ready_s
        assert ready > res.switch_events[0].time_s or all(
            sw.time_s >= ready for sw in res.switch_events
        )
        # And in general: no switch decision inside any scale window.
        for event in joins:
            for sw in res.switch_events:
                assert not (event.time_s < sw.time_s < event.ready_s)


class TestParity:
    """The property levers: with its actions stripped, the autopilot IS
    the stacked wiring; with unreachable thresholds, the static fleet."""

    def records_of(self, cluster):
        res = cluster.run(burst_scenario(n=800))
        return res, res.result.records

    def test_no_actions_matches_stacked_never_firing(self):
        # Same fleet, same switcher template, two wirings of the control
        # tick: the plane with every action class disabled vs the
        # stacked observers whose controllers never accumulate evidence.
        # Record-for-record the same serving history.
        plane = ControlPlane(min_nodes=2, max_nodes=2, actions=())
        res_a, records_a = self.records_of(autopilot_cluster(
            max_nodes=2, plane=plane, switcher=make_switcher()
        ))
        stacked_controller = AutoscaleController(
            min_nodes=2, max_nodes=2, **NEVER
        )
        plan = greedy_shard([40_000, 30_000, 20_000, 10_000], 16, 2)
        res_b, records_b = self.records_of(ClusterSimulator(
            StaticScheduler([accurate_path()]), plan,
            max_batch_size=8, batch_timeout_s=0.004,
            switch_controller=make_switcher(**SW_NEVER),
            autoscale=stacked_controller,
        ))
        assert records_a == records_b
        assert res_a.control_decisions == []
        assert res_a.node_seconds == pytest.approx(res_b.node_seconds)

    def test_never_firing_autopilot_matches_static_fleet(self):
        plane = ControlPlane(
            min_nodes=2, max_nodes=2, actions=ACTION_CLASSES, **NEVER
        )
        res_a, records_a = self.records_of(autopilot_cluster(
            max_nodes=2, plane=plane, switcher=make_switcher()
        ))
        _, records_b = self.records_of(autopilot_cluster(max_nodes=2))
        assert records_a == records_b
        assert res_a.control_decisions == []
        assert res_a.switches == 0
