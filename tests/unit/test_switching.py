"""Runtime representation switching: controller hysteresis, timeline
blocking, scheduler hooks, and engine/cluster integration."""

import pytest

from repro.analysis.sharding import greedy_shard
from repro.core.online import MultiPathScheduler, StaticScheduler
from repro.core.switching import (
    SwitchController,
    estimate_load_s,
    estimate_teardown_s,
)
from repro.data.queries import Query, QuerySet
from repro.hardware.catalog import CPU_BROADWELL, GPU_V100
from repro.serving.cluster import ClusterSimulator
from repro.serving.devices import DeviceTimeline
from repro.serving.engine import EngineCore, EventLoop
from repro.serving.policies import NoShed
from repro.serving.simulator import ServingSimulator
from repro.serving.workload import ServingScenario

from tests.unit.test_online import fake_path


def scenario_of(sizes, gap_s=0.01, sla_s=0.020):
    queries = [
        Query(index=i, size=s, arrival_s=i * gap_s) for i, s in enumerate(sizes)
    ]
    return ServingScenario(queries=QuerySet(queries=queries), sla_s=sla_s)


def slow_accurate():
    return fake_path("hybrid", GPU_V100, 85.0, 0.050, per_sample=0, label="HYB")


def fast_coarse():
    return fake_path("table", GPU_V100, 80.0, 0.004, per_sample=0, label="TBL")


def controller(resident_fast=False, **kwargs):
    paths = [slow_accurate(), fast_coarse()]
    if resident_fast:
        paths.reverse()
    kwargs.setdefault("load_s", 0.010)
    kwargs.setdefault("teardown_s", 0.002)
    return paths[0], SwitchController({GPU_V100.name: paths}, **kwargs)


def make_core(resident, ctrl):
    return EngineCore(StaticScheduler([resident]), NoShed(), switcher=ctrl)


class TestValidation:
    def test_rejects_empty_candidates(self):
        with pytest.raises(ValueError):
            SwitchController({})
        with pytest.raises(ValueError):
            SwitchController({GPU_V100.name: []})

    def test_rejects_candidate_on_wrong_device(self):
        with pytest.raises(ValueError, match="lives on"):
            SwitchController({CPU_BROADWELL.name: [fast_coarse()]})

    def test_rejects_bad_hysteresis(self):
        paths = {GPU_V100.name: [fast_coarse(), slow_accurate()]}
        with pytest.raises(ValueError):
            SwitchController(paths, lo_pressure=0.9, hi_pressure=0.5)
        with pytest.raises(ValueError):
            SwitchController(paths, patience=0)
        with pytest.raises(ValueError):
            SwitchController(paths, cooldown_s=-1.0)

    def test_attach_requires_single_resident_per_device(self):
        table, hybrid = fast_coarse(), slow_accurate()
        ctrl = SwitchController({GPU_V100.name: [table, hybrid]})
        with pytest.raises(ValueError, match="exactly one resident"):
            EngineCore(
                MultiPathScheduler([table, hybrid]), NoShed(), switcher=ctrl
            )

    def test_attach_requires_known_device(self):
        _, ctrl = controller()
        cpu_only = StaticScheduler([fake_path("table", CPU_BROADWELL, 80.0, 1e-3)])
        with pytest.raises(ValueError, match="not in the scheduler"):
            EngineCore(cpu_only, NoShed(), switcher=ctrl)


class TestHysteresis:
    """Drive observe() directly with synthetic pressures."""

    def surge(self, ctrl, core, loop, scenario, now, n=1):
        resident = core.scheduler.paths[0]
        for _ in range(n):
            ctrl.observe(core, resident, wait_s=1.0, batch_size=1,
                         scenario=scenario, now=now, loop=loop)

    def test_patience_gates_the_switch(self):
        resident, ctrl = controller(patience=3)
        core = make_core(resident, ctrl)
        loop, scenario = EventLoop(), scenario_of([1])
        self.surge(ctrl, core, loop, scenario, now=0.0, n=2)
        assert ctrl.events == []
        self.surge(ctrl, core, loop, scenario, now=0.0, n=1)
        assert len(ctrl.events) == 1
        assert ctrl.events[0].to_label == "TBL"

    def test_mid_band_pressure_resets_the_streak(self):
        resident, ctrl = controller(patience=2, hi_pressure=0.75,
                                    lo_pressure=0.25)
        core = make_core(resident, ctrl)
        loop, scenario = EventLoop(), scenario_of([1], sla_s=1.0)
        path = core.scheduler.paths[0]
        ctrl.observe(core, path, wait_s=0.9, batch_size=1,
                     scenario=scenario, now=0.0, loop=loop)  # surge 1/2
        ctrl.observe(core, path, wait_s=0.5, batch_size=1,
                     scenario=scenario, now=0.0, loop=loop)  # mid band: reset
        ctrl.observe(core, path, wait_s=0.9, batch_size=1,
                     scenario=scenario, now=0.0, loop=loop)  # surge 1/2 again
        assert ctrl.events == []

    def test_no_reevaluation_while_switching_or_cooling(self):
        resident, ctrl = controller(patience=1, cooldown_s=5.0)
        core = make_core(resident, ctrl)
        loop, scenario = EventLoop(), scenario_of([1])
        self.surge(ctrl, core, loop, scenario, now=0.0, n=1)
        assert len(ctrl.events) == 1
        # In-flight switch: pressure is ignored entirely.
        self.surge(ctrl, core, loop, scenario, now=0.01, n=5)
        assert len(ctrl.events) == 1
        ready = ctrl.events[0].ready_s
        ctrl.complete(core, GPU_V100.name, ready)
        # Cooldown window: still frozen.
        self.surge(ctrl, core, loop, scenario, now=ready + 1.0, n=5)
        assert len(ctrl.events) == 1

    def test_fully_shed_batches_still_signal_pressure(self):
        """A device drowning so hard that every batch is shed must still
        feed the controller — otherwise it could never switch away."""
        resident, ctrl = controller(patience=2, cooldown_s=10.0)
        sim = ServingSimulator(
            StaticScheduler([resident]), track_energy=False,
            shed_policy="deadline-aware", switch_controller=ctrl,
        )
        res = sim.run(scenario_of([1] * 8, gap_s=0.0))
        # The 50 ms resident can never meet the 20 ms SLA: every query is
        # shed, yet the controller still swaps in the feasible candidate.
        assert all(r.dropped for r in res.records[:2])
        assert len(ctrl.events) == 1
        assert ctrl.events[0].to_label == "TBL"

    def test_surge_extrapolates_samples_to_full_query_batch(self):
        """Surge judges candidates at the samples a *full query batch*
        would carry — batch_size counts samples, the cap counts queries."""
        table = fake_path("table", GPU_V100, 79.0, 3e-4, per_sample=8e-4,
                          label="TBL2")
        hybrid = fake_path("hybrid", GPU_V100, 81.0, 5.5e-3, per_sample=5e-5,
                           label="HYB2")  # crossover at ~7 samples
        ctrl = SwitchController(
            {GPU_V100.name: [table, hybrid]}, patience=1,
            load_s=0.01, teardown_s=0.0,
        )
        core = EngineCore(
            StaticScheduler([table]), NoShed(), max_batch_size=4,
            switcher=ctrl,
        )
        loop, scenario = EventLoop(), scenario_of([1], sla_s=0.010)
        # 3 queries carrying 6 samples; a full 4-query batch would carry 8
        # samples — past the crossover, so surge must pick the hybrid.
        ctrl.observe(core, table, wait_s=1.0, batch_size=6,
                     scenario=scenario, now=0.0, loop=loop, batch_queries=3)
        assert len(ctrl.events) == 1
        assert ctrl.events[0].to_label == "HYB2"

    def test_switch_posts_completion_event(self):
        resident, ctrl = controller(patience=1)
        core = make_core(resident, ctrl)
        loop, scenario = EventLoop(), scenario_of([1])
        self.surge(ctrl, core, loop, scenario, now=0.0, n=1)
        time, _, kind, payload = loop.pop()
        from repro.serving.engine import SWITCH

        assert kind == SWITCH
        assert payload == (core.node_id, GPU_V100.name)
        assert time == pytest.approx(ctrl.events[0].ready_s)


class TestTimelineCharging:
    def test_block_drains_committed_work_first(self):
        timeline = DeviceTimeline([slow_accurate()])
        timeline.commit(GPU_V100.name, 0, 0.5)
        ready = timeline.block(GPU_V100.name, now=0.1, duration_s=0.2)
        assert ready == pytest.approx(0.7)
        assert timeline.free_at[GPU_V100.name] == [pytest.approx(0.7)]

    def test_block_from_idle_starts_now(self):
        timeline = DeviceTimeline([slow_accurate()])
        ready = timeline.block(GPU_V100.name, now=1.0, duration_s=0.25)
        assert ready == pytest.approx(1.25)

    def test_switch_overhead_delays_next_batch(self):
        """A query dispatched right after the switch starts behind the
        load/teardown window — overhead is visible in its records."""
        resident, ctrl = controller(
            patience=1, cooldown_s=10.0, load_s=0.5, teardown_s=0.1,
        )
        sim = ServingSimulator(
            StaticScheduler([resident]), track_energy=False,
            switch_controller=ctrl,
        )
        # Backlog: queries at t=0 x3 queue on the 50 ms path, pressure
        # spikes, the controller swaps to TBL paying 0.6 s.
        res = sim.run(scenario_of([1] * 4, gap_s=0.0))
        assert len(ctrl.events) == 1
        ready = ctrl.events[0].ready_s
        assert ctrl.events[0].overhead_s == pytest.approx(0.6)
        post = [r for r in res.records if r.start_s >= ready]
        assert post, "some query must serve after the switch window"
        assert {r.path_label for r in post} == {"TBL"}

    def test_total_overhead_accumulates(self):
        resident, ctrl = controller(patience=1, cooldown_s=0.0)
        core = make_core(resident, ctrl)
        loop, scenario = EventLoop(), scenario_of([1])
        TestHysteresis().surge(ctrl, core, loop, scenario, now=0.0, n=1)
        assert ctrl.total_overhead_s == pytest.approx(0.012)


class TestSchedulerHooks:
    def test_default_hook_swaps_resident_path(self):
        table, hybrid = fast_coarse(), slow_accurate()
        sched = StaticScheduler([table])
        sched.on_switch_started(GPU_V100.name, table, hybrid, 0.0)
        assert sched.paths == [hybrid]

    def test_hook_rejects_non_resident_source(self):
        table, hybrid = fast_coarse(), slow_accurate()
        sched = StaticScheduler([table])
        with pytest.raises(ValueError, match="not resident"):
            sched.on_switch_started(GPU_V100.name, hybrid, table, 0.0)

    def test_records_carry_new_label_after_switch(self):
        resident, ctrl = controller(patience=1, cooldown_s=100.0)
        sim = ServingSimulator(
            StaticScheduler([resident]), track_energy=False,
            switch_controller=ctrl,
        )
        res = sim.run(scenario_of([1] * 8, gap_s=0.0))
        labels = {r.path_label for r in res.records}
        assert labels == {"HYB", "TBL"}  # both residencies served traffic


class TestCalmUpswitch:
    def test_drained_queues_switch_to_higher_accuracy(self):
        """The ISSUE's table->hybrid direction: idle pressure swaps in the
        higher-accuracy representation when it still fits the SLA."""
        table = fast_coarse()
        hybrid = fake_path("hybrid", GPU_V100, 85.0, 0.008, per_sample=0,
                           label="HYB-OK")
        ctrl = SwitchController(
            {GPU_V100.name: [table, hybrid]},
            patience=2, cooldown_s=0.0, load_s=0.001, teardown_s=0.0,
        )
        sim = ServingSimulator(
            StaticScheduler([table]), track_energy=False,
            switch_controller=ctrl,
        )
        res = sim.run(scenario_of([1] * 6, gap_s=0.5, sla_s=0.020))
        assert any(e.to_label == "HYB-OK" for e in ctrl.events)
        assert any(r.path_label == "HYB-OK" for r in res.records)

    def test_infeasible_accurate_path_not_chosen_when_calm(self):
        """Calm mode never swaps in a representation that cannot meet the
        SLA headroom (the 50 ms hybrid vs a 20 ms target)."""
        resident, ctrl = controller(resident_fast=True, patience=1,
                                    cooldown_s=0.0)
        sim = ServingSimulator(
            StaticScheduler([resident]), track_energy=False,
            switch_controller=ctrl,
        )
        sim.run(scenario_of([1] * 6, gap_s=0.5))
        assert ctrl.events == []


class TestDeterminism:
    def test_reused_simulator_reproduces_runs(self):
        resident, ctrl = controller(patience=1, cooldown_s=0.05)
        sim = ServingSimulator(
            StaticScheduler([resident]), track_energy=False,
            switch_controller=ctrl,
        )
        scenario = scenario_of([1] * 12, gap_s=0.002)
        first = sim.run(scenario)
        first_events = list(ctrl.events)
        second = sim.run(scenario)
        assert second.records == first.records
        assert ctrl.events == first_events

    def test_clone_is_stateless(self):
        _, ctrl = controller()
        core = make_core(slow_accurate(), ctrl.clone())
        assert ctrl.events == []
        assert core.switcher.events == []
        assert core.switcher is not ctrl


class TestClusterIntegration:
    def test_cluster_counts_switches_per_node(self):
        table, hybrid = fast_coarse(), slow_accurate()
        template = SwitchController(
            {GPU_V100.name: [hybrid, table]},
            patience=1, cooldown_s=10.0, load_s=0.010, teardown_s=0.002,
        )
        plan = greedy_shard([1000] * 4, 16, 2)
        sim = ClusterSimulator(
            StaticScheduler([slow_accurate()]), plan,
            router="round-robin", track_energy=False,
            switch_controller=template,
        )
        result = sim.run(scenario_of([1] * 40, gap_s=0.0))
        # Both nodes hit overload and switch independently.
        assert result.switches == 2
        assert result.switch_overhead_s == pytest.approx(0.024)
        # The template itself stays untouched.
        assert template.events == []
        assert "switches" in result.summary()

    def test_cluster_without_switching_reports_none(self):
        plan = greedy_shard([1000] * 4, 16, 2)
        sim = ClusterSimulator(
            StaticScheduler([fast_coarse()]), plan, track_energy=False
        )
        result = sim.run(scenario_of([1] * 10))
        assert result.switches == 0
        assert "switches" not in result.summary()


class TestOverheadEstimates:
    def test_estimates_scale_with_bytes_and_teardown_is_cheaper(self):
        from repro.core.profiler import make_path
        from repro.core.representations import paper_configs
        from repro.models.configs import KAGGLE

        configs = paper_configs(KAGGLE)
        table = make_path(configs["table"], KAGGLE, GPU_V100, 78.8)
        dhe = make_path(configs["dhe"], KAGGLE, GPU_V100, 78.9)
        assert estimate_load_s(table) > estimate_load_s(dhe)  # far more bytes
        assert estimate_teardown_s(table) < estimate_load_s(table)
        ctrl = SwitchController({GPU_V100.name: [table, dhe]})
        assert ctrl.switch_overhead_s(table, dhe) == pytest.approx(
            estimate_load_s(dhe) + estimate_teardown_s(table)
        )
