import numpy as np
import pytest

from repro.embeddings.costs import (
    decoder_params,
    dhe_bytes,
    dhe_flops_per_lookup,
    embedding_bytes,
    embedding_flops,
    table_bytes,
)
from repro.embeddings.dhe import DHEEmbedding
from repro.models.configs import KAGGLE, TERABYTE


class TestTableBytes:
    def test_simple(self):
        assert table_bytes(100, 16) == 100 * 16 * 4

    def test_kaggle_baseline_matches_paper(self):
        # Paper Table 3: Kaggle table baseline = 2.16 GB at dim 16.
        total = sum(table_bytes(rows, 16) for rows in KAGGLE.cardinalities)
        assert abs(total / 1e9 - 2.16) < 0.01

    def test_terabyte_baseline_matches_paper(self):
        # Paper Table 3: Terabyte table baseline = 12.58 GB at dim 64.
        total = sum(table_bytes(rows, 64) for rows in TERABYTE.cardinalities)
        assert abs(total / 1e9 - 12.58) < 0.01


class TestDecoderCosts:
    def test_params_match_live_module(self, rng):
        emb = DHEEmbedding(dim=6, k=16, dnn=24, h=2, rng=rng)
        assert decoder_params(16, 24, 2, 6) == emb.decoder.num_parameters()

    def test_bytes_is_4x_params(self):
        assert dhe_bytes(16, 24, 2, 6) == 4 * decoder_params(16, 24, 2, 6)

    def test_flops_match_live_module(self, rng):
        emb = DHEEmbedding(dim=6, k=16, dnn=24, h=2, rng=rng)
        assert dhe_flops_per_lookup(16, 24, 2, 6) == emb.flops_per_lookup()

    def test_flops_grow_with_k(self):
        assert dhe_flops_per_lookup(64, 32, 1, 8) > dhe_flops_per_lookup(8, 32, 1, 8)


class TestEmbeddingBytes:
    CARDS = [100, 1000, 10]

    def test_table(self):
        assert embedding_bytes("table", self.CARDS, 8) == 1110 * 8 * 4

    def test_dhe_independent_of_cardinalities(self):
        a = embedding_bytes("dhe", [10, 10], 8, k=16, dnn=8, h=1)
        b = embedding_bytes("dhe", [10**7, 10**7], 8, k=16, dnn=8, h=1)
        assert a == b

    def test_dhe_shared_decoder_divides(self):
        per_feature = embedding_bytes("dhe", self.CARDS, 8, k=16, dnn=8, h=1)
        shared = embedding_bytes(
            "dhe", self.CARDS, 8, k=16, dnn=8, h=1, shared_decoder=True
        )
        assert per_feature == 3 * shared

    def test_select_splits(self):
        full_table = embedding_bytes("table", self.CARDS, 8)
        sel = embedding_bytes(
            "select", self.CARDS, 8, k=16, dnn=8, h=1, dhe_features=[1]
        )
        # Replaced the 1000-row table with one decoder stack.
        expected = full_table - 1000 * 8 * 4 + dhe_bytes(16, 8, 1, 8)
        assert sel == expected

    def test_hybrid_adds_tables_and_stacks(self):
        hyb = embedding_bytes(
            "hybrid", self.CARDS, 12, k=16, dnn=8, h=1, table_dim=8, dhe_dim=4
        )
        expected = 1110 * 8 * 4 + 3 * dhe_bytes(16, 8, 1, 4)
        assert hyb == expected

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            embedding_bytes("tt-rec", self.CARDS, 8)


class TestEmbeddingFlops:
    def test_table_zero(self):
        assert embedding_flops("table", 26, 16) == 0

    def test_dhe_scales_with_features(self):
        one = embedding_flops("dhe", 1, 16, k=32, dnn=16, h=1)
        many = embedding_flops("dhe", 26, 16, k=32, dnn=16, h=1)
        assert many == 26 * one

    def test_select_counts_only_dhe_features(self):
        sel = embedding_flops("select", 26, 16, k=32, dnn=16, h=1, n_dhe_features=3)
        assert sel == 3 * dhe_flops_per_lookup(32, 16, 1, 16)

    def test_hybrid_uses_dhe_dim(self):
        hyb = embedding_flops("hybrid", 2, 24, k=32, dnn=16, h=1, dhe_dim=8)
        assert hyb == 2 * dhe_flops_per_lookup(32, 16, 1, 8)
