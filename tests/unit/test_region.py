"""Unit tests for the geo tier: WAN pricing, geo-routing, regions, CLI."""

import numpy as np
import pytest

from repro.analysis.sharding import greedy_shard
from repro.cli import main
from repro.data.queries import (
    generate_query_arrays,
    merge_query_arrays,
)
from repro.experiments.setup import (
    build_cluster,
    build_regions,
    follow_the_sun_scenario,
)
from repro.models.configs import KAGGLE
from repro.serving.cluster import ClusterSimulator, ShardMap
from repro.serving.region import (
    PinnedGeoRouter,
    RegionSimulator,
    SpillGeoRouter,
    make_geo_router,
)
from repro.serving.wan import (
    QUERY_WAN_BYTES,
    WAN_INTERCONT_LINK,
    WAN_METRO_LINK,
    WAN_TRANSCON_LINK,
    WanLink,
    resolve_wan_link,
)
from repro.hardware.topology import WAN_METRO

from tests.property.test_prop_engine_parity import build_scheduler

INF = float("inf")


def small_scheduler():
    return build_scheduler("static")


def tiny_scenario(**kwargs):
    defaults = dict(n_regions=2, n_queries=120, qps=2500.0, seed=7)
    defaults.update(kwargs)
    return follow_the_sun_scenario(**defaults)


# ---- WAN link math -------------------------------------------------------


class TestWanLink:
    def test_one_way_is_latency_plus_serialization(self):
        link = WAN_METRO_LINK
        nbytes = 1_000_000
        expected = link.spec.latency_s + nbytes / link.spec.bandwidth
        assert link.one_way_s(nbytes) == pytest.approx(expected)

    def test_rtt_adds_pure_return_latency(self):
        link = WAN_TRANSCON_LINK
        assert link.rtt_s(4096) == pytest.approx(
            link.one_way_s(4096) + link.latency_s
        )

    def test_cost_is_linear_and_zero_floor(self):
        link = WAN_INTERCONT_LINK
        assert link.cost_j(0) == 0.0
        assert link.cost_j(-5) == 0.0
        assert link.cost_j(2e6) == pytest.approx(2 * link.cost_j(1e6))

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError, match="cost_per_byte_j"):
            WanLink(spec=WAN_METRO, cost_per_byte_j=-1e-9)

    def test_link_classes_are_ordered(self):
        # Faster links are cheaper: metro < transcon < intercont in both
        # latency and per-byte price.
        links = [WAN_METRO_LINK, WAN_TRANSCON_LINK, WAN_INTERCONT_LINK]
        latencies = [link.latency_s for link in links]
        prices = [link.cost_per_byte_j for link in links]
        assert latencies == sorted(latencies)
        assert prices == sorted(prices)

    def test_resolve_accepts_names_and_instances(self):
        assert resolve_wan_link("wan-metro") is WAN_METRO_LINK
        assert resolve_wan_link(WAN_INTERCONT_LINK) is WAN_INTERCONT_LINK
        with pytest.raises(ValueError, match="wan-metro"):
            resolve_wan_link("wan-carrier-pigeon")


# ---- geo routers ---------------------------------------------------------


class TestGeoRouters:
    def test_pinned_always_home(self):
        router = PinnedGeoRouter()
        assert router.select_region(2, [0.0, 0.0, 9.9], 0.01, 0.05) == 2

    def test_spill_stays_home_within_margin(self):
        router = SpillGeoRouter(spill_margin=0.5)
        # Home wait 0.02 <= 0.5 * 0.05: stay, even with an idle remote.
        assert router.select_region(0, [0.02, 0.0], 0.001, 0.05) == 0

    def test_spill_picks_cheapest_remote(self):
        router = SpillGeoRouter(spill_margin=0.0)
        # Home loaded; remote 2 is idler than remote 1 after the RTT.
        assert router.select_region(0, [0.10, 0.05, 0.01], 0.001, 0.01) == 2

    def test_spill_ties_break_to_lowest_region_id(self):
        router = SpillGeoRouter(spill_margin=0.0)
        assert router.select_region(2, [0.01, 0.01, 0.10], 0.001, 0.01) == 0

    def test_spill_degrades_to_home_when_unprofitable(self):
        router = SpillGeoRouter(spill_margin=0.0)
        # Remote wait + RTT never strictly beats waiting at home.
        assert router.select_region(0, [0.01, 0.01], 0.05, 0.001) == 0

    def test_spill_skips_failed_regions(self):
        router = SpillGeoRouter(spill_margin=0.0)
        assert router.select_region(0, [0.10, INF, 0.01], 0.001, 0.01) == 2

    def test_spill_margin_validation(self):
        with pytest.raises(ValueError, match="spill_margin"):
            SpillGeoRouter(spill_margin=-0.1)

    def test_make_geo_router(self):
        assert make_geo_router("pinned").name == "pinned"
        assert make_geo_router("spill", 0.25).spill_margin == 0.25
        router = PinnedGeoRouter()
        assert make_geo_router(router) is router
        with pytest.raises(ValueError, match="pinned"):
            make_geo_router("teleport")


# ---- construction and validation -----------------------------------------


class TestRegionValidation:
    def plain(self, node_base=0, **kwargs):
        plan = greedy_shard([1000, 2000, 500], 16, 1)
        return ClusterSimulator(
            small_scheduler(), plan, node_base=node_base, **kwargs
        )

    def test_rejects_empty_and_duplicate_names(self):
        with pytest.raises(ValueError, match="at least one region"):
            RegionSimulator([])
        with pytest.raises(ValueError, match="unique"):
            RegionSimulator([("a", self.plain()), ("a", self.plain(1))])

    def test_rejects_non_contiguous_node_base(self):
        with pytest.raises(ValueError, match="node_base"):
            RegionSimulator([("a", self.plain()), ("b", self.plain(5))])

    def test_rejects_member_with_failure_injection(self):
        with pytest.raises(ValueError, match="plain"):
            RegionSimulator([("a", self.plain(fail_at=(0, 1.0)))])

    def test_rejects_bad_replication(self):
        members = [("a", self.plain()), ("b", self.plain(1))]
        with pytest.raises(ValueError, match="region_replication"):
            RegionSimulator(members, region_replication=3)
        with pytest.raises(ValueError, match="region_replication"):
            RegionSimulator(
                [("a", self.plain())], region_replication=0
            )

    def test_fail_flags_go_together_and_are_ranged(self):
        members = [("a", self.plain()), ("b", self.plain(1))]
        with pytest.raises(ValueError, match="go together"):
            RegionSimulator(members, fail_region=0)
        with pytest.raises(ValueError, match="go together"):
            RegionSimulator(members, fail_at=1.0)
        with pytest.raises(ValueError, match="out of range"):
            RegionSimulator(members, fail_region=2, fail_at=1.0)
        with pytest.raises(ValueError, match="non-negative"):
            RegionSimulator(members, fail_region=0, fail_at=-1.0)

    def test_rejects_bad_byte_knobs(self):
        member = [("a", self.plain())]
        with pytest.raises(ValueError, match="bytes_per_query"):
            RegionSimulator(member, bytes_per_query=0)
        with pytest.raises(ValueError, match="region_cache_bytes"):
            RegionSimulator(member, region_cache_bytes=-1)

    def test_region_of_must_match_queries(self):
        scenario, _ = tiny_scenario()
        sim = build_regions(KAGGLE, 2)
        with pytest.raises(ValueError, match="entries"):
            sim.run(scenario, [0, 1])
        with pytest.raises(ValueError, match="region ids"):
            sim.run(scenario, [9] * len(scenario.queries))

    def test_offset_cluster_cannot_run_standalone(self):
        scenario, _ = tiny_scenario(n_regions=1)
        with pytest.raises(ValueError, match="RegionSimulator"):
            self.plain(node_base=1).run(scenario)

    def test_node_base_rejects_cluster_controllers(self):
        plan = greedy_shard([1000, 2000, 500], 16, 1)
        with pytest.raises(ValueError, match="region fleet"):
            ClusterSimulator(
                small_scheduler(), plan, node_base=1, fail_at=(0, 1.0)
            )
        with pytest.raises(ValueError, match="non-negative"):
            ClusterSimulator(small_scheduler(), plan, node_base=-1)


# ---- geo accounting -------------------------------------------------------


class TestGeoAccounting:
    def test_pinned_pays_zero_wan(self):
        scenario, region_of = tiny_scenario()
        res = build_regions(KAGGLE, 2, geo_router="pinned").run(
            scenario, region_of
        )
        assert res.spills == 0 and res.rehomed == 0
        assert res.wan_bytes == 0
        assert res.wan_cost_j == 0.0
        assert len(res.result.records) == len(scenario.queries)

    def test_spill_byte_identities(self):
        scenario, region_of = tiny_scenario(n_regions=3, qps=2000.0)
        sim = build_regions(KAGGLE, 3, geo_router="spill")
        res = sim.run(scenario, region_of)
        assert res.spills > 0
        assert res.spill_bytes == res.spills * sim.bytes_per_query
        assert res.rehome_bytes == res.rehomed * sim.bytes_per_query
        assert res.wan_bytes == (
            res.spill_bytes + res.rehome_bytes + res.wan_fill_bytes
        )
        assert res.wan_cost_j == pytest.approx(
            res.wan_bytes * sim.wan.cost_per_byte_j
        )
        assert res.total_cost_j >= res.result.total_energy_j + res.wan_cost_j

    def test_wan_fill_conserved_through_region_cache(self):
        scenario, region_of = tiny_scenario(n_regions=3, qps=2000.0)
        sim = build_regions(
            KAGGLE, 3, geo_router="spill", region_cache_bytes=1 << 20
        )
        res = sim.run(scenario, region_of)
        assert res.region_cache is not None
        # Every WAN fill byte is a region-cache miss, and nothing else
        # fills the WAN tier: the meters must agree exactly.
        assert res.wan_fill_bytes == res.region_cache.fill_bytes
        assert res.region_cache.lookups == (
            res.region_cache.hits + res.region_cache.misses
        )
        assert res.spills > 0 and res.region_cache.hits > 0

    def test_one_region_matches_cluster(self):
        scenario, region_of = tiny_scenario(n_regions=1)
        cluster = build_cluster(KAGGLE, 2)
        member = build_cluster(KAGGLE, 2)
        geo = RegionSimulator([("solo", member)], geo_router="spill")
        expected = cluster.run(scenario).result.records
        got = geo.run(scenario, region_of).result.records
        key = lambda r: r.index  # noqa: E731
        assert sorted(got, key=key) == sorted(expected, key=key)

    def test_failover_replication_two_loses_nothing(self):
        scenario, region_of = tiny_scenario(n_regions=3, qps=1500.0)
        fail_at = scenario.queries[len(scenario.queries) // 3].arrival_s
        res = build_regions(
            KAGGLE, 3, region_replication=2, fail_region=1, fail_at=fail_at,
        ).run(scenario, region_of)
        assert res.failed_regions == [1]
        assert res.lost == 0
        assert res.rehomed > 0
        assert len(res.result.records) == len(scenario.queries)

    def test_failover_replication_one_bleeds(self):
        scenario, region_of = tiny_scenario(n_regions=3, qps=1500.0)
        fail_at = scenario.queries[len(scenario.queries) // 3].arrival_s
        res = build_regions(
            KAGGLE, 3, region_replication=1, fail_region=1, fail_at=fail_at,
        ).run(scenario, region_of)
        assert res.lost > 0
        assert res.rehomed == 0
        # Dropped, not vanished: the global record set stays complete.
        assert len(res.result.records) == len(scenario.queries)

    def test_summary_vocabulary(self):
        scenario, region_of = tiny_scenario()
        res = build_regions(
            KAGGLE, 2, region_names=["east", "west"]
        ).run(scenario, region_of)
        summary = res.summary()
        for key in ("spills", "rehomed", "lost", "edge_drops", "wan_mb",
                    "wan_cost_j", "total_cost_j", "viol_east", "viol_west"):
            assert key in summary

    def test_streaming_matches_record_counts(self):
        scenario, region_of = tiny_scenario()
        sim = build_regions(KAGGLE, 2)
        exact = sim.run(scenario, region_of)
        stream = build_regions(KAGGLE, 2).run_streaming(scenario, region_of)
        assert stream.result.n == len(scenario.queries)
        assert stream.result.violation_rate == pytest.approx(
            exact.result.violation_rate
        )


# ---- supporting seams -----------------------------------------------------


class TestSupportingSeams:
    def test_shard_map_node_base_offsets_owners(self):
        plan = greedy_shard([1000, 2000, 500], 16, 2)
        base0 = ShardMap.from_plan(plan, replication=2)
        base4 = ShardMap.from_plan(plan, replication=2, node_base=4)
        for g, owners in enumerate(base0.owners):
            assert base4.owners[g] == frozenset(o + 4 for o in owners)
        for local in range(base0.n_nodes):
            assert base0.cold_remote_bytes_per_sample(local) == (
                base4.cold_remote_bytes_per_sample(local + 4)
            )

    def test_merge_query_arrays_is_a_stable_reindexed_merge(self):
        streams = [
            generate_query_arrays(
                50, qps=500.0, seed=s, tenant=f"t{s}",
                process="diurnal", phase_s=s * 3.0,
            )
            for s in range(3)
        ]
        merged, source = merge_query_arrays(streams)
        assert len(merged.arrival_s) == 150
        assert list(merged.index) == list(range(150))
        assert np.all(np.diff(merged.arrival_s) >= 0)
        assert sorted(set(source.tolist())) == [0, 1, 2]
        assert {t for t in merged.tenants if t} == {"t0", "t1", "t2"}
        again, source2 = merge_query_arrays(streams)
        assert np.array_equal(merged.arrival_s, again.arrival_s)
        assert np.array_equal(source, source2)

    def test_diurnal_phase_shifts_the_peak(self):
        base = generate_query_arrays(
            200, qps=1000.0, seed=1, process="diurnal", period_s=10.0,
        )
        shifted = generate_query_arrays(
            200, qps=1000.0, seed=1, process="diurnal", period_s=10.0,
            phase_s=5.0,
        )
        assert not np.array_equal(base.arrival_s, shifted.arrival_s)

    def test_follow_the_sun_region_of_parallels_queries(self):
        scenario, region_of = follow_the_sun_scenario(
            n_regions=3, n_queries=60, qps=600.0
        )
        assert len(region_of) == len(scenario.queries) == 180
        assert sorted(set(int(r) for r in region_of)) == [0, 1, 2]
        arrivals = [q.arrival_s for q in scenario.queries]
        assert arrivals == sorted(arrivals)


# ---- CLI hygiene ----------------------------------------------------------


class TestGeoCli:
    def test_geo_flags_require_regions(self, capsys):
        assert main(["serve", "--wan-link", "wan-metro"]) == 2
        assert "--regions" in capsys.readouterr().err
        assert main(["serve", "--geo-router", "spill"]) == 2
        assert "--regions" in capsys.readouterr().err

    def test_regions_requires_nodes(self, capsys):
        assert main(["serve", "--regions", "2"]) == 2
        assert "--nodes" in capsys.readouterr().err

    def test_regions_rejects_single_cluster_controllers(self, capsys):
        base = ["serve", "--regions", "2", "--nodes", "1"]
        assert main(base + ["--fastpath"]) == 2
        assert "--regions" in capsys.readouterr().err
        assert main(base + ["--autoscale"]) == 2
        assert "--regions" in capsys.readouterr().err
        assert main(base + ["--fail-at", "0.5"]) == 2
        assert "--regions" in capsys.readouterr().err

    def test_region_fail_flag_hygiene(self, capsys):
        base = ["serve", "--regions", "2", "--nodes", "1"]
        assert main(base + ["--region-fail-at", "-1", "--fail-region", "0"]) == 2
        assert "--region-fail-at" in capsys.readouterr().err
        assert main(base + ["--region-fail-at", "0.5"]) == 2
        assert "--fail-region" in capsys.readouterr().err
        assert main(base + ["--fail-region", "5", "--region-fail-at", "1"]) == 2
        assert "--fail-region" in capsys.readouterr().err

    def test_region_replication_bounded_by_regions(self, capsys):
        assert main([
            "serve", "--regions", "2", "--nodes", "1",
            "--region-replication", "3",
        ]) == 2
        assert "--region-replication" in capsys.readouterr().err

    def test_geo_serve_smoke(self, capsys):
        code = main([
            "serve", "--dataset", "kaggle", "--regions", "2", "--nodes", "1",
            "--queries", "80", "--qps", "2000", "--sla-ms", "50",
            "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "geo fleet" in out
        assert "WAN traffic" in out
