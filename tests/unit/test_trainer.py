import numpy as np
import pytest

from repro.data.synthetic import SyntheticCTRDataset
from repro.models.dlrm import build_dlrm
from repro.nn.optim import Adagrad
from repro.training.trainer import Trainer


@pytest.fixture
def setup(small_config, rng):
    model = build_dlrm(small_config, "table", rng)
    dataset = SyntheticCTRDataset(small_config, seed=0)
    return model, dataset


class TestTrainer:
    def test_loss_decreases(self, setup):
        model, dataset = setup
        trainer = Trainer(model, dataset, lr=0.1)
        result = trainer.train(n_steps=60, batch_size=128, eval_samples=512)
        early = np.mean(result.losses[:10])
        late = np.mean(result.losses[-10:])
        assert late < early

    def test_learns_better_than_chance(self, setup):
        model, dataset = setup
        trainer = Trainer(model, dataset, lr=0.1)
        result = trainer.train(n_steps=150, batch_size=128, eval_samples=4096)
        assert result.eval_auc > 0.55

    def test_custom_optimizer(self, setup):
        model, dataset = setup
        trainer = Trainer(
            model, dataset, optimizer=Adagrad(model.parameters(), lr=0.05)
        )
        result = trainer.train(n_steps=30, batch_size=64, eval_samples=512)
        assert np.isfinite(result.final_loss)

    def test_evaluate_keys(self, setup):
        model, dataset = setup
        metrics = Trainer(model, dataset).evaluate(n_samples=600)
        assert set(metrics) == {"accuracy", "auc", "logloss"}
        assert 0 <= metrics["accuracy"] <= 1

    def test_result_final_loss_empty(self):
        from repro.training.trainer import TrainResult

        assert np.isnan(TrainResult().final_loss)

    def test_single_step_returns_scalar(self, setup):
        model, dataset = setup
        trainer = Trainer(model, dataset, lr=0.05)
        loss = trainer.train_step(dataset.sample_batch(32))
        assert np.isfinite(loss) and loss > 0
