"""Multi-chip latency semantics: data-split, replicated, pipeline, sharded."""

from dataclasses import replace

import pytest

from repro.core.representations import paper_configs
from repro.hardware.catalog import IPU_GC200, IPU_M2000, IPU_POD16, TPU_V3_BOARD
from repro.hardware.latency import estimate_breakdown
from repro.hardware.topology import scale_out
from repro.models.configs import KAGGLE, TERABYTE

CFGS = paper_configs(KAGGLE)


class TestDataSplit:
    def test_splitting_batch_reduces_compute_time(self):
        """'data' parallelism divides one query's batch across chips."""
        split = replace(IPU_POD16, parallelism="data", replicas=1)
        whole = replace(IPU_POD16, parallelism="replicated", replicas=16)
        dhe = CFGS["dhe"]
        bd_split = estimate_breakdown(dhe, KAGGLE, split, 4096)
        bd_whole = estimate_breakdown(dhe, KAGGLE, whole, 4096)
        assert bd_split.decoder < bd_whole.decoder


class TestReplicated:
    def test_latency_independent_of_replica_count(self):
        """Replication buys concurrency, not per-query latency."""
        four = estimate_breakdown(CFGS["dhe"], KAGGLE, TPU_V3_BOARD, 256).total
        one = estimate_breakdown(
            CFGS["dhe"], KAGGLE,
            replace(TPU_V3_BOARD, n_chips=1, replicas=1, parallelism="single",
                    peak_flops=TPU_V3_BOARD.peak_flops / 4,
                    dram_bandwidth=TPU_V3_BOARD.dram_bandwidth / 4,
                    dram_capacity=TPU_V3_BOARD.dram_capacity // 4,
                    sram_capacity=TPU_V3_BOARD.sram_capacity // 4,
                    sram_bandwidth=TPU_V3_BOARD.sram_bandwidth / 4),
            256,
        ).total
        assert four == pytest.approx(one, rel=1e-9)

    def test_concurrency_exposed(self):
        assert TPU_V3_BOARD.concurrency == 4
        assert IPU_POD16.concurrency == 16


class TestPipeline:
    def test_pipeline_uses_aggregate_sram(self):
        """A 2.16 GB table spills one chip's 900 MB but fits a 4-chip
        board's 3.6 GB pipeline, avoiding the Streaming Memory cliff."""
        table = CFGS["table"]
        chip = estimate_breakdown(table, KAGGLE, IPU_GC200, 256)
        board = estimate_breakdown(table, KAGGLE, IPU_M2000, 256)
        assert board.embedding < chip.embedding / 5


class TestSharded:
    def test_comm_grows_with_batch(self):
        sharded = replace(IPU_POD16, parallelism="sharded", replicas=1)
        table = paper_configs(TERABYTE)["table"]
        small = estimate_breakdown(table, TERABYTE, sharded, 128).comm
        large = estimate_breakdown(table, TERABYTE, sharded, 1024).comm
        assert large > small > 0

    def test_single_chip_sharded_has_no_comm(self):
        solo = replace(
            IPU_GC200, parallelism="sharded", replicas=1, n_chips=1
        )
        bd = estimate_breakdown(CFGS["table"], KAGGLE, solo, 256)
        assert bd.comm == 0.0


class TestScaleOutHelper:
    def test_replicated_scale_out_concurrency(self):
        pod = scale_out(IPU_GC200, 8, "replicated")
        assert pod.concurrency == 8
        assert pod.peak_flops == 8 * IPU_GC200.peak_flops

    def test_scaled_latency_matches_single_chip_for_replicated(self):
        pod = scale_out(IPU_GC200, 8, "replicated")
        chip = estimate_breakdown(CFGS["dhe"], KAGGLE, IPU_GC200, 128).total
        scaled = estimate_breakdown(CFGS["dhe"], KAGGLE, pod, 128).total
        assert scaled == pytest.approx(chip, rel=0.01)