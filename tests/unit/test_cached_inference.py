import numpy as np
import pytest

from repro.core.cached_inference import CachedDHE
from repro.core.mp_cache import DecoderCentroidCache, EncoderCache
from repro.data.zipf import ZipfSampler
from repro.embeddings.dhe import DHEEmbedding


@pytest.fixture
def dhe(rng):
    return DHEEmbedding(dim=8, k=32, dnn=32, h=1, rng=rng)


@pytest.fixture
def sampler():
    return ZipfSampler(5000, alpha=1.2, seed=3)


class TestCachedDHE:
    def test_uncached_matches_exact(self, dhe, sampler):
        cached = CachedDHE(dhe)
        ids = sampler.sample(64)
        np.testing.assert_allclose(cached.generate(ids), cached.exact(ids))

    def test_encoder_hits_are_exact(self, dhe, sampler):
        cached = CachedDHE(dhe, encoder_cache=EncoderCache(64 * 1024, 8))
        cached.warm(sampler)
        hot = sampler.hottest(10)
        np.testing.assert_allclose(cached.generate(hot), dhe(hot))

    def test_decoder_tier_approximates(self, dhe, sampler):
        cached = CachedDHE(dhe, decoder_cache=DecoderCentroidCache(128, seed=0))
        cached.warm(sampler, profile_samples=1000)
        ids = sampler.sample(200)
        err = cached.approximation_error(ids)
        assert 0 <= err < 1.0

    def test_more_centroids_lower_error(self, dhe, sampler):
        errs = []
        for n in (4, 256):
            cached = CachedDHE(dhe, decoder_cache=DecoderCentroidCache(n, seed=0))
            cached.warm(sampler, profile_samples=1000)
            errs.append(cached.approximation_error(sampler.sample(500)))
        assert errs[1] < errs[0]

    def test_both_tiers_together(self, dhe, sampler):
        cached = CachedDHE(
            dhe,
            encoder_cache=EncoderCache(16 * 1024, 8),
            decoder_cache=DecoderCentroidCache(64, seed=0),
        )
        cached.warm(sampler, profile_samples=1000)
        ids = sampler.sample(300)
        out = cached.generate(ids)
        assert out.shape == (300, 8)
        assert cached.encoder_cache.observed_hit_rate > 0.1

    def test_output_shape_for_empty_misses(self, dhe, sampler):
        """All-hit batches must not call the decoder path."""
        cached = CachedDHE(dhe, encoder_cache=EncoderCache(64 * 1024, 8))
        cached.warm(sampler)
        hot = sampler.hottest(5)
        assert cached.generate(hot).shape == (5, 8)
