import numpy as np
import pytest

from repro.training.metrics import accuracy, log_loss, roc_auc


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([0.9, 0.1]), np.array([1.0, 0.0])) == 1.0

    def test_all_wrong(self):
        assert accuracy(np.array([0.9, 0.1]), np.array([0.0, 1.0])) == 0.0

    def test_threshold(self):
        probs = np.array([0.4, 0.6])
        labels = np.array([1.0, 1.0])
        assert accuracy(probs, labels, threshold=0.5) == 0.5
        assert accuracy(probs, labels, threshold=0.3) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(3), np.zeros(4))


class TestRocAuc:
    def test_perfect_ranking(self):
        probs = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([0, 0, 1, 1])
        assert roc_auc(probs, labels) == 1.0

    def test_inverted_ranking(self):
        probs = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([0, 0, 1, 1])
        assert roc_auc(probs, labels) == 0.0

    def test_random_is_half(self, rng):
        probs = rng.random(20_000)
        labels = (rng.random(20_000) > 0.5).astype(int)
        assert abs(roc_auc(probs, labels) - 0.5) < 0.02

    def test_ties_averaged(self):
        probs = np.array([0.5, 0.5, 0.5, 0.5])
        labels = np.array([0, 1, 0, 1])
        assert roc_auc(probs, labels) == 0.5

    def test_matches_slow_reference(self, rng):
        probs = rng.random(200)
        labels = (rng.random(200) > 0.7).astype(int)
        pos = probs[labels == 1]
        neg = probs[labels == 0]
        wins = sum((p > n) + 0.5 * (p == n) for p in pos for n in neg)
        reference = wins / (len(pos) * len(neg))
        np.testing.assert_allclose(roc_auc(probs, labels), reference)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([0.1, 0.9]), np.array([1, 1]))


class TestLogLoss:
    def test_perfect_near_zero(self):
        loss = log_loss(np.array([0.999999, 1e-6]), np.array([1.0, 0.0]))
        assert loss < 1e-4

    def test_uncertain_is_log2(self):
        loss = log_loss(np.full(10, 0.5), (np.arange(10) % 2).astype(float))
        np.testing.assert_allclose(loss, np.log(2))

    def test_clipping_avoids_inf(self):
        loss = log_loss(np.array([0.0, 1.0]), np.array([1.0, 0.0]))
        assert np.isfinite(loss)
