import numpy as np
import pytest

from repro.core.online import StaticScheduler
from repro.data.queries import Query, QuerySet
from repro.serving.simulator import ServingSimulator
from repro.serving.workload import ServingScenario

from tests.unit.test_online import fake_path
from repro.hardware.catalog import CPU_BROADWELL


def overload_scenario(n=20, service=0.05, sla=0.01):
    """All queries arrive at t=0 onto a device that serves one per 50 ms."""
    queries = [Query(index=i, size=10, arrival_s=0.0) for i in range(n)]
    return ServingScenario(queries=QuerySet(queries=queries), sla_s=sla)


def slow_path(service=0.05):
    return fake_path("table", CPU_BROADWELL, 80.0, service, per_sample=0.0)


class TestDropLatePolicy:
    def test_drops_backlogged_queries(self):
        sim = ServingSimulator(
            StaticScheduler([slow_path()]), track_energy=False,
            shed_policy="drop-late",
        )
        result = sim.run(overload_scenario())
        assert result.drop_rate > 0.5
        served = [r for r in result.records if not r.dropped]
        # Served queries never started after waiting past the SLA.
        for record in served:
            assert record.start_s - record.arrival_s <= 0.01 + 0.05

    def test_dropped_queries_count_as_violations_not_correct(self):
        sim = ServingSimulator(
            StaticScheduler([slow_path()]), track_energy=False,
            shed_policy="drop-late",
        )
        result = sim.run(overload_scenario())
        dropped = [r for r in result.records if r.dropped]
        assert dropped
        assert all(r.correct_samples == 0.0 for r in dropped)
        assert result.violation_rate >= result.drop_rate

    def test_no_policy_serves_everything(self):
        sim = ServingSimulator(StaticScheduler([slow_path()]), track_energy=False)
        result = sim.run(overload_scenario())
        assert result.drop_rate == 0.0
        assert len([r for r in result.records if not r.dropped]) == 20

    def test_underloaded_system_drops_nothing(self):
        queries = [Query(index=i, size=10, arrival_s=i * 1.0) for i in range(5)]
        scenario = ServingScenario(queries=QuerySet(queries=queries), sla_s=0.1)
        sim = ServingSimulator(
            StaticScheduler([slow_path()]), track_energy=False,
            shed_policy="drop-late",
        )
        assert sim.run(scenario).drop_rate == 0.0

    def test_shedding_raises_compliant_throughput_under_overload(self):
        """Shedding sacrifices raw samples to answer the rest on time."""
        scenario = overload_scenario(n=40)
        keep = ServingSimulator(
            StaticScheduler([slow_path()]), track_energy=False
        ).run(scenario)
        shed = ServingSimulator(
            StaticScheduler([slow_path()]), track_energy=False,
            shed_policy="drop-late",
        ).run(scenario)
        assert shed.compliant_correct_throughput >= keep.compliant_correct_throughput

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ServingSimulator(StaticScheduler([slow_path()]), shed_policy="random")

    def test_dropped_queries_excluded_from_latency_percentiles(self):
        """Regression: shed queries carry finish == arrival, and their 0 s
        'latencies' used to drag p50/p95/p99 *down* as load increased."""
        sim = ServingSimulator(
            StaticScheduler([slow_path()]), track_energy=False,
            shed_policy="drop-late",
        )
        result = sim.run(overload_scenario())
        assert result.drop_rate > 0.5
        served_latencies = [r.latency_s for r in result.records if not r.dropped]
        # Every percentile sits inside the served-latency envelope — none
        # can fall below the 50 ms service floor the device imposes.
        for q in (50, 95, 99):
            p = result.latency_percentile(q)
            assert min(served_latencies) <= p <= max(served_latencies)
            assert p >= 0.05

    def test_heavier_shedding_does_not_deflate_tail(self):
        """The old skew in one assertion: under drop-late, p99 must not be
        *better* than the same system serving everything."""
        scenario = overload_scenario(n=40)
        keep = ServingSimulator(
            StaticScheduler([slow_path()]), track_energy=False
        ).run(scenario)
        shed = ServingSimulator(
            StaticScheduler([slow_path()]), track_energy=False,
            shed_policy="drop-late",
        ).run(scenario)
        assert shed.p50_latency_s >= 0.05
        # Shedding keeps served latencies bounded near the SLA + service
        # time, but never reports a tail below one service interval.
        assert keep.p99_latency_s >= shed.p99_latency_s >= 0.05
