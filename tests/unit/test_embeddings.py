import numpy as np
import pytest

from repro.embeddings import (
    DHEEmbedding,
    EmbeddingCollection,
    HybridEmbedding,
    SelectEmbedding,
    TableEmbedding,
)
from repro.embeddings.dhe import decoder_layer_sizes


class TestTableEmbedding:
    def test_output_shape_and_dim(self, rng):
        emb = TableEmbedding(20, 6, rng)
        assert emb.output_dim == 6
        assert emb(np.array([0, 5])).shape == (2, 6)

    def test_zero_flops(self, rng):
        assert TableEmbedding(20, 6, rng).flops_per_lookup() == 0

    def test_bytes_per_lookup(self, rng):
        assert TableEmbedding(20, 6, rng).bytes_per_lookup() == 24

    def test_trainable(self, rng):
        emb = TableEmbedding(20, 6, rng)
        ids = np.array([3, 3])
        emb(ids)
        emb.backward(np.ones((2, 6)))
        assert np.all(emb.table.weight.grad[3] == 2.0)


class TestDHEEmbedding:
    def test_output_shape(self, rng):
        emb = DHEEmbedding(dim=6, k=8, dnn=16, h=2, rng=rng)
        assert emb(np.array([1, 2, 3])).shape == (3, 6)

    def test_deterministic_per_id(self, rng):
        emb = DHEEmbedding(dim=4, k=8, dnn=8, h=1, rng=rng)
        a = emb(np.array([42]))
        b = emb(np.array([42]))
        np.testing.assert_array_equal(a, b)

    def test_different_ids_different_vectors(self, rng):
        emb = DHEEmbedding(dim=4, k=32, dnn=16, h=1, rng=rng)
        out = emb(np.array([1, 2]))
        assert not np.allclose(out[0], out[1])

    def test_no_per_id_state(self, rng):
        emb = DHEEmbedding(dim=4, k=8, dnn=8, h=1, rng=rng)
        # Footprint is decoder-only, independent of vocabulary size.
        assert emb.num_parameters() == sum(
            a * b + b for a, b in zip([8, 8], [8, 4])
        )

    def test_encode_decode_composition(self, rng):
        emb = DHEEmbedding(dim=4, k=8, dnn=8, h=1, rng=rng)
        ids = np.array([5, 9])
        np.testing.assert_allclose(emb.decode(emb.encode(ids)), emb(ids))

    def test_decoder_layer_sizes(self):
        assert decoder_layer_sizes(32, 64, 2, 16) == [32, 64, 64, 16]
        assert decoder_layer_sizes(32, 64, 0, 16) == [32, 16]

    def test_custom_decoder_sizes_validated(self, rng):
        with pytest.raises(ValueError):
            DHEEmbedding(dim=4, k=8, dnn=8, h=1, rng=rng, decoder_sizes=[9, 4])

    def test_flops_positive(self, rng):
        emb = DHEEmbedding(dim=4, k=8, dnn=8, h=1, rng=rng)
        assert emb.flops_per_lookup() > 0

    def test_trains_decoder_only(self, rng):
        emb = DHEEmbedding(dim=4, k=8, dnn=8, h=1, rng=rng)
        emb(np.array([1]))
        emb.backward(np.ones((1, 4)))
        assert any(np.any(p.grad != 0) for p in emb.parameters())


class TestHybridEmbedding:
    def test_concatenates_dims(self, rng):
        emb = HybridEmbedding(20, table_dim=4, dhe_dim=6, k=8, dnn=8, h=1, rng=rng)
        assert emb.output_dim == 10
        assert emb(np.array([0, 1])).shape == (2, 10)

    def test_table_slice_matches_table(self, rng):
        emb = HybridEmbedding(20, table_dim=4, dhe_dim=6, k=8, dnn=8, h=1, rng=rng)
        out = emb(np.array([7]))
        np.testing.assert_array_equal(out[0, :4], emb.table.table.weight.data[7])

    def test_dhe_slice_matches_dhe(self, rng):
        emb = HybridEmbedding(20, table_dim=4, dhe_dim=6, k=8, dnn=8, h=1, rng=rng)
        out = emb(np.array([7]))
        np.testing.assert_allclose(out[0, 4:], emb.dhe(np.array([7]))[0])

    def test_backward_routes_both(self, rng):
        emb = HybridEmbedding(20, table_dim=4, dhe_dim=6, k=8, dnn=8, h=1, rng=rng)
        emb(np.array([3]))
        emb.backward(np.ones((1, 10)))
        assert np.any(emb.table.table.weight.grad[3] != 0)
        assert any(np.any(p.grad != 0) for p in emb.dhe.parameters())

    def test_rejects_zero_dims(self, rng):
        with pytest.raises(ValueError):
            HybridEmbedding(20, table_dim=0, dhe_dim=6, k=8, dnn=8, h=1, rng=rng)


class TestSelectEmbedding:
    def test_table_mode(self, rng):
        emb = SelectEmbedding(20, 6, use_dhe=False, k=8, dnn=8, h=1, rng=rng)
        assert isinstance(emb.inner, TableEmbedding)
        assert emb.flops_per_lookup() == 0

    def test_dhe_mode(self, rng):
        emb = SelectEmbedding(20, 6, use_dhe=True, k=8, dnn=8, h=1, rng=rng)
        assert isinstance(emb.inner, DHEEmbedding)
        assert emb.flops_per_lookup() > 0

    def test_forward_shapes_match(self, rng):
        for use_dhe in (False, True):
            emb = SelectEmbedding(20, 6, use_dhe, k=8, dnn=8, h=1, rng=rng)
            assert emb(np.array([0, 1])).shape == (2, 6)


class TestEmbeddingCollection:
    def test_stacks_features(self, rng):
        feats = [TableEmbedding(10, 4, rng) for _ in range(3)]
        coll = EmbeddingCollection(feats)
        out = coll(np.zeros((5, 3), dtype=int))
        assert out.shape == (5, 3, 4)

    def test_mixed_kinds(self, rng):
        feats = [
            TableEmbedding(10, 4, rng),
            DHEEmbedding(dim=4, k=8, dnn=8, h=1, rng=rng),
        ]
        coll = EmbeddingCollection(feats)
        assert coll.kinds() == ["table", "dhe"]
        assert coll(np.zeros((2, 2), dtype=int)).shape == (2, 2, 4)

    def test_rejects_mismatched_dims(self, rng):
        with pytest.raises(ValueError, match="share an output dim"):
            EmbeddingCollection(
                [TableEmbedding(10, 4, rng), TableEmbedding(10, 5, rng)]
            )

    def test_rejects_wrong_id_shape(self, rng):
        coll = EmbeddingCollection([TableEmbedding(10, 4, rng)])
        with pytest.raises(ValueError, match="expected ids of shape"):
            coll(np.zeros((5, 2), dtype=int))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EmbeddingCollection([])

    def test_per_sample_costs_sum(self, rng):
        feats = [
            TableEmbedding(10, 4, rng),
            DHEEmbedding(dim=4, k=8, dnn=8, h=1, rng=rng),
        ]
        coll = EmbeddingCollection(feats)
        assert coll.flops_per_sample() == feats[1].flops_per_lookup()
        assert coll.bytes_per_sample() == sum(f.bytes_per_lookup() for f in feats)
