import numpy as np
import pytest

from repro.models.interactions import DotInteraction
from repro.nn.gradcheck import numerical_gradient


class TestForward:
    def test_output_dim(self, rng):
        inter = DotInteraction()
        z0 = rng.standard_normal((3, 4))
        emb = rng.standard_normal((3, 5, 4))
        out = inter(z0, emb)
        assert out.shape == (3, DotInteraction.output_dim(4, 5))

    def test_output_dim_formula(self):
        # F+1 vectors -> (F+1)F/2 pairs plus the dense passthrough.
        assert DotInteraction.output_dim(16, 26) == 16 + 27 * 26 // 2

    def test_passthrough_slice(self, rng):
        inter = DotInteraction()
        z0 = rng.standard_normal((2, 4))
        emb = rng.standard_normal((2, 3, 4))
        out = inter(z0, emb)
        np.testing.assert_array_equal(out[:, :4], z0)

    def test_pairwise_values(self, rng):
        inter = DotInteraction()
        z0 = rng.standard_normal((1, 2))
        emb = rng.standard_normal((1, 2, 2))
        out = inter(z0, emb)[0]
        vectors = [z0[0], emb[0, 0], emb[0, 1]]
        expected_pairs = [
            np.dot(vectors[1], vectors[0]),
            np.dot(vectors[2], vectors[0]),
            np.dot(vectors[2], vectors[1]),
        ]
        np.testing.assert_allclose(out[2:], expected_pairs)

    def test_shape_validation(self, rng):
        inter = DotInteraction()
        with pytest.raises(ValueError):
            inter(rng.standard_normal((2, 4)), rng.standard_normal((2, 3, 5)))
        with pytest.raises(ValueError):
            inter(rng.standard_normal(4), rng.standard_normal((2, 3, 4)))


class TestBackward:
    def test_gradients_match_numerical(self, rng):
        inter = DotInteraction()
        z0 = rng.standard_normal((2, 3))
        emb = rng.standard_normal((2, 4, 3))
        out = inter(z0, emb)
        probe = rng.standard_normal(out.shape)
        grad_z0, grad_emb = inter.backward(probe)

        num_z0 = numerical_gradient(
            lambda z: float(np.sum(inter(z, emb) * probe)), z0.copy()
        )
        np.testing.assert_allclose(grad_z0, num_z0, atol=1e-6)

        num_emb = numerical_gradient(
            lambda e: float(np.sum(inter(z0, e) * probe)), emb.copy()
        )
        np.testing.assert_allclose(grad_emb, num_emb, atol=1e-6)

    def test_flops_positive(self):
        assert DotInteraction.flops(128, 16, 26) > 0
