import numpy as np
import pytest

from repro.clustering.kmeans import KMeans
from repro.clustering.knn import knn_flops, nearest_centroid, normalize_rows


def three_blobs(rng, n_per=100, spread=0.1):
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    points = np.concatenate(
        [c + spread * rng.standard_normal((n_per, 2)) for c in centers]
    )
    return points, centers


class TestKMeans:
    def test_recovers_separated_blobs(self, rng):
        points, centers = three_blobs(rng)
        km = KMeans(3, seed=0).fit(points)
        found = km.centroids[np.argsort(km.centroids.sum(axis=1))]
        expected = centers[np.argsort(centers.sum(axis=1))]
        np.testing.assert_allclose(found, expected, atol=0.2)

    def test_labels_partition_blobs(self, rng):
        points, _ = three_blobs(rng)
        km = KMeans(3, seed=0).fit(points)
        labels = km.predict(points)
        # Each blob of 100 points should map to a single cluster.
        for blob in range(3):
            blob_labels = labels[blob * 100 : (blob + 1) * 100]
            assert len(set(blob_labels.tolist())) == 1

    def test_inertia_decreases_with_k(self, rng):
        points = rng.standard_normal((300, 4))
        inertias = [
            KMeans(k, seed=1).fit(points).inertia for k in (1, 4, 16)
        ]
        assert inertias[0] > inertias[1] > inertias[2]

    def test_transform_to_centroids(self, rng):
        points, _ = three_blobs(rng)
        km = KMeans(3, seed=0).fit(points)
        snapped = km.transform_to_centroids(points)
        assert snapped.shape == points.shape
        assert len(np.unique(snapped, axis=0)) == 3

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KMeans(2).predict(np.zeros((3, 2)))

    def test_too_few_points_rejected(self, rng):
        with pytest.raises(ValueError):
            KMeans(10).fit(rng.standard_normal((5, 2)))

    def test_k_equals_n_zero_inertia(self, rng):
        points = rng.standard_normal((8, 3))
        km = KMeans(8, seed=2).fit(points)
        assert km.inertia < 1e-12

    def test_deterministic_given_seed(self, rng):
        points = rng.standard_normal((100, 3))
        a = KMeans(5, seed=3).fit(points).centroids
        b = KMeans(5, seed=3).fit(points).centroids
        np.testing.assert_array_equal(a, b)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            KMeans(0)


class TestKNN:
    def test_normalize_rows_unit_norm(self, rng):
        x = rng.standard_normal((10, 4)) * 5
        norms = np.linalg.norm(normalize_rows(x), axis=1)
        np.testing.assert_allclose(norms, 1.0)

    def test_normalize_zero_row_safe(self):
        out = normalize_rows(np.zeros((1, 3)))
        assert np.isfinite(out).all()

    def test_nearest_centroid_exact_match(self, rng):
        centroids = rng.standard_normal((5, 8))
        idx = nearest_centroid(centroids.copy(), centroids)
        np.testing.assert_array_equal(idx, np.arange(5))

    def test_nearest_centroid_cosine(self):
        centroids = np.array([[1.0, 0.0], [0.0, 1.0]])
        queries = np.array([[0.9, 0.1], [0.2, 5.0]])
        np.testing.assert_array_equal(
            nearest_centroid(queries, centroids), [0, 1]
        )

    def test_dim_mismatch(self, rng):
        with pytest.raises(ValueError):
            nearest_centroid(rng.standard_normal((2, 3)), rng.standard_normal((2, 4)))

    def test_knn_flops(self):
        assert knn_flops(10, 64, 256) == 2 * 10 * 64 * 256
