import numpy as np
import pytest

from repro.quality.fitting import FittedCurve, fit_k_curve, fit_quality_residual


class TestFittedCurve:
    CURVE = FittedCurve(ceiling=79.0, span=0.8, k0=256.0)

    def test_monotone_increasing(self):
        ks = [2, 16, 128, 1024, 4096]
        accs = [self.CURVE.accuracy(k) for k in ks]
        assert accs == sorted(accs)

    def test_limits(self):
        assert self.CURVE.accuracy(1e9) == pytest.approx(79.0)
        assert self.CURVE.floor == pytest.approx(78.2)

    def test_k_for_accuracy_inverts(self):
        target = self.CURVE.accuracy(512.0)
        assert self.CURVE.k_for_accuracy(target) == pytest.approx(512.0)

    def test_k_for_unreachable(self):
        assert self.CURVE.k_for_accuracy(80.0) == float("inf")
        assert self.CURVE.k_for_accuracy(70.0) == 0.0


class TestFitKCurve:
    def test_recovers_known_curve(self):
        truth = FittedCurve(ceiling=78.94, span=0.75, k0=256.0)
        ks = np.array([2, 8, 32, 128, 512, 1024, 2048])
        accs = np.array([truth.accuracy(k) for k in ks])
        fitted = fit_k_curve(ks, accs)
        assert fitted.ceiling == pytest.approx(truth.ceiling, abs=0.01)
        assert fitted.k0 == pytest.approx(truth.k0, rel=0.1)

    def test_robust_to_noise(self):
        rng = np.random.default_rng(0)
        truth = FittedCurve(ceiling=80.99, span=0.8, k0=300.0)
        ks = np.array([2, 8, 32, 128, 512, 1024, 2048, 4096])
        accs = np.array([truth.accuracy(k) for k in ks]) + rng.normal(0, 0.01, ks.size)
        fitted = fit_k_curve(ks, accs)
        residual = fit_quality_residual(fitted, ks, accs)
        assert residual < 0.03
        assert abs(fitted.ceiling - truth.ceiling) < 0.05

    def test_fits_estimator_generated_sweep(self):
        """The shipped estimator's k-curve is itself fittable (consistency)."""
        from repro.core.representations import RepresentationConfig
        from repro.quality.estimator import QualityEstimator

        est = QualityEstimator("kaggle")
        ks = np.array([2, 8, 32, 128, 512, 1024, 2048])
        accs = np.array([
            est.accuracy(RepresentationConfig("dhe", 16, k=int(k), dnn=128, h=2))
            for k in ks
        ])
        fitted = fit_k_curve(ks, accs)
        assert fit_quality_residual(fitted, ks, accs) < 0.02

    def test_requires_enough_points(self):
        with pytest.raises(ValueError):
            fit_k_curve(np.array([1, 2]), np.array([1.0, 2.0]))

    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            fit_k_curve(np.array([0, 1, 2]), np.array([1.0, 2.0, 3.0]))
