import numpy as np
import pytest

from repro.models.dlrm import build_dlrm
from repro.nn import MLP
from repro.nn.serialization import load_model, load_state_dict, save_model, state_dict


class TestStateDict:
    def test_contains_all_parameters(self, rng):
        mlp = MLP([4, 8, 2], rng)
        state = state_dict(mlp)
        assert len(state) == len(mlp.parameters())

    def test_load_restores_values(self, rng):
        a = MLP([4, 8, 2], rng)
        b = MLP([4, 8, 2], np.random.default_rng(99))
        load_state_dict(b, state_dict(a))
        x = rng.standard_normal((3, 4))
        np.testing.assert_array_equal(a(x), b(x))

    def test_missing_key_rejected(self, rng):
        mlp = MLP([4, 8, 2], rng)
        state = state_dict(mlp)
        state.pop(next(iter(state)))
        with pytest.raises(KeyError, match="missing"):
            load_state_dict(mlp, state)

    def test_unexpected_key_rejected(self, rng):
        mlp = MLP([4, 8, 2], rng)
        state = state_dict(mlp)
        state["ghost"] = np.zeros(3)
        with pytest.raises(KeyError, match="unexpected"):
            load_state_dict(mlp, state)

    def test_shape_mismatch_rejected(self, rng):
        mlp = MLP([4, 8, 2], rng)
        state = state_dict(mlp)
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError, match="shape mismatch"):
            load_state_dict(mlp, state)


class TestFileRoundtrip:
    def test_dlrm_roundtrip(self, tiny_config, rng, tmp_path):
        model = build_dlrm(tiny_config, "hybrid", rng, k=8, dnn=8, h=1)
        path = save_model(model, tmp_path / "ckpt.npz")
        fresh = build_dlrm(
            tiny_config, "hybrid", np.random.default_rng(123), k=8, dnn=8, h=1
        )
        dense = rng.standard_normal((4, tiny_config.n_dense))
        sparse = np.stack(
            [rng.integers(0, rows, 4) for rows in tiny_config.cardinalities],
            axis=1,
        )
        before = fresh(dense, sparse)
        load_model(fresh, path)
        after = fresh(dense, sparse)
        assert not np.allclose(before, after)
        np.testing.assert_array_equal(after, model(dense, sparse))

    def test_suffix_appended(self, rng, tmp_path):
        mlp = MLP([2, 2], rng)
        path = save_model(mlp, tmp_path / "model")
        assert path.suffix == ".npz"
        assert path.exists()
