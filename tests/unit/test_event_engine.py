"""Event-driven engine: batching semantics, reference equivalence,
streaming parity, and multi-tenant SLA handling."""

import pytest

from repro.core.online import MultiPathScheduler, StaticScheduler
from repro.data.queries import Query, QuerySet
from repro.hardware.catalog import CPU_BROADWELL, GPU_V100
from repro.serving.policies import DeadlineAware
from repro.serving.simulator import ReferenceSimulator, ServingSimulator
from repro.serving.workload import ServingScenario, TenantSpec

from tests.unit.test_online import fake_path


def scenario_of(sizes, gap_s=0.01, sla_s=0.010):
    queries = [
        Query(index=i, size=s, arrival_s=i * gap_s) for i, s in enumerate(sizes)
    ]
    return ServingScenario(queries=QuerySet(queries=queries), sla_s=sla_s)


def flat_path(base_latency=0.1, accuracy=80.0, device=CPU_BROADWELL):
    return fake_path("table", device, accuracy, base_latency, per_sample=0)


class TestConstruction:
    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            ServingSimulator(StaticScheduler([flat_path()]), max_batch_size=0)

    def test_rejects_negative_timeout(self):
        with pytest.raises(ValueError):
            ServingSimulator(
                StaticScheduler([flat_path()]), batch_timeout_s=-1.0
            )

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            ServingSimulator(StaticScheduler([flat_path()]), shed_policy="random")

    def test_policy_instance_accepted(self):
        sim = ServingSimulator(
            StaticScheduler([flat_path()]), shed_policy=DeadlineAware(slack=2.0)
        )
        assert sim.shed_policy == "deadline-aware"


class TestReferenceEquivalence:
    """With batching disabled the engine is record-for-record the seed loop."""

    @pytest.mark.parametrize("shed_policy", ["none", "drop-late"])
    def test_static_scheduler(self, shed_policy):
        scenario = ServingScenario.paper_default(n_queries=400, qps=2000, seed=3)
        scheduler = StaticScheduler([flat_path(base_latency=0.002)])
        ref = ReferenceSimulator(scheduler, shed_policy=shed_policy).run(scenario)
        new = ServingSimulator(scheduler, shed_policy=shed_policy).run(scenario)
        assert new.records == ref.records

    def test_multi_path_scheduler(self):
        scenario = ServingScenario.paper_default(n_queries=400, qps=2000, seed=4)
        scheduler = MultiPathScheduler([
            flat_path(base_latency=0.002),
            fake_path("hybrid", GPU_V100, 81.0, 0.004, per_sample=0),
        ])
        ref = ReferenceSimulator(scheduler, track_energy=False).run(scenario)
        new = ServingSimulator(scheduler, track_energy=False).run(scenario)
        assert new.records == ref.records


class TestBatching:
    def test_simultaneous_arrivals_coalesce(self):
        """Two queries arriving together share one device pass: with a flat
        latency profile both finish when one would."""
        sim = ServingSimulator(
            StaticScheduler([flat_path()]), track_energy=False,
            max_batch_size=2,
        )
        res = sim.run(scenario_of([10, 10], gap_s=0.0))
        finishes = [r.finish_s for r in res.records]
        assert finishes[0] == finishes[1] == pytest.approx(0.1)

    def test_unbatched_queries_queue_sequentially(self):
        sim = ServingSimulator(StaticScheduler([flat_path()]), track_energy=False)
        res = sim.run(scenario_of([10, 10], gap_s=0.0))
        assert sorted(r.finish_s for r in res.records) == pytest.approx([0.1, 0.2])

    def test_timeout_delays_dispatch(self):
        """A lone query waits out the batch timeout before being served."""
        sim = ServingSimulator(
            StaticScheduler([flat_path()]), track_energy=False,
            max_batch_size=8, batch_timeout_s=0.05,
        )
        res = sim.run(scenario_of([10]))
        assert res.records[0].start_s == pytest.approx(0.05)
        assert res.records[0].finish_s == pytest.approx(0.15)

    def test_full_batch_dispatches_before_timeout(self):
        sim = ServingSimulator(
            StaticScheduler([flat_path()]), track_energy=False,
            max_batch_size=2, batch_timeout_s=10.0,
        )
        res = sim.run(scenario_of([10, 10], gap_s=0.001))
        # Dispatch fires on the second arrival, not after the 10 s timeout.
        assert max(r.start_s for r in res.records) == pytest.approx(0.001)

    def test_queries_straddling_timeout_split_batches(self):
        sim = ServingSimulator(
            StaticScheduler([flat_path()]), track_energy=False,
            max_batch_size=8, batch_timeout_s=0.01,
        )
        # Arrivals at 0 and 0.5: the first flushes alone at t=0.01.
        res = sim.run(scenario_of([10, 10], gap_s=0.5))
        starts = sorted(r.start_s for r in res.records)
        assert starts[0] == pytest.approx(0.01)
        assert starts[1] == pytest.approx(0.51)

    def test_batch_energy_split_by_sample_share(self):
        sim = ServingSimulator(
            StaticScheduler([flat_path()]), max_batch_size=2,
        )
        res = sim.run(scenario_of([30, 10], gap_s=0.0))
        by_index = {r.index: r for r in res.records}
        assert by_index[0].energy_j == pytest.approx(3 * by_index[1].energy_j)
        assert res.total_energy_j > 0

    def test_amortization_beats_sequential_service(self):
        """The batched pass finishes before two sequential passes would."""
        sim = ServingSimulator(
            StaticScheduler([flat_path()]), track_energy=False,
            max_batch_size=4,
        )
        batched = sim.run(scenario_of([10] * 4, gap_s=0.0))
        assert batched.makespan_s < 4 * 0.1


class TestShedding:
    def test_deadline_aware_drops_unservable_queries(self):
        """Service alone exceeds the SLA: deadline-aware sheds everything,
        drop-late (wait-based) serves it all."""
        scenario = scenario_of([10] * 5, gap_s=1.0, sla_s=0.010)
        scheduler = StaticScheduler([flat_path(base_latency=0.05)])
        aware = ServingSimulator(
            scheduler, track_energy=False, shed_policy="deadline-aware"
        ).run(scenario)
        late = ServingSimulator(
            scheduler, track_energy=False, shed_policy="drop-late"
        ).run(scenario)
        assert aware.drop_rate == 1.0
        assert late.drop_rate == 0.0

    def test_dropped_records_shape(self):
        scenario = scenario_of([10] * 3, gap_s=0.0, sla_s=0.010)
        sim = ServingSimulator(
            StaticScheduler([flat_path(base_latency=0.05)]),
            track_energy=False, shed_policy="deadline-aware",
        )
        res = sim.run(scenario)
        for r in res.records:
            assert r.dropped
            assert r.path_label == "DROPPED"
            assert r.finish_s == r.arrival_s

    def test_shed_batch_shrinks_service_time(self):
        """Admitted-only sizing: when part of a batch is shed the pass is
        costed on the surviving samples, not the original batch."""
        # q0 waits out the full 20 ms flush timeout (> its 10 ms SLA) and
        # is shed at dispatch; q1, arriving at 15 ms, has only waited 5 ms.
        queries = [
            Query(index=0, size=10, arrival_s=0.0),
            Query(index=1, size=10, arrival_s=0.015),
        ]
        scenario = ServingScenario(queries=QuerySet(queries=queries), sla_s=0.010)
        path = fake_path("table", CPU_BROADWELL, 80.0, 1e-3, per_sample=1e-3)
        sim = ServingSimulator(
            StaticScheduler([path]), track_energy=False,
            shed_policy="drop-late", max_batch_size=8, batch_timeout_s=0.020,
        )
        res = sim.run(scenario)
        by_index = {r.index: r for r in res.records}
        assert by_index[0].dropped and not by_index[1].dropped
        # Service was priced on q1's 10 samples, not the batch's 20.
        assert by_index[1].finish_s == pytest.approx(0.020 + path.latency(10))


class TestStreamingRun:
    def test_matches_record_run_counters(self):
        scenario = ServingScenario.paper_default(n_queries=300, qps=3000, seed=9)
        scheduler = StaticScheduler([flat_path(base_latency=0.002)])
        sim = ServingSimulator(
            scheduler, track_energy=False,
            max_batch_size=4, batch_timeout_s=0.001,
        )
        exact = sim.run(scenario)
        stream = sim.run_streaming(scenario)
        assert stream.raw_throughput == exact.raw_throughput
        assert stream.violation_rate == exact.violation_rate
        assert stream.drop_rate == exact.drop_rate
        assert stream.switching_breakdown() == exact.switching_breakdown()


class TestMultiTenant:
    def two_tenant_scenario(self):
        return ServingScenario.multi_tenant([
            TenantSpec(name="feed", n_queries=50, qps=500.0, sla_s=0.010, seed=1),
            TenantSpec(name="ads", n_queries=50, qps=500.0, sla_s=10.0, seed=2),
        ])

    def test_merged_ordering_and_tags(self):
        scenario = self.two_tenant_scenario()
        arrivals = [q.arrival_s for q in scenario.queries]
        assert arrivals == sorted(arrivals)
        assert [q.index for q in scenario.queries] == list(range(100))
        assert {q.tenant for q in scenario.queries} == {"feed", "ads"}

    def test_sla_for_resolves_tenant(self):
        scenario = self.two_tenant_scenario()
        assert scenario.sla_s == 0.010  # strictest tenant
        feed = next(q for q in scenario.queries if q.tenant == "feed")
        ads = next(q for q in scenario.queries if q.tenant == "ads")
        assert scenario.sla_for(feed) == 0.010
        assert scenario.sla_for(ads) == 10.0

    def test_untagged_query_uses_scenario_sla(self):
        scenario = ServingScenario.paper_default(n_queries=10)
        assert scenario.sla_for(scenario.queries.queries[0]) == scenario.sla_s

    def test_lenient_tenant_survives_shedding(self):
        """Per-tenant SLAs reach the policy: under backlog the strict
        tenant is shed while the lenient one is served."""
        scenario = self.two_tenant_scenario()
        sim = ServingSimulator(
            StaticScheduler([flat_path(base_latency=0.05)]),
            track_energy=False, shed_policy="deadline-aware",
        )
        res = sim.run(scenario)
        by_tenant = {"feed": [], "ads": []}
        for record, query in zip(
            sorted(res.records, key=lambda r: r.index),
            scenario.queries,
        ):
            by_tenant[query.tenant].append(record.dropped)
        assert all(by_tenant["feed"])  # 50 ms service can never meet 10 ms
        assert not any(by_tenant["ads"])

    def test_exact_and_streaming_agree_on_tenant_slas(self):
        """Record-backed metrics honor per-tenant SLAs exactly like the
        streaming mode: a lax tenant's slow-but-compliant queries must not
        be reported as violations of the strict tenant's target."""
        scenario = self.two_tenant_scenario()
        sim = ServingSimulator(
            StaticScheduler([flat_path(base_latency=0.05)]), track_energy=False
        )
        exact = sim.run(scenario)
        stream = sim.run_streaming(scenario)
        assert exact.violation_rate == stream.violation_rate
        assert exact.compliant_correct_throughput == (
            stream.compliant_correct_throughput
        )
        # 50 ms service violates feed's 10 ms SLA on every query but ads'
        # 10 s target on none of them.
        assert 0.0 < exact.violation_rate < 1.0

    def test_single_sla_records_carry_no_override(self):
        """Paper-default runs keep sla_s=None on records, preserving
        bit-for-bit reference equivalence."""
        scenario = ServingScenario.paper_default(n_queries=20)
        sim = ServingSimulator(StaticScheduler([flat_path()]), track_energy=False)
        assert all(r.sla_s is None for r in sim.run(scenario).records)

    def test_default_seeds_give_independent_tenant_streams(self):
        """Tenants left on the default seed must not draw colliding
        arrival streams (identical seeds once made every arrival a
        simultaneous cross-tenant pair)."""
        scenario = ServingScenario.multi_tenant([
            TenantSpec(name="feed", n_queries=50, qps=500.0, sla_s=0.010),
            TenantSpec(name="ads", n_queries=50, qps=500.0, sla_s=0.025),
        ])
        by_tenant = {"feed": [], "ads": []}
        for q in scenario.queries:
            by_tenant[q.tenant].append(q.arrival_s)
        assert set(by_tenant["feed"]).isdisjoint(by_tenant["ads"])

    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(ValueError):
            ServingScenario.multi_tenant([
                TenantSpec(name="a", n_queries=1, qps=1.0, sla_s=0.1),
                TenantSpec(name="a", n_queries=1, qps=1.0, sla_s=0.2),
            ])

    def test_empty_tenant_list_rejected(self):
        with pytest.raises(ValueError):
            ServingScenario.multi_tenant([])
