import numpy as np
import pytest

from repro.core.representations import (
    RepresentationConfig,
    paper_configs,
    representation_space,
)
from repro.models.configs import KAGGLE, TERABYTE


class TestValidation:
    def test_table_minimal(self):
        rep = RepresentationConfig("table", 16)
        assert rep.uses_tables and not rep.uses_dhe

    def test_dhe_requires_stack_params(self):
        with pytest.raises(ValueError):
            RepresentationConfig("dhe", 16)

    def test_hybrid_dim_consistency(self):
        with pytest.raises(ValueError, match="table_dim \\+ dhe_dim"):
            RepresentationConfig(
                "hybrid", 16, k=8, dnn=8, h=1, table_dim=8, dhe_dim=4
            )

    def test_select_requires_features(self):
        with pytest.raises(ValueError):
            RepresentationConfig("select", 16, k=8, dnn=8, h=1)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            RepresentationConfig("robe", 16)


class TestCapacity:
    def test_paper_table3_kaggle(self):
        cfgs = paper_configs(KAGGLE)
        gb = {n: cfgs[n].embedding_bytes(KAGGLE) / 1e9 for n in cfgs}
        assert abs(gb["table"] - 2.16) < 0.02
        assert abs(gb["dhe"] - 0.126) < 0.01
        assert abs(gb["hybrid"] - 2.29) < 0.02
        # MP-Rec stores table + dhe + hybrid: 4.58 GB.
        total = gb["table"] + gb["dhe"] + gb["hybrid"]
        assert abs(total - 4.58) < 0.04

    def test_paper_table3_terabyte(self):
        cfgs = paper_configs(TERABYTE)
        gb = {n: cfgs[n].embedding_bytes(TERABYTE) / 1e9 for n in cfgs}
        assert abs(gb["table"] - 12.58) < 0.05
        assert abs(gb["dhe"] - 0.123) < 0.02
        assert abs(gb["hybrid"] - 12.70) < 0.06
        total = gb["table"] + gb["dhe"] + gb["hybrid"]
        assert abs(total - 25.41) < 0.1

    def test_dhe_compression_ratio_vs_terabyte(self):
        # Paper Sec 3.2 / Fig 4: DHE compresses Terabyte by ~100-334x.
        cfgs = paper_configs(TERABYTE)
        ratio = cfgs["table"].embedding_bytes(TERABYTE) / cfgs[
            "dhe"
        ].embedding_bytes(TERABYTE)
        assert ratio > 90

    def test_select_between_table_and_dhe(self):
        cfgs = paper_configs(KAGGLE)
        sel = cfgs["select"].embedding_bytes(KAGGLE)
        assert cfgs["dhe"].embedding_bytes(KAGGLE) < sel
        assert sel < cfgs["table"].embedding_bytes(KAGGLE)

    def test_dense_bytes_positive_and_small(self):
        cfgs = paper_configs(KAGGLE)
        dense = cfgs["table"].dense_bytes(KAGGLE)
        assert 0 < dense < 50e6

    def test_table_only_bytes(self):
        cfgs = paper_configs(KAGGLE)
        assert cfgs["dhe"].table_only_bytes(KAGGLE) == 0
        assert cfgs["hybrid"].table_only_bytes(KAGGLE) == cfgs[
            "table"
        ].embedding_bytes(KAGGLE)
        sel = cfgs["select"]
        assert 0 < sel.table_only_bytes(KAGGLE) < cfgs["table"].embedding_bytes(KAGGLE)


class TestFlops:
    def test_ordering(self):
        cfgs = paper_configs(KAGGLE)
        flops = {n: cfgs[n].flops_per_sample(KAGGLE) for n in cfgs}
        assert flops["table"] < flops["select"] < flops["dhe"]
        # Hybrid pays the table's gather plus a DHE stack whose decoder's
        # final layer is half-width: its FLOPs land within 10% of DHE's.
        assert flops["hybrid"] > flops["table"]
        assert abs(flops["hybrid"] - flops["dhe"]) / flops["dhe"] < 0.10

    def test_dhe_vs_table_orders_of_magnitude(self):
        # Paper Fig 3b: DHE/hybrid have 10-100x the FLOPs of tables.
        cfgs = paper_configs(KAGGLE)
        ratio = cfgs["dhe"].flops_per_sample(KAGGLE) / cfgs["table"].flops_per_sample(
            KAGGLE
        )
        assert ratio > 10

    def test_decoder_flops_zero_for_table(self):
        assert RepresentationConfig("table", 16).decoder_flops_per_lookup() == 0


class TestSpaceAndHelpers:
    def test_space_covers_all_kinds(self):
        space = representation_space(KAGGLE)
        kinds = {rep.kind for rep in space}
        assert kinds == {"table", "dhe", "hybrid"}
        assert len(space) > 50

    def test_with_dim_table(self):
        rep = RepresentationConfig("table", 16).with_dim(4)
        assert rep.embedding_dim == 4

    def test_with_dim_hybrid_preserves_split(self):
        rep = RepresentationConfig(
            "hybrid", 24, k=8, dnn=8, h=1, table_dim=16, dhe_dim=8
        ).with_dim(12)
        assert rep.table_dim + rep.dhe_dim == 12

    def test_display_label(self):
        rep = RepresentationConfig("table", 16, label="foo")
        assert rep.display == "foo"
