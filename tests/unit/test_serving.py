import numpy as np
import pytest

from repro.core.online import MultiPathScheduler, StaticScheduler
from repro.data.queries import Query, QuerySet
from repro.serving.metrics import QueryRecord, ServingResult
from repro.serving.simulator import ServingSimulator
from repro.serving.workload import ServingScenario

from tests.unit.test_online import fake_path, idle
from repro.hardware.catalog import CPU_BROADWELL, GPU_V100, IPU_POD16


def scenario_of(sizes, gap_s=0.01, sla_s=0.010):
    queries = [
        Query(index=i, size=s, arrival_s=i * gap_s) for i, s in enumerate(sizes)
    ]
    return ServingScenario(queries=QuerySet(queries=queries), sla_s=sla_s)


class TestQueryRecord:
    def test_latency_and_correct_samples(self):
        rec = QueryRecord(
            index=0, size=100, arrival_s=1.0, start_s=1.5, finish_s=2.0,
            path_label="T", accuracy=80.0,
        )
        assert rec.latency_s == 1.0
        assert rec.correct_samples == 80.0


class TestServingResult:
    def make(self, latencies, sla_s=0.010, sizes=None, accs=None):
        sizes = sizes or [100] * len(latencies)
        accs = accs or [80.0] * len(latencies)
        records = [
            QueryRecord(
                index=i, size=sizes[i], arrival_s=0.0, start_s=0.0,
                finish_s=latencies[i], path_label=f"P{i % 2}", accuracy=accs[i],
            )
            for i in range(len(latencies))
        ]
        return ServingResult(scheduler_name="t", sla_s=sla_s, records=records)

    def test_violation_rate(self):
        res = self.make([0.005, 0.015, 0.020, 0.001])
        assert res.violation_rate == 0.5

    def test_throughputs(self):
        res = self.make([1.0, 2.0], sizes=[100, 300])
        assert res.raw_throughput == 400 / 2.0
        assert res.correct_prediction_throughput == pytest.approx(400 * 0.8 / 2.0)

    def test_mean_accuracy_weighted(self):
        res = self.make([1.0, 1.0], sizes=[100, 300], accs=[70.0, 90.0])
        assert res.mean_accuracy == pytest.approx((70 * 100 + 90 * 300) / 400)

    def test_percentiles_ordered(self):
        res = self.make(list(np.linspace(0.001, 0.1, 50)))
        assert res.p50_latency_s <= res.p95_latency_s <= res.p99_latency_s

    def test_switching_breakdown_sums_to_one(self):
        res = self.make([0.01] * 10)
        breakdown = res.switching_breakdown()
        assert pytest.approx(sum(breakdown.values())) == 1.0
        assert set(breakdown) == {"P0", "P1"}

    def test_empty_result_safe(self):
        res = ServingResult(scheduler_name="t", sla_s=0.01)
        assert res.raw_throughput == 0.0
        assert res.violation_rate == 0.0
        assert res.mean_accuracy == 0.0

    def test_summary_keys(self):
        res = self.make([0.01])
        assert {"correct_tput", "raw_tput", "violation_rate"} <= set(res.summary())


class TestSimulator:
    def test_fifo_queueing_single_server(self):
        path = fake_path("table", CPU_BROADWELL, 80.0, base_latency=0.1, per_sample=0)
        sim = ServingSimulator(StaticScheduler([path]), track_energy=False)
        # Two queries arrive together; the second waits for the first.
        res = sim.run(scenario_of([10, 10], gap_s=0.0))
        lats = sorted(r.latency_s for r in res.records)
        assert lats[0] == pytest.approx(0.1)
        assert lats[1] == pytest.approx(0.2)

    def test_replicated_device_serves_concurrently(self):
        path = fake_path("table", IPU_POD16, 80.0, base_latency=0.1, per_sample=0)
        sim = ServingSimulator(StaticScheduler([path]), track_energy=False)
        res = sim.run(scenario_of([10] * 16, gap_s=0.0))
        # 16 replicas: all queries finish in one service time.
        assert max(r.latency_s for r in res.records) == pytest.approx(0.1)

    def test_shared_device_shared_queue(self):
        table = fake_path("table", GPU_V100, 80.0, base_latency=0.1, per_sample=0)
        hybrid = fake_path("hybrid", GPU_V100, 81.0, base_latency=0.1, per_sample=0)
        sched = MultiPathScheduler([table, hybrid])
        sim = ServingSimulator(sched, track_energy=False)
        res = sim.run(scenario_of([10, 10], gap_s=0.0, sla_s=1.0))
        # Both go to the same GPU: second query queues behind the first.
        finishes = sorted(r.finish_s for r in res.records)
        assert finishes[1] == pytest.approx(0.2)

    def test_idle_system_no_waiting(self):
        path = fake_path("table", CPU_BROADWELL, 80.0, base_latency=0.001, per_sample=0)
        sim = ServingSimulator(StaticScheduler([path]), track_energy=False)
        res = sim.run(scenario_of([10] * 5, gap_s=0.5))
        assert all(r.start_s == r.arrival_s for r in res.records)

    def test_energy_tracked_with_model(self):
        from repro.core.profiler import make_path
        from repro.core.representations import paper_configs
        from repro.models.configs import KAGGLE

        rep = paper_configs(KAGGLE)["table"]
        path = make_path(rep, KAGGLE, CPU_BROADWELL, 78.79)
        path.extra["model"] = KAGGLE
        sim = ServingSimulator(StaticScheduler([path]))
        res = sim.run(scenario_of([100] * 3))
        assert res.total_energy_j > 0

    def test_energy_fallback_without_model(self):
        path = fake_path("table", CPU_BROADWELL, 80.0, base_latency=0.01, per_sample=0)
        sim = ServingSimulator(StaticScheduler([path]))
        res = sim.run(scenario_of([10]))
        assert res.total_energy_j > 0


class TestScenario:
    def test_paper_default(self):
        scen = ServingScenario.paper_default(n_queries=100)
        assert scen.sla_s == 0.010
        assert scen.target_qps == 1000.0
        assert len(scen.queries) == 100
